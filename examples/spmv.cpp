// Sparse matrix-vector multiply (CSR) — irregular memory traffic with
// combining reductions, the access pattern ESM machines were designed to
// survive. y = A·x in ONE thick statement of thickness nnz: each edge lane
// multiplies its entry with x[col] and MPADDs into y[row]; rows of any
// length combine without atomics or per-row loops.
//
// Build & run:  ./example_spmv [rows] [nnz-per-row]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  const std::size_t per_row =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t nnz = rows * per_row;

  // Synthetic CSR-ish matrix in coordinate form (row, col, val) with a
  // skewed row distribution: a few very heavy rows, the irregular case.
  Rng rng(31);
  std::vector<Word> erow(nnz), ecol(nnz), eval_(nnz), xv(rows);
  for (std::size_t e = 0; e < nnz; ++e) {
    // 20% of the entries pile into the first 2% of the rows.
    const bool heavy = rng.chance(0.2);
    erow[e] = static_cast<Word>(heavy ? rng.below(std::max<std::size_t>(rows / 50, 1))
                                      : rng.below(rows));
    ecol[e] = static_cast<Word>(rng.below(rows));
    eval_[e] = rng.range(-4, 4);
  }
  for (auto& x : xv) x = rng.range(-10, 10);

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1u << 22;
  tcf::Runtime rt(cfg);

  const auto brow = rt.array(erow);
  const auto bcol = rt.array(ecol);
  const auto bval = rt.array(eval_);
  const auto bx = rt.array(xv);
  const auto by = rt.array(rows);

  const auto stats = rt.run([&](tcf::Flow& f) {
    f.thick(nnz);  // one lane per nonzero
    f.apply([&](tcf::Lane& l) {
      const Word r = l.read(brow, l.id());
      const Word c = l.read(bcol, l.id());
      const Word v = l.read(bval, l.id());
      l.multi_add(by, static_cast<std::size_t>(r),
                  v * l.read(bx, static_cast<std::size_t>(c)));
    });
  });

  // Sequential reference.
  std::vector<Word> want(rows, 0);
  for (std::size_t e = 0; e < nnz; ++e) {
    want[static_cast<std::size_t>(erow[e])] +=
        eval_[e] * xv[static_cast<std::size_t>(ecol[e])];
  }
  const auto got = rt.fetch(by);
  std::size_t mism = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (got[r] != want[r]) ++mism;
  }

  std::printf("SpMV: %zu rows, %zu nonzeros (skewed row lengths)\n", rows,
              nnz);
  std::printf("one thick statement: %llu lane ops, makespan %llu cycles, "
              "%llu shared accesses\n",
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.makespan),
              static_cast<unsigned long long>(stats.shared_accesses));
  std::printf("matches sequential reference: %s (%zu mismatches)\n",
              mism == 0 ? "yes" : "NO", mism);
  std::printf("(heavy rows are absorbed by combining MPADDs — no per-row\n"
              " reduction trees, no atomics, no load-balancing pass)\n");
  return mism == 0 ? 0 : 1;
}
