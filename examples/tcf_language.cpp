// The TCF source language, end to end: the snippets of Section 4 of the
// paper, compiled by src/lang and executed on the simulated extended
// PRAM-NUMA machine.
//
// Build & run:  ./example_tcf_language
#include <cstdio>

#include "lang/codegen.hpp"
#include "machine/machine.hpp"

using namespace tcfpn;

namespace {

// The paper's Section 4 constructs, as one program.
constexpr const char* kProgram = R"TCF(
  // data
  array a[12]    = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  array b[12]    = {10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  array c[12];
  array guard[12];                       // zero region for the dependent loop
  array source[12] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  array pref[12];
  cell  sum;
  var   size = 12;
  var   i;

  // "#size;  c = a + b;"  — no loop, no thread arithmetic
  #size;
  c. = a. + b.;

  // two-way conditional as parallel thick flows
  parallel {
    #size/2: c. = a. + b.;
    #size/2: c.[size/2 + id] = 0;
  }

  // "prefix(source, MPADD, &sum, source);" — thick multiprefix
  #size;
  prefix(source, MPADD, &sum, pref);

  // the dependent loop: no explicit synchronisation needed
  for (i = 1; i < size; i <<= 1)
    source.[id] += source.[id - i];

  // low-parallelism section in NUMA mode: "#1/T;"
  #1/4;
  for (i = 0; i < 10; i += 1)
    sum += 1;

  print(sum);
)TCF";

}  // namespace

int main() {
  std::printf("== compiling Section 4's constructs with the TCF compiler ==\n\n");
  const lang::Compiled compiled = lang::compile_source(kProgram);
  std::printf("compiled to %zu ISA instructions; data segment %llu words\n",
              compiled.program.size(),
              static_cast<unsigned long long>(compiled.heap_end -
                                              compiled.heap_base));

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1 << 16;
  machine::Machine m(cfg);
  m.load(compiled.program);
  m.boot(1);
  const auto run = m.run();

  auto peek = [&](const char* name, std::size_t i) {
    return m.shared().peek(compiled.buffer(name).at(i));
  };

  std::printf("\nresults:\n");
  std::printf("  c      = [");
  bool ok = run.completed;
  for (std::size_t i = 0; i < 12; ++i) {
    std::printf("%s%lld", i ? ", " : "", static_cast<long long>(peek("c", i)));
    const Word want = i < 6 ? static_cast<Word>(i + 11) : 0;
    if (peek("c", i) != want) ok = false;
  }
  std::printf("]\n  scan   = [");
  for (std::size_t i = 0; i < 12; ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(peek("source", i)));
    if (peek("source", i) != static_cast<Word>(i + 1)) ok = false;
  }
  std::printf("]\n  prefix = [");
  for (std::size_t i = 0; i < 12; ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(peek("pref", i)));
    if (peek("pref", i) != static_cast<Word>(i)) ok = false;
  }
  const Word sum = peek("sum", 0);
  std::printf("]\n  sum    = %lld (12 from the multiprefix + 10 NUMA "
              "increments = 22)\n",
              static_cast<long long>(sum));
  if (sum != 22) ok = false;

  std::printf("\nmachine: %llu steps, %llu cycles, %llu instruction "
              "fetches, %llu lane ops\n",
              static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.cycles),
              static_cast<unsigned long long>(m.stats().instruction_fetches),
              static_cast<unsigned long long>(m.stats().operations));
  std::printf("all Section 4 constructs verified: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
