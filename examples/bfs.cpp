// Breadth-first search — the classic irregular PRAM workload the paper's
// introduction motivates ("general purpose parallel applications with
// enough parallelism").
//
// Level-synchronous BFS on the extended PRAM-NUMA model: each round is ONE
// thick statement whose thickness is the edge count; every edge lane reads
// its source's level and proposes `level+1` to its destination through a
// combining MPMIN — no locks, no atomics loops, and the lock-step step
// boundary is the level barrier. Thickness tracking the frontier is what
// the TCF model is for.
//
// Build & run:  ./example_bfs [vertices] [edges]
#include <cstdio>
#include <cstdlib>
#include <queue>

#include "common/rng.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main(int argc, char** argv) {
  const std::size_t nv = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::size_t ne =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4 * nv;

  // Deterministic random digraph (with a spine so most of it is reachable).
  Rng rng(11);
  std::vector<Word> src(ne), dst(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    if (e < nv - 1) {  // spine: i -> i+1
      src[e] = static_cast<Word>(e);
      dst[e] = static_cast<Word>(e + 1);
    } else {
      src[e] = static_cast<Word>(rng.below(nv));
      dst[e] = static_cast<Word>(rng.below(nv));
    }
  }

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1u << 22;
  tcf::Runtime rt(cfg);

  const Word kInf = 1 << 30;
  const auto esrc = rt.array(src);
  const auto edst = rt.array(dst);
  const auto level = rt.array(std::vector<Word>(nv, kInf));
  const auto changed = rt.array(1);

  rt.shared().poke(level.at(0), 0);  // source vertex

  std::size_t rounds = 0;
  const auto stats = rt.run([&](tcf::Flow& f) {
    while (true) {
      ++rounds;
      // reset the convergence flag (thin statement)
      f.thick(1);
      f.apply([&](tcf::Lane& l) { l.write(changed, 0, 0); });
      // relax every edge in one thick statement
      f.thick(ne);
      f.apply([&](tcf::Lane& l) {
        const Word u = l.read(esrc, l.id());
        const Word lu = l.read(level, static_cast<std::size_t>(u));
        if (lu >= kInf) return;
        const Word v = l.read(edst, l.id());
        const Word lv = l.read(level, static_cast<std::size_t>(v));
        if (lu + 1 < lv) {
          l.multi(level, static_cast<std::size_t>(v), mem::MultiOp::kMin,
                  lu + 1);
          l.multi(changed, 0, mem::MultiOp::kMax, 1);
        }
      });
      // flow-level convergence test (uniform branch)
      f.thick(1);
      bool done = true;
      f.apply([&](tcf::Lane& l) { done = l.read(changed, 0) == 0; });
      if (done) break;
      if (rounds > nv) break;  // safety net
    }
  });

  // Sequential reference BFS.
  std::vector<std::vector<Word>> adj(nv);
  for (std::size_t e = 0; e < ne; ++e) {
    adj[static_cast<std::size_t>(src[e])].push_back(dst[e]);
  }
  std::vector<Word> want(nv, kInf);
  want[0] = 0;
  std::queue<Word> q;
  q.push(0);
  while (!q.empty()) {
    const Word u = q.front();
    q.pop();
    for (Word v : adj[static_cast<std::size_t>(u)]) {
      if (want[static_cast<std::size_t>(v)] == kInf) {
        want[static_cast<std::size_t>(v)] =
            want[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }

  const auto got = rt.fetch(level);
  std::size_t reached = 0, mism = 0;
  Word max_level = 0;
  for (std::size_t v = 0; v < nv; ++v) {
    if (got[v] != want[v]) ++mism;
    if (got[v] < kInf) {
      ++reached;
      max_level = std::max(max_level, got[v]);
    }
  }

  std::printf("BFS over %zu vertices / %zu edges\n", nv, ne);
  std::printf("reached %zu vertices, eccentricity %lld, %zu BFS rounds\n",
              reached, static_cast<long long>(max_level), rounds);
  std::printf("thick statements %llu, lane ops %llu, makespan %llu cycles\n",
              static_cast<unsigned long long>(stats.statements),
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.makespan));
  std::printf("matches sequential BFS: %s (%zu mismatches)\n",
              mism == 0 ? "yes" : "NO", mism);
  std::printf("(each level is one thickness-%zu statement; MPMIN combining\n"
              " resolves all simultaneous relaxations of a vertex)\n",
              ne);
  return mism == 0 ? 0 : 1;
}
