; sum of squares of lane ids via one combining multioperation
; run: tcfasm sum_squares.s --thickness=1
main:   SETTHICK 32
        TID r1
        MUL r2, r1, r1
        MPADD r2, [r0+0]
        SETTHICK 1
        LD r3, [r0+0]
        PRINT r3          ; expect 10416
        HALT
