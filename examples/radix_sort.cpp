// LSD radix sort on the TCF runtime — the full multiprefix toolkit in one
// realistic kernel: per pass, a combining histogram of the current digit,
// an exclusive-offset multiprefix, and a stable multiprefix scatter, each
// a single thick statement of thickness n. log_b(maxkey) passes, zero
// loops over the data inside a pass.
//
// Build & run:  ./example_radix_sort [n]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  constexpr Word kBits = 4;              // digit width
  constexpr Word kRadix = 1 << kBits;    // 16 buckets
  constexpr Word kKeyBits = 16;

  Rng rng(99);
  std::vector<Word> keys(n);
  for (auto& k : keys) k = static_cast<Word>(rng.below(1u << kKeyBits));

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1u << 22;
  tcf::Runtime rt(cfg);

  tcf::Buffer cur = rt.array(keys);
  tcf::Buffer nxt = rt.array(n);
  const tcf::Buffer hist = rt.array(kRadix);
  const tcf::Buffer offs = rt.array(kRadix);
  const tcf::Buffer total = rt.array(1);

  const auto stats = rt.run([&](tcf::Flow& f) {
    for (Word shift = 0; shift < kKeyBits; shift += kBits) {
      auto digit = [&](tcf::Lane& l) {
        return (l.read(cur, l.id()) >> shift) & (kRadix - 1);
      };
      // 1: clear histogram (thin statement over the buckets)
      f.thick(kRadix);
      f.apply([&](tcf::Lane& l) {
        l.write(hist, l.id(), 0);
        l.write(total, 0, 0);
      });
      // 2: combining digit histogram, one statement of thickness n
      f.thick(n);
      f.apply([&](tcf::Lane& l) {
        l.multi_add(hist, static_cast<std::size_t>(digit(l)), 1);
      });
      // 3: exclusive bucket offsets via multiprefix over one cell
      f.thick(kRadix);
      f.apply([&](tcf::Lane& l) {
        l.write(offs, l.id(),
                l.prefix_add(total, 0, l.read(hist, l.id())));
      });
      // 4: stable scatter — lanes claim slots in lane order (multiprefix
      //    ordering == lane ordering, which keeps the sort stable)
      f.thick(n);
      f.apply([&](tcf::Lane& l) {
        const Word slot =
            l.prefix_add(offs, static_cast<std::size_t>(digit(l)), 1);
        l.write(nxt, static_cast<std::size_t>(slot), l.read(cur, l.id()));
      });
      std::swap(cur, nxt);
    }
  });

  auto got = rt.fetch(cur);
  auto want = keys;
  std::sort(want.begin(), want.end());
  const bool ok = got == want;

  std::printf("radix sort of %zu %lld-bit keys, %lld passes of %lld-bit "
              "digits\n",
              n, static_cast<long long>(kKeyBits),
              static_cast<long long>(kKeyBits / kBits),
              static_cast<long long>(kBits));
  std::printf("thick statements %llu, lane ops %llu, makespan %llu cycles\n",
              static_cast<unsigned long long>(stats.statements),
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.makespan));
  std::printf("sorted correctly: %s\n", ok ? "yes" : "NO");
  std::printf("(4 thick statements per pass — histogram, offsets, scatter —\n"
              " replace every loop of a thread-model radix sort)\n");
  return ok ? 0 : 1;
}
