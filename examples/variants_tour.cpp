// A tour of the six execution variants: the same computation (sum of
// 1..n by vector add + multioperation reduce) expressed in each model's
// native style and run on the corresponding machine (Section 3.2).
//
// Build & run:  ./example_variants_tour
#include <cstdio>

#include "baseline/frontends.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "tcf/builder.hpp"
#include "tcf/kernels.hpp"

using namespace tcfpn;

namespace {

constexpr Word kN = 96;
constexpr Addr kA = 256, kB = 1024, kC = 4096, kSum = 16;

isa::Program seed(isa::Program p) {
  std::vector<Word> av(kN), bv(kN);
  for (Word i = 0; i < kN; ++i) {
    av[i] = i + 1;
    bv[i] = 0;
  }
  p.data.push_back({kA, av});
  p.data.push_back({kB, bv});
  return p;
}

// TCF style: #n; c.=a.+b.; sum += c. (two thick statements).
isa::Program tcf_style() {
  tcf::AsmBuilder s;
  using namespace tcf;
  s.setthick(kN);
  s.ld(r1, r0, static_cast<Word>(kA), true);
  s.ld(r2, r0, static_cast<Word>(kB), true);
  s.add(r3, r1, r2);
  s.st(r3, r0, static_cast<Word>(kC), true);
  s.mp(isa::Opcode::kMpAdd, r3, r0, static_cast<Word>(kSum));
  s.halt();
  return seed(s.build());
}

// Thread style: loop + per-thread MPADD.
isa::Program thread_style() {
  tcf::AsmBuilder s;
  using namespace tcf;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.add(r3, r1, Word{0});
  s.bind(loop);
  s.slt(r4, r3, kN);
  s.beqz(r4, done);
  s.add(r5, r3, static_cast<Word>(kA));
  s.ld(r6, r5);
  s.add(r7, r3, static_cast<Word>(kB));
  s.ld(r8, r7);
  s.add(r9, r6, r8);
  s.add(r10, r3, static_cast<Word>(kC));
  s.st(r9, r10);
  s.mp(isa::Opcode::kMpAdd, r9, r0, static_cast<Word>(kSum));
  s.add(r3, r3, r2);
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return seed(s.build());
}

// Fork style for the multi-instruction machine.
isa::Program fork_style() {
  tcf::AsmBuilder s;
  using namespace tcf;
  auto worker = s.make_label("worker");
  s.ldi(r1, kN);
  s.spawn(r1, worker);
  s.joinall();
  s.halt();
  s.bind(worker);
  s.tid(r3);
  s.add(r5, r3, static_cast<Word>(kA));
  s.ld(r6, r5);
  s.add(r7, r3, static_cast<Word>(kB));
  s.ld(r8, r7);
  s.add(r9, r6, r8);
  s.add(r10, r3, static_cast<Word>(kC));
  s.st(r9, r10);
  s.mp(isa::Opcode::kMpAdd, r9, r0, static_cast<Word>(kSum));
  s.halt();
  return seed(s.build());
}

// SIMD style: strip-mined masked chunks (width 16).
isa::Program simd_style() {
  tcf::AsmBuilder s;
  using namespace tcf;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.ldi(r1, 0);
  s.bind(loop);
  s.slt(r2, r1, kN);
  s.beqz(r2, done);
  s.tid(r4);
  s.add(r3, r1, r4);
  s.slt(r5, r3, kN);
  s.mul(r6, r3, r5);
  s.add(r7, r6, static_cast<Word>(kA));
  s.ld(r8, r7);
  s.add(r9, r6, static_cast<Word>(kB));
  s.ld(r10, r9);
  s.add(r11, r8, r10);
  s.mul(r11, r11, r5);  // masked contribution (0 off the end)
  s.add(r12, r6, static_cast<Word>(kC));
  s.mul(r12, r12, r5);
  s.st(r11, r12);
  s.mp(isa::Opcode::kMpAdd, r11, r0, static_cast<Word>(kSum));
  s.add(r1, r1, Word{16});
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return seed(s.build());
}

}  // namespace

int main() {
  const Word want = kN * (kN + 1) / 2;  // 1+2+...+n
  std::printf("== the same reduction on all six variants (n=%lld, "
              "expect sum=%lld) ==\n\n",
              static_cast<long long>(kN), static_cast<long long>(want));

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1 << 16;

  Table t({"variant", "front-end style", "cycles", "fetches", "sum",
           "ok"});
  auto add_row = [&](const char* name, const char* style,
                     const baseline::Outcome& out, Word sum) {
    t.add(name, style, out.stats.cycles, out.stats.instruction_fetches, sum,
          sum == want && out.completed);
  };

  {
    auto out = baseline::run_tcf(cfg, tcf_style());
    // Re-run on a scratch machine to read memory (frontends return stats).
    machine::Machine m(cfg);
    m.load(tcf_style());
    m.boot(1);
    m.run();
    add_row("single-instruction", "#n; thick stmts", out,
            m.shared().peek(kSum));
  }
  {
    auto cfg2 = cfg;
    cfg2.variant = machine::Variant::kBalanced;
    cfg2.balanced_bound = 16;
    machine::Machine m(cfg2);
    m.load(tcf_style());
    m.boot(1);
    m.run();
    baseline::Outcome out{true, m.stats(), {}};
    add_row("balanced", "#n; thick stmts", out, m.shared().peek(kSum));
  }
  {
    auto cfg2 = cfg;
    cfg2.variant = machine::Variant::kMultiInstruction;
    machine::Machine m(cfg2);
    m.load(fork_style());
    m.boot(1);
    m.run();
    baseline::Outcome out{true, m.stats(), {}};
    add_row("multi-instruction", "fork/join", out, m.shared().peek(kSum));
  }
  {
    auto cfg2 = cfg;
    cfg2.variant = machine::Variant::kSingleOperation;
    machine::Machine m(cfg2);
    m.load(thread_style());
    tcf::kernels::boot_esm_threads(m, 0, cfg2.total_slots());
    m.run();
    baseline::Outcome out{true, m.stats(), {}};
    add_row("single-operation", "tid loop", out, m.shared().peek(kSum));
  }
  {
    auto cfg2 = cfg;
    cfg2.variant = machine::Variant::kConfigSingleOperation;
    machine::Machine m(cfg2);
    m.load(thread_style());
    tcf::kernels::boot_esm_threads(m, 0, cfg2.total_slots());
    m.run();
    baseline::Outcome out{true, m.stats(), {}};
    add_row("config-single-op", "tid loop (+numa avail.)", out,
            m.shared().peek(kSum));
  }
  {
    auto cfg2 = cfg;
    cfg2.variant = machine::Variant::kFixedThickness;
    cfg2.groups = 1;
    machine::Machine m(cfg2);
    m.load(simd_style());
    m.boot(16);
    m.run();
    baseline::Outcome out{true, m.stats(), {}};
    add_row("fixed-thickness", "masked strip-mine", out,
            m.shared().peek(kSum));
  }
  t.print();

  std::printf(
      "\nSix machines, six programming styles, one answer. The extended\n"
      "model's source is the shortest and its fetch column the smallest —\n"
      "Section 4's programming argument, end to end.\n");
  return 0;
}
