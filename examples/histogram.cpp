// Histogram with active-memory multioperations — the classic fine-grained
// PRAM workload that breaks on machines without combining.
//
// A thick flow of one lane per sample classifies its sample and issues one
// MPADD to its bucket; all same-bucket contributions combine within a
// step. A second thick multiprefix pass converts bucket counts into start
// offsets and scatters the samples into sorted-by-bucket order (a counting
// sort) — all without a single loop over the data.
//
// Build & run:  ./example_histogram [samples] [buckets]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  const std::size_t buckets =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1u << 22;
  tcf::Runtime rt(cfg);

  // Synthetic samples (deterministic).
  Rng rng(42);
  std::vector<Word> samples(n);
  for (auto& s : samples) s = static_cast<Word>(rng.below(1000));
  const tcf::Buffer data = rt.array(samples);
  const tcf::Buffer hist = rt.array(buckets);
  const tcf::Buffer offsets = rt.array(buckets);
  const tcf::Buffer sorted = rt.array(n);
  const Word width = static_cast<Word>(1000 / buckets + 1);

  const auto stats = rt.run([&](tcf::Flow& f) {
    // Pass 1: one thick instruction, n lanes, combining MPADDs.
    f.thick(n);
    f.apply([&](tcf::Lane& l) {
      const Word bucket = l.read(data, l.id()) / width;
      l.multi_add(hist, static_cast<std::size_t>(bucket), 1);
    });
    // Pass 2: bucket offsets via a thick multiprefix over a single cell.
    f.thick(buckets);
    tcf::Buffer total = rt.array(1);
    f.apply([&](tcf::Lane& l) {
      const Word count = l.read(hist, l.id());
      l.write(offsets, l.id(), l.prefix_add(total, 0, count));
    });
    // Pass 3: scatter — lane i claims a slot in its bucket with a
    // multiprefix on the bucket's offset cell.
    f.thick(n);
    f.apply([&](tcf::Lane& l) {
      const Word v = l.read(data, l.id());
      const Word bucket = v / width;
      const Word slot =
          l.prefix_add(offsets, static_cast<std::size_t>(bucket), 1);
      l.write(sorted, static_cast<std::size_t>(slot), v);
    });
  });

  // Verify: histogram matches a sequential count; sorted is bucket-ordered.
  std::vector<Word> expect(buckets, 0);
  for (Word s : samples) ++expect[static_cast<std::size_t>(s / width)];
  const auto got = rt.fetch(hist);
  bool ok = true;
  Word total_count = 0;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (got[i] != expect[i]) ok = false;
    total_count += got[i];
  }
  const auto sorted_v = rt.fetch(sorted);
  for (std::size_t i = 1; i < n && ok; ++i) {
    if (sorted_v[i - 1] / width > sorted_v[i] / width) ok = false;
  }

  std::printf("histogram of %zu samples into %zu buckets\n", n, buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    std::printf("  bucket %2zu: %6lld %s\n", i,
                static_cast<long long>(got[i]),
                got[i] == expect[i] ? "" : "  <-- MISMATCH");
  }
  std::printf("total=%lld (expect %zu), bucket-sorted=%s\n",
              static_cast<long long>(total_count), n, ok ? "yes" : "NO");
  std::printf("thick statements=%llu, lane ops=%llu, makespan=%llu cycles\n",
              static_cast<unsigned long long>(stats.statements),
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.makespan));
  std::printf("(three thick statements replace every loop a thread-model\n"
              " histogram needs; combining absorbs all bucket contention)\n");
  return ok && total_count == static_cast<Word>(n) ? 0 : 1;
}
