// Stream compaction (filter) with a thick multiprefix — the bread-and-
// butter data-parallel primitive behind joins, ray sorting and sparse
// kernels.
//
// keep[i] = pred(x[i]); out[prefix(keep)] = x[i]. On the extended
// PRAM-NUMA model this is ONE thick statement: each lane evaluates the
// predicate and claims its output slot with a same-step multiprefix.
// The example also runs the dependent-doubling variant (no multiprefix
// hardware) to show what lock-step steps alone can do.
//
// Build & run:  ./example_stream_compaction [n] [threshold]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  const Word threshold =
      argc > 2 ? std::strtol(argv[2], nullptr, 10) : 500;

  machine::MachineConfig cfg;
  cfg.groups = 4;
  cfg.slots_per_group = 16;
  cfg.shared_words = 1u << 22;

  Rng rng(7);
  std::vector<Word> xs(n);
  for (auto& x : xs) x = static_cast<Word>(rng.below(1000));

  // ---- variant A: multiprefix compaction (one thick statement) ----
  tcf::Runtime rt(cfg);
  const tcf::Buffer x = rt.array(xs);
  const tcf::Buffer out = rt.array(n);
  const tcf::Buffer count = rt.array(std::vector<Word>{0});
  const auto stats_a = rt.run([&](tcf::Flow& f) {
    f.thick(n);
    f.apply([&](tcf::Lane& l) {
      const Word v = l.read(x, l.id());
      if (v > threshold) {
        const Word slot = l.prefix_add(count, 0, 1);
        l.write(out, static_cast<std::size_t>(slot), v);
      }
    });
  });
  const Word kept = rt.fetch(count)[0];

  // ---- variant B: scan-based compaction (doubling scan of flags) ----
  tcf::Runtime rt2(cfg);
  const tcf::Buffer x2 = rt2.array(xs);
  const tcf::Buffer flags = rt2.array(n);
  const tcf::Buffer out2 = rt2.array(n);
  const auto stats_b = rt2.run([&](tcf::Flow& f) {
    f.thick(n);
    f.apply([&](tcf::Lane& l) {
      l.write(flags, l.id(), l.read(x2, l.id()) > threshold ? 1 : 0);
    });
    for (std::size_t i = 1; i < n; i <<= 1) {  // inclusive doubling scan
      f.apply([&](tcf::Lane& l) {
        const Word mine = l.read(flags, l.id());
        const Word left = l.id() >= i ? l.read(flags, l.id() - i) : 0;
        l.write(flags, l.id(), mine + left);
      });
    }
    f.apply([&](tcf::Lane& l) {
      const Word v = l.read(x2, l.id());
      if (v > threshold) {
        l.write(out2, static_cast<std::size_t>(l.read(flags, l.id()) - 1),
                v);
      }
    });
  });

  // ---- verify both against the sequential answer ----
  std::vector<Word> expect;
  for (Word v : xs) {
    if (v > threshold) expect.push_back(v);
  }
  const auto got_a = rt.fetch(out);
  const auto got_b = rt2.fetch(out2);
  bool ok = kept == static_cast<Word>(expect.size());
  for (std::size_t i = 0; i < expect.size() && ok; ++i) {
    if (got_a[i] != expect[i] || got_b[i] != expect[i]) ok = false;
  }

  std::printf("compacted %zu -> %lld elements (> %lld)\n", n,
              static_cast<long long>(kept),
              static_cast<long long>(threshold));
  std::printf("multiprefix version: %llu statements, makespan %llu cycles\n",
              static_cast<unsigned long long>(stats_a.statements),
              static_cast<unsigned long long>(stats_a.makespan));
  std::printf("doubling-scan version: %llu statements, makespan %llu "
              "cycles (%0.1fx)\n",
              static_cast<unsigned long long>(stats_b.statements),
              static_cast<unsigned long long>(stats_b.makespan),
              static_cast<double>(stats_b.makespan) /
                  static_cast<double>(stats_a.makespan));
  std::printf("order preserved, results %s\n", ok ? "correct" : "WRONG");
  std::printf("(active-memory multiprefix turns an O(log n)-step scan into\n"
              " one step — the hardware the ESM lineage provides)\n");
  return ok ? 0 : 1;
}
