// Quickstart: the extended PRAM-NUMA model in five minutes.
//
// Shows the two ways to use tcfpn:
//   1. the TCF runtime (tcf::Runtime) — write thick-control-flow programs
//      as C++ lambdas and get PRAM-exact results plus machine-cost
//      estimates;
//   2. the machine simulator (machine::Machine) — run real ISA programs
//      (hand-written assembly or builder-generated) cycle-by-cycle on any
//      of the paper's six execution variants.
//
// Build & run:  ./example_quickstart
#include <cstdio>
#include <numeric>

#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "tcf/runtime.hpp"

using namespace tcfpn;

int main() {
  // ---------------------------------------------------------------- 1 ----
  std::printf("== 1. TCF runtime: #n; c. = a. + b.; ==\n");
  machine::MachineConfig cfg;
  cfg.groups = 4;           // P processor groups
  cfg.slots_per_group = 16; // T_p TCF buffer slots per group

  tcf::Runtime rt(cfg);
  const std::size_t n = 1000;
  std::vector<Word> av(n), bv(n);
  std::iota(av.begin(), av.end(), 0);
  std::iota(bv.begin(), bv.end(), 1);
  const tcf::Buffer a = rt.array(av);
  const tcf::Buffer b = rt.array(bv);
  const tcf::Buffer c = rt.array(n);

  const auto stats = rt.run([&](tcf::Flow& f) {
    f.thick(n);  // the `#n;` thickness statement
    f.apply([&](tcf::Lane& l) {  // one thick instruction, n lanes
      l.write(c, l.id(), l.read(a, l.id()) + l.read(b, l.id()));
    });
  });

  const auto out = rt.fetch(c);
  std::printf("c[0]=%lld  c[999]=%lld  (expect 1 and 1999)\n",
              static_cast<long long>(out[0]),
              static_cast<long long>(out[n - 1]));
  std::printf("statements=%llu  lane-ops=%llu  makespan=%llu cycles\n\n",
              static_cast<unsigned long long>(stats.statements),
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.makespan));

  // ---------------------------------------------------------------- 2 ----
  std::printf("== 2. machine simulator: assembly on the TCF machine ==\n");
  const auto program = isa::assemble(R"(
      ; sum the squares of 0..15 into shared cell 0 with one thick
      ; multioperation — no loop, no reduction tree.
      main:  SETTHICK 16
             TID r1            ; r1 = lane index (0..15)
             MUL r2, r1, r1    ; r2 = lane^2
             MPADD r2, [r0+0]  ; cell 0 += r2, combined in one step
             HALT
  )");
  machine::Machine m(cfg);
  m.load(program);
  m.boot(1);
  const auto run = m.run();
  std::printf("sum of squares = %lld (expect 1240)\n",
              static_cast<long long>(m.shared().peek(0)));
  std::printf("completed=%d steps=%llu cycles=%llu fetches=%llu\n",
              run.completed,
              static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.cycles),
              static_cast<unsigned long long>(m.stats().instruction_fetches));
  std::printf("(note: 5 fetches for 16-wide execution — one per thick "
              "instruction)\n");
  return m.shared().peek(0) == 1240 && out[n - 1] == 1999 ? 0 : 1;
}
