// TCFs as tasks: a miniature time-shared "job server".
//
// Eight jobs of different lengths are preempted round-robin on (a) the
// extended TCF machine, where switching resident TCFs is free, and (b) a
// threaded-ESM machine, where every preemption switches all T_p thread
// contexts (Section 4's multitasking claim, Table 1's task-switch row).
//
// Build & run:  ./example_multitask_server
#include <cstdio>

#include "machine/machine.hpp"
#include "sched/multitask.hpp"
#include "tcf/builder.hpp"

using namespace tcfpn;

namespace {

// A job: `iters` loop rounds, then announce completion via PRINT.
isa::Program job_program(Word iters) {
  tcf::AsmBuilder s;
  using namespace tcf;
  auto loop = s.make_label("loop");
  s.ldi(r1, 0);
  s.bind(loop);
  s.add(r1, r1, Word{1});
  s.slt(r2, r1, iters);
  s.bnez(r2, loop);
  s.fid(r3);
  s.print(r3);  // "job <flow id> done"
  s.halt();
  return s.build();
}

struct ServerRun {
  sched::TaskManager::Result result;
  std::vector<Word> completion_order;
};

ServerRun serve(machine::Variant variant, std::uint32_t buffer_slots) {
  machine::MachineConfig cfg;
  cfg.groups = 1;
  cfg.slots_per_group = buffer_slots;
  cfg.variant = variant;
  cfg.shared_words = 1 << 12;
  machine::Machine m(cfg);
  m.load(job_program(48));
  std::vector<FlowId> jobs;
  for (int j = 0; j < 8; ++j) {
    const FlowId id = m.boot_at(0, 1, 0);
    if (variant == machine::Variant::kSingleOperation) {
      m.poke_reg(id, 0, 1, j);
      m.poke_reg(id, 0, 2, 8);
    }
    jobs.push_back(id);
  }
  sched::TaskManager mgr(m, jobs);
  ServerRun out{mgr.run_round_robin(/*quantum_steps=*/6), m.debug_output()};
  return out;
}

void report(const char* label, const ServerRun& run) {
  std::printf("%-38s switches=%4llu  switch-cycles=%8llu  total=%8llu\n",
              label,
              static_cast<unsigned long long>(run.result.switches),
              static_cast<unsigned long long>(run.result.switch_cycles),
              static_cast<unsigned long long>(run.result.total_cycles));
  std::printf("  completion order:");
  for (Word id : run.completion_order) {
    std::printf(" J%lld", static_cast<long long>(id));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== TCFs as tasks: 8 jobs, round-robin, quantum 6 steps ==\n\n");
  const auto tcf_roomy = serve(machine::Variant::kSingleInstruction, 16);
  report("extended TCF, buffer 16 (all fit)", tcf_roomy);
  const auto tcf_tight = serve(machine::Variant::kSingleInstruction, 2);
  report("extended TCF, buffer 2 (spilling)", tcf_tight);
  const auto esm = serve(machine::Variant::kSingleOperation, 16);
  report("threaded ESM (Tp-context switches)", esm);

  std::printf(
      "\nAll three serve the jobs fairly, but the switch bill differs by\n"
      "orders of magnitude: 0 while TCFs fit the storage buffer, swap\n"
      "costs when they spill, and Tp*R every time on a thread machine.\n");
  const bool ok = tcf_roomy.result.completed && tcf_tight.result.completed &&
                  esm.result.completed &&
                  tcf_roomy.result.switch_cycles == 0 &&
                  esm.result.switch_cycles > tcf_tight.result.switch_cycles;
  std::printf("invariants hold: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
