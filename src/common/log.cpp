#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace tcfpn::obs {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;  // guards the forwarder and serializes stderr lines
LogForwarder g_forwarder;

}  // namespace

const char* to_string(LogLevel lv) {
  switch (lv) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

bool log_level_from_string(std::string_view name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

void set_log_level(LogLevel lv) {
  g_level.store(lv, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_forwarder(LogForwarder fwd) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_forwarder = std::move(fwd);
}

void log(LogLevel lv, std::string_view category, std::string_view message) {
  const bool echo = lv >= g_level.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (echo) {
    // One fprintf per line so concurrent loggers never interleave mid-line.
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(lv),
                 static_cast<int>(category.size()), category.data(),
                 static_cast<int>(message.size()), message.data());
  }
  if (g_forwarder) {
    g_forwarder(LogLine{lv, std::string(category), std::string(message)});
  }
}

}  // namespace tcfpn::obs
