// Console table rendering for the bench harnesses.
//
// Every bench binary regenerates a paper table or figure as rows on stdout;
// this printer keeps them aligned and machine-greppable (cells never contain
// the column separator).
#pragma once

#include <string>
#include <vector>

namespace tcfpn {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Args>
  void add(const Args&... args);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and right-padded columns.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cell_to_string(const std::string& s);
std::string cell_to_string(const char* s);
std::string cell_to_string(double v);
std::string cell_to_string(bool v);

template <typename T>
std::string cell_to_string(const T& v) {
  return std::to_string(v);
}
}  // namespace detail

template <typename... Args>
void Table::add(const Args&... args) {
  add_row({detail::cell_to_string(args)...});
}

}  // namespace tcfpn
