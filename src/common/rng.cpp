#include "common/rng.hpp"

namespace tcfpn {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  TCFPN_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Lemire 2018: multiply the raw draw into [0, bound) and reject the thin
  // biased strip so every residue is equally likely.
  while (true) {
    const std::uint64_t x = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  TCFPN_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 top bits into the mantissa: uniform dyadic rationals in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t x = next();
  for (auto& word : child.s_) word = splitmix64(x);
  return child;
}

}  // namespace tcfpn
