// Execution tracing and ASCII schedule rendering.
//
// The paper's Figures 4 and 6–12 illustrate which slice (TCF instruction,
// thread slot, bunch fragment) occupies a processor's pipeline at each point
// in time. ScheduleTrace records exactly that — (processor, cycle interval,
// label) triples — and renders them as an ASCII Gantt chart so the figure
// benches can regenerate the pictures from measured execution.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace tcfpn {

struct TraceSpan {
  std::uint32_t row = 0;   ///< processor / pipeline row
  Cycle begin = 0;         ///< first cycle occupied (inclusive)
  Cycle end = 0;           ///< one past the last cycle occupied
  char glyph = '#';        ///< single character used in the chart
  std::string label;       ///< human-readable description (legend)
};

class ScheduleTrace {
 public:
  /// Enable/disable recording. Disabled traces drop spans at negligible cost.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(std::uint32_t row, Cycle begin, Cycle end, char glyph,
           std::string label);

  void clear() { spans_.clear(); }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Renders a Gantt chart: one line per row, one column per cycle
  /// (compressed by `cycles_per_column` when the run is long), '.' for idle.
  /// Distinct glyphs come from the recorded spans; a legend maps glyph ->
  /// label (first span that used the glyph).
  std::string render(std::uint64_t cycles_per_column = 1,
                     std::size_t max_columns = 160) const;

 private:
  bool enabled_ = false;
  std::vector<TraceSpan> spans_;
};

/// A host-side (wall-clock) span: one timed phase of the stepping engine on
/// one host thread. Recorded by the machine when host profiling is enabled
/// and exported into the Chrome trace alongside the simulated schedule.
struct HostSpan {
  std::string name;    ///< "subsystem/phase", e.g. "machine/group_phase"
  std::uint32_t tid = 0;
  double ts_us = 0;    ///< start, microseconds since profiling began
  double dur_us = 0;
};

/// Renders the simulated schedule and the host-side phase spans as one
/// Chrome trace-event / Perfetto JSON document (open in ui.perfetto.dev or
/// chrome://tracing). Simulated spans land in process 0 with one track per
/// processor row, mapping 1 simulated cycle to 1 microsecond; host spans
/// land in process 1 on the wall clock. `metadata` key/value pairs are
/// embedded under "otherData", alongside a boolean "truncated" field set
/// from `host_truncated` (true when the host-span buffer overflowed and the
/// host timeline is incomplete).
std::string chrome_trace_json(
    const ScheduleTrace& sim, const std::vector<HostSpan>& host,
    const std::vector<std::pair<std::string, std::string>>& metadata = {},
    bool host_truncated = false);

}  // namespace tcfpn
