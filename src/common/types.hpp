// Core scalar types shared by every tcfpn module.
//
// The simulated machine is a word machine (Section 2.1 of the paper: a
// "word-wise accessible global shared memory"). We model a word as a signed
// 64-bit integer: wide enough for addresses, lane indices and arithmetic in
// every example of the paper, and signed so that the ISA's comparison and
// branch semantics match ordinary C arithmetic.
#pragma once

#include <cstdint>
#include <cstddef>

namespace tcfpn {

/// One machine word. All registers, memory cells and immediate operands.
using Word = std::int64_t;

/// An address into the simulated shared or local memory, in words.
using Addr = std::uint64_t;

/// A simulation time stamp, in clock cycles.
using Cycle = std::uint64_t;

/// A machine step (superstep) ordinal. All PRAM-mode reads in step s observe
/// writes committed in steps < s.
using StepId = std::uint64_t;

/// Index of a processor group (0 .. P-1).
using GroupId = std::uint32_t;

/// Index of a thread/TCF slot within a group (0 .. T_p-1).
using SlotId = std::uint32_t;

/// Global lane index of an implicit thread within a TCF (0 .. thickness-1).
using LaneId = std::uint64_t;

/// Identifier of a thick control flow, unique within one program run.
using FlowId = std::uint64_t;

inline constexpr Addr kNullAddr = ~Addr{0};

}  // namespace tcfpn
