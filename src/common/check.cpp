#include "common/check.hpp"

#include <sstream>

namespace tcfpn::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "TCFPN_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}

}  // namespace tcfpn::detail
