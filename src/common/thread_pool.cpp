#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::common {

ThreadPool::ThreadPool(std::uint32_t threads) : threads_(std::max(threads, 1u)) {
  workers_.reserve(threads_ - 1);
  for (std::uint32_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  gen_.fetch_add(1, std::memory_order_release);
  gen_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint32_t ThreadPool::hardware_threads() {
  return std::max(std::thread::hardware_concurrency(), 1u);
}

bool ThreadPool::try_claim(std::uint64_t gen) {
  const std::uint64_t tag = gen << kIndexBits;
  std::uint64_t cur = claim_.load(std::memory_order_acquire);
  while (true) {
    if (((cur ^ tag) >> kIndexBits) != 0) return false;  // not this job
    const std::uint64_t idx = cur & kIndexMask;
    // Relaxed: a stale size_ only mis-answers the bound check for a job
    // that is no longer current, and then the tagged CAS below fails.
    if (idx >= size_.load(std::memory_order_relaxed)) return false;
    if (claim_.compare_exchange_weak(cur, tag | (idx + 1),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      run_index(idx);
      return true;
    }
    // cur was reloaded by the failed exchange; re-check the tag.
  }
}

void ThreadPool::run_index(std::uint64_t idx) {
  std::exception_ptr error;
  try {
    (*fn_)(static_cast<std::size_t>(idx));
  } catch (...) {
    // Captured, not propagated: letting it unwind a worker thread would
    // std::terminate. end() rethrows after the drain.
    error = std::current_exception();
  }
  if (error) {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!job_error_ || idx < job_error_index_) {
      job_error_ = error;
      job_error_index_ = idx;
    }
  }
  // The release increment orders everything fn(idx) wrote before the
  // caller's acquire read of done_ == n in end().
  const std::uint64_t d = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (d == size_.load(std::memory_order_relaxed)) done_.notify_all();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    gen_.wait(seen, std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    seen = gen_.load(std::memory_order_acquire);
    while (try_claim(seen)) {
    }
  }
}

void ThreadPool::begin(std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  TCFPN_CHECK(!active_, "ThreadPool job already active (begin without end)");
  TCFPN_CHECK(n <= kIndexMask, "ThreadPool job too large: ", n);
  // No worker touches the previous job anymore: end() returned only after
  // every claimed index reported, and unclaimed stragglers bounce off the
  // generation tag. Plain stores are safe before the release publish.
  fn_ = &fn;
  size_.store(n, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  const std::uint64_t g = gen_.load(std::memory_order_relaxed) + 1;
  claim_.store(g << kIndexBits, std::memory_order_relaxed);
  active_ = true;
  gen_.store(g, std::memory_order_release);
  gen_.notify_all();
}

bool ThreadPool::try_run_one() {
  return try_claim(gen_.load(std::memory_order_acquire));
}

void ThreadPool::end() {
  TCFPN_CHECK(active_, "ThreadPool::end() without begin()");
  const std::uint64_t g = gen_.load(std::memory_order_acquire);
  while (try_claim(g)) {
  }
  std::uint64_t d = done_.load(std::memory_order_acquire);
  const std::uint64_t n = size_.load(std::memory_order_relaxed);
  while (d < n) {
    done_.wait(d, std::memory_order_acquire);
    d = done_.load(std::memory_order_acquire);
  }
  // Close the generation before fn_/size_ can be reused: a worker stalled
  // inside try_claim still holds this job's tag, and once the next begin()
  // rewrites size_ its "cursor exhausted" check is no longer conclusive.
  // Bumping the tag here makes any such straggler's compare-exchange fail
  // structurally instead.
  claim_.store((g + 1) << kIndexBits, std::memory_order_release);
  active_ = false;
  fn_ = nullptr;
  std::exception_ptr error = job_error_;
  job_error_ = nullptr;
  job_error_index_ = 0;
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline fast path: a 1-thread pool or a 1-item job never pays the
    // publish/wake/complete handshake (exceptions propagate directly).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  begin(n, fn);
  while (try_run_one()) {
  }
  end();
}

}  // namespace tcfpn::common
