#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::common {

ThreadPool::ThreadPool(std::uint32_t threads) : threads_(std::max(threads, 1u)) {
  workers_.reserve(threads_ - 1);
  for (std::uint32_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint32_t ThreadPool::hardware_threads() {
  return std::max(std::thread::hardware_concurrency(), 1u);
}

void ThreadPool::work_until_drained(std::uint64_t gen) {
  // Claims happen under the mutex, tagged with the job generation: a
  // straggler that raced past the drain of job N can never claim an index
  // of job N+1 or touch its (stack-lifetime) function object. The indices
  // are coarse (one per group per machine step), so contention here is
  // noise next to the work they carry.
  while (true) {
    std::size_t i;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (gen != generation_ || next_ >= size_) return;
      i = next_++;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(i);
    } catch (...) {
      // Captured, not propagated: letting it unwind a worker thread would
      // std::terminate. parallel_for rethrows at the barrier.
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Every claimed index reports before parallel_for can return, so the
      // generation still matches; the check is belt-and-braces.
      if (gen == generation_) {
        if (error && (!job_error_ || i < job_error_index_)) {
          job_error_ = error;
          job_error_index_ = i;
        }
        ++done_;
        if (done_ == size_) cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work_until_drained(seen);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TCFPN_CHECK(done_ == size_, "parallel_for is not reentrant");
    fn_ = &fn;
    size_ = n;
    done_ = 0;
    next_ = 0;
    job_error_ = nullptr;
    job_error_index_ = 0;
    gen = ++generation_;
  }
  cv_work_.notify_all();
  work_until_drained(gen);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return done_ == size_; });
    fn_ = nullptr;
    error = job_error_;
    job_error_ = nullptr;
  }
  // Rethrow outside the lock: the pool is drained and reusable, the caller
  // sees the lowest faulting index's exception regardless of thread timing.
  if (error) std::rethrow_exception(error);
}

}  // namespace tcfpn::common
