// Lightweight statistics accumulators used by the simulator's per-run
// counters and by the bench harnesses when summarising sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tcfpn {

/// Streaming accumulator: count / sum / min / max / mean / variance
/// (Welford's online algorithm, numerically stable).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;

  /// The raw Welford terms. The checkpoint layer saves and restores these
  /// directly: derived values (variance = m2/n) are not bit-invertible in
  /// floating point, so a restore from a snapshot could not reproduce the
  /// exact accumulator an uninterrupted run would have.
  struct Raw {
    std::uint64_t n = 0;
    double sum = 0.0, mean = 0.0, m2 = 0.0, min = 0.0, max = 0.0;
  };
  Raw raw() const { return Raw{n_, sum_, mean_, m2_, min_, max_}; }
  void restore(const Raw& r) {
    n_ = r.n;
    sum_ = r.sum;
    mean_ = r.mean;
    m2_ = r.m2;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; provides exact order statistics. Suitable for
/// bench-scale sample counts (≤ millions).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double percentile(double p) const;  ///< p in [0,100], linear interpolation
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for latency distributions in the network model.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Adds another histogram bucket-wise; both must have the same shape
  /// (lo, hi, bucket count).
  void merge(const Histogram& other);
  /// Zeroes every bucket, keeping the shape.
  void reset();
  /// Bit-exact restore from saved bucket counts (checkpoint layer); the
  /// shape (bucket count) must match this histogram's.
  void restore(const std::vector<std::uint64_t>& counts, std::uint64_t total);
  std::uint64_t count() const { return total_; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Multi-line ASCII rendering, one row per non-empty bucket.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace tcfpn
