#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::min() const {
  TCFPN_CHECK(n_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  TCFPN_CHECK(n_ > 0, "max of empty accumulator");
  return max_;
}

double Accumulator::mean() const {
  TCFPN_CHECK(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  TCFPN_CHECK(n_ > 0, "variance of empty accumulator");
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  TCFPN_CHECK(!xs_.empty(), "mean of empty sample set");
  double s = 0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  TCFPN_CHECK(!xs_.empty(), "percentile of empty sample set");
  TCFPN_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  TCFPN_CHECK(hi > lo, "histogram range must be non-empty");
  TCFPN_CHECK(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::merge(const Histogram& other) {
  TCFPN_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
                  counts_.size() == other.counts_.size(),
              "merging histograms of different shapes");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

void Histogram::restore(const std::vector<std::uint64_t>& counts,
                        std::uint64_t total) {
  TCFPN_CHECK(counts.size() == counts_.size(),
              "restoring histogram from a different shape: ", counts.size(),
              " buckets into ", counts_.size());
  counts_ = counts;
  total_ = total;
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace tcfpn
