// A single-slot, lock-free seal channel between one producer and one
// consumer.
//
// The parallel stepping engine gives every processor group an effect buffer
// (Machine::GroupCtx) that only its executing host thread writes during the
// group phase. An EffectChannel per group turns the step's hard barrier into
// a stream: the worker publishes exactly one message per step — "this
// group's buffer is sealed" — and the stepping thread awaits the channels in
// group order, merging group g's effects while higher groups are still
// executing. Merge order is unchanged, so results stay bit-identical to the
// barrier engine; only the wall-clock overlap differs.
//
// The protocol is the degenerate (capacity-1) SPSC queue: publish() is a
// release store + wake, await()/ready() are acquire loads, so everything the
// producer wrote to the group's buffer before publishing happens-before the
// consumer's reads after awaiting. reset() must only be called while neither
// side is active (between steps, on the stepping thread).
#pragma once

#include <atomic>
#include <cstdint>

namespace tcfpn::common {

class EffectChannel {
 public:
  /// Re-arms the channel for the next step. Caller must guarantee quiescence.
  void reset() { sealed_.store(0, std::memory_order_relaxed); }

  /// Producer: seals the message. Everything written before this call is
  /// visible to a consumer that observed the seal.
  void publish() {
    sealed_.store(1, std::memory_order_release);
    sealed_.notify_one();
  }

  /// Consumer: non-blocking poll.
  bool ready() const { return sealed_.load(std::memory_order_acquire) != 0; }

  /// Consumer: blocks until published (futex wait; no spinning).
  void await() const {
    sealed_.wait(0, std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint32_t> sealed_{0};
};

}  // namespace tcfpn::common
