#include "common/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn {

void ScheduleTrace::add(std::uint32_t row, Cycle begin, Cycle end, char glyph,
                        std::string label) {
  if (!enabled_) return;
  TCFPN_CHECK(end >= begin, "trace span ends before it begins");
  spans_.push_back(TraceSpan{row, begin, end, glyph, std::move(label)});
}

std::string ScheduleTrace::render(std::uint64_t cycles_per_column,
                                  std::size_t max_columns) const {
  if (spans_.empty()) return "(empty trace)\n";
  TCFPN_CHECK(cycles_per_column > 0, "cycles_per_column must be positive");

  std::uint32_t max_row = 0;
  Cycle max_cycle = 0;
  for (const auto& s : spans_) {
    max_row = std::max(max_row, s.row);
    max_cycle = std::max(max_cycle, s.end);
  }
  // Widen the column granularity until the chart fits.
  std::uint64_t cpc = cycles_per_column;
  while ((max_cycle + cpc - 1) / cpc > max_columns) cpc *= 2;
  const auto columns = static_cast<std::size_t>((max_cycle + cpc - 1) / cpc);

  std::vector<std::string> lines(max_row + 1, std::string(columns, '.'));
  std::map<char, std::string> legend;
  for (const auto& s : spans_) {
    if (s.begin == s.end) continue;
    const auto c0 = static_cast<std::size_t>(s.begin / cpc);
    const auto c1 = static_cast<std::size_t>((s.end - 1) / cpc);
    for (std::size_t c = c0; c <= c1 && c < columns; ++c) {
      lines[s.row][c] = s.glyph;
    }
    legend.emplace(s.glyph, s.label);
  }

  std::ostringstream os;
  os << "cycles 0.." << max_cycle << " (" << cpc << " cycle(s)/column)\n";
  for (std::uint32_t r = 0; r <= max_row; ++r) {
    os << "P" << r << (r < 10 ? "  |" : " |") << lines[r] << "|\n";
  }
  os << "legend: ";
  bool first = true;
  for (const auto& [glyph, label] : legend) {
    if (!first) os << ", ";
    os << glyph << "=" << label;
    first = false;
  }
  os << "\n";
  return os.str();
}

}  // namespace tcfpn
