#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace tcfpn {

void ScheduleTrace::add(std::uint32_t row, Cycle begin, Cycle end, char glyph,
                        std::string label) {
  if (!enabled_) return;
  TCFPN_CHECK(end >= begin, "trace span ends before it begins");
  spans_.push_back(TraceSpan{row, begin, end, glyph, std::move(label)});
}

std::string ScheduleTrace::render(std::uint64_t cycles_per_column,
                                  std::size_t max_columns) const {
  if (spans_.empty()) return "(empty trace)\n";
  TCFPN_CHECK(cycles_per_column > 0, "cycles_per_column must be positive");

  std::uint32_t max_row = 0;
  Cycle max_cycle = 0;
  for (const auto& s : spans_) {
    max_row = std::max(max_row, s.row);
    max_cycle = std::max(max_cycle, s.end);
  }
  // Widen the column granularity until the chart fits.
  std::uint64_t cpc = cycles_per_column;
  while ((max_cycle + cpc - 1) / cpc > max_columns) cpc *= 2;
  const auto columns = static_cast<std::size_t>((max_cycle + cpc - 1) / cpc);

  std::vector<std::string> lines(max_row + 1, std::string(columns, '.'));
  // A glyph can be claimed by several distinct labels (flow ids 26 apart
  // share 'A' + id % 26); keep every distinct label so the legend flags the
  // collision instead of silently attributing all spans to the first label.
  std::map<char, std::vector<std::string>> legend;
  for (const auto& s : spans_) {
    if (s.begin == s.end) continue;
    const auto c0 = static_cast<std::size_t>(s.begin / cpc);
    const auto c1 = static_cast<std::size_t>((s.end - 1) / cpc);
    for (std::size_t c = c0; c <= c1 && c < columns; ++c) {
      lines[s.row][c] = s.glyph;
    }
    auto& labels = legend[s.glyph];
    if (std::find(labels.begin(), labels.end(), s.label) == labels.end()) {
      labels.push_back(s.label);
    }
  }

  // Row labels pad to the widest row number so "P9  |", "P99 |" and
  // "P100|" columns all line up.
  const std::size_t row_digits = std::to_string(max_row).size();

  std::ostringstream os;
  os << "cycles 0.." << max_cycle << " (" << cpc << " cycle(s)/column)\n";
  for (std::uint32_t r = 0; r <= max_row; ++r) {
    const std::string rs = std::to_string(r);
    os << "P" << rs << std::string(row_digits - rs.size() + 1, ' ') << "|"
       << lines[r] << "|\n";
  }
  os << "legend: ";
  bool first = true;
  for (const auto& [glyph, labels] : legend) {
    if (!first) os << ", ";
    first = false;
    os << glyph << "=" << labels[0];
    if (labels.size() > 1) {
      // Collided glyph: list the other claimants (capped) so no span is
      // silently mislabelled.
      constexpr std::size_t kShown = 3;
      for (std::size_t i = 1; i < labels.size() && i < kShown; ++i) {
        os << "|" << labels[i];
      }
      if (labels.size() > kShown) {
        os << "|+" << labels.size() - kShown << " more";
      }
    }
  }
  os << "\n";
  return os.str();
}

std::string chrome_trace_json(
    const ScheduleTrace& sim, const std::vector<HostSpan>& host,
    const std::vector<std::pair<std::string, std::string>>& metadata,
    bool host_truncated) {
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"simulated schedule (1 "
        "cycle = 1us)\"}}";

  std::uint32_t max_row = 0;
  for (const auto& s : sim.spans()) max_row = std::max(max_row, s.row);
  if (!sim.spans().empty()) {
    for (std::uint32_t r = 0; r <= max_row; ++r) {
      sep();
      os << "    {\"ph\": \"M\", \"pid\": 0, \"tid\": " << r
         << ", \"name\": \"thread_name\", \"args\": {\"name\": \"P" << r
         << "\"}}";
    }
  }
  for (const auto& s : sim.spans()) {
    if (s.begin == s.end) continue;
    sep();
    os << "    {\"ph\": \"X\", \"pid\": 0, \"tid\": " << s.row
       << ", \"name\": \"" << metrics::json_escape(s.label)
       << "\", \"ts\": " << s.begin << ", \"dur\": " << s.end - s.begin
       << "}";
  }

  if (!host.empty()) {
    sep();
    os << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
          "\"process_name\", \"args\": {\"name\": \"host stepping engine "
          "(wall clock)\"}}";
    for (const auto& h : host) {
      sep();
      char buf[64];
      std::snprintf(buf, sizeof buf, "\"ts\": %.3f, \"dur\": %.3f", h.ts_us,
                    h.dur_us);
      os << "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " << h.tid
         << ", \"name\": \"" << metrics::json_escape(h.name) << "\", " << buf
         << "}";
    }
  }

  os << "\n  ],\n  \"otherData\": {";
  for (std::size_t i = 0; i < metadata.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << metrics::json_escape(metadata[i].first) << "\": \""
       << metrics::json_escape(metadata[i].second) << "\"";
  }
  // Truncation is a first-class boolean: a trace missing host spans must
  // never pass for a complete one.
  os << (metadata.empty() ? "\n    " : ",\n    ")
     << "\"truncated\": " << (host_truncated ? "true" : "false") << "\n  ";
  os << "}\n}\n";
  return os.str();
}

}  // namespace tcfpn
