// Structured telemetry: a hierarchical metrics registry.
//
// The paper's whole argument is quantitative — Table 1 counts steps and
// overheads per primitive, Figures 4-13 are schedules and cost curves — so
// the simulator needs first-class measurement, not a fixed handful of
// counters. MetricsRegistry holds named instruments addressed by
// slash-separated paths ("net/ejection_latency", "sched/slot_occupancy"):
//
//  - Counter      monotone 64-bit event/cycle count
//  - Gauge        last-set level (double)
//  - Accumulator  streaming moments (count/sum/min/max/mean/variance)
//  - Histogram    fixed-bucket distribution
//
// Determinism contract (DESIGN.md §4): registries support merge() in a
// caller-chosen order. The machine layer gives every processor group its own
// registry inside the per-step effect buffer (Machine::GroupCtx) and merges
// them at the step barrier in group order, so metric values — including
// floating-point accumulators, whose merge order matters bit-wise — are
// identical for every --host-threads value.
//
// snapshot() freezes all instruments into plain values; diff() subtracts the
// monotone parts of two snapshots (per-phase attribution); to_json() nests
// the path hierarchy into the machine-readable export behind --metrics-json.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace tcfpn::metrics {

/// Monotone event or cycle count.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_ += d; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }
  void restore(std::uint64_t v) { v_ = v; }  ///< checkpoint restore only

 private:
  std::uint64_t v_ = 0;
};

/// Last-written level (queue depth, occupancy, configuration value).
class Gauge {
 public:
  void set(double v) {
    v_ = v;
    set_ = true;
  }
  double value() const { return v_; }
  bool is_set() const { return set_; }
  void reset() {
    v_ = 0;
    set_ = false;
  }
  void restore(double v, bool set) {  ///< checkpoint restore only
    v_ = v;
    set_ = set;
  }

 private:
  double v_ = 0;
  bool set_ = false;
};

enum class InstrumentKind : std::uint8_t {
  kCounter,
  kGauge,
  kAccumulator,
  kHistogram,
};

const char* to_string(InstrumentKind k);

/// One instrument frozen into plain values. Which fields are meaningful
/// depends on `kind`; unused fields stay zero so equality is well-defined.
struct MetricValue {
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / accumulator n / histogram total
  double value = 0;         ///< gauge level (when set)
  bool gauge_set = false;
  double sum = 0, min = 0, max = 0, mean = 0, variance = 0;  ///< accumulator
  double lo = 0, hi = 0;                ///< histogram range
  std::vector<std::uint64_t> buckets;   ///< histogram buckets

  bool operator==(const MetricValue&) const = default;
};

/// Bit-exact dump of one instrument's internal state, as opposed to the
/// derived values in MetricValue (a restored variance = m2/n could differ in
/// the last ulp from the live accumulator's m2_). Used by the checkpoint
/// layer (DESIGN.md §8) to make a restored machine's registry
/// indistinguishable — including future merges — from an uninterrupted run.
struct RawInstrument {
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram total
  double gauge_value = 0;
  bool gauge_set = false;
  Accumulator::Raw acc;                 ///< accumulator Welford terms
  double lo = 0, hi = 0;                ///< histogram range
  std::vector<std::uint64_t> buckets;   ///< histogram buckets
};

/// Raw registry image: path -> raw instrument state, ordered by path.
using RawMetrics = std::map<std::string, RawInstrument>;

/// A frozen registry: path -> value, ordered by path.
struct MetricsSnapshot {
  std::map<std::string, MetricValue> entries;

  bool operator==(const MetricsSnapshot&) const = default;
  bool empty() const { return entries.empty(); }

  /// Subtracts the monotone parts (counter values, accumulator count/sum,
  /// histogram buckets) of `before` from `after`; gauges and the
  /// non-subtractable accumulator moments (min/max/mean/variance) keep
  /// `after`'s values. Entries missing from `before` pass through unchanged.
  static MetricsSnapshot diff(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

  /// Nested JSON: path segments become nested objects, each leaf a typed
  /// object ({"type":"counter","value":N}, ...). `indent` is the base
  /// indentation of the emitted block (the opening '{' is not indented so
  /// the result can be embedded after a key).
  std::string to_json(int indent = 0) const;
};

/// Named instruments addressed by slash-separated paths. Registration is
/// idempotent: asking for an existing path returns the same instrument;
/// asking with a different kind (or conflicting histogram shape) faults, as
/// does registering a path that nests under (or over) an existing leaf.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  Counter& counter(const std::string& path);
  Gauge& gauge(const std::string& path);
  Accumulator& accumulator(const std::string& path);
  Histogram& histogram(const std::string& path, double lo, double hi,
                       std::size_t buckets);

  bool contains(const std::string& path) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  MetricsSnapshot snapshot() const;

  /// Bit-exact image of every instrument's internal state.
  RawMetrics save_raw() const;

  /// Restores a save_raw() image **in place**: instruments present in `raw`
  /// keep their heap addresses, so Counter*/Histogram* pointers cached by
  /// the machine layer (LaneCounters, bound memory/network instruments) stay
  /// valid across a restore. Instruments absent from `raw` are erased — they
  /// did not exist at save time, and a backward restore must not keep them.
  void restore_raw(const RawMetrics& raw);

  /// Folds `other`'s instruments into this registry: counters add,
  /// accumulators merge (Welford combine — order-sensitive in floating
  /// point, so callers fix the merge order), histograms add bucket-wise,
  /// gauges take `other`'s value when it was set. Instruments missing here
  /// are created; kind mismatches fault.
  void merge(const MetricsRegistry& other);

  /// Zeroes every instrument, keeping the structure (and therefore every
  /// reference handed out) intact.
  void reset();

 private:
  struct Entry {
    InstrumentKind kind;
    // Stable addresses across map growth: each instrument is heap-allocated
    // once and never moves, so cached Counter*/Histogram* stay valid.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Accumulator> accumulator;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find(const std::string& path, InstrumentKind kind);
  void check_path(const std::string& path) const;

  std::map<std::string, Entry> entries_;
};

/// One instrument leaf as a JSON object ({"type": "counter", "value": N},
/// ...). With `pretty_pad` empty the whole object stays on one line (the
/// NDJSON stream export); otherwise histogram buckets break onto their own
/// line indented under `pretty_pad` (the nested --metrics-json tree). Both
/// paths emit identical values, which is what lets the stream validator
/// compare the two exports leaf-for-leaf.
std::string to_json_leaf(const MetricValue& v,
                         const std::string& pretty_pad = "");

/// Escapes a string for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Minimal structural JSON validator (objects, arrays, strings, numbers,
/// literals; full-input consumption; bounded depth). Used by the tests to
/// assert the exporters emit loadable documents without a JSON dependency.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace tcfpn::metrics
