#include "common/metrics.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn::metrics {

const char* to_string(InstrumentKind k) {
  switch (k) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kAccumulator: return "accumulator";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

void MetricsRegistry::check_path(const std::string& path) const {
  TCFPN_CHECK(!path.empty(), "metric path must not be empty");
  TCFPN_CHECK(path.front() != '/' && path.back() != '/',
              "metric path '", path, "' must not start or end with '/'");
  TCFPN_CHECK(path.find("//") == std::string::npos,
              "metric path '", path, "' has an empty segment");
  // The JSON export nests segments into objects, so a leaf can never also be
  // an interior node: "mem" conflicts with "mem/reads" and vice versa.
  for (std::size_t sep = path.find('/'); sep != std::string::npos;
       sep = path.find('/', sep + 1)) {
    TCFPN_CHECK(entries_.find(path.substr(0, sep)) == entries_.end(),
                "metric '", path, "' nests under existing leaf '",
                path.substr(0, sep), "'");
  }
  const std::string prefix = path + "/";
  const auto below = entries_.lower_bound(prefix);
  TCFPN_CHECK(below == entries_.end() || below->first.rfind(prefix, 0) != 0,
              "metric '", path, "' is an interior node of existing leaf '",
              below == entries_.end() ? "" : below->first, "'");
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& path,
                                              InstrumentKind kind) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return nullptr;
  TCFPN_CHECK(it->second.kind == kind, "metric '", path, "' is a ",
              to_string(it->second.kind), ", requested as ", to_string(kind));
  return &it->second;
}

Counter& MetricsRegistry::counter(const std::string& path) {
  if (Entry* e = find(path, InstrumentKind::kCounter)) return *e->counter;
  check_path(path);
  Entry& e = entries_[path];
  e.kind = InstrumentKind::kCounter;
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& path) {
  if (Entry* e = find(path, InstrumentKind::kGauge)) return *e->gauge;
  check_path(path);
  Entry& e = entries_[path];
  e.kind = InstrumentKind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Accumulator& MetricsRegistry::accumulator(const std::string& path) {
  if (Entry* e = find(path, InstrumentKind::kAccumulator)) {
    return *e->accumulator;
  }
  check_path(path);
  Entry& e = entries_[path];
  e.kind = InstrumentKind::kAccumulator;
  e.accumulator = std::make_unique<Accumulator>();
  return *e.accumulator;
}

Histogram& MetricsRegistry::histogram(const std::string& path, double lo,
                                      double hi, std::size_t buckets) {
  if (Entry* e = find(path, InstrumentKind::kHistogram)) {
    TCFPN_CHECK(e->histogram->lo() == lo && e->histogram->hi() == hi &&
                    e->histogram->buckets() == buckets,
                "histogram '", path, "' re-registered with a different shape");
    return *e->histogram;
  }
  check_path(path);
  Entry& e = entries_[path];
  e.kind = InstrumentKind::kHistogram;
  e.histogram = std::make_unique<Histogram>(lo, hi, buckets);
  return *e.histogram;
}

bool MetricsRegistry::contains(const std::string& path) const {
  return entries_.find(path) != entries_.end();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [path, e] : entries_) {
    MetricValue v;
    v.kind = e.kind;
    switch (e.kind) {
      case InstrumentKind::kCounter:
        v.count = e.counter->value();
        break;
      case InstrumentKind::kGauge:
        v.value = e.gauge->value();
        v.gauge_set = e.gauge->is_set();
        break;
      case InstrumentKind::kAccumulator:
        v.count = e.accumulator->count();
        if (v.count > 0) {
          v.sum = e.accumulator->sum();
          v.min = e.accumulator->min();
          v.max = e.accumulator->max();
          v.mean = e.accumulator->mean();
          v.variance = e.accumulator->variance();
        }
        break;
      case InstrumentKind::kHistogram:
        v.count = e.histogram->count();
        v.lo = e.histogram->lo();
        v.hi = e.histogram->hi();
        v.buckets.reserve(e.histogram->buckets());
        for (std::size_t i = 0; i < e.histogram->buckets(); ++i) {
          v.buckets.push_back(e.histogram->bucket_count(i));
        }
        break;
    }
    snap.entries.emplace(path, std::move(v));
  }
  return snap;
}

RawMetrics MetricsRegistry::save_raw() const {
  RawMetrics raw;
  for (const auto& [path, e] : entries_) {
    RawInstrument r;
    r.kind = e.kind;
    switch (e.kind) {
      case InstrumentKind::kCounter:
        r.count = e.counter->value();
        break;
      case InstrumentKind::kGauge:
        r.gauge_value = e.gauge->value();
        r.gauge_set = e.gauge->is_set();
        break;
      case InstrumentKind::kAccumulator:
        r.acc = e.accumulator->raw();
        break;
      case InstrumentKind::kHistogram:
        r.count = e.histogram->count();
        r.lo = e.histogram->lo();
        r.hi = e.histogram->hi();
        r.buckets.reserve(e.histogram->buckets());
        for (std::size_t i = 0; i < e.histogram->buckets(); ++i) {
          r.buckets.push_back(e.histogram->bucket_count(i));
        }
        break;
    }
    raw.emplace(path, std::move(r));
  }
  return raw;
}

void MetricsRegistry::restore_raw(const RawMetrics& raw) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (raw.find(it->first) == raw.end()) it = entries_.erase(it);
    else ++it;
  }
  for (const auto& [path, r] : raw) {
    switch (r.kind) {
      case InstrumentKind::kCounter:
        counter(path).restore(r.count);
        break;
      case InstrumentKind::kGauge:
        gauge(path).restore(r.gauge_value, r.gauge_set);
        break;
      case InstrumentKind::kAccumulator:
        accumulator(path).restore(r.acc);
        break;
      case InstrumentKind::kHistogram:
        histogram(path, r.lo, r.hi, r.buckets.size())
            .restore(r.buckets, r.count);
        break;
    }
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [path, e] : other.entries_) {
    switch (e.kind) {
      case InstrumentKind::kCounter:
        counter(path).add(e.counter->value());
        break;
      case InstrumentKind::kGauge:
        if (e.gauge->is_set()) gauge(path).set(e.gauge->value());
        else gauge(path);  // still materialise the instrument
        break;
      case InstrumentKind::kAccumulator:
        accumulator(path).merge(*e.accumulator);
        break;
      case InstrumentKind::kHistogram:
        histogram(path, e.histogram->lo(), e.histogram->hi(),
                  e.histogram->buckets())
            .merge(*e.histogram);
        break;
    }
  }
}

void MetricsRegistry::reset() {
  for (auto& [path, e] : entries_) {
    switch (e.kind) {
      case InstrumentKind::kCounter: e.counter->reset(); break;
      case InstrumentKind::kGauge: e.gauge->reset(); break;
      case InstrumentKind::kAccumulator: e.accumulator->reset(); break;
      case InstrumentKind::kHistogram: e.histogram->reset(); break;
    }
  }
}

// --------------------------------------------------------------------------
// Snapshot
// --------------------------------------------------------------------------

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& before,
                                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [path, a] : after.entries) {
    MetricValue v = a;
    const auto it = before.entries.find(path);
    if (it != before.entries.end() && it->second.kind == a.kind) {
      const MetricValue& b = it->second;
      switch (a.kind) {
        case InstrumentKind::kCounter:
          v.count = a.count >= b.count ? a.count - b.count : 0;
          break;
        case InstrumentKind::kGauge:
          break;  // levels don't subtract
        case InstrumentKind::kAccumulator:
          v.count = a.count >= b.count ? a.count - b.count : 0;
          v.sum = a.sum - b.sum;
          break;  // min/max/mean/variance stay the window-less values
        case InstrumentKind::kHistogram:
          v.count = a.count >= b.count ? a.count - b.count : 0;
          for (std::size_t i = 0;
               i < v.buckets.size() && i < b.buckets.size(); ++i) {
            v.buckets[i] = a.buckets[i] >= b.buckets[i]
                               ? a.buckets[i] - b.buckets[i]
                               : 0;
          }
          break;
      }
    }
    out.entries.emplace(path, std::move(v));
  }
  return out;
}

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s(buf);
  // JSON has no inf/nan literals; the instruments never produce them, but
  // keep the exporter total anyway.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

void emit_value(std::ostringstream& os, const MetricValue& v,
                const std::string& pad) {
  os << to_json_leaf(v, pad);
}

using Iter = std::map<std::string, MetricValue>::const_iterator;

/// Emits the entries of [it, end) that live under `prefix` (which is either
/// empty or ends in '/') as one JSON object; advances `it` past them.
void emit_tree(std::ostringstream& os, Iter& it, const Iter end,
               const std::string& prefix, int depth, int indent) {
  const std::string pad(static_cast<std::size_t>(indent + 2 * depth), ' ');
  const std::string inner(static_cast<std::size_t>(indent + 2 * (depth + 1)),
                          ' ');
  os << "{";
  bool first = true;
  while (it != end && it->first.rfind(prefix, 0) == 0) {
    const std::string rest = it->first.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    if (!first) os << ",";
    os << "\n";
    first = false;
    if (slash == std::string::npos) {
      os << inner << "\"" << json_escape(rest) << "\": ";
      emit_value(os, it->second, inner);
      ++it;
    } else {
      const std::string head = rest.substr(0, slash);
      os << inner << "\"" << json_escape(head) << "\": ";
      emit_tree(os, it, end, prefix + head + "/", depth + 1, indent);
    }
  }
  if (!first) os << "\n" << pad;
  os << "}";
}

}  // namespace

std::string MetricsSnapshot::to_json(int indent) const {
  std::ostringstream os;
  Iter it = entries.begin();
  emit_tree(os, it, entries.end(), "", 0, indent);
  return os.str();
}

std::string to_json_leaf(const MetricValue& v, const std::string& pretty_pad) {
  std::ostringstream os;
  os << "{\"type\": \"" << to_string(v.kind) << "\"";
  switch (v.kind) {
    case InstrumentKind::kCounter:
      os << ", \"value\": " << v.count;
      break;
    case InstrumentKind::kGauge:
      if (v.gauge_set) os << ", \"value\": " << fmt_double(v.value);
      else os << ", \"value\": null";
      break;
    case InstrumentKind::kAccumulator:
      os << ", \"count\": " << v.count;
      if (v.count > 0) {
        os << ", \"sum\": " << fmt_double(v.sum)
           << ", \"min\": " << fmt_double(v.min)
           << ", \"max\": " << fmt_double(v.max)
           << ", \"mean\": " << fmt_double(v.mean)
           << ", \"variance\": " << fmt_double(v.variance);
      }
      break;
    case InstrumentKind::kHistogram: {
      os << ", \"count\": " << v.count << ", \"lo\": " << fmt_double(v.lo)
         << ", \"hi\": " << fmt_double(v.hi) << ",";
      if (pretty_pad.empty()) {
        os << " \"buckets\": [";
      } else {
        os << "\n" << pretty_pad << "  \"buckets\": [";
      }
      for (std::size_t i = 0; i < v.buckets.size(); ++i) {
        if (i) os << ", ";
        os << v.buckets[i];
      }
      os << "]";
      break;
    }
  }
  os << "}";
  return os.str();
}

// --------------------------------------------------------------------------
// JSON helpers
// --------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent syntax check; no value materialisation.
class JsonLint {
 public:
  explicit JsonLint(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    ok_ = value(0);
    ws();
    if (ok_ && pos_ != t_.size()) {
      ok_ = false;
      err_ = "trailing content";
    }
    if (!ok_ && error) {
      *error = err_ + " at offset " + std::to_string(pos_);
    }
    return ok_;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void ws() {
    while (pos_ < t_.size() && std::isspace(static_cast<unsigned char>(
                                   t_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool fail(const char* why) {
    err_ = why;
    return false;
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const char c = t_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ >= t_.size()) return fail("dangling escape");
        const char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= t_.size() ||
                !std::isxdigit(static_cast<unsigned char>(t_[pos_]))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return fail("bad escape character");
        }
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(
            pos_ < t_.size() ? t_[pos_] : '\0'))) {
      return fail("expected digit");
    }
    const std::size_t int_start = pos_;
    while (pos_ < t_.size() &&
           std::isdigit(static_cast<unsigned char>(t_[pos_]))) {
      ++pos_;
    }
    if (t_[int_start] == '0' && pos_ - int_start > 1) {
      return fail("leading zero in number");
    }
    if (eat('.')) {
      if (pos_ >= t_.size() ||
          !std::isdigit(static_cast<unsigned char>(t_[pos_]))) {
        return fail("expected fraction digits");
      }
      while (pos_ < t_.size() &&
             std::isdigit(static_cast<unsigned char>(t_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (pos_ >= t_.size() ||
          !std::isdigit(static_cast<unsigned char>(t_[pos_]))) {
        return fail("expected exponent digits");
      }
      while (pos_ < t_.size() &&
             std::isdigit(static_cast<unsigned char>(t_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    ws();
    if (pos_ >= t_.size()) return fail("unexpected end of input");
    switch (t_[pos_]) {
      case '{': {
        ++pos_;
        ws();
        if (eat('}')) return true;
        while (true) {
          ws();
          if (!string()) return false;
          ws();
          if (!eat(':')) return fail("expected ':'");
          if (!value(depth + 1)) return false;
          ws();
          if (eat(',')) continue;
          if (eat('}')) return true;
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        ws();
        if (eat(']')) return true;
        while (true) {
          if (!value(depth + 1)) return false;
          ws();
          if (eat(',')) continue;
          if (eat(']')) return true;
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  bool ok_ = false;
  std::string err_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return JsonLint(text).run(error);
}

}  // namespace tcfpn::metrics
