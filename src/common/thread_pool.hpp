// A persistent host-side worker pool for the parallel stepping engine.
//
// The machine layer commits shared-memory effects at step boundaries
// (DESIGN.md §4), which makes the per-group work inside one machine step
// embarrassingly parallel: each group touches only its own flows, local
// memory and effect buffers, and everything cross-group merges at the step
// barrier in a fixed order. ThreadPool provides the fan-out half of that
// contract: `parallel_for(n, fn)` runs fn(0..n-1) across the pool (the
// calling thread participates) and blocks until every index completed.
//
// Index->thread assignment is dynamic (a shared claim cursor) and therefore
// nondeterministic; callers that need determinism must make fn(i)'s effects
// independent of assignment and merge them afterwards in index order —
// exactly what Machine::step_synchronous does.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcfpn::common {

class ThreadPool {
 public:
  /// A pool that runs work on `threads` host threads total: `threads - 1`
  /// persistent workers plus the thread that calls parallel_for.
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the pool;
  /// blocks until all n calls returned. If one or more fn(i) calls throw,
  /// the exception of the *lowest* faulting index is rethrown here at the
  /// barrier (deterministic across index->thread assignments); the others
  /// are dropped. fn must not call parallel_for reentrantly.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Host threads the hardware supports (>= 1 even when unknown).
  static std::uint32_t hardware_threads();

 private:
  void worker_loop();
  /// Claims and runs indices of job `gen` until none remain (or the job is
  /// no longer current). Claims are mutex-guarded and generation-tagged so
  /// stragglers can never touch a later job's state.
  void work_until_drained(std::uint64_t gen);

  std::uint32_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers wait here for a new job
  std::condition_variable cv_done_;  ///< parallel_for waits here for drain
  std::uint64_t generation_ = 0;     ///< bumped once per parallel_for
  bool stop_ = false;

  // Current job; all fields guarded by mu_.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t size_ = 0;
  std::size_t next_ = 0;  ///< next unclaimed index
  std::size_t done_ = 0;  ///< completed indices
  /// First exception a worker captured this job (lowest index wins, so the
  /// surfaced error never depends on thread timing); rethrown at the step
  /// barrier by parallel_for. Without the capture a throw would unwind a
  /// worker thread and std::terminate the process.
  std::exception_ptr job_error_;
  std::size_t job_error_index_ = 0;
};

}  // namespace tcfpn::common
