// A persistent host-side worker pool for the parallel stepping engine.
//
// The machine layer commits shared-memory effects at step boundaries
// (DESIGN.md §4), which makes the per-group work inside one machine step
// embarrassingly parallel: each group touches only its own flows, local
// memory and effect buffers, and everything cross-group merges in a fixed
// order. ThreadPool provides the fan-out half of that contract.
//
// Two entry points:
//  - parallel_for(n, fn): classic fork-join — runs fn(0..n-1) across the
//    pool (the calling thread participates) and blocks until every index
//    completed.
//  - begin(n, fn) / try_run_one() / end(): the streaming form. begin()
//    publishes the job and wakes the workers but returns immediately; the
//    caller may then interleave its own work (e.g. consuming per-group seal
//    channels in merge order) with try_run_one() calls that steal one index
//    at a time, and finally end() waits for the stragglers and rethrows the
//    lowest faulting index's exception.
//
// The dispatch path is lock-free: job claims and completion counts are
// packed atomics (claims generation-tagged so a straggler from job N can
// never touch job N+1's state), and idle workers sleep in
// std::atomic::wait on the generation counter. The only mutex guards the
// cold error-capture path. A machine step is two atomic RMWs per group —
// the old mutex+condvar handshake cost more than small groups' work.
//
// Index->thread assignment is dynamic (a shared claim cursor) and therefore
// nondeterministic; callers that need determinism must make fn(i)'s effects
// independent of assignment and merge them afterwards in index order —
// exactly what Machine::step_synchronous does.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcfpn::common {

class ThreadPool {
 public:
  /// A pool that runs work on `threads` host threads total: `threads - 1`
  /// persistent workers plus the thread that calls parallel_for.
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the pool;
  /// blocks until all n calls returned. If one or more fn(i) calls throw,
  /// the exception of the *lowest* faulting index is rethrown here at the
  /// barrier (deterministic across index->thread assignments); the others
  /// are dropped. fn must not call parallel_for reentrantly. With no
  /// workers (threads == 1) or n == 1 the indices run inline on the calling
  /// thread — no atomics, no wake-up.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Publishes a job of n indices and wakes the workers; returns
  /// immediately. `fn` must stay alive until end() returns. Not reentrant.
  void begin(std::size_t n, const std::function<void(std::size_t)>& fn);
  /// Claims and runs one index of the active job on the calling thread.
  /// Returns false when no unclaimed index remains (some may still be
  /// running on workers). Callable between begin() and end().
  bool try_run_one();
  /// Drains remaining indices on the calling thread, waits for every index
  /// to complete, then rethrows the lowest faulting index's exception (if
  /// any).
  void end();

  /// Host threads the hardware supports (>= 1 even when unknown).
  static std::uint32_t hardware_threads();

 private:
  /// claim_ packs (generation << kIndexBits) | next-unclaimed-index. The
  /// generation tag makes a straggler's compare-exchange against a newer
  /// job fail structurally — no ABA window across jobs.
  static constexpr std::uint32_t kIndexBits = 24;
  static constexpr std::uint64_t kIndexMask = (1ull << kIndexBits) - 1;

  void worker_loop();
  /// Claims and runs one index of job `gen`; false when none remain (or the
  /// job is no longer current).
  bool try_claim(std::uint64_t gen);
  void run_index(std::uint64_t idx);

  std::uint32_t threads_;
  std::vector<std::thread> workers_;

  // Job payload: written by begin() before its release-store to gen_, read
  // by workers after their acquire-load of gen_. fn_ needs no further sync
  // (it is only dereferenced after a successful generation-tagged claim).
  // size_ is atomic because a straggler whose stale claim_ load still
  // carries the old generation tag can reach its bound check while the
  // next begin() rewrites size_; the stale value is harmless (the claim
  // CAS fails structurally) but the access must still be race-free.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::uint64_t> size_{0};
  bool active_ = false;  ///< between begin() and end(); caller thread only

  std::atomic<std::uint64_t> gen_{0};    ///< job generation; workers wait here
  std::atomic<std::uint64_t> claim_{0};  ///< (gen << kIndexBits) | next index
  std::atomic<std::uint64_t> done_{0};   ///< completed indices of current job
  std::atomic<bool> stop_{false};

  /// Cold path: only faulting indices take this lock. The lowest index wins
  /// so the surfaced error never depends on thread timing; end() reads the
  /// result without the lock (all completions happened-before done_ == n).
  std::mutex err_mu_;
  std::exception_ptr job_error_;
  std::uint64_t job_error_index_ = 0;
};

}  // namespace tcfpn::common
