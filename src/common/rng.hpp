// Deterministic pseudo-random number generation for workloads and tests.
//
// Everything in tcfpn that looks random (synthetic traffic, workload shapes,
// property-test inputs) flows through this generator so that a run is fully
// reproducible from its seed (DESIGN.md decision 7).
//
// The generator is xoshiro256** 1.0 (Blackman & Vigna), seeded through
// splitmix64 so that even seed 0 yields a well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace tcfpn {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialise the full 256-bit state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions work too.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Fork a statistically independent child generator (for per-module
  /// streams that must not perturb each other's sequences).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tcfpn
