// Error handling for tcfpn.
//
// The simulator distinguishes two failure classes:
//  - SimError: a *simulated program* fault (bad address, EREW violation,
//    malformed assembly, thickness underflow). These are reportable
//    conditions a user of the library can trigger and catch.
//  - logic bugs in the simulator itself, guarded by TCFPN_CHECK, which also
//    throws SimError but with an internal-invariant message; tests rely on
//    these throwing rather than aborting so death-free property tests can
//    probe edge cases.
#pragma once

#include <stdexcept>
#include <string>

namespace tcfpn {

/// Exception thrown for all simulated-machine and API misuse errors.
class SimError : public std::runtime_error {
 public:
  explicit SimError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& msg);
std::string format_check_message();
template <typename... Args>
std::string format_check_message(const Args&... args);
}  // namespace detail

}  // namespace tcfpn

/// Always-on invariant check; throws tcfpn::SimError on failure.
#define TCFPN_CHECK(expr, ...)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::tcfpn::detail::fail_check(#expr, __FILE__, __LINE__,               \
                                  ::tcfpn::detail::format_check_message(   \
                                      __VA_ARGS__));                       \
    }                                                                      \
  } while (false)

/// Report a simulated-program fault with a formatted message.
#define TCFPN_FAULT(...)                                                  \
  throw ::tcfpn::SimError(                                                \
      ::tcfpn::detail::format_check_message(__VA_ARGS__))

#include <sstream>

namespace tcfpn::detail {

inline std::string format_check_message() { return {}; }

template <typename... Args>
std::string format_check_message(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace tcfpn::detail
