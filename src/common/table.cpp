#include "common/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn {

namespace detail {

std::string cell_to_string(const std::string& s) { return s; }
std::string cell_to_string(const char* s) { return s; }

std::string cell_to_string(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one digit after the point.
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

std::string cell_to_string(bool v) { return v ? "yes" : "no"; }

}  // namespace detail

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TCFPN_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TCFPN_CHECK(cells.size() == header_.size(), "row arity ", cells.size(),
              " != header arity ", header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace tcfpn
