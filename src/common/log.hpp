// Structured, leveled, slash-path-categorized logging (DESIGN.md §13).
//
// Every diagnostic the simulator or a tool emits goes through obs::log as a
// (level, category, message) triple instead of an ad-hoc fprintf(stderr):
//
//   obs::warn("machine/host_spans", "span buffer full; trace truncated");
//   obs::error("tcfrun", "cannot write 'out.json'");
//
// Categories are slash paths like metric paths ("machine/host_spans",
// "obs/sink", "tcfrun") so a consumer can filter subtrees. Two outputs:
//
//  - stderr, human format "[level] category: message", gated by the process
//    log level (set_log_level / --log-level; default info);
//  - an optional forwarder hook, installed by the streaming telemetry bus
//    (src/obs), which turns every line into a "log" record on the
//    tcfpn-stream-v1 NDJSON stream. The hook sees every line regardless of
//    the stderr level gate — the stream consumer applies its own filter.
//
// This core lives in src/common (below src/machine) so the machine and the
// subsystems can log without depending on the bus; the bus plugs in from
// above. Thread-safe: concurrent log() calls serialize per line.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace tcfpn::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* to_string(LogLevel lv);
/// Parses "debug" / "info" / "warn" / "error". Returns false on junk.
bool log_level_from_string(std::string_view name, LogLevel* out);

/// One structured log line, as handed to the forwarder hook.
struct LogLine {
  LogLevel level = LogLevel::kInfo;
  std::string category;  ///< slash path, e.g. "machine/host_spans"
  std::string message;   ///< free text; may contain any bytes, the stream
                         ///< serializer escapes them (json_escape)
};

/// Minimum level echoed to stderr (the forwarder sees everything).
void set_log_level(LogLevel lv);
LogLevel log_level();

/// Installs (or clears, with nullptr) the forwarder every line is handed to
/// after the stderr echo. Installed by obs::Bus; at most one at a time.
using LogForwarder = std::function<void(LogLine&&)>;
void set_log_forwarder(LogForwarder fwd);

void log(LogLevel lv, std::string_view category, std::string_view message);

inline void debug(std::string_view category, std::string_view message) {
  log(LogLevel::kDebug, category, message);
}
inline void info(std::string_view category, std::string_view message) {
  log(LogLevel::kInfo, category, message);
}
inline void warn(std::string_view category, std::string_view message) {
  log(LogLevel::kWarn, category, message);
}
inline void error(std::string_view category, std::string_view message) {
  log(LogLevel::kError, category, message);
}

}  // namespace tcfpn::obs
