#include "net/topology.hpp"

#include <bit>
#include <cmath>

namespace tcfpn::net {

std::uint32_t Topology::diameter() const {
  std::uint32_t d = 0;
  for (NodeId a = 0; a < nodes(); ++a) {
    for (NodeId b = a + 1; b < nodes(); ++b) {
      d = std::max(d, distance(a, b));
    }
  }
  return d;
}

// ------------------------------------------------------- OverrideTopology

OverrideTopology::OverrideTopology(
    std::unique_ptr<Topology> base,
    std::vector<std::vector<std::uint32_t>> rows)
    : base_(std::move(base)), rows_(std::move(rows)) {
  TCFPN_CHECK(base_ != nullptr, "override topology needs a base");
  TCFPN_CHECK(rows_.size() == base_->nodes(), "override topology: ",
              rows_.size(), " rows for ", base_->nodes(), " nodes");
  for (const auto& row : rows_) {
    TCFPN_CHECK(row.empty() || row.size() == base_->nodes(),
                "override topology: row size ", row.size(), " for ",
                base_->nodes(), " nodes");
  }
}

std::uint32_t OverrideTopology::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (a == b) return 0;
  if (!rows_[a].empty()) return rows_[a][b];
  return base_->distance(a, b);
}

// ---------------------------------------------------------------- Crossbar

Crossbar::Crossbar(std::uint32_t n) : n_(n) {
  TCFPN_CHECK(n > 0, "crossbar needs at least one node");
}

std::uint32_t Crossbar::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return a == b ? 0 : 1;
}

NodeId Crossbar::route_next(NodeId cur, NodeId dst) const {
  check_node(cur);
  check_node(dst);
  TCFPN_CHECK(cur != dst, "routing a packet already at its destination");
  return dst;
}

// -------------------------------------------------------------------- Ring

Ring::Ring(std::uint32_t n) : n_(n) {
  TCFPN_CHECK(n > 0, "ring needs at least one node");
}

std::uint32_t Ring::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const std::uint32_t fwd = (b + n_ - a) % n_;
  return std::min(fwd, n_ - fwd);
}

NodeId Ring::route_next(NodeId cur, NodeId dst) const {
  check_node(cur);
  check_node(dst);
  TCFPN_CHECK(cur != dst, "routing a packet already at its destination");
  const std::uint32_t fwd = (dst + n_ - cur) % n_;
  // Shorter direction; on a tie go clockwise (+1) for determinism.
  if (fwd <= n_ - fwd) return (cur + 1) % n_;
  return (cur + n_ - 1) % n_;
}

// ------------------------------------------------------------------ Mesh2D

Mesh2D::Mesh2D(std::uint32_t cols, std::uint32_t rows)
    : cols_(cols), rows_(rows) {
  TCFPN_CHECK(cols > 0 && rows > 0, "mesh dimensions must be positive");
}

std::uint32_t Mesh2D::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const std::int64_t ax = a % cols_, ay = a / cols_;
  const std::int64_t bx = b % cols_, by = b / cols_;
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

NodeId Mesh2D::route_next(NodeId cur, NodeId dst) const {
  check_node(cur);
  check_node(dst);
  TCFPN_CHECK(cur != dst, "routing a packet already at its destination");
  const std::uint32_t cx = cur % cols_, cy = cur / cols_;
  const std::uint32_t dx = dst % cols_, dy = dst / cols_;
  if (cx != dx) {  // dimension-order: X first
    return cy * cols_ + (cx < dx ? cx + 1 : cx - 1);
  }
  return (cy < dy ? cy + 1 : cy - 1) * cols_ + cx;
}

// ----------------------------------------------------------------- Torus2D

Torus2D::Torus2D(std::uint32_t cols, std::uint32_t rows)
    : cols_(cols), rows_(rows) {
  TCFPN_CHECK(cols > 0 && rows > 0, "torus dimensions must be positive");
}

std::uint32_t Torus2D::ring_dist(std::uint32_t a, std::uint32_t b,
                                 std::uint32_t n) const {
  const std::uint32_t fwd = (b + n - a) % n;
  return std::min(fwd, n - fwd);
}

std::uint32_t Torus2D::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return ring_dist(a % cols_, b % cols_, cols_) +
         ring_dist(a / cols_, b / cols_, rows_);
}

NodeId Torus2D::route_next(NodeId cur, NodeId dst) const {
  check_node(cur);
  check_node(dst);
  TCFPN_CHECK(cur != dst, "routing a packet already at its destination");
  const std::uint32_t cx = cur % cols_, cy = cur / cols_;
  const std::uint32_t dx = dst % cols_, dy = dst / cols_;
  if (cx != dx) {  // X ring first, shorter way (ties go +x)
    const std::uint32_t fwd = (dx + cols_ - cx) % cols_;
    const std::uint32_t nx =
        fwd <= cols_ - fwd ? (cx + 1) % cols_ : (cx + cols_ - 1) % cols_;
    return cy * cols_ + nx;
  }
  const std::uint32_t fwd = (dy + rows_ - cy) % rows_;
  const std::uint32_t ny =
      fwd <= rows_ - fwd ? (cy + 1) % rows_ : (cy + rows_ - 1) % rows_;
  return ny * cols_ + cx;
}

// --------------------------------------------------------------- Hypercube

Hypercube::Hypercube(std::uint32_t n) : n_(n) {
  TCFPN_CHECK(n > 0 && std::has_single_bit(n),
              "hypercube node count must be a power of two, got ", n);
}

std::uint32_t Hypercube::distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return static_cast<std::uint32_t>(std::popcount(a ^ b));
}

NodeId Hypercube::route_next(NodeId cur, NodeId dst) const {
  check_node(cur);
  check_node(dst);
  TCFPN_CHECK(cur != dst, "routing a packet already at its destination");
  const std::uint32_t diff = cur ^ dst;
  const std::uint32_t bit = diff & (~diff + 1);  // lowest set bit
  return cur ^ bit;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                        std::uint32_t nodes) {
  switch (kind) {
    case TopologyKind::kCrossbar:
      return std::make_unique<Crossbar>(nodes);
    case TopologyKind::kRing:
      return std::make_unique<Ring>(nodes);
    case TopologyKind::kMesh2D: {
      // Pick the most square factorisation cols >= rows.
      std::uint32_t rows = static_cast<std::uint32_t>(std::sqrt(nodes));
      while (rows > 1 && nodes % rows != 0) --rows;
      return std::make_unique<Mesh2D>(nodes / rows, rows);
    }
    case TopologyKind::kTorus2D: {
      std::uint32_t rows = static_cast<std::uint32_t>(std::sqrt(nodes));
      while (rows > 1 && nodes % rows != 0) --rows;
      return std::make_unique<Torus2D>(nodes / rows, rows);
    }
    case TopologyKind::kHypercube:
      return std::make_unique<Hypercube>(nodes);
  }
  TCFPN_FAULT("unknown topology kind ", static_cast<int>(kind));
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kCrossbar: return "crossbar";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh2D: return "mesh2d";
    case TopologyKind::kTorus2D: return "torus2d";
    case TopologyKind::kHypercube: return "hypercube";
  }
  return "?";
}

}  // namespace tcfpn::net
