// Interconnection topologies with an explicit distance metric.
//
// The PRAM-NUMA model (Section 2.1) requires "a metric defining distance
// between the processor groups and target memory blocks, and distance-aware
// interconnection network ... the latency of routing is proportional to the
// distance". Each topology here supplies that metric (hop count) plus a
// deterministic oblivious route so the Network can move packets hop by hop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcfpn::net {

using NodeId = std::uint32_t;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::uint32_t nodes() const = 0;

  /// Hop distance between two nodes (0 iff a == b).
  virtual std::uint32_t distance(NodeId a, NodeId b) const = 0;

  /// Next node on the deterministic route from `cur` towards `dst`.
  /// Precondition: cur != dst. Postcondition: distance(next,dst) <
  /// distance(cur,dst) (all provided routes are minimal).
  virtual NodeId route_next(NodeId cur, NodeId dst) const = 0;

  virtual std::string name() const = 0;

  /// Network diameter: max over node pairs of distance(). Default computes
  /// it exactly; cheap for the node counts the simulator uses.
  virtual std::uint32_t diameter() const;

 protected:
  void check_node(NodeId n) const {
    TCFPN_CHECK(n < nodes(), "node id ", n, " out of range ", nodes());
  }
};

/// All nodes one hop apart — the "ideal" network used to isolate processor
/// behaviour from network behaviour in experiments.
class Crossbar final : public Topology {
 public:
  explicit Crossbar(std::uint32_t n);
  std::uint32_t nodes() const override { return n_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override;
  std::string name() const override { return "crossbar"; }

 private:
  std::uint32_t n_;
};

/// Bidirectional ring; packets take the shorter direction (ties go
/// clockwise). Models ECLIPSE-style sparse meshes at their simplest.
class Ring final : public Topology {
 public:
  explicit Ring(std::uint32_t n);
  std::uint32_t nodes() const override { return n_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override;
  std::string name() const override { return "ring"; }

 private:
  std::uint32_t n_;
};

/// 2D mesh with dimension-order (X then Y) routing.
class Mesh2D final : public Topology {
 public:
  Mesh2D(std::uint32_t cols, std::uint32_t rows);
  std::uint32_t nodes() const override { return cols_ * rows_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override;
  std::string name() const override { return "mesh2d"; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }

 private:
  std::uint32_t cols_;
  std::uint32_t rows_;
};

/// 2D torus: mesh with wrap-around links, dimension-order routing taking
/// the shorter way around each ring (ties go in the +direction).
class Torus2D final : public Topology {
 public:
  Torus2D(std::uint32_t cols, std::uint32_t rows);
  std::uint32_t nodes() const override { return cols_ * rows_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override;
  std::string name() const override { return "torus2d"; }

 private:
  std::uint32_t ring_dist(std::uint32_t a, std::uint32_t b,
                          std::uint32_t n) const;
  std::uint32_t cols_;
  std::uint32_t rows_;
};

/// Hypercube with e-cube (lowest-differing-dimension-first) routing.
/// Node count must be a power of two.
class Hypercube final : public Topology {
 public:
  explicit Hypercube(std::uint32_t n);
  std::uint32_t nodes() const override { return n_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override;
  std::string name() const override { return "hypercube"; }

 private:
  std::uint32_t n_;
};

/// A physical topology with some distance rows replaced — the NUMA
/// distance-matrix overrides of heterogeneous machine shapes (DESIGN.md
/// §12). distance(a, b) returns the override row's entry when source `a`
/// carries one (a == b stays 0), otherwise the base topology's distance.
/// Routing still follows the base topology's physical links, so the
/// detailed network moves packets over real hops while the analytic
/// latency bound and the diameter see the effective (overridden) metric.
class OverrideTopology final : public Topology {
 public:
  /// `rows[a]` is either empty (keep the base metric for source a) or a
  /// `base->nodes()`-sized distance row. `rows` itself must have exactly
  /// `base->nodes()` entries.
  OverrideTopology(std::unique_ptr<Topology> base,
                   std::vector<std::vector<std::uint32_t>> rows);
  std::uint32_t nodes() const override { return base_->nodes(); }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  NodeId route_next(NodeId cur, NodeId dst) const override {
    return base_->route_next(cur, dst);
  }
  std::string name() const override { return base_->name() + "+numa"; }
  const Topology& base() const { return *base_; }

 private:
  std::unique_ptr<Topology> base_;
  std::vector<std::vector<std::uint32_t>> rows_;
};

enum class TopologyKind : std::uint8_t {
  kCrossbar,
  kRing,
  kMesh2D,
  kTorus2D,
  kHypercube,
};

/// Factory used by machine configuration. For kMesh2D a near-square factor
/// decomposition of `nodes` is chosen; for kHypercube `nodes` must be a
/// power of two.
std::unique_ptr<Topology> make_topology(TopologyKind kind, std::uint32_t nodes);

const char* to_string(TopologyKind kind);

}  // namespace tcfpn::net
