// Cycle-level network simulator over a Topology.
//
// Models the "high-bandwidth communication network" of ESM machines
// (Figures 1/2/5) at hop granularity:
//
//  - each directed link moves `link_bandwidth` packets per cycle (default 1
//    word/cycle) from its FIFO queue to the next node;
//  - a packet injected at src towards dst follows the topology's
//    deterministic minimal route, so its uncongested latency is
//    `wire_latency * distance(src,dst)` — latency proportional to distance,
//    exactly the model's requirement;
//  - each node ejects at most `ejection_bandwidth` packets per cycle, so a
//    hot memory module queues requests (hot-spot congestion);
//  - per-packet latency samples and per-link peak queue lengths are kept for
//    the congestion experiments.
//
// The machine layer (src/machine) uses Network in "analytic" or "detailed"
// mode: analytic asks only for `latency_bound()` of a traffic batch, while
// detailed injects real packets and ticks the router.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace tcfpn::net {

struct NetworkConfig {
  std::uint32_t link_bandwidth = 1;      ///< packets per link per cycle
  std::uint32_t ejection_bandwidth = 1;  ///< packets a node absorbs per cycle
  Cycle wire_latency = 1;                ///< cycles per hop
};

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Cycle injected = 0;
  Word payload = 0;
};

struct Delivery {
  Packet packet;
  Cycle delivered = 0;
  Cycle latency() const { return delivered - packet.injected; }
};

/// Router state at an idle boundary (checkpoint layer). The machine drains
/// the router inside every step's memory term, so at a step boundary all
/// queues are empty and only the clock and the monotone counters carry
/// state. The per-packet latency Samples never feed back into simulated
/// behaviour or the metrics snapshot (the bound ejection-latency histogram
/// is restored through the registry instead) and are cleared on restore —
/// the documented exclusion of the replay contract (DESIGN.md §8).
struct NetworkState {
  Cycle now = 0;
  std::uint64_t next_id = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::size_t peak_queue = 0;
};

class Network {
 public:
  Network(std::unique_ptr<Topology> topology, NetworkConfig cfg = {});

  const Topology& topology() const { return *topology_; }
  const NetworkConfig& config() const { return cfg_; }
  Cycle now() const { return now_; }

  /// Queue a packet for injection at `src` this cycle. Returns its id.
  std::uint64_t inject(NodeId src, NodeId dst, Word payload = 0);

  /// Advance the router one cycle.
  void tick();

  /// Ticks until every in-flight packet is delivered; returns the number of
  /// cycles that took. Guards against livelock with a generous bound.
  Cycle drain();

  bool idle() const { return in_flight_ == 0; }
  std::uint64_t in_flight() const { return in_flight_; }

  /// Deliveries completed since the last call (FIFO order).
  std::vector<Delivery> take_deliveries();

  // ----- analytic mode -----
  /// Lower-bound cycles to deliver a batch where `loads[n]` packets target
  /// node n and the worst source-destination distance is `max_distance`:
  /// max(serialisation at the hottest node, wire time across the distance).
  Cycle latency_bound(const std::vector<std::uint64_t>& loads,
                      std::uint32_t max_distance) const;

  // ----- fault injection (src/resil, DESIGN.md §9) -----
  /// Accumulates extra cycles an injected link fault (dropped reply being
  /// retried, delayed delivery) costs the *next* memory term. Transient by
  /// design: a restore clears any pending delay (the injector re-derives
  /// its schedule during replay instead).
  void add_fault_delay(Cycle d);
  /// Returns and clears the accumulated fault delay (called once per step
  /// by the machine's memory term).
  Cycle consume_fault_delay() {
    const Cycle d = pending_fault_delay_;
    pending_fault_delay_ = 0;
    return d;
  }

  // ----- statistics -----
  std::uint64_t injected_count() const { return injected_; }
  std::uint64_t delivered_count() const { return delivered_count_; }
  const Samples& latency_samples() const { return latencies_; }
  std::size_t peak_queue_length() const { return peak_queue_; }

  /// Registers the router's instruments under "net/" in `reg` and streams
  /// into them from then on: packet counts, an ejection-latency histogram,
  /// link-budget stall events, and per-tick queue-depth accumulators.
  /// Pass nullptr to detach. The router only ticks at the step barrier
  /// (single-threaded), so no synchronisation is needed.
  void bind_metrics(metrics::MetricsRegistry* reg);

  // ----- checkpointing -----
  /// Counter/clock state for a checkpoint; the router must be idle.
  NetworkState save_state() const;
  /// Restores a save_state() image, discarding any queued packets and
  /// pending deliveries (a restore may land on a fault-aborted step).
  void restore_state(const NetworkState& s);

 private:
  struct Hop {
    Packet packet;
    Cycle ready_at;  ///< cycle at which the packet may leave this queue
  };

  // Queue of packets waiting at node `n` to traverse their next link.
  // Indexed by current node; each entry knows its own next hop via routing.
  std::vector<std::deque<Hop>> node_queues_;
  std::vector<std::deque<Hop>> ejection_queues_;

  std::unique_ptr<Topology> topology_;
  NetworkConfig cfg_;
  Cycle now_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::vector<Delivery> deliveries_;
  Samples latencies_;
  std::size_t peak_queue_ = 0;
  Cycle pending_fault_delay_ = 0;  ///< transient; cleared on restore

  // Bound instruments (nullptr when no registry is attached).
  metrics::Counter* m_injected_ = nullptr;
  metrics::Counter* m_delivered_ = nullptr;
  metrics::Counter* m_link_stalls_ = nullptr;
  Histogram* m_ejection_latency_ = nullptr;
  Accumulator* m_node_queue_depth_ = nullptr;
  Accumulator* m_ejection_queue_depth_ = nullptr;
  metrics::Counter* m_fault_delay_ = nullptr;
};

}  // namespace tcfpn::net
