#include "net/network.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::net {

Network::Network(std::unique_ptr<Topology> topology, NetworkConfig cfg)
    : topology_(std::move(topology)), cfg_(cfg) {
  TCFPN_CHECK(topology_ != nullptr, "network needs a topology");
  TCFPN_CHECK(cfg_.link_bandwidth >= 1, "link bandwidth must be >= 1");
  TCFPN_CHECK(cfg_.ejection_bandwidth >= 1, "ejection bandwidth must be >= 1");
  TCFPN_CHECK(cfg_.wire_latency >= 1, "wire latency must be >= 1");
  node_queues_.resize(topology_->nodes());
  ejection_queues_.resize(topology_->nodes());
}

void Network::bind_metrics(metrics::MetricsRegistry* reg) {
  if (reg == nullptr) {
    m_injected_ = nullptr;
    m_delivered_ = nullptr;
    m_link_stalls_ = nullptr;
    m_ejection_latency_ = nullptr;
    m_node_queue_depth_ = nullptr;
    m_ejection_queue_depth_ = nullptr;
    m_fault_delay_ = nullptr;
    return;
  }
  m_injected_ = &reg->counter("net/packets_injected");
  m_delivered_ = &reg->counter("net/packets_delivered");
  m_link_stalls_ = &reg->counter("net/link_stalls");
  // Latencies above 128 cycles clamp into the top bucket; the congestion
  // experiments care about the shape near zero, the tail count suffices.
  m_ejection_latency_ = &reg->histogram("net/ejection_latency", 0.0, 128.0, 32);
  m_node_queue_depth_ = &reg->accumulator("net/node_queue_depth");
  m_ejection_queue_depth_ = &reg->accumulator("net/ejection_queue_depth");
  // Registered at construction (like every bound instrument) so the
  // counter exists in every checkpoint image — restore_raw drops
  // instruments absent from the saved registry.
  m_fault_delay_ = &reg->counter("net/fault_delay_cycles");
}

void Network::add_fault_delay(Cycle d) {
  pending_fault_delay_ += d;
  if (m_fault_delay_ != nullptr) m_fault_delay_->add(d);
}

std::uint64_t Network::inject(NodeId src, NodeId dst, Word payload) {
  TCFPN_CHECK(src < topology_->nodes(), "bad source node ", src);
  TCFPN_CHECK(dst < topology_->nodes(), "bad destination node ", dst);
  Packet p{next_id_++, src, dst, now_, payload};
  ++in_flight_;
  ++injected_;
  if (m_injected_ != nullptr) m_injected_->add();
  if (src == dst) {
    // Local reference: still pays one ejection slot (module port) but no
    // wire time.
    ejection_queues_[dst].push_back(Hop{p, now_});
  } else {
    node_queues_[src].push_back(Hop{p, now_});
  }
  peak_queue_ = std::max(peak_queue_, node_queues_[src].size());
  return p.id;
}

void Network::tick() {
  // Stage 1: ejection — each destination absorbs up to ejection_bandwidth
  // packets whose wire time has elapsed.
  for (NodeId n = 0; n < ejection_queues_.size(); ++n) {
    auto& q = ejection_queues_[n];
    std::uint32_t served = 0;
    while (!q.empty() && served < cfg_.ejection_bandwidth &&
           q.front().ready_at <= now_) {
      Delivery d{q.front().packet, now_ + 1};
      q.pop_front();
      deliveries_.push_back(d);
      latencies_.add(static_cast<double>(d.latency()));
      ++delivered_count_;
      --in_flight_;
      ++served;
      if (m_delivered_ != nullptr) m_delivered_->add();
      if (m_ejection_latency_ != nullptr) {
        m_ejection_latency_->add(static_cast<double>(d.latency()));
      }
    }
  }

  // Stage 2: link traversal. Each (node -> next-hop) link moves up to
  // link_bandwidth ready packets. Moves are staged so a packet advances at
  // most one hop per cycle.
  struct Move {
    NodeId to;
    Hop hop;
    bool eject;
  };
  std::vector<Move> moves;
  // Per-link departure budget, indexed by next-hop node. A flat array keyed
  // by node id (reused across nodes, reset per node) keeps the hot loop
  // hash-free and its traversal order trivially deterministic.
  std::vector<std::uint32_t> budget(topology_->nodes(), 0);
  std::vector<NodeId> touched;
  for (NodeId n = 0; n < node_queues_.size(); ++n) {
    auto& q = node_queues_[n];
    if (q.empty()) continue;
    for (NodeId t : touched) budget[t] = 0;
    touched.clear();
    std::size_t scanned = 0;
    const std::size_t limit = q.size();
    while (scanned < limit && !q.empty()) {
      Hop hop = q.front();
      q.pop_front();
      ++scanned;
      if (hop.ready_at > now_) {
        q.push_back(hop);  // still on the wire; retry later
        continue;
      }
      const NodeId next = topology_->route_next(n, hop.packet.dst);
      auto& used = budget[next];
      if (used == 0) touched.push_back(next);
      if (used >= cfg_.link_bandwidth) {
        q.push_back(hop);  // link saturated this cycle
        if (m_link_stalls_ != nullptr) m_link_stalls_->add();
        continue;
      }
      ++used;
      hop.ready_at = now_ + cfg_.wire_latency;
      moves.push_back(Move{next, hop, next == hop.packet.dst});
    }
  }
  for (auto& m : moves) {
    if (m.eject) {
      ejection_queues_[m.to].push_back(m.hop);
    } else {
      node_queues_[m.to].push_back(m.hop);
      peak_queue_ = std::max(peak_queue_, node_queues_[m.to].size());
    }
  }

  // Sample the deepest queue of each kind this cycle: the accumulators track
  // how hot the hottest node runs, which is what the hot-spot experiments
  // plot. Sampled only while traffic is in flight so idle drain cycles don't
  // flatten the average.
  if (in_flight_ > 0) {
    if (m_node_queue_depth_ != nullptr) {
      std::size_t deepest = 0;
      for (const auto& q : node_queues_) deepest = std::max(deepest, q.size());
      m_node_queue_depth_->add(static_cast<double>(deepest));
    }
    if (m_ejection_queue_depth_ != nullptr) {
      std::size_t deepest = 0;
      for (const auto& q : ejection_queues_) {
        deepest = std::max(deepest, q.size());
      }
      m_ejection_queue_depth_->add(static_cast<double>(deepest));
    }
  }

  ++now_;
}

Cycle Network::drain() {
  const Cycle start = now_;
  // Livelock guard: every packet advances at least one hop every
  // (queue-length) cycles, so this bound is far beyond any legal schedule.
  const Cycle bound =
      now_ + 16 + (in_flight_ + 1) * (topology_->diameter() + 2) *
                      cfg_.wire_latency * 4;
  while (in_flight_ > 0) {
    tick();
    TCFPN_CHECK(now_ < bound, "network failed to drain ", in_flight_,
                " packets within ", bound - start, " cycles (livelock?)");
  }
  return now_ - start;
}

NetworkState Network::save_state() const {
  TCFPN_CHECK(in_flight_ == 0,
              "network checkpoint requires an idle router (",
              in_flight_, " packets in flight)");
  return NetworkState{now_, next_id_, injected_, delivered_count_,
                      peak_queue_};
}

void Network::restore_state(const NetworkState& s) {
  now_ = s.now;
  next_id_ = s.next_id;
  injected_ = s.injected;
  delivered_count_ = s.delivered;
  peak_queue_ = s.peak_queue;
  in_flight_ = 0;
  for (auto& q : node_queues_) q.clear();
  for (auto& q : ejection_queues_) q.clear();
  deliveries_.clear();
  latencies_ = Samples{};
  pending_fault_delay_ = 0;  // injected delays are transient, not state
}

std::vector<Delivery> Network::take_deliveries() {
  std::vector<Delivery> out;
  out.swap(deliveries_);
  return out;
}

Cycle Network::latency_bound(const std::vector<std::uint64_t>& loads,
                             std::uint32_t max_distance) const {
  std::uint64_t hottest = 0;
  for (auto l : loads) hottest = std::max(hottest, l);
  const Cycle serial = hottest / cfg_.ejection_bandwidth +
                       (hottest % cfg_.ejection_bandwidth != 0 ? 1 : 0);
  const Cycle wire = cfg_.wire_latency * max_distance;
  return std::max<Cycle>(serial, wire);
}

}  // namespace tcfpn::net
