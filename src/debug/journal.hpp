// Bounded ring-buffer event journal (the flight recorder's tape).
//
// Entries carry a monotone sequence number that survives ring eviction, so
// "the last N events before the fault" and "rewind the tape to sequence s"
// are well-defined even after old entries have been dropped. The journal is
// fed from the machine's StepObserver callbacks, which the stepping engine
// delivers in deterministic (group-merge) order — the tape is bit-identical
// for every --host-threads value.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "machine/machine.hpp"

namespace tcfpn::debug {

class Journal {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    machine::DebugEvent event;
  };

  explicit Journal(std::size_t capacity = 4096) : capacity_(capacity) {
    TCFPN_CHECK(capacity_ >= 1, "journal capacity must be >= 1");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sequence number the next push will receive.
  std::uint64_t next_seq() const { return next_seq_; }
  /// Sequence number of the oldest retained entry (== next_seq when empty).
  std::uint64_t first_seq() const {
    return entries_.empty() ? next_seq_ : entries_.front().seq;
  }

  /// Appends an event; evicts the oldest entry when full. Returns the
  /// event's sequence number.
  std::uint64_t push(const machine::DebugEvent& ev) {
    if (entries_.size() == capacity_) entries_.pop_front();
    entries_.push_back(Entry{next_seq_, ev});
    return next_seq_++;
  }

  /// The most recent `n` entries, oldest first.
  std::vector<Entry> last(std::size_t n) const {
    const std::size_t count = std::min(n, entries_.size());
    return std::vector<Entry>(entries_.end() - static_cast<std::ptrdiff_t>(count),
                              entries_.end());
  }

  /// All retained entries, oldest first.
  const std::deque<Entry>& entries() const { return entries_; }

  /// Entries recorded at or after sequence `seq`, oldest first.
  std::vector<Entry> since(std::uint64_t seq) const {
    std::vector<Entry> out;
    for (const Entry& e : entries_) {
      if (e.seq >= seq) out.push_back(e);
    }
    return out;
  }

  /// Rewinds the tape: drops every entry with sequence >= `seq` and makes
  /// `seq` the next sequence to be assigned (time-travel re-record).
  void truncate_from(std::uint64_t seq) {
    while (!entries_.empty() && entries_.back().seq >= seq) {
      entries_.pop_back();
    }
    next_seq_ = seq;
  }

  void clear() {
    entries_.clear();
    next_seq_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tcfpn::debug
