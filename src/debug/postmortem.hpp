// Fault post-mortem documents ("tcfpn-postmortem-v1").
//
// A post-mortem is a self-contained JSON flight record of a failed (or
// diverged) run: what faulted and where, the last stretch of the event
// journal, the flow table at the time of death, and the memory cell the
// fault names. tcfrun --post-mortem writes one on any fault; tcffuzz writes
// one next to every shrunken divergence reproducer; tools/validate_metrics.py
// schema-checks them in CI.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "debug/recorder.hpp"

namespace tcfpn::debug {

/// Renders the post-mortem JSON document. `meta` key/value pairs (tool,
/// program, seed, ...) are copied into the "run" object verbatim alongside
/// the machine's variant/policy/step/cycle summary. `last_events` bounds the
/// journal excerpt. The machine is only read, never stepped — legal on the
/// dirty post-fault state.
std::string post_mortem_json(
    const machine::Machine& m, const Journal& journal, const FaultRecord& fault,
    const std::vector<std::pair<std::string, std::string>>& meta = {},
    std::size_t last_events = 48);

/// Convenience overload over a recorder that captured the fault.
std::string post_mortem_json(
    const machine::Machine& m, const FlightRecorder& recorder,
    const std::vector<std::pair<std::string, std::string>>& meta = {},
    std::size_t last_events = 48);

}  // namespace tcfpn::debug
