#include "debug/recorder.hpp"

#include <algorithm>
#include <cctype>

#include "common/check.hpp"
#include "common/log.hpp"

namespace tcfpn::debug {

FlightRecorder::FlightRecorder(RecorderConfig cfg)
    : cfg_(cfg),
      journal_(cfg.journal_capacity),
      interval_(cfg.checkpoint_every) {
  // Journal-only recorders (checkpoint_every == 0) never thin, so the cap
  // is irrelevant; the time-travel ladder needs at least two rungs.
  TCFPN_CHECK(cfg_.checkpoint_every == 0 || cfg_.max_checkpoints >= 2,
              "recorder needs room for at least two checkpoints");
}

void FlightRecorder::attach(machine::Machine& m) { m.set_observer(this); }

void FlightRecorder::checkpoint_now(machine::Machine& m) {
  checkpoints_.push_back(
      Checkpoint{m.stats().steps, journal_.next_seq(), m.save_state()});
  steps_since_checkpoint_ = 0;
}

const FlightRecorder::Checkpoint* FlightRecorder::nearest(StepId step) const {
  const Checkpoint* best = nullptr;
  for (const Checkpoint& c : checkpoints_) {
    if (c.step <= step) best = &c;
  }
  return best;
}

void FlightRecorder::rewind_to(const Checkpoint* c) {
  TCFPN_CHECK(c != nullptr, "rewind needs a checkpoint");
  const StepId step = c->step;
  const std::uint64_t seq = c->journal_seq;
  journal_.truncate_from(seq);
  // Drop strictly later checkpoints; `c` itself survives.
  std::erase_if(checkpoints_,
                [&](const Checkpoint& k) { return k.step > step; });
  steps_since_checkpoint_ = 0;
  fault_.reset();
}

void FlightRecorder::on_event(const machine::DebugEvent& ev) {
  journal_.push(ev);
}

void FlightRecorder::on_step(machine::Machine& m) {
  if (cfg_.checkpoint_every == 0) return;
  if (++steps_since_checkpoint_ < interval_) return;
  checkpoint_now(m);
  if (checkpoints_.size() > cfg_.max_checkpoints) {
    // Thin geometrically: keep every other checkpoint (always the newest)
    // and double the stride. Long runs converge on a roughly log-spaced
    // ladder: coarse far back, fine near the present.
    std::vector<Checkpoint> kept;
    kept.reserve(checkpoints_.size() / 2 + 1);
    for (std::size_t i = checkpoints_.size(); i-- > 0;) {
      // The oldest checkpoint is pinned so goto can always reach step 0.
      if (i == 0 || (checkpoints_.size() - 1 - i) % 2 == 0) {
        kept.push_back(std::move(checkpoints_[i]));
      }
    }
    std::reverse(kept.begin(), kept.end());
    checkpoints_ = std::move(kept);
    interval_ *= 2;
    obs::debug("debug/recorder",
               "checkpoint ladder thinned to " +
               std::to_string(checkpoints_.size()) + " rungs; stride now " +
               std::to_string(interval_) + " steps — back-steps far from the "
               "present replay longer spans");
  }
}

void FlightRecorder::on_fault(const std::string& message,
                              machine::Machine& m) {
  FaultRecord rec;
  rec.message = message;
  rec.fault_class = classify_fault(message);
  rec.step = m.stats().steps;
  rec.flow = parse_fault_flow(message);
  rec.address = parse_fault_address(message);
  machine::DebugEvent ev;
  ev.kind = machine::DebugEventKind::kFault;
  ev.step = rec.step;
  ev.flow = rec.flow;
  ev.a = rec.address ? static_cast<Word>(*rec.address) : 0;
  journal_.push(ev);
  fault_ = std::move(rec);
}

std::string classify_fault(const std::string& message) {
  auto has = [&](const char* needle) {
    return message.find(needle) != std::string::npos;
  };
  // Checked first: a supervision failure ("shard 2 crashed ...") may quote
  // a lower-level message that would otherwise match a generic needle.
  if (message.rfind("shard ", 0) == 0) return "shard-fault";
  if (has("violation") || has("mixed multioperations")) return "policy";
  if (has("division by zero") || has("modulo by zero")) return "arith";
  if (has("out of range") || has("negative effective address")) return "addr";
  if (has("divergent branch")) return "flow";
  return "other";
}

namespace {

/// Parses the unsigned integer following `key ` in `message`; npos-safe.
std::optional<std::uint64_t> parse_after(const std::string& message,
                                         const std::string& key) {
  const std::size_t at = message.find(key + " ");
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + key.size() + 1;
  if (i >= message.size() ||
      std::isdigit(static_cast<unsigned char>(message[i])) == 0) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  while (i < message.size() &&
         std::isdigit(static_cast<unsigned char>(message[i])) != 0) {
    v = v * 10 + static_cast<std::uint64_t>(message[i] - '0');
    ++i;
  }
  return v;
}

}  // namespace

FlowId parse_fault_flow(const std::string& message) {
  if (auto v = parse_after(message, "flow")) return *v;
  return machine::kNoFlow;
}

std::optional<Addr> parse_fault_address(const std::string& message) {
  if (auto v = parse_after(message, "address")) return *v;
  if (auto v = parse_after(message, "addr")) return *v;
  return std::nullopt;
}

}  // namespace tcfpn::debug
