// The time-travel debugger session driving tools/tcfdbg.
//
// A DebugSession owns a Machine with a FlightRecorder attached and exposes
// the REPL command set: forward stepping with watchpoints/breakpoints,
// reverse stepping (`back`) and absolute travel (`goto`) by restoring the
// nearest checkpoint and deterministically re-stepping, state inspection
// (flows, memory, queues, journal) and fault post-mortems.
//
// Reverse execution leans entirely on the determinism contract: re-running
// the steps between a checkpoint and the target reproduces the exact same
// machine state, journal tape and metrics for every --host-threads value,
// so "back 1" is cheap bookkeeping, not a second execution semantics.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "debug/postmortem.hpp"
#include "debug/recorder.hpp"

namespace tcfpn::debug {

class DebugSession {
 public:
  /// `boot` seeds the machine's root flow(s) — a plain m.boot(thickness)
  /// for most programs, tcf::kernels::boot_esm_threads for ESM-style ones.
  /// Passing it as a function keeps this library independent of the kernel
  /// layer. The recorder attaches *before* boot so flow creation is on the
  /// tape, and checkpoint 0 is taken right after boot.
  using BootFn = std::function<void(machine::Machine&)>;

  DebugSession(const machine::MachineConfig& cfg, const isa::Program& program,
               BootFn boot, RecorderConfig rcfg = {},
               std::vector<std::pair<std::string, std::string>> meta = {});

  machine::Machine& machine() { return machine_; }
  const FlightRecorder& recorder() const { return recorder_; }
  StepId current_step() const { return machine_.stats().steps; }
  bool faulted() const { return recorder_.fault().has_value(); }

  /// Executes one REPL line, writing any output to `out`. Returns false when
  /// the command ends the session (quit/exit), true otherwise. Unknown
  /// commands print a hint and return true — a scripted session never dies
  /// on a typo.
  bool execute(const std::string& line, std::ostream& out);

  // ----- programmatic interface (the REPL commands call these) -----
  /// Steps forward once, honouring watchpoints and breakpoints. Returns
  /// false when the machine cannot advance (done or faulted).
  bool step_once(std::ostream& out);
  /// Travels to the given step: restores the nearest checkpoint when moving
  /// backwards (or off a fault) and re-steps deterministically. Breakpoints
  /// and watchpoints are not honoured while travelling.
  void run_to(StepId target, std::ostream& out);
  void back(StepId n, std::ostream& out);
  /// Runs until a breakpoint/watchpoint fires, the machine halts, or a
  /// fault. Hard-capped to keep scripted sessions bounded.
  void continue_run(std::ostream& out);

  void add_watch(Addr a);
  void remove_watch(Addr a);
  void break_on_pc(std::uint64_t pc) { pc_breaks_.insert(pc); }
  void break_on_fault() { break_fault_ = true; }
  void break_on_thickness() { break_thick_ = true; }

  /// The post-mortem document rendered when a fault was captured.
  const std::optional<std::string>& post_mortem_doc() const {
    return post_mortem_doc_;
  }

 private:
  /// One machine step with fault capture; returns false when no progress.
  bool raw_step();
  /// True when a watch/break condition fired during the last raw_step().
  bool check_triggers(std::uint64_t seq_before, std::ostream& out);
  void print_flows(std::ostream& out) const;
  void print_queues(std::ostream& out) const;
  void print_events(std::size_t n, std::ostream& out) const;
  void print_info(std::ostream& out) const;
  void print_where(std::ostream& out) const;

  machine::Machine machine_;
  FlightRecorder recorder_;
  std::vector<std::pair<std::string, std::string>> meta_;

  std::set<Addr> watches_;
  std::vector<std::pair<Addr, Word>> watch_before_;  ///< scratch per step
  std::set<std::uint64_t> pc_breaks_;
  bool break_fault_ = false;
  bool break_thick_ = false;

  std::optional<std::string> post_mortem_doc_;
};

}  // namespace tcfpn::debug
