#include "debug/postmortem.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "machine/shapes.hpp"
#include "prof/profile.hpp"

namespace tcfpn::debug {

namespace {

void append_event(std::ostringstream& out, const Journal::Entry& e) {
  out << "{\"seq\": " << e.seq << ", \"kind\": \""
      << machine::to_string(e.event.kind) << "\", \"step\": " << e.event.step
      << ", \"flow\": ";
  if (e.event.flow == machine::kNoFlow) {
    out << "null";
  } else {
    out << e.event.flow;
  }
  out << ", \"group\": " << e.event.group << ", \"a\": " << e.event.a
      << ", \"b\": " << e.event.b << "}";
}

}  // namespace

std::string post_mortem_json(
    const machine::Machine& m, const Journal& journal, const FaultRecord& fault,
    const std::vector<std::pair<std::string, std::string>>& meta,
    std::size_t last_events) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"tcfpn-postmortem-v1\",\n  \"run\": {\n";
  for (const auto& [key, value] : meta) {
    out << "    \"" << metrics::json_escape(key) << "\": \""
        << metrics::json_escape(value) << "\",\n";
  }
  out << "    \"variant\": \"" << to_string(m.config().variant) << "\",\n"
      << "    \"policy\": \"" << mem::to_string(m.config().crcw) << "\",\n"
      << "    \"machine_shape\": \""
      << metrics::json_escape(machine::shape_summary(m.config())) << "\",\n"
      << "    \"steps\": " << m.stats().steps << ",\n"
      << "    \"cycles\": " << m.stats().cycles << "\n  },\n";

  out << "  \"fault\": {\n    \"class\": \""
      << metrics::json_escape(fault.fault_class) << "\",\n    \"message\": \""
      << metrics::json_escape(fault.message) << "\",\n    \"step\": "
      << fault.step << ",\n    \"flow\": ";
  if (fault.flow == machine::kNoFlow) {
    out << "null";
  } else {
    out << fault.flow;
  }
  out << ",\n    \"address\": ";
  if (fault.address) {
    out << *fault.address;
  } else {
    out << "null";
  }
  out << "\n  },\n";

  out << "  \"events\": [";
  const auto tail = journal.last(last_events);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    append_event(out, tail[i]);
  }
  out << "\n  ],\n";

  // The flow table at the time of death. Flow ids are dense; cap the dump so
  // a fuzzer-made flow bomb cannot balloon the document.
  out << "  \"flows\": [";
  constexpr std::size_t kMaxFlows = 256;
  std::size_t emitted = 0;
  for (FlowId id = 0; emitted < kMaxFlows; ++id) {
    const machine::TcfDescriptor* f = m.find_flow(id);
    if (f == nullptr) break;
    out << (emitted == 0 ? "\n    " : ",\n    ");
    out << "{\"id\": " << f->id << ", \"parent\": ";
    if (f->parent == machine::kNoFlow) {
      out << "null";
    } else {
      out << f->parent;
    }
    out << ", \"home\": " << f->home << ", \"pc\": " << f->pc
        << ", \"status\": \"" << machine::to_string(f->status)
        << "\", \"mode\": \""
        << (f->mode == machine::FlowMode::kPram ? "pram" : "numa")
        << "\", \"thickness\": " << f->thickness
        << ", \"live_children\": " << f->live_children << "}";
    ++emitted;
  }
  out << "\n  ],\n";

  // The cell the fault names, when it is a shared-memory address in range.
  out << "  \"cells\": [";
  if (fault.address && *fault.address < m.shared().size()) {
    out << "\n    {\"addr\": " << *fault.address << ", \"value\": "
        << m.shared().peek(*fault.address) << ", \"module\": "
        << m.shared().module_of(*fault.address) << "}\n  ";
  }
  out << "]";

  // Where the cycles went up to the moment of death, when the attribution
  // profiler was on. Term totals only — the full cell table belongs to the
  // profile export, not the post-mortem.
  if (m.config().profile) {
    const prof::Profile& p = m.profile();
    out << ",\n  \"profile\": {\n    \"attributed_cycles\": " << p.attributed()
        << ",\n    \"terms\": {";
    bool first = true;
    for (std::size_t t = 0; t < prof::kNumTerms; ++t) {
      const Cycle total = p.term_total(static_cast<prof::Term>(t));
      if (total == 0) continue;
      out << (first ? "" : ",") << "\n      \""
          << prof::to_string(static_cast<prof::Term>(t)) << "\": " << total;
      first = false;
    }
    out << (first ? "}" : "\n    }") << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

std::string post_mortem_json(
    const machine::Machine& m, const FlightRecorder& recorder,
    const std::vector<std::pair<std::string, std::string>>& meta,
    std::size_t last_events) {
  TCFPN_CHECK(recorder.fault().has_value(),
              "post-mortem requested but no fault was recorded");
  return post_mortem_json(m, recorder.journal(), *recorder.fault(), meta,
                          last_events);
}

}  // namespace tcfpn::debug
