// Binary (de)serialization of machine::MachineState.
//
// Format "TCFCKPT\1": an 8-byte magic followed by a flat little-endian
// stream of 64-bit words. Doubles travel as their IEEE-754 bit patterns
// (std::bit_cast), so a serialize/deserialize round trip is bit-exact —
// including the Welford accumulator terms whose last-ulp behaviour the
// determinism tests pin down. Variable-length fields are length-prefixed;
// strings are length + raw bytes (padded to an 8-byte boundary). Maps are
// written in key order and instr_writes arrive pre-sorted from save_state(),
// so equal states always serialize to equal bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/state.hpp"

namespace tcfpn::debug {

/// Serializes a checkpoint image to bytes.
std::vector<std::uint8_t> serialize(const machine::MachineState& s);

/// Parses bytes produced by serialize(). Faults (SimError) on a bad magic,
/// truncated input, or trailing bytes.
machine::MachineState deserialize(const std::vector<std::uint8_t>& bytes);

}  // namespace tcfpn::debug
