// The flight recorder: event journal + periodic checkpoints + fault capture.
//
// Attached to a Machine as its StepObserver, the recorder keeps
//  - a bounded Journal of DebugEvents (delivered in group-merge order, so
//    the tape is bit-identical for every --host-threads value),
//  - periodic MachineState checkpoints every `checkpoint_every` committed
//    steps (thinned geometrically so long runs keep a bounded, roughly
//    log-spaced set plus the most recent ones), and
//  - on a fault, a FaultRecord classifying what went wrong and where.
//
// The debugger layer (debugger.hpp) uses the checkpoints for time travel:
// restore the nearest checkpoint at or before the target step, then re-step
// deterministically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "debug/journal.hpp"
#include "machine/state.hpp"

namespace tcfpn::debug {

struct RecorderConfig {
  std::size_t journal_capacity = 4096;
  /// Take a checkpoint every this many committed steps; 0 disables
  /// checkpointing (journal + fault capture only — the tcfrun post-mortem
  /// mode, which never travels back).
  std::uint64_t checkpoint_every = 64;
  /// Checkpoint count cap; when exceeded, every other retained checkpoint is
  /// dropped and the interval doubles (the newest is always kept).
  std::size_t max_checkpoints = 64;
};

/// A classified fault, captured when a SimError escapes Machine::step().
struct FaultRecord {
  std::string message;
  std::string fault_class;  ///< policy | arith | addr | flow | other | divergence
  StepId step = 0;          ///< step during which the fault fired
  FlowId flow = machine::kNoFlow;       ///< offending flow when parseable
  std::optional<Addr> address;          ///< offending address when parseable
};

class FlightRecorder final : public machine::StepObserver {
 public:
  explicit FlightRecorder(RecorderConfig cfg = {});

  /// Registers this recorder as `m`'s observer. Call before boot() so flow
  /// creation lands on the tape. Does not take an initial checkpoint — the
  /// debugger calls checkpoint_now() after booting so checkpoint 0 reflects
  /// the post-boot state.
  void attach(machine::Machine& m);

  struct Checkpoint {
    StepId step = 0;            ///< machine step the state was captured at
    std::uint64_t journal_seq;  ///< journal next_seq at capture time
    machine::MachineState state;
  };

  /// Takes a checkpoint of `m`'s current state unconditionally.
  void checkpoint_now(machine::Machine& m);

  /// Latest checkpoint with step <= `step`; nullptr when none qualifies.
  const Checkpoint* nearest(StepId step) const;
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// Rewinds the recorder to checkpoint `c`: truncates the journal at the
  /// checkpoint's sequence, drops every later checkpoint and clears any
  /// captured fault. `c` must point into checkpoints(). The caller restores
  /// the machine from its own copy of c->state — rewinding invalidates `c`.
  void rewind_to(const Checkpoint* c);

  const Journal& journal() const { return journal_; }
  const std::optional<FaultRecord>& fault() const { return fault_; }
  void clear_fault() { fault_.reset(); }

  // ----- StepObserver -----
  void on_event(const machine::DebugEvent& ev) override;
  void on_step(machine::Machine& m) override;
  void on_fault(const std::string& message, machine::Machine& m) override;

 private:
  RecorderConfig cfg_;
  Journal journal_;
  std::vector<Checkpoint> checkpoints_;  ///< ascending by step
  std::uint64_t interval_;               ///< current checkpoint stride
  std::uint64_t steps_since_checkpoint_ = 0;
  std::optional<FaultRecord> fault_;
};

/// Classifies a SimError message into a coarse fault class: "policy" (CRCW
/// violations, mixed multioperations), "arith" (division/modulo by zero),
/// "addr" (out-of-range or negative addresses), "flow" (divergent branches),
/// "other". The conformance harness's fault_class delegates here.
std::string classify_fault(const std::string& message);

/// Extracts "flow N" from a fault message; kNoFlow when absent.
FlowId parse_fault_flow(const std::string& message);

/// Extracts "address N" (or "addr N") from a fault message.
std::optional<Addr> parse_fault_address(const std::string& message);

}  // namespace tcfpn::debug
