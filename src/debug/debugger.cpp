#include "debug/debugger.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn::debug {

namespace {

/// Hard cap on steps a single `continue`/`goto` may execute: scripted CI
/// sessions must terminate even on runaway programs.
constexpr std::uint64_t kMaxTravelSteps = 1u << 20;

}  // namespace

DebugSession::DebugSession(
    const machine::MachineConfig& cfg, const isa::Program& program,
    BootFn boot, RecorderConfig rcfg,
    std::vector<std::pair<std::string, std::string>> meta)
    : machine_(cfg), recorder_(rcfg), meta_(std::move(meta)) {
  machine_.load(program);
  recorder_.attach(machine_);
  TCFPN_CHECK(static_cast<bool>(boot), "debug session needs a boot function");
  boot(machine_);
  // Checkpoint 0: the post-boot state, so `goto 0` lands exactly where the
  // session began (boot events stay on the tape before it).
  recorder_.checkpoint_now(machine_);
}

bool DebugSession::raw_step() {
  if (faulted()) return false;
  try {
    return machine_.step();
  } catch (const SimError&) {
    // The recorder's on_fault hook already captured the record; freeze the
    // post-mortem now, while the dying state is still inspectable — later
    // time travel restores over it.
    post_mortem_doc_ = post_mortem_json(machine_, recorder_, meta_);
    return false;
  }
}

bool DebugSession::check_triggers(std::uint64_t seq_before, std::ostream& out) {
  bool hit = false;
  for (const auto& [addr, before] : watch_before_) {
    const Word now = machine_.shared().peek(addr);
    if (now != before) {
      out << "watch: shared[" << addr << "] " << before << " -> " << now
          << " at step " << current_step() << "\n";
      hit = true;
    }
  }
  if (break_thick_) {
    for (const auto& e : recorder_.journal().since(seq_before)) {
      if (e.event.kind == machine::DebugEventKind::kThicknessChanged) {
        out << "break: flow " << e.event.flow << " thickness " << e.event.a
            << " -> " << e.event.b << " at step " << e.event.step << "\n";
        hit = true;
      }
    }
  }
  if (!pc_breaks_.empty()) {
    for (FlowId id = 0;; ++id) {
      const machine::TcfDescriptor* f = machine_.find_flow(id);
      if (f == nullptr) break;
      if (f->status != machine::FlowStatus::kHalted &&
          pc_breaks_.count(f->pc) != 0) {
        out << "break: flow " << f->id << " at pc " << f->pc << " (step "
            << current_step() << ")\n";
        hit = true;
      }
    }
  }
  return hit;
}

bool DebugSession::step_once(std::ostream& out) {
  if (faulted()) {
    out << "machine is faulted; use `back`/`goto` to travel, or `postmortem`\n";
    return false;
  }
  if (machine_.done()) {
    out << "machine is done (all flows halted) at step " << current_step()
        << "\n";
    return false;
  }
  watch_before_.clear();
  for (Addr a : watches_) {
    watch_before_.emplace_back(a, machine_.shared().peek(a));
  }
  const std::uint64_t seq_before = recorder_.journal().next_seq();
  const bool advanced = raw_step();
  if (faulted()) {
    out << "fault at step " << recorder_.fault()->step << " ["
        << recorder_.fault()->fault_class
        << "]: " << recorder_.fault()->message << "\n";
    return false;
  }
  check_triggers(seq_before, out);
  return advanced;
}

void DebugSession::run_to(StepId target, std::ostream& out) {
  if (target < current_step() || faulted()) {
    const FlightRecorder::Checkpoint* c = recorder_.nearest(target);
    if (c == nullptr) {
      out << "no checkpoint at or before step " << target << "\n";
      return;
    }
    // Copy out of the recorder first: rewind_to edits the checkpoint vector
    // the pointer aims into.
    machine::MachineState snap = c->state;
    recorder_.rewind_to(c);
    post_mortem_doc_.reset();
    machine_.restore_state(snap);
  }
  std::uint64_t travelled = 0;
  while (current_step() < target) {
    if (!raw_step()) break;
    if (++travelled >= kMaxTravelSteps) {
      out << "goto: gave up after " << travelled << " steps\n";
      break;
    }
  }
  if (faulted()) {
    out << "fault at step " << recorder_.fault()->step << " ["
        << recorder_.fault()->fault_class
        << "]: " << recorder_.fault()->message << "\n";
  } else if (current_step() < target) {
    out << "stopped at step " << current_step() << " (machine done)\n";
  } else {
    out << "at step " << current_step() << "\n";
  }
}

void DebugSession::back(StepId n, std::ostream& out) {
  const StepId cur = current_step();
  run_to(n >= cur ? 0 : cur - n, out);
}

void DebugSession::continue_run(std::ostream& out) {
  if (faulted()) {
    out << "machine is faulted; use `back`/`goto` to travel, or `postmortem`\n";
    return;
  }
  std::uint64_t travelled = 0;
  while (!machine_.done()) {
    watch_before_.clear();
    for (Addr a : watches_) {
      watch_before_.emplace_back(a, machine_.shared().peek(a));
    }
    const std::uint64_t seq_before = recorder_.journal().next_seq();
    if (!raw_step()) break;
    if (check_triggers(seq_before, out)) return;
    if (++travelled >= kMaxTravelSteps) {
      out << "continue: gave up after " << travelled << " steps\n";
      return;
    }
  }
  if (faulted()) {
    out << "fault at step " << recorder_.fault()->step << " ["
        << recorder_.fault()->fault_class
        << "]: " << recorder_.fault()->message << "\n";
  } else {
    out << "machine done at step " << current_step() << " ("
        << machine_.stats().cycles << " cycles)\n";
  }
}

void DebugSession::add_watch(Addr a) { watches_.insert(a); }
void DebugSession::remove_watch(Addr a) { watches_.erase(a); }

void DebugSession::print_flows(std::ostream& out) const {
  for (FlowId id = 0;; ++id) {
    const machine::TcfDescriptor* f = machine_.find_flow(id);
    if (f == nullptr) break;
    out << "flow " << f->id << ": " << machine::to_string(f->status)
        << " pc=" << f->pc << " thickness=" << f->thickness << " home=g"
        << f->home << " mode="
        << (f->mode == machine::FlowMode::kPram ? "pram" : "numa");
    if (f->parent != machine::kNoFlow) out << " parent=" << f->parent;
    if (f->live_children > 0) out << " children=" << f->live_children;
    out << "\n";
  }
}

void DebugSession::print_queues(std::ostream& out) const {
  for (GroupId g = 0; g < machine_.config().groups; ++g) {
    out << "group " << g << ": resident=" << machine_.resident_flows(g) << "/"
        << machine_.config().slots_per_group << "\n";
  }
  out << "live flows: " << machine_.live_flows() << "\n";
}

void DebugSession::print_events(std::size_t n, std::ostream& out) const {
  for (const auto& e : recorder_.journal().last(n)) {
    out << "#" << e.seq << " step " << e.event.step << " "
        << machine::to_string(e.event.kind);
    if (e.event.flow != machine::kNoFlow) out << " flow=" << e.event.flow;
    out << " a=" << e.event.a << " b=" << e.event.b << "\n";
  }
}

void DebugSession::print_info(std::ostream& out) const {
  const auto& cfg = machine_.config();
  out << "variant=" << machine::to_string(cfg.variant)
      << " policy=" << mem::to_string(cfg.crcw) << " groups=" << cfg.groups
      << " slots=" << cfg.slots_per_group << "\n"
      << "journal: " << recorder_.journal().size() << " events (seq "
      << recorder_.journal().first_seq() << ".."
      << recorder_.journal().next_seq() << ")\n"
      << "checkpoints: " << recorder_.checkpoints().size();
  if (!recorder_.checkpoints().empty()) {
    out << " (steps";
    for (const auto& c : recorder_.checkpoints()) out << " " << c.step;
    out << ")";
  }
  out << "\n";
  out << "watches:";
  for (Addr a : watches_) out << " " << a;
  out << "\nbreakpoints:";
  for (std::uint64_t pc : pc_breaks_) out << " pc=" << pc;
  if (break_fault_) out << " fault";
  if (break_thick_) out << " thickness";
  out << "\n";
}

void DebugSession::print_where(std::ostream& out) const {
  out << "step " << current_step() << ", " << machine_.stats().cycles
      << " cycles, " << machine_.live_flows() << " live flows";
  if (faulted()) {
    out << " [FAULTED: " << recorder_.fault()->fault_class << "]";
  } else if (machine_.done()) {
    out << " [done]";
  }
  out << "\n";
}

bool DebugSession::execute(const std::string& line, std::ostream& out) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;  // blank line or comment

  auto parse_u64 = [&](std::uint64_t& v) -> bool {
    if (in >> v) return true;
    out << "expected a number\n";
    return false;
  };

  if (cmd == "quit" || cmd == "q" || cmd == "exit") return false;
  if (cmd == "help") {
    out << "commands:\n"
           "  step|s [N]       advance N steps (default 1)\n"
           "  back|b [N]       travel N steps backwards (default 1)\n"
           "  goto|g STEP      travel to an absolute step\n"
           "  continue|c|run   run until break/watch/fault/done\n"
           "  watch ADDR       watch a shared-memory cell\n"
           "  unwatch ADDR     remove a watch\n"
           "  break pc N       break when a live flow sits at pc N\n"
           "  break fault      run until a fault (continue stops anyway)\n"
           "  break thick      break on thickness changes\n"
           "  flows            list flow descriptors\n"
           "  mem ADDR [N]     dump N shared words from ADDR\n"
           "  queues           TCF buffer occupancy per group\n"
           "  events [N]       last N journal events (default 16)\n"
           "  info             session configuration and tape status\n"
           "  where|status     current step / fault state\n"
           "  postmortem [F]   print (or write to F) the fault post-mortem\n"
           "  quit|q|exit      end the session\n";
    return true;
  }
  if (cmd == "step" || cmd == "s") {
    std::uint64_t n = 1;
    in >> n;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!step_once(out)) break;
    }
    print_where(out);
    return true;
  }
  if (cmd == "back" || cmd == "b") {
    std::uint64_t n = 1;
    in >> n;
    back(n, out);
    return true;
  }
  if (cmd == "goto" || cmd == "g") {
    std::uint64_t target = 0;
    if (!parse_u64(target)) return true;
    run_to(target, out);
    return true;
  }
  if (cmd == "continue" || cmd == "c" || cmd == "run") {
    continue_run(out);
    return true;
  }
  if (cmd == "watch") {
    std::uint64_t a = 0;
    if (!parse_u64(a)) return true;
    if (a >= machine_.shared().size()) {
      out << "address " << a << " out of range (shared memory has "
          << machine_.shared().size() << " words)\n";
      return true;
    }
    add_watch(a);
    out << "watching shared[" << a << "]\n";
    return true;
  }
  if (cmd == "unwatch") {
    std::uint64_t a = 0;
    if (!parse_u64(a)) return true;
    remove_watch(a);
    return true;
  }
  if (cmd == "break") {
    std::string what;
    in >> what;
    if (what == "pc") {
      std::uint64_t pc = 0;
      if (!parse_u64(pc)) return true;
      break_on_pc(pc);
      out << "break at pc " << pc << "\n";
    } else if (what == "fault") {
      break_on_fault();
      out << "break on fault\n";
    } else if (what == "thick" || what == "thickness") {
      break_on_thickness();
      out << "break on thickness changes\n";
    } else {
      out << "usage: break pc N | break fault | break thick\n";
    }
    return true;
  }
  if (cmd == "flows") {
    print_flows(out);
    return true;
  }
  if (cmd == "mem") {
    std::uint64_t a = 0;
    if (!parse_u64(a)) return true;
    std::uint64_t n = 1;
    in >> n;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (a + i >= machine_.shared().size()) {
        out << "shared[" << a + i << "]: out of range\n";
        break;
      }
      out << "shared[" << a + i << "] = " << machine_.shared().peek(a + i)
          << "\n";
    }
    return true;
  }
  if (cmd == "queues") {
    print_queues(out);
    return true;
  }
  if (cmd == "events") {
    std::uint64_t n = 16;
    in >> n;
    print_events(n, out);
    return true;
  }
  if (cmd == "info") {
    print_info(out);
    return true;
  }
  if (cmd == "where" || cmd == "status") {
    print_where(out);
    return true;
  }
  if (cmd == "postmortem") {
    if (!post_mortem_doc_) {
      out << "no fault recorded\n";
      return true;
    }
    std::string file;
    if (in >> file) {
      std::ofstream f(file, std::ios::binary);
      if (!f) {
        out << "cannot write " << file << "\n";
        return true;
      }
      f << *post_mortem_doc_;
      out << "post-mortem written to " << file << "\n";
    } else {
      out << *post_mortem_doc_;
    }
    return true;
  }
  out << "unknown command '" << cmd << "' (try `help`)\n";
  return true;
}

}  // namespace tcfpn::debug
