#include "debug/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace tcfpn::debug {

namespace {

// Version 2 appends the dead-group vector (degraded-mode execution,
// DESIGN.md §9) after the pending-spawn list. Version 3 appends the
// attribution profile (src/prof, DESIGN.md §11) after the step samples;
// version-2 images still deserialize (with an empty profile).
constexpr char kMagic[8] = {'T', 'C', 'F', 'C', 'K', 'P', 'T', '\3'};
constexpr char kMagicV2[8] = {'T', 'C', 'F', 'C', 'K', 'P', 'T', '\2'};

class Writer {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) out_.push_back(static_cast<std::uint8_t>(c));
    // Pad to an 8-byte boundary so every u64 read stays aligned in concept
    // (the reader is byte-addressed; padding just keeps the format regular).
    while (out_.size() % 8 != 0) out_.push_back(0);
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    TCFPN_CHECK(pos_ + 8 <= bytes_.size(),
                "truncated checkpoint at byte ", pos_);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool b() { return u64() != 0; }
  /// Bounded count read: guards length-prefixed loops against garbage sizes
  /// before any allocation happens.
  std::size_t count(const char* what) {
    const std::uint64_t n = u64();
    TCFPN_CHECK(n <= bytes_.size(),
                "implausible ", what, " count ", n, " in checkpoint");
    return static_cast<std::size_t>(n);
  }
  std::string str() {
    const std::size_t n = count("string-length");
    TCFPN_CHECK(pos_ + n <= bytes_.size(),
                "truncated checkpoint string at byte ", pos_);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    while (pos_ % 8 != 0) {
      TCFPN_CHECK(pos_ < bytes_.size(), "truncated checkpoint padding");
      ++pos_;
    }
    return s;
  }
  bool done() const { return pos_ == bytes_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

void write_stats(Writer& w, const machine::MachineStats& st) {
  w.u64(st.cycles);
  w.u64(st.steps);
  w.u64(st.tcf_instructions);
  w.u64(st.operations);
  w.u64(st.instruction_fetches);
  w.u64(st.spawns);
  w.u64(st.joins);
  w.u64(st.busy_slots);
  w.u64(st.idle_slots);
  w.u64(st.memory_wait_cycles);
  w.u64(st.task_switch_cycles);
  w.u64(st.branch_cost_cycles);
}

machine::MachineStats read_stats(Reader& r) {
  machine::MachineStats st;
  st.cycles = r.u64();
  st.steps = r.u64();
  st.tcf_instructions = r.u64();
  st.operations = r.u64();
  st.instruction_fetches = r.u64();
  st.spawns = r.u64();
  st.joins = r.u64();
  st.busy_slots = r.u64();
  st.idle_slots = r.u64();
  st.memory_wait_cycles = r.u64();
  st.task_switch_cycles = r.u64();
  st.branch_cost_cycles = r.u64();
  return st;
}

void write_flow(Writer& w, const machine::FlowState& f) {
  w.u64(f.id);
  w.u64(f.parent);
  w.u64(f.home);
  w.u64(f.pc);
  w.u64(static_cast<std::uint64_t>(f.mode));
  w.i64(f.thickness);
  w.u64(f.numa_block);
  w.u64(static_cast<std::uint64_t>(f.status));
  w.u64(f.live_children);
  w.u64(f.next_unexecuted);
  w.u64(f.lane_regs.size());
  for (const auto& regs : f.lane_regs) {
    for (Word v : regs) w.i64(v);
  }
  w.u64(f.call_stack.size());
  for (std::uint64_t pc : f.call_stack) w.u64(pc);
  w.u64(f.instr_writes.size());
  for (const auto& [a, v] : f.instr_writes) {
    w.u64(a);
    w.i64(v);
  }
  w.b(f.multiop_blocked);
  w.b(f.evicted_once);
}

machine::FlowState read_flow(Reader& r) {
  machine::FlowState f;
  f.id = r.u64();
  f.parent = r.u64();
  f.home = static_cast<GroupId>(r.u64());
  f.pc = r.u64();
  f.mode = static_cast<machine::FlowMode>(r.u64());
  f.thickness = r.i64();
  f.numa_block = static_cast<std::uint32_t>(r.u64());
  f.status = static_cast<machine::FlowStatus>(r.u64());
  f.live_children = static_cast<std::uint32_t>(r.u64());
  f.next_unexecuted = r.u64();
  f.lane_regs.resize(r.count("lane"));
  for (auto& regs : f.lane_regs) {
    for (Word& v : regs) v = r.i64();
  }
  f.call_stack.resize(r.count("call-stack"));
  for (std::uint64_t& pc : f.call_stack) pc = r.u64();
  f.instr_writes.resize(r.count("instr-write"));
  for (auto& [a, v] : f.instr_writes) {
    a = r.u64();
    v = r.i64();
  }
  f.multiop_blocked = r.b();
  f.evicted_once = r.b();
  return f;
}

void write_ids(Writer& w, const std::vector<FlowId>& ids) {
  w.u64(ids.size());
  for (FlowId id : ids) w.u64(id);
}

std::vector<FlowId> read_ids(Reader& r) {
  std::vector<FlowId> ids(r.count("flow-id"));
  for (FlowId& id : ids) id = r.u64();
  return ids;
}

}  // namespace

std::vector<std::uint8_t> serialize(const machine::MachineState& s) {
  Writer w;
  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof(kMagic));
  w.u64(s.config_fingerprint);
  w.u64(s.program_fingerprint);
  write_stats(w, s.stats);

  w.u64(s.flows.size());
  for (const auto& f : s.flows) write_flow(w, f);

  w.u64(s.groups.size());
  for (const auto& g : s.groups) {
    write_ids(w, g.resident);
    write_ids(w, g.overflow);
  }
  write_ids(w, s.pending_spawns);

  w.u64(s.dead_groups.size());
  for (std::uint8_t d : s.dead_groups) w.u64(d);

  w.u64(s.shared.store.size());
  for (Word v : s.shared.store) w.i64(v);
  w.u64(s.shared.step);
  w.u64(s.shared.next_ticket);
  w.u64(s.shared.total_reads);
  w.u64(s.shared.total_writes);
  w.u64(s.shared.total_multiops);
  w.u64(s.shared.last_traffic.size());
  for (const auto& t : s.shared.last_traffic) {
    w.u64(t.reads);
    w.u64(t.writes);
    w.u64(t.multiops);
  }

  w.u64(s.locals.size());
  for (const auto& lm : s.locals) {
    w.u64(lm.store.size());
    for (Word v : lm.store) w.i64(v);
    w.u64(lm.reads);
    w.u64(lm.writes);
    w.u64(lm.remote_accesses);
  }

  w.u64(s.net.now);
  w.u64(s.net.next_id);
  w.u64(s.net.injected);
  w.u64(s.net.delivered);
  w.u64(s.net.peak_queue);

  w.u64(s.metrics.size());
  for (const auto& [path, ins] : s.metrics) {
    w.str(path);
    w.u64(static_cast<std::uint64_t>(ins.kind));
    w.u64(ins.count);
    w.f64(ins.gauge_value);
    w.b(ins.gauge_set);
    w.u64(ins.acc.n);
    w.f64(ins.acc.sum);
    w.f64(ins.acc.mean);
    w.f64(ins.acc.m2);
    w.f64(ins.acc.min);
    w.f64(ins.acc.max);
    w.f64(ins.lo);
    w.f64(ins.hi);
    w.u64(ins.buckets.size());
    for (std::uint64_t b : ins.buckets) w.u64(b);
  }

  w.u64(s.debug_out.size());
  for (Word v : s.debug_out) w.i64(v);

  w.u64(s.step_samples.size());
  for (const auto& smp : s.step_samples) {
    w.u64(smp.step);
    w.u64(smp.cycles);
    w.u64(smp.operations);
    w.u64(smp.busy_slots);
    w.u64(smp.idle_slots);
    w.u64(smp.live_flows);
  }

  w.u64(s.profile.cells.size());
  for (const auto& [k, c] : s.profile.cells) {
    w.i64(k.group);
    w.i64(k.flow);
    w.i64(k.pc);
    w.u64(static_cast<std::uint64_t>(k.term));
    w.u64(c);
  }
  w.u64(s.profile.steps.size());
  for (const auto& rec : s.profile.steps) {
    w.u64(rec.step);
    w.i64(rec.limit_group);
    w.u64(rec.fill);
    w.u64(rec.slot);
    w.u64(rec.net);
    w.u64(rec.fault);
    w.u64(rec.work);
  }
  w.b(s.profile.steps_truncated);

  auto body = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

machine::MachineState deserialize(const std::vector<std::uint8_t>& bytes) {
  const bool v3 =
      bytes.size() >= sizeof(kMagic) &&
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
  const bool v2 =
      !v3 && bytes.size() >= sizeof(kMagicV2) &&
      std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0;
  TCFPN_CHECK(v3 || v2, "not a tcfpn checkpoint (bad magic)");
  std::vector<std::uint8_t> body(bytes.begin() + sizeof(kMagic), bytes.end());
  Reader r(body);
  machine::MachineState s;
  s.config_fingerprint = r.u64();
  s.program_fingerprint = r.u64();
  s.stats = read_stats(r);

  s.flows.resize(r.count("flow"));
  for (auto& f : s.flows) f = read_flow(r);

  s.groups.resize(r.count("group"));
  for (auto& g : s.groups) {
    g.resident = read_ids(r);
    g.overflow = read_ids(r);
  }
  s.pending_spawns = read_ids(r);

  s.dead_groups.resize(r.count("dead-group"));
  for (std::uint8_t& d : s.dead_groups) {
    d = static_cast<std::uint8_t>(r.u64() != 0);
  }

  s.shared.store.resize(r.count("shared-word"));
  for (Word& v : s.shared.store) v = r.i64();
  s.shared.step = r.u64();
  s.shared.next_ticket = r.u64();
  s.shared.total_reads = r.u64();
  s.shared.total_writes = r.u64();
  s.shared.total_multiops = r.u64();
  s.shared.last_traffic.resize(r.count("module"));
  for (auto& t : s.shared.last_traffic) {
    t.reads = r.u64();
    t.writes = r.u64();
    t.multiops = r.u64();
  }

  s.locals.resize(r.count("local-memory"));
  for (auto& lm : s.locals) {
    lm.store.resize(r.count("local-word"));
    for (Word& v : lm.store) v = r.i64();
    lm.reads = r.u64();
    lm.writes = r.u64();
    lm.remote_accesses = r.u64();
  }

  s.net.now = r.u64();
  s.net.next_id = r.u64();
  s.net.injected = r.u64();
  s.net.delivered = r.u64();
  s.net.peak_queue = static_cast<std::size_t>(r.u64());

  const std::size_t n_metrics = r.count("metric");
  for (std::size_t i = 0; i < n_metrics; ++i) {
    const std::string path = r.str();
    metrics::RawInstrument ins;
    ins.kind = static_cast<metrics::InstrumentKind>(r.u64());
    ins.count = r.u64();
    ins.gauge_value = r.f64();
    ins.gauge_set = r.b();
    ins.acc.n = r.u64();
    ins.acc.sum = r.f64();
    ins.acc.mean = r.f64();
    ins.acc.m2 = r.f64();
    ins.acc.min = r.f64();
    ins.acc.max = r.f64();
    ins.lo = r.f64();
    ins.hi = r.f64();
    ins.buckets.resize(r.count("bucket"));
    for (std::uint64_t& b : ins.buckets) b = r.u64();
    s.metrics.emplace(path, std::move(ins));
  }

  s.debug_out.resize(r.count("debug-word"));
  for (Word& v : s.debug_out) v = r.i64();

  s.step_samples.resize(r.count("step-sample"));
  for (auto& smp : s.step_samples) {
    smp.step = r.u64();
    smp.cycles = r.u64();
    smp.operations = r.u64();
    smp.busy_slots = r.u64();
    smp.idle_slots = r.u64();
    smp.live_flows = r.u64();
  }

  if (v3) {
    const std::size_t n_cells = r.count("profile-cell");
    for (std::size_t i = 0; i < n_cells; ++i) {
      prof::Key k;
      k.group = r.i64();
      k.flow = r.i64();
      k.pc = r.i64();
      k.term = static_cast<prof::Term>(r.u64());
      const Cycle c = r.u64();
      s.profile.cells.emplace(k, c);
    }
    s.profile.steps.resize(r.count("profile-step"));
    for (auto& rec : s.profile.steps) {
      rec.step = r.u64();
      rec.limit_group = r.i64();
      rec.fill = r.u64();
      rec.slot = r.u64();
      rec.net = r.u64();
      rec.fault = r.u64();
      rec.work = r.u64();
    }
    s.profile.steps_truncated = r.b();
  }

  TCFPN_CHECK(r.done(), "trailing bytes in checkpoint after byte ", r.pos());
  return s;
}

}  // namespace tcfpn::debug
