// Front-ends for the comparison execution models, all running on the same
// machine substrate (Section 3.2's variant-to-existing-machine mapping):
//
//   run_threaded_esm — SB-PRAM/ECLIPSE style: a fixed set of P×T_p
//                      thickness-1 threads, programs use tid/thread-count
//                      loops (single-operation variant, Fig. 10);
//   run_pram_numa    — TOTAL ECLIPSE style: as above plus NUMA bunching
//                      (configurable single-operation variant, Fig. 11);
//   run_xmt          — XMT style: asynchronous fork/join flows
//                      (multi-instruction variant, Fig. 9);
//   run_simd         — classical vector machine: one processor, fixed
//                      thickness, masked conditionals
//                      (fixed-thickness variant, Fig. 12);
//   run_tcf          — the extended model itself (single-instruction or
//                      balanced variants, Figs. 7/8).
//
// Each helper fixes the variant on the config, loads the program, boots
// with the model's convention and runs to completion.
#pragma once

#include <cstdint>

#include "isa/program.hpp"
#include "machine/machine.hpp"

namespace tcfpn::baseline {

struct Outcome {
  bool completed = false;
  machine::MachineStats stats;
  std::vector<Word> debug_output;
};

/// Boots `threads` thickness-1 flows (defaults to all P×T_p slots) with
/// r1 = tid, r2 = thread count, on a single-operation machine.
Outcome run_threaded_esm(machine::MachineConfig cfg,
                         const isa::Program& program,
                         std::uint64_t threads = 0);

/// Same thread conventions on a configurable-single-operation machine
/// (programs may use NUMASET bunching).
Outcome run_pram_numa(machine::MachineConfig cfg, const isa::Program& program,
                      std::uint64_t threads = 0);

/// Multi-instruction machine; boots a single thickness-1 main flow that
/// forks workers (SPAWN/JOINALL).
Outcome run_xmt(machine::MachineConfig cfg, const isa::Program& program);

/// Fixed-thickness machine: one group, boot thickness = `width`
/// (defaults to T_p).
Outcome run_simd(machine::MachineConfig cfg, const isa::Program& program,
                 Word width = 0);

/// Extended PRAM-NUMA machine (single-instruction unless cfg says
/// balanced); boots one root flow of the given thickness.
Outcome run_tcf(machine::MachineConfig cfg, const isa::Program& program,
                Word root_thickness = 1);

/// Convenience for host-parallelism sweeps: the same config with a
/// different host-thread count. The simulated results of every frontend are
/// bit-identical across host_threads values (the determinism contract of
/// the parallel stepping engine); only wall-clock time changes.
inline machine::MachineConfig with_host_threads(machine::MachineConfig cfg,
                                                std::uint32_t threads) {
  cfg.host_threads = threads;
  return cfg;
}

}  // namespace tcfpn::baseline
