#include "baseline/frontends.hpp"

#include "common/check.hpp"
#include "tcf/kernels.hpp"

namespace tcfpn::baseline {

namespace {

Outcome finish(machine::Machine& m) {
  const auto run = m.run();
  Outcome out;
  out.completed = run.completed;
  out.stats = m.stats();
  out.debug_output = m.debug_output();
  return out;
}

}  // namespace

Outcome run_threaded_esm(machine::MachineConfig cfg,
                         const isa::Program& program, std::uint64_t threads) {
  cfg.variant = machine::Variant::kSingleOperation;
  machine::Machine m(cfg);
  m.load(program);
  if (threads == 0) threads = cfg.total_slots();
  tcf::kernels::boot_esm_threads(m, program.entry(), threads);
  return finish(m);
}

Outcome run_pram_numa(machine::MachineConfig cfg, const isa::Program& program,
                      std::uint64_t threads) {
  cfg.variant = machine::Variant::kConfigSingleOperation;
  machine::Machine m(cfg);
  m.load(program);
  if (threads == 0) threads = cfg.total_slots();
  tcf::kernels::boot_esm_threads(m, program.entry(), threads);
  return finish(m);
}

Outcome run_xmt(machine::MachineConfig cfg, const isa::Program& program) {
  cfg.variant = machine::Variant::kMultiInstruction;
  machine::Machine m(cfg);
  m.load(program);
  m.boot(1);
  return finish(m);
}

Outcome run_simd(machine::MachineConfig cfg, const isa::Program& program,
                 Word width) {
  cfg.variant = machine::Variant::kFixedThickness;
  cfg.groups = 1;  // "limit the number of processors to one"
  machine::Machine m(cfg);
  m.load(program);
  if (width == 0) width = cfg.slots_per_group;
  m.boot(width);
  return finish(m);
}

Outcome run_tcf(machine::MachineConfig cfg, const isa::Program& program,
                Word root_thickness) {
  if (cfg.variant != machine::Variant::kBalanced) {
    cfg.variant = machine::Variant::kSingleInstruction;
  }
  machine::Machine m(cfg);
  m.load(program);
  m.boot(root_thickness);
  return finish(m);
}

}  // namespace tcfpn::baseline
