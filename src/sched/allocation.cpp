#include "sched/allocation.hpp"

#include "sched/balancer.hpp"

namespace tcfpn::sched {

FlowId boot_vertical(machine::Machine& m, std::size_t entry, Word thickness,
                     GroupId group) {
  return m.boot_at(entry, thickness, group);
}

std::vector<FlowId> boot_horizontal(machine::Machine& m, std::size_t entry,
                                    Word thickness, std::uint32_t fragments) {
  const auto parts = split_even(thickness, fragments);
  std::vector<FlowId> ids;
  ids.reserve(parts.size());
  const std::uint32_t groups = m.config().groups;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const FlowId id = m.boot_at(entry, parts[i].thickness,
                                static_cast<GroupId>(i % groups));
    m.poke_reg(id, 0, 15, parts[i].base);  // r15 = fragment base offset
    // Broadcast the base to every lane (boot leaves lanes zeroed).
    for (Word lane = 1; lane < parts[i].thickness; ++lane) {
      m.poke_reg(id, static_cast<LaneId>(lane), 15, parts[i].base);
    }
    ids.push_back(id);
  }
  return ids;
}

void install_lpt_hook(machine::Machine& m) {
  machine::Machine* mp = &m;
  m.set_allocation_hook([mp](const machine::TcfDescriptor&) {
    GroupId best = 0;
    std::size_t best_load = ~std::size_t{0};
    for (GroupId g = 0; g < mp->config().groups; ++g) {
      if (!mp->group_alive(g)) continue;  // degraded mode (DESIGN.md §9)
      const std::size_t load = mp->resident_flows(g);
      if (load < best_load) {
        best_load = load;
        best = g;
      }
    }
    return best;
  });
}

void install_first_group_hook(machine::Machine& m) {
  m.set_allocation_hook([](const machine::TcfDescriptor&) {
    return GroupId{0};
  });
}

void install_auto_splitter(machine::Machine& m, Word bound) {
  TCFPN_CHECK(bound >= 1, "split bound must be >= 1");
  m.set_spawn_splitter([bound](Word thickness) {
    std::vector<Word> out;
    if (thickness <= bound) {
      out.push_back(thickness);
      return out;
    }
    for (const auto& frag : split_thickness(thickness, bound)) {
      out.push_back(frag.thickness);
    }
    return out;
  });
}

}  // namespace tcfpn::sched
