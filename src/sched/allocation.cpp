#include "sched/allocation.hpp"

#include "sched/balancer.hpp"

namespace tcfpn::sched {

FlowId boot_vertical(machine::Machine& m, std::size_t entry, Word thickness,
                     GroupId group) {
  return m.boot_at(entry, thickness, group);
}

std::vector<FlowId> boot_horizontal(machine::Machine& m, std::size_t entry,
                                    Word thickness, std::uint32_t fragments) {
  const auto parts = split_even(thickness, fragments);
  std::vector<FlowId> ids;
  ids.reserve(parts.size());
  const std::uint32_t groups = m.config().groups;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const FlowId id = m.boot_at(entry, parts[i].thickness,
                                static_cast<GroupId>(i % groups));
    m.poke_reg(id, 0, 15, parts[i].base);  // r15 = fragment base offset
    // Broadcast the base to every lane (boot leaves lanes zeroed).
    for (Word lane = 1; lane < parts[i].thickness; ++lane) {
      m.poke_reg(id, static_cast<LaneId>(lane), 15, parts[i].base);
    }
    ids.push_back(id);
  }
  return ids;
}

void install_lpt_hook(machine::Machine& m) {
  machine::Machine* mp = &m;
  m.set_allocation_hook([mp](const machine::TcfDescriptor&) {
    GroupId best = 0;
    std::size_t best_load = ~std::size_t{0};
    for (GroupId g = 0; g < mp->config().groups; ++g) {
      if (!mp->group_alive(g)) continue;  // degraded mode (DESIGN.md §9)
      const std::size_t load = mp->resident_flows(g);
      if (load < best_load) {
        best_load = load;
        best = g;
      }
    }
    return best;
  });
}

std::vector<GroupSpeed> group_speeds(const machine::MachineConfig& cfg) {
  std::vector<GroupSpeed> speeds(cfg.groups);
  for (GroupId g = 0; g < cfg.groups; ++g) {
    speeds[g].num = static_cast<std::uint64_t>(cfg.group_slots(g)) *
                    cfg.group_clock_num(g);
    speeds[g].den = cfg.group_clock_den(g);
  }
  return speeds;
}

void install_throughput_lpt_hook(machine::Machine& m) {
  machine::Machine* mp = &m;
  const std::vector<GroupSpeed> speeds = group_speeds(m.config());
  m.set_allocation_hook([mp, speeds](const machine::TcfDescriptor& f) {
    // Minimize (load + t) / speed over alive groups: exact cross-multiplied
    // comparison, ties to the lower group id.
    GroupId best = 0;
    bool found = false;
    unsigned __int128 best_lhs = 0;
    for (GroupId g = 0; g < mp->config().groups; ++g) {
      if (!mp->group_alive(g)) continue;
      const std::uint64_t work =
          static_cast<std::uint64_t>(mp->resident_thickness(g)) +
          static_cast<std::uint64_t>(f.thickness);
      const auto finish_num =
          static_cast<unsigned __int128>(work) * speeds[g].den;
      if (!found || finish_num * speeds[best].num <
                        best_lhs * speeds[g].num) {
        best = g;
        best_lhs = finish_num;
        found = true;
      }
    }
    TCFPN_CHECK(found, "no live group left to place a flow on");
    return best;
  });
}

void install_first_group_hook(machine::Machine& m) {
  m.set_allocation_hook([](const machine::TcfDescriptor&) {
    return GroupId{0};
  });
}

void install_auto_splitter(machine::Machine& m, Word bound) {
  TCFPN_CHECK(bound >= 1, "split bound must be >= 1");
  m.set_spawn_splitter([bound](Word thickness) {
    std::vector<Word> out;
    if (thickness <= bound) {
      out.push_back(thickness);
      return out;
    }
    for (const auto& frag : split_thickness(thickness, bound)) {
      out.push_back(frag.thickness);
    }
    return out;
  });
}

}  // namespace tcfpn::sched
