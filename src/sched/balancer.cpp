#include "sched/balancer.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace tcfpn::sched {

std::vector<GroupId> lpt_assign(const std::vector<Word>& thicknesses,
                                std::uint32_t groups) {
  TCFPN_CHECK(groups >= 1, "need at least one group");
  // Sort indices by decreasing thickness, then greedily place each on the
  // least-loaded group (classic 4/3-approximate makespan).
  std::vector<std::size_t> order(thicknesses.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return thicknesses[x] > thicknesses[y];
                   });
  std::vector<Word> load(groups, 0);
  std::vector<GroupId> out(thicknesses.size(), 0);
  for (std::size_t idx : order) {
    TCFPN_CHECK(thicknesses[idx] >= 0, "negative thickness");
    const auto it = std::min_element(load.begin(), load.end());
    const auto g = static_cast<GroupId>(it - load.begin());
    out[idx] = g;
    load[g] += thicknesses[idx];
  }
  return out;
}

Word assignment_makespan(const std::vector<Word>& thicknesses,
                         const std::vector<GroupId>& assignment,
                         std::uint32_t groups) {
  TCFPN_CHECK(thicknesses.size() == assignment.size(),
              "assignment arity mismatch");
  std::vector<Word> load(groups, 0);
  for (std::size_t i = 0; i < thicknesses.size(); ++i) {
    TCFPN_CHECK(assignment[i] < groups, "assignment to unknown group");
    load[assignment[i]] += thicknesses[i];
  }
  return load.empty() ? 0 : *std::max_element(load.begin(), load.end());
}

namespace {

// finish(a) < finish(b) where finish = work * den / num, compared by exact
// cross-multiplication. Every factor is <= 2^64 so the products fit __int128.
bool finish_less(std::uint64_t work_a, const GroupSpeed& a,
                 std::uint64_t work_b, const GroupSpeed& b) {
  const auto lhs = static_cast<unsigned __int128>(work_a) * a.den * b.num;
  const auto rhs = static_cast<unsigned __int128>(work_b) * b.den * a.num;
  return lhs < rhs;
}

}  // namespace

std::vector<GroupId> lpt_assign_weighted(
    const std::vector<Word>& thicknesses,
    const std::vector<GroupSpeed>& speeds) {
  TCFPN_CHECK(!speeds.empty(), "need at least one group");
  for (const GroupSpeed& s : speeds) {
    TCFPN_CHECK(s.num >= 1 && s.den >= 1, "group speed must be positive");
  }
  std::vector<std::size_t> order(thicknesses.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return thicknesses[x] > thicknesses[y];
                   });
  std::vector<std::uint64_t> load(speeds.size(), 0);
  std::vector<GroupId> out(thicknesses.size(), 0);
  for (std::size_t idx : order) {
    TCFPN_CHECK(thicknesses[idx] >= 0, "negative thickness");
    const auto t = static_cast<std::uint64_t>(thicknesses[idx]);
    GroupId best = 0;
    for (GroupId g = 1; g < speeds.size(); ++g) {
      if (finish_less(load[g] + t, speeds[g], load[best] + t, speeds[best])) {
        best = g;
      }
    }
    out[idx] = best;
    load[best] += t;
  }
  return out;
}

Word weighted_makespan(const std::vector<Word>& thicknesses,
                       const std::vector<GroupId>& assignment,
                       const std::vector<GroupSpeed>& speeds) {
  TCFPN_CHECK(thicknesses.size() == assignment.size(),
              "assignment arity mismatch");
  std::vector<std::uint64_t> load(speeds.size(), 0);
  for (std::size_t i = 0; i < thicknesses.size(); ++i) {
    TCFPN_CHECK(assignment[i] < speeds.size(), "assignment to unknown group");
    load[assignment[i]] += static_cast<std::uint64_t>(thicknesses[i]);
  }
  std::uint64_t best = 0;
  for (std::size_t g = 0; g < speeds.size(); ++g) {
    const std::uint64_t finish =
        (load[g] * speeds[g].den + speeds[g].num - 1) / speeds[g].num;
    best = std::max(best, finish);
  }
  return static_cast<Word>(best);
}

std::vector<Fragment> split_thickness(Word thickness, Word bound) {
  TCFPN_CHECK(thickness >= 0, "negative thickness");
  TCFPN_CHECK(bound >= 1, "fragment bound must be >= 1");
  std::vector<Fragment> out;
  for (Word base = 0; base < thickness; base += bound) {
    out.push_back(Fragment{base, std::min(bound, thickness - base)});
  }
  return out;
}

std::vector<Fragment> split_even(Word thickness, std::uint32_t parts) {
  TCFPN_CHECK(parts >= 1, "need at least one part");
  TCFPN_CHECK(thickness >= 0, "negative thickness");
  std::vector<Fragment> out;
  const Word p = static_cast<Word>(parts);
  Word base = 0;
  for (Word i = 0; i < p; ++i) {
    // Distribute the remainder over the first (thickness mod parts) parts.
    const Word t = thickness / p + (i < thickness % p ? 1 : 0);
    if (t > 0) out.push_back(Fragment{base, t});
    base += t;
  }
  return out;
}

}  // namespace tcfpn::sched
