// Load-balancing algorithms for TCF-to-processor allocation.
//
// Section 3.3: "When TCF instructions are allocated to TCF processors, for
// efficiency reasons it is necessary to try to keep the sum of thickness
// values at each TCF processor roughly balanced. ... a flow is taken into
// execution as a whole, but its execution can be split to balanced
// fragments that are allocated to different TCF processors. ... the OS can
// split such flows automatically."
//
// Pure algorithms here (testable in isolation); src/sched/allocation.hpp
// applies them to a Machine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace tcfpn::sched {

/// Longest-processing-time-first list scheduling: assigns each flow
/// (by thickness) to the least-loaded of `groups` bins. Returns the group
/// index per flow (input order preserved).
std::vector<GroupId> lpt_assign(const std::vector<Word>& thicknesses,
                                std::uint32_t groups);

/// Makespan (max bin load) of an assignment.
Word assignment_makespan(const std::vector<Word>& thicknesses,
                         const std::vector<GroupId>& assignment,
                         std::uint32_t groups);

/// Effective throughput of one group on a heterogeneous shape (DESIGN.md
/// §12), kept as an exact rational so placement never depends on floating
/// point: speed = num/den = T_p(g) * clock_num(g) / clock_den(g) thickness
/// units per cycle.
struct GroupSpeed {
  std::uint64_t num = 1;
  std::uint64_t den = 1;
};

/// Placement-aware LPT for heterogeneous machines: each flow (by decreasing
/// thickness) goes to the group whose *finish time* (load + thickness) /
/// speed is smallest — exact __int128 cross-multiplied comparison, ties to
/// the lower group id. With all speeds equal this degenerates to classic
/// lpt_assign.
std::vector<GroupId> lpt_assign_weighted(const std::vector<Word>& thicknesses,
                                         const std::vector<GroupSpeed>& speeds);

/// Analytic finish time of an assignment on a heterogeneous machine: the
/// max over groups of ceil(load_g * den_g / num_g) (cycles, with speed in
/// thickness units per cycle).
Word weighted_makespan(const std::vector<Word>& thicknesses,
                       const std::vector<GroupId>& assignment,
                       const std::vector<GroupSpeed>& speeds);

/// One fragment of a split flow: `base` is the first lane index the
/// fragment covers, `thickness` its lane count.
struct Fragment {
  Word base = 0;
  Word thickness = 0;
};

/// Splits a flow of the given thickness into fragments no thicker than
/// `bound` (the automatic splitting of overly thick flows). Fragments
/// partition [0, thickness) contiguously; the last may be thinner.
std::vector<Fragment> split_thickness(Word thickness, Word bound);

/// Splits a flow into exactly `parts` near-equal fragments (horizontal
/// allocation: T_application / P per processor core).
std::vector<Fragment> split_even(Word thickness, std::uint32_t parts);

}  // namespace tcfpn::sched
