// Applying the balancing algorithms to a Machine: horizontal vs vertical
// flow allocation (Section 4's multitasking discussion: "it is much more
// beneficial to allocate horizontally T_application/P-wide TCFs from each
// processor core rather than ... vertically").
//
// Threading contract under host-parallel stepping (machine.hpp): allocation
// hooks run at the step barrier (deferred SPAWN placement) on the thread
// that called Machine::step — never from the worker pool and never
// concurrently — so they may freely read machine state. Spawn splitters run
// at SPAWN execution time, possibly on a worker-pool thread, and therefore
// must stay pure functions of the thickness argument (as the ones installed
// here are); placement then stays bit-identical for every host_threads.
#pragma once

#include <vector>

#include "machine/machine.hpp"
#include "sched/balancer.hpp"

namespace tcfpn::sched {

/// Boots one flow of the full thickness on a single group (vertical
/// allocation — uses 1 of the P processors).
FlowId boot_vertical(machine::Machine& m, std::size_t entry, Word thickness,
                     GroupId group = 0);

/// Boots `fragments` near-equal fragment flows round-robin over the groups
/// (horizontal allocation). The fragment entry code must interpret r15 as
/// its base lane offset (see tcf::kernels fragment kernels).
std::vector<FlowId> boot_horizontal(machine::Machine& m, std::size_t entry,
                                    Word thickness, std::uint32_t fragments);

/// Installs an LPT allocation hook on the machine: spawned flows go to the
/// group that currently has the smallest summed thickness. (This is also
/// the machine's default; the explicit hook exists so experiments can
/// compare against naive placements.)
void install_lpt_hook(machine::Machine& m);

/// Installs a naive hook: every spawned flow lands on group 0.
void install_first_group_hook(machine::Machine& m);

/// Per-group effective throughput of a (possibly heterogeneous) config:
/// speed_g = group_slots(g) * clock_num(g) / clock_den(g), as exact
/// rationals for the weighted balancer.
std::vector<GroupSpeed> group_speeds(const machine::MachineConfig& cfg);

/// Installs the placement-aware LPT hook for heterogeneous shapes
/// (DESIGN.md §12): each spawned flow goes to the alive group whose finish
/// time — (resident thickness + flow thickness) / effective throughput —
/// is smallest, so fat (wide or fast-clocked) groups absorb proportionally
/// more work. On a uniform machine this reduces to thickness-balanced LPT
/// placement. Deterministic: exact rational comparison, ties to the lower
/// group id, and hooks run only at the step barrier.
void install_throughput_lpt_hook(machine::Machine& m);

/// Installs the automatic splitter of Section 3.3: every SPAWN thicker than
/// `bound` is cut into near-equal fragments no thicker than `bound` (at
/// most one per group when that yields fewer fragments). The spawned code
/// must follow the fragment convention (r15 = base lane offset).
void install_auto_splitter(machine::Machine& m, Word bound);

}  // namespace tcfpn::sched
