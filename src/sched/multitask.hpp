// Time-shared multitasking over flows: TCFs as tasks.
//
// Section 4: "Time-shared multitasking is expensive in ESM, CESM and the
// original PRAM-NUMA since it requires switching all the threads taking
// T_p times more time than that in a single threaded computer. In the
// extended model TCFs can be treated as tasks and ... switching between
// TCFs is very cheap — it takes no time — as long as all the TCFs fit into
// the TCF storage block."
//
// TaskManager drives a Machine with preemptive round-robin scheduling and
// accounts the task-switch cost through the machine's variant cost model,
// so the same experiment run under different variants reproduces the
// "Cost of task switch" row of Table 1.
#pragma once

#include <vector>

#include "machine/machine.hpp"

namespace tcfpn::sched {

class TaskManager {
 public:
  /// `tasks` are already-booted root flows of the machine.
  TaskManager(machine::Machine& m, std::vector<FlowId> tasks);

  struct Result {
    bool completed = false;       ///< every task ran to completion
    Cycle total_cycles = 0;       ///< machine clock at the end
    Cycle switch_cycles = 0;      ///< cycles spent switching tasks
    std::uint64_t switches = 0;   ///< preemptions performed
    std::uint64_t rounds = 0;
  };

  /// Runs the tasks one at a time with a `quantum_steps` time slice,
  /// round-robin, until all halt (or `max_rounds` quanta elapse).
  Result run_round_robin(std::uint64_t quantum_steps,
                         std::uint64_t max_rounds = 1'000'000);

  /// Runs all tasks co-resident (no preemption) — the TCF machine's natural
  /// mode where resident task switching is free.
  Result run_coscheduled(std::uint64_t max_steps = 1'000'000);

 private:
  machine::Machine& m_;
  std::vector<FlowId> tasks_;
};

}  // namespace tcfpn::sched
