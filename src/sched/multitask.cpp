#include "sched/multitask.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::sched {

using machine::FlowStatus;

TaskManager::TaskManager(machine::Machine& m, std::vector<FlowId> tasks)
    : m_(m), tasks_(std::move(tasks)) {
  TCFPN_CHECK(!tasks_.empty(), "TaskManager needs at least one task");
  for (FlowId id : tasks_) {
    const auto* f = m_.find_flow(id);
    TCFPN_CHECK(f != nullptr, "unknown task flow ", id);
    TCFPN_CHECK(f->status == FlowStatus::kReady, "task ", id, " not ready");
  }
}

TaskManager::Result TaskManager::run_round_robin(std::uint64_t quantum_steps,
                                                 std::uint64_t max_rounds) {
  TCFPN_CHECK(quantum_steps >= 1, "quantum must be >= 1 step");
  Result res;
  auto alive = [&](FlowId id) {
    return m_.find_flow(id)->status != FlowStatus::kHalted;
  };

  // Park everything except the first live task.
  std::size_t current = tasks_.size();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!alive(tasks_[i])) continue;
    if (current == tasks_.size()) {
      current = i;
    } else {
      res.switch_cycles += m_.suspend_flow(tasks_[i]);
    }
  }

  while (current != tasks_.size() && res.rounds < max_rounds) {
    ++res.rounds;
    for (std::uint64_t s = 0; s < quantum_steps; ++s) {
      if (!m_.step()) break;
    }
    // Pick the next live task after `current` (round robin).
    std::size_t next = tasks_.size();
    for (std::size_t k = 1; k <= tasks_.size(); ++k) {
      const std::size_t cand = (current + k) % tasks_.size();
      if (alive(tasks_[cand])) {
        next = cand;
        break;
      }
    }
    if (next == tasks_.size()) {
      current = tasks_.size();  // everything halted
      break;
    }
    if (next != current) {
      if (alive(tasks_[current])) {
        res.switch_cycles += m_.suspend_flow(tasks_[current]);
      }
      res.switch_cycles += m_.resume_flow(tasks_[next]);
      ++res.switches;
      m_.metrics().counter("sched/task_preemptions").add();
    }
    current = next;
  }

  res.completed = std::none_of(tasks_.begin(), tasks_.end(),
                               [&](FlowId id) { return alive(id); });
  res.total_cycles = m_.stats().cycles;
  return res;
}

TaskManager::Result TaskManager::run_coscheduled(std::uint64_t max_steps) {
  Result res;
  const auto run = m_.run(max_steps);
  res.completed = run.completed;
  res.total_cycles = run.cycles;
  res.switch_cycles = m_.stats().task_switch_cycles;
  res.switches = 0;
  res.rounds = run.steps;
  return res;
}

}  // namespace tcfpn::sched
