#include "prof/profile.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace tcfpn::prof {

const char* to_string(Term t) {
  switch (t) {
    case Term::kCompute: return "compute";
    case Term::kOperand: return "operand";
    case Term::kLocal: return "local";
    case Term::kBranch: return "branch";
    case Term::kFill: return "fill";
    case Term::kNet: return "net";
    case Term::kFault: return "fault";
    case Term::kIdle: return "idle";
    case Term::kSwitch: return "switch";
    case Term::kSched: return "sched";
  }
  return "?";
}

bool term_from_string(std::string_view name, Term* out) {
  for (std::size_t i = 0; i < kNumTerms; ++i) {
    const Term t = static_cast<Term>(i);
    if (name == to_string(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

const char* to_string(StepLimit l) {
  switch (l) {
    case StepLimit::kCompute: return "compute";
    case StepLimit::kNet: return "net";
    case StepLimit::kFault: return "fault";
    case StepLimit::kIdle: return "idle";
  }
  return "?";
}

StepLimit classify(const StepRecord& r) {
  const Cycle c1 = std::max(r.slot, r.net);
  if (r.net + r.fault > c1) return StepLimit::kFault;
  if (r.net > r.slot) return StepLimit::kNet;
  if (r.work < r.slot) return StepLimit::kIdle;
  return StepLimit::kCompute;
}

Cycle step_cost(const StepRecord& r) {
  return r.fill + std::max(r.slot, r.net + r.fault);
}

Cycle Profile::attributed() const {
  Cycle total = 0;
  for (const auto& [k, c] : cells) total += c;
  return total;
}

Cycle Profile::term_total(Term t) const {
  Cycle total = 0;
  for (const auto& [k, c] : cells) {
    if (k.term == t) total += c;
  }
  return total;
}

std::vector<Cycle> apportion(Cycle total, const std::vector<Cycle>& weights) {
  const std::size_t n = weights.size();
  std::vector<Cycle> shares(n, 0);
  unsigned __int128 sum = 0;
  for (Cycle w : weights) sum += w;
  TCFPN_CHECK(sum > 0, "apportion needs a positive weight sum");
  // Integer base shares floor(total * w / W); the leftover units (< the
  // number of bins with a nonzero remainder) go to the largest remainders.
  std::vector<unsigned __int128> rem(n, 0);
  Cycle distributed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(total) * weights[i];
    shares[i] = static_cast<Cycle>(prod / sum);
    rem[i] = prod % sum;
    distributed += shares[i];
  }
  Cycle leftover = total - distributed;
  if (leftover > 0) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rem[a] > rem[b];  // stable: ties keep low index
                     });
    for (std::size_t i = 0; i < n && leftover > 0; ++i) {
      if (rem[order[i]] == 0) break;  // exact shares need no top-up
      ++shares[order[i]];
      --leftover;
    }
    TCFPN_CHECK(leftover == 0, "apportion failed to distribute remainder");
  }
  return shares;
}

}  // namespace tcfpn::prof
