// Report renderers over a prof::Profile (DESIGN.md §11).
//
// Everything here is a pure function of (Profile, RunInfo): no clocks, no
// locale, no host state — the same profile renders to the same bytes on
// every machine, which is what lets the determinism tests compare whole
// documents. The renderers back the tcfprof CLI (--report
// summary/hotspots/steps/folded/html/json) and the --profile export in
// tcfrun (schema "tcfpn-profile-v1").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "prof/profile.hpp"

namespace tcfpn::prof {

/// Everything a report needs to know about the run behind a profile.
struct RunInfo {
  std::string program;  ///< folded-stack root (program name, sanitized)
  std::vector<std::pair<std::string, std::string>> meta;  ///< run metadata
  bool completed = true;
  std::uint64_t steps = 0;
  Cycle cycles = 0;  ///< MachineStats::cycles — the conservation target
  Cycle pipeline_fill = 0;
};

/// One per-term cost multiplier for the Amdahl-style what-if analysis.
/// Only the step-record components are scalable: kCompute scales the slot
/// term, kNet the network bound, kFault the fault delay, kFill the
/// pipeline fill.
struct WhatIf {
  Term term = Term::kCompute;
  double factor = 1.0;
};

/// Parses "net:0.5x" or "term=net:0.5x" (the trailing 'x' is optional).
/// Accepts only the scalable terms; returns false on anything else.
bool parse_what_if(std::string_view spec, WhatIf* out);

/// Re-costs the run under the multipliers: every recorded step becomes
/// fill·f_fill + max(slot·f_compute, net·f_net + fault·f_fault); cycles
/// outside the recorded steps (switch/sched charges, truncated tail) are
/// carried over unscaled. With empty `mods` this returns `total_cycles`.
Cycle what_if_cycles(const Profile& p, Cycle total_cycles,
                     const std::vector<WhatIf>& mods);

/// Aggregation axis for the hotspots report.
enum class HotspotBy : std::uint8_t { kPc = 0, kTcf, kGroup, kTerm };

bool hotspot_by_from_string(std::string_view name, HotspotBy* out);

std::string report_summary(const Profile& p, const RunInfo& run);
/// Top-`top` hotspots along `by`. For --by=pc, adjacent hot PCs coalesce
/// into ranges ("pc 12-17") so a hot loop reads as one row.
std::string report_hotspots(const Profile& p, const RunInfo& run,
                            HotspotBy by, std::size_t top);
/// Per-step critical-path report: limited-by percentages, limiting groups,
/// and one what-if line per requested multiplier.
std::string report_steps(const Profile& p, const RunInfo& run,
                         const std::vector<WhatIf>& what_ifs);

/// Folded stacks, one per cell: "prog;tcf3@g1;pc12;compute 4821".
/// Machine-level cells fold under "prog;machine;<term>". The line order is
/// the canonical cell order, so the output is byte-stable.
std::vector<std::string> folded_lines(const Profile& p, const RunInfo& run);
std::string report_folded(const Profile& p, const RunInfo& run);

/// Self-contained HTML flame graph (inline data + renderer, no network).
std::string report_html(const Profile& p, const RunInfo& run);

/// The machine-readable export, schema "tcfpn-profile-v1".
std::string report_json(const Profile& p, const RunInfo& run);

}  // namespace tcfpn::prof
