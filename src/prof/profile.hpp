// Deterministic cost-model attribution profiles (DESIGN.md §11).
//
// A Profile charges every simulated cycle of a run to a
// (group, tcf, pc, cost-term) key. The term taxonomy is the paper's step
// cost decomposition made exhaustive: a closed world of ten terms such that
// the per-key totals sum *exactly* to MachineStats::cycles — the "cycles
// conserve" invariant the profiler tests assert. Cells accumulate per
// GroupCtx during the parallel phase and merge at the step barrier in group
// order, so a profile is bit-identical for every --host-threads value and
// under both the barrier and effect-channel engines.
//
// On top of the raw cells, a bounded per-step record tape (slot / network /
// fault-delay components of each step) drives the critical-path analyzer
// and the Amdahl-style what-if re-costing in prof/report.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tcfpn::prof {

/// Where a cycle went. Closed world: every cycle the machine ever adds to
/// MachineStats::cycles lands in exactly one of these terms.
enum class Term : std::uint8_t {
  kCompute = 0,  ///< lane operations / instruction activations (slot term)
  kOperand,      ///< operand-storage penalties (spill / memory-to-memory)
  kLocal,        ///< NUMA local-memory operand latency (slot term share)
  kBranch,       ///< SPAWN register-copy + flow-creation dispatch charges
  kFill,         ///< pipeline fill/drain F per machine step
  kNet,          ///< network latency/bandwidth extension beyond the slot term
  kFault,        ///< injected-fault delay extension (resil, DESIGN.md §9)
  kIdle,         ///< barrier wait: slot capacity no recorded work filled
  kSwitch,       ///< task switches: suspend/resume/swap-in/migration/join
  kSched,        ///< external scheduler charges (Machine::charge)
};

inline constexpr std::size_t kNumTerms = 10;

const char* to_string(Term t);
/// Parses a term name ("net", "compute", ...). Returns false on junk.
bool term_from_string(std::string_view name, Term* out);

/// Sentinel for "not attributable": machine-level cells (fill, net, idle,
/// sched) carry no group/flow/pc; switch cells carry no pc.
inline constexpr std::int64_t kNoIndex = -1;

/// One attribution key. Ordering is the canonical (group, flow, pc, term)
/// lexicographic order — the order cells merge in at the step barrier and
/// the order every export walks, so documents are byte-stable.
struct Key {
  std::int64_t group = kNoIndex;
  std::int64_t flow = kNoIndex;
  std::int64_t pc = kNoIndex;
  Term term = Term::kCompute;

  auto operator<=>(const Key&) const = default;
};

/// The raw cost components of one committed machine step, recorded when
/// profiling is on. `slot`, `net` and `fault` are the *unreduced* terms
/// (step body = max(slot, net + fault)), so the what-if analyzer can re-cost
/// a step analytically under per-term multipliers. `work` is the total
/// recorded bin weight (== the sum of all groups' operation slots).
struct StepRecord {
  std::uint64_t step = 0;
  std::int64_t limit_group = kNoIndex;  ///< argmax group work (ties: lowest)
  Cycle fill = 0;
  Cycle slot = 0;
  Cycle net = 0;    ///< analytic/routed network bound for the step
  Cycle fault = 0;  ///< injected fault delay consumed by the step
  Cycle work = 0;

  bool operator==(const StepRecord&) const = default;
};

/// What dominated one step, derived from the raw components.
enum class StepLimit : std::uint8_t { kCompute = 0, kNet, kFault, kIdle };

inline constexpr std::size_t kNumStepLimits = 4;

const char* to_string(StepLimit l);

/// Classifies a step: fault-limited when the fault delay extended the body
/// past max(slot, net); otherwise net-limited when the network bound alone
/// exceeded the slot term; otherwise idle when the slot term carried less
/// recorded work than capacity; otherwise compute-limited.
StepLimit classify(const StepRecord& r);

/// Cycles the step contributed to the run clock: F + max(slot, net + fault).
Cycle step_cost(const StepRecord& r);

/// Per-step record cap. Cells are bounded by program shape (flows × pcs ×
/// terms); the step tape grows with run length, so it truncates like the
/// host-span buffer does — with an explicit flag, never silently.
inline constexpr std::size_t kMaxStepRecords = 1u << 20;

/// The attribution table of one run.
struct Profile {
  std::map<Key, Cycle> cells;
  std::vector<StepRecord> steps;
  bool steps_truncated = false;

  void add(const Key& k, Cycle c) {
    if (c != 0) cells[k] += c;
  }
  void record_step(const StepRecord& r) {
    if (steps.size() >= kMaxStepRecords) {
      steps_truncated = true;
      return;
    }
    steps.push_back(r);
  }

  /// Sum of every cell: equals MachineStats::cycles when profiling was on
  /// from machine construction (the conservation invariant).
  Cycle attributed() const;
  /// Sum of the cells charged to one term.
  Cycle term_total(Term t) const;

  bool operator==(const Profile&) const = default;
};

/// Deterministic largest-remainder apportionment: splits `total` over
/// `weights` (sum > 0) into integer shares that sum exactly to `total`,
/// proportional to the weights. Remainder units go to the bins with the
/// largest fractional remainders, ties resolved toward the lower index —
/// a pure function of (total, weights), independent of host threading.
std::vector<Cycle> apportion(Cycle total, const std::vector<Cycle>& weights);

}  // namespace tcfpn::prof
