#include "prof/report.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/metrics.hpp"

namespace tcfpn::prof {

namespace {

/// Folded-stack separators must not appear inside a segment.
std::string sanitize(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  if (out.empty()) out = "program";
  return out;
}

double pct(Cycle part, Cycle whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

std::string fixed(double v, int places = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(places) << v;
  return os.str();
}

/// Per-term totals split into flow-attributed and machine-level cells.
struct TermTotals {
  std::array<Cycle, kNumTerms> total{};
  Cycle attributed = 0;
};

TermTotals term_totals(const Profile& p) {
  TermTotals t;
  for (const auto& [k, c] : p.cells) {
    t.total[static_cast<std::size_t>(k.term)] += c;
    t.attributed += c;
  }
  return t;
}

/// Step-limit aggregate over the recorded step tape.
struct LimitAgg {
  std::array<std::uint64_t, kNumStepLimits> steps{};
  std::array<Cycle, kNumStepLimits> cycles{};
  Cycle stepped = 0;  ///< total cost of the recorded steps
};

LimitAgg limit_agg(const Profile& p) {
  LimitAgg a;
  for (const StepRecord& r : p.steps) {
    const auto l = static_cast<std::size_t>(classify(r));
    const Cycle c = step_cost(r);
    ++a.steps[l];
    a.cycles[l] += c;
    a.stepped += c;
  }
  return a;
}

void append_limits(std::ostringstream& os, const Profile& p) {
  const LimitAgg a = limit_agg(p);
  os << "critical path (" << p.steps.size() << " recorded steps"
     << (p.steps_truncated ? ", TRUNCATED" : "") << "):\n";
  for (std::size_t i = 0; i < kNumStepLimits; ++i) {
    const auto l = static_cast<StepLimit>(i);
    os << "  " << std::left << std::setw(8) << to_string(l) << std::right
       << std::setw(8) << a.steps[i] << " steps  " << std::setw(12)
       << a.cycles[i] << " cycles  " << std::setw(5)
       << fixed(pct(a.cycles[i], a.stepped)) << "%\n";
  }
}

/// Names a cell owner for the human reports.
std::string owner(const Key& k) {
  if (k.flow < 0) return "machine";
  std::ostringstream os;
  os << "tcf" << k.flow << "@g" << k.group;
  return os.str();
}

/// Top-2 terms of an aggregate row, e.g. "compute 60.1%, local 39.9%".
std::string dominant_terms(const std::array<Cycle, kNumTerms>& t,
                           Cycle total) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < kNumTerms; ++i) {
    if (t[i] > 0) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return t[a] > t[b]; });
  std::string out;
  for (std::size_t i = 0; i < order.size() && i < 2; ++i) {
    if (i) out += ", ";
    out += to_string(static_cast<Term>(order[i]));
    out += " " + fixed(pct(t[order[i]], total)) + "%";
  }
  return out;
}

struct Row {
  std::string label;
  Cycle total = 0;
  std::array<Cycle, kNumTerms> terms{};
};

void append_rows(std::ostringstream& os, std::vector<Row> rows,
                 std::size_t top, Cycle denom) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.total > b.total; });
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    os << "  " << std::left << std::setw(14) << rows[i].label << std::right
       << std::setw(12) << rows[i].total << "  " << std::setw(5)
       << fixed(pct(rows[i].total, denom)) << "%  "
       << dominant_terms(rows[i].terms, rows[i].total) << "\n";
  }
}

void json_key(std::ostringstream& os, const Key& k) {
  auto idx = [&](std::int64_t v) -> std::string {
    return v < 0 ? "null" : std::to_string(v);
  };
  os << "{\"group\": " << idx(k.group) << ", \"flow\": " << idx(k.flow)
     << ", \"pc\": " << idx(k.pc) << ", \"term\": \"" << to_string(k.term)
     << "\"";
}

}  // namespace

bool parse_what_if(std::string_view spec, WhatIf* out) {
  if (spec.rfind("term=", 0) == 0) spec.remove_prefix(5);
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  Term t;
  if (!term_from_string(spec.substr(0, colon), &t)) return false;
  if (t != Term::kCompute && t != Term::kNet && t != Term::kFault &&
      t != Term::kFill) {
    return false;  // only the step-record components are scalable
  }
  std::string num(spec.substr(colon + 1));
  if (!num.empty() && (num.back() == 'x' || num.back() == 'X')) {
    num.pop_back();
  }
  if (num.empty()) return false;
  char* end = nullptr;
  const double f = std::strtod(num.c_str(), &end);
  if (end != num.c_str() + num.size() || !(f >= 0.0) || !std::isfinite(f)) {
    return false;
  }
  out->term = t;
  out->factor = f;
  return true;
}

Cycle what_if_cycles(const Profile& p, Cycle total_cycles,
                     const std::vector<WhatIf>& mods) {
  double f_compute = 1.0, f_net = 1.0, f_fault = 1.0, f_fill = 1.0;
  for (const WhatIf& m : mods) {
    switch (m.term) {
      case Term::kCompute: f_compute = m.factor; break;
      case Term::kNet: f_net = m.factor; break;
      case Term::kFault: f_fault = m.factor; break;
      case Term::kFill: f_fill = m.factor; break;
      default: break;
    }
  }
  Cycle stepped = 0;
  double recost = 0.0;
  for (const StepRecord& r : p.steps) {
    stepped += step_cost(r);
    const double body =
        std::max(static_cast<double>(r.slot) * f_compute,
                 static_cast<double>(r.net) * f_net +
                     static_cast<double>(r.fault) * f_fault);
    recost += static_cast<double>(r.fill) * f_fill + body;
  }
  // Cycles outside the recorded tape (switch/sched charges, any truncated
  // tail) are not re-costable; they carry over unscaled — the Amdahl
  // serial fraction of the estimate.
  const Cycle other = total_cycles - std::min(total_cycles, stepped);
  return other + static_cast<Cycle>(std::llround(recost));
}

bool hotspot_by_from_string(std::string_view name, HotspotBy* out) {
  if (name == "pc") *out = HotspotBy::kPc;
  else if (name == "tcf") *out = HotspotBy::kTcf;
  else if (name == "group") *out = HotspotBy::kGroup;
  else if (name == "term") *out = HotspotBy::kTerm;
  else return false;
  return true;
}

std::string report_summary(const Profile& p, const RunInfo& run) {
  const TermTotals t = term_totals(p);
  std::ostringstream os;
  os << "tcfprof summary: " << run.program << "\n";
  for (const auto& [k, v] : run.meta) os << "  " << k << "=" << v << "\n";
  os << "  completed=" << (run.completed ? "true" : "false")
     << " steps=" << run.steps << " cycles=" << run.cycles
     << " attributed=" << t.attributed << " ("
     << fixed(pct(t.attributed, run.cycles)) << "%)\n";
  os << "term breakdown:\n";
  for (std::size_t i = 0; i < kNumTerms; ++i) {
    const auto term = static_cast<Term>(i);
    if (t.total[i] == 0) continue;
    os << "  " << std::left << std::setw(8) << to_string(term) << std::right
       << std::setw(12) << t.total[i] << "  " << std::setw(5)
       << fixed(pct(t.total[i], t.attributed)) << "%\n";
  }
  append_limits(os, p);
  return os.str();
}

std::string report_hotspots(const Profile& p, const RunInfo& run,
                            HotspotBy by, std::size_t top) {
  const TermTotals t = term_totals(p);
  std::ostringstream os;
  std::vector<Row> rows;
  Cycle uncovered = 0;

  auto aggregate = [&](auto key_of, auto label_of, auto has_key) {
    std::map<std::int64_t, Row> agg;
    for (const auto& [k, c] : p.cells) {
      if (!has_key(k)) {
        uncovered += c;
        continue;
      }
      Row& r = agg[key_of(k)];
      r.total += c;
      r.terms[static_cast<std::size_t>(k.term)] += c;
    }
    for (auto& [id, r] : agg) {
      r.label = label_of(id);
      rows.push_back(std::move(r));
    }
  };

  switch (by) {
    case HotspotBy::kPc: {
      // Aggregate per pc, pick the top-N pcs, then coalesce adjacent hot
      // pcs into ranges so a hot loop reads as one row.
      std::map<std::int64_t, Row> agg;
      for (const auto& [k, c] : p.cells) {
        if (k.pc < 0) {
          uncovered += c;
          continue;
        }
        Row& r = agg[k.pc];
        r.total += c;
        r.terms[static_cast<std::size_t>(k.term)] += c;
      }
      std::vector<std::pair<std::int64_t, Row>> flat(agg.begin(), agg.end());
      std::stable_sort(flat.begin(), flat.end(),
                       [](const auto& a, const auto& b) {
                         return a.second.total > b.second.total;
                       });
      if (flat.size() > top) flat.resize(top);
      std::sort(flat.begin(), flat.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = 0; i < flat.size();) {
        std::int64_t lo = flat[i].first, hi = lo;
        Row merged = flat[i].second;
        std::size_t j = i + 1;
        while (j < flat.size() && flat[j].first == hi + 1) {
          hi = flat[j].first;
          merged.total += flat[j].second.total;
          for (std::size_t q = 0; q < kNumTerms; ++q) {
            merged.terms[q] += flat[j].second.terms[q];
          }
          ++j;
        }
        merged.label = lo == hi
                           ? "pc " + std::to_string(lo)
                           : "pc " + std::to_string(lo) + "-" +
                                 std::to_string(hi);
        rows.push_back(std::move(merged));
        i = j;
      }
      break;
    }
    case HotspotBy::kTcf:
      aggregate([](const Key& k) { return k.flow; },
                [](std::int64_t id) { return "tcf " + std::to_string(id); },
                [](const Key& k) { return k.flow >= 0; });
      break;
    case HotspotBy::kGroup:
      aggregate([](const Key& k) { return k.group; },
                [](std::int64_t id) { return "group " + std::to_string(id); },
                [](const Key& k) { return k.group >= 0; });
      break;
    case HotspotBy::kTerm:
      aggregate(
          [](const Key& k) { return static_cast<std::int64_t>(k.term); },
          [](std::int64_t id) {
            return std::string(to_string(static_cast<Term>(id)));
          },
          [](const Key&) { return true; });
      break;
  }

  os << "tcfprof hotspots: " << run.program << " (top " << top << ")\n";
  append_rows(os, std::move(rows), top, t.attributed);
  if (uncovered > 0) {
    os << "  (" << uncovered << " cycles / "
       << fixed(pct(uncovered, t.attributed))
       << "% in machine-level cells without this key)\n";
  }
  return os.str();
}

std::string report_steps(const Profile& p, const RunInfo& run,
                         const std::vector<WhatIf>& what_ifs) {
  std::ostringstream os;
  os << "tcfprof steps: " << run.program << "\n";
  append_limits(os, p);
  // Which groups set the slot term most often.
  std::map<std::int64_t, std::uint64_t> limiting;
  for (const StepRecord& r : p.steps) {
    if (r.limit_group >= 0) ++limiting[r.limit_group];
  }
  if (!limiting.empty()) {
    std::vector<std::pair<std::int64_t, std::uint64_t>> flat(limiting.begin(),
                                                             limiting.end());
    std::stable_sort(flat.begin(), flat.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    os << "limiting groups:\n";
    for (std::size_t i = 0; i < flat.size() && i < 4; ++i) {
      os << "  group " << flat[i].first << ": " << flat[i].second
         << " steps (" << fixed(pct(flat[i].second, p.steps.size()))
         << "%)\n";
    }
  }
  for (const WhatIf& w : what_ifs) {
    const Cycle re = what_if_cycles(p, run.cycles, {w});
    os << "what-if " << to_string(w.term) << ":" << fixed(w.factor, 2)
       << "x -> " << re << " cycles ("
       << fixed(run.cycles == 0
                    ? 0.0
                    : static_cast<double>(re) /
                          static_cast<double>(run.cycles),
                2)
       << "x of " << run.cycles << ")\n";
  }
  if (what_ifs.size() > 1) {
    const Cycle re = what_if_cycles(p, run.cycles, what_ifs);
    os << "what-if combined -> " << re << " cycles\n";
  }
  return os.str();
}

std::vector<std::string> folded_lines(const Profile& p, const RunInfo& run) {
  const std::string prog = sanitize(run.program);
  std::vector<std::string> lines;
  lines.reserve(p.cells.size());
  for (const auto& [k, c] : p.cells) {
    std::string line = prog;
    line += ";" + owner(k);
    if (k.pc >= 0) line += ";pc" + std::to_string(k.pc);
    line += ";";
    line += to_string(k.term);
    line += " " + std::to_string(c);
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string report_folded(const Profile& p, const RunInfo& run) {
  std::string out;
  for (const std::string& l : folded_lines(p, run)) {
    out += l;
    out += "\n";
  }
  return out;
}

std::string report_html(const Profile& p, const RunInfo& run) {
  std::ostringstream os;
  os << "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>tcfprof "
     << metrics::json_escape(run.program) << "</title>\n<style>\n"
     << "body{font:13px/1.4 monospace;margin:16px;background:#1a1b26;"
        "color:#c0caf5}\n"
     << "#chart{position:relative;width:100%;margin-top:12px}\n"
     << ".frame{position:absolute;height:18px;overflow:hidden;"
        "white-space:nowrap;border:1px solid #1a1b26;border-radius:2px;"
        "cursor:pointer;font-size:11px;padding-left:3px;color:#16161e}\n"
     << ".frame:hover{filter:brightness(1.2)}\n"
     << "#crumb{margin-top:8px;color:#7aa2f7;cursor:pointer}\n"
     << "</style></head><body>\n<h3>tcfprof flame graph: "
     << metrics::json_escape(run.program) << "</h3>\n<div>cycles="
     << run.cycles << " steps=" << run.steps << "</div>\n"
     << "<div id=\"crumb\">all</div>\n<div id=\"chart\"></div>\n<script>\n";
  os << "const folded = [";
  bool first = true;
  for (const std::string& l : folded_lines(p, run)) {
    const std::size_t sp = l.rfind(' ');
    os << (first ? "" : ",") << "\n [\""
       << metrics::json_escape(l.substr(0, sp)) << "\", "
       << l.substr(sp + 1) << "]";
    first = false;
  }
  os << "\n];\n";
  // Self-contained icicle renderer: build the prefix tree, lay frames out
  // left-to-right in cell order, zoom on click.
  os << R"JS(
function build() {
  const root = {name: "all", value: 0, children: new Map()};
  for (const [path, v] of folded) {
    let n = root;
    root.value += v;
    for (const seg of path.split(";")) {
      if (!n.children.has(seg)) {
        n.children.set(seg, {name: seg, value: 0, children: new Map()});
      }
      n = n.children.get(seg);
      n.value += v;
    }
  }
  return root;
}
const palette = {compute: "#9ece6a", operand: "#e0af68", local: "#ff9e64",
  branch: "#bb9af7", fill: "#565f89", net: "#f7768e", fault: "#db4b4b",
  idle: "#414868", switch: "#7dcfff", sched: "#2ac3de"};
function color(name) {
  if (palette[name]) return palette[name];
  let h = 0;
  for (const c of name) h = (h * 31 + c.charCodeAt(0)) >>> 0;
  return "hsl(" + (h % 360) + ",55%,65%)";
}
const chart = document.getElementById("chart");
const crumb = document.getElementById("crumb");
const ROW = 20;
let zoomRoot = null;
function render(node, path) {
  chart.innerHTML = "";
  crumb.textContent = path.join(" > ") || "all";
  let maxDepth = 0;
  function place(n, x, width, depth) {
    maxDepth = Math.max(maxDepth, depth);
    const d = document.createElement("div");
    d.className = "frame";
    d.style.left = (100 * x) + "%";
    d.style.width = "calc(" + (100 * width) + "% - 1px)";
    d.style.top = (depth * ROW) + "px";
    d.style.background = color(n.name);
    d.textContent = n.name;
    d.title = n.name + ": " + n.value + " cycles (" +
        (100 * n.value / node.value).toFixed(1) + "% of view)";
    d.onclick = () => render(n, path.concat(n === node ? [] : [n.name]));
    chart.appendChild(d);
    let cx = x;
    for (const c of n.children.values()) {
      const w = width * c.value / n.value;
      place(c, cx, w, depth + 1);
      cx += w;
    }
  }
  place(node, 0, 1, 0);
  chart.style.height = ((maxDepth + 1) * ROW + 4) + "px";
}
const root = build();
crumb.onclick = () => render(root, []);
render(root, []);
)JS";
  os << "</script></body></html>\n";
  return os.str();
}

std::string report_json(const Profile& p, const RunInfo& run) {
  const TermTotals t = term_totals(p);
  const LimitAgg a = limit_agg(p);
  std::ostringstream os;
  os << "{\n  \"schema\": \"tcfpn-profile-v1\",\n  \"run\": {\n";
  os << "    \"program\": \"" << metrics::json_escape(run.program) << "\",\n";
  for (const auto& [k, v] : run.meta) {
    os << "    \"" << metrics::json_escape(k) << "\": \""
       << metrics::json_escape(v) << "\",\n";
  }
  os << "    \"completed\": " << (run.completed ? "true" : "false") << ",\n"
     << "    \"steps\": " << run.steps << ",\n"
     << "    \"cycles\": " << run.cycles << ",\n"
     << "    \"attributed_cycles\": " << t.attributed << ",\n"
     << "    \"pipeline_fill\": " << run.pipeline_fill << "\n  },\n";
  os << "  \"terms\": [";
  for (std::size_t i = 0; i < kNumTerms; ++i) {
    os << (i ? ", " : "") << "\"" << to_string(static_cast<Term>(i)) << "\"";
  }
  os << "],\n  \"totals\": {";
  for (std::size_t i = 0; i < kNumTerms; ++i) {
    os << (i ? ", " : "") << "\"" << to_string(static_cast<Term>(i))
       << "\": " << t.total[i];
  }
  os << "},\n  \"cells\": [";
  bool first = true;
  for (const auto& [k, c] : p.cells) {
    os << (first ? "" : ",") << "\n    ";
    json_key(os, k);
    os << ", \"cycles\": " << c << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"steps\": {\n    \"recorded\": " << p.steps.size()
     << ",\n    \"truncated\": " << (p.steps_truncated ? "true" : "false")
     << ",\n    \"limited_by\": {";
  for (std::size_t i = 0; i < kNumStepLimits; ++i) {
    os << (i ? ", " : "") << "\"" << to_string(static_cast<StepLimit>(i))
       << "\": {\"steps\": " << a.steps[i] << ", \"cycles\": " << a.cycles[i]
       << "}";
  }
  os << "}\n  },\n  \"folded\": [";
  first = true;
  for (const std::string& l : folded_lines(p, run)) {
    os << (first ? "" : ",") << "\n    \"" << metrics::json_escape(l) << "\"";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace tcfpn::prof
