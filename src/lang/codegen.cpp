#include "lang/codegen.hpp"

#include <cstdint>
#include <set>

#include "common/check.hpp"
#include "lang/parser.hpp"
#include "tcf/builder.hpp"

namespace tcfpn::lang {

namespace {

using tcf::AsmBuilder;
using tcf::Reg;

constexpr std::uint8_t kFirstVarReg = 1;   // r1..r7: scalar variables
constexpr std::uint8_t kLastVarReg = 7;
constexpr std::uint8_t kThickSave0 = 8;    // r8/r9: scoped-thickness saves
constexpr std::uint8_t kThickSave1 = 9;
constexpr std::uint8_t kFirstTempReg = 10; // r10..r15: expression stack
constexpr std::uint8_t kLastTempReg = 15;

class Codegen {
 public:
  Codegen(const ProgramAst& ast, Addr heap_base) : ast_(ast) {
    out_.heap_base = heap_base;
    Addr next = heap_base;
    for (const auto& a : ast.arrays) {
      if (a.size == 0) err(a.line, "array '", a.name, "' has size 0");
      declare(a.line, a.name);
      out_.arrays.emplace(a.name, tcf::Buffer{next, a.size});
      if (!a.init.empty()) builder_.data(next, a.init);
      next += a.size;
    }
    for (const auto& c : ast.cells) {
      declare(c.line, c.name);
      out_.arrays.emplace(c.name, tcf::Buffer{next, 1});
      cells_.insert(c.name);
      if (c.init != 0) builder_.data(next, {c.init});
      next += 1;
    }
    out_.heap_end = next;
    for (const auto& v : ast.vars) {
      declare(v.line, v.name);
      if (next_var_ > kLastVarReg) {
        err(v.line, "too many scalar variables (max ",
            kLastVarReg - kFirstVarReg + 1, "); use cells instead");
      }
      vars_.emplace(v.name, next_var_++);
    }
    for (const auto& f : ast.funcs) {
      declare(f.line, f.name);
      funcs_.emplace(f.name, builder_.make_label(f.name));
    }
  }

  Compiled run() {
    // Variable initialisers execute first, at boot thickness.
    for (const auto& v : ast_.vars) {
      if (v.init) {
        const std::uint8_t rs = eval(*v.init);
        builder_.add(Reg{vars_.at(v.name)}, Reg{rs}, Word{0});
        free_temp(rs);
      }
    }
    for (const auto& s : ast_.stmts) gen(*s);
    builder_.halt();
    // Parallel branch bodies (HALT epilogue) and function bodies (RET
    // epilogue) are emitted after the main body; a function body may itself
    // contain parallel{}, so the two queues drain together.
    std::size_t next_func = 0;
    while (!pending_.empty() || next_func < ast_.funcs.size()) {
      while (!pending_.empty()) {
        auto [label, stmt] = pending_.front();
        pending_.erase(pending_.begin());
        builder_.bind(label);
        gen(*stmt);
        builder_.halt();
      }
      if (next_func < ast_.funcs.size()) {
        const auto& f = ast_.funcs[next_func++];
        builder_.bind(funcs_.at(f.name));
        gen(*f.body);
        builder_.ret();
      }
    }
    out_.program = builder_.build();
    return std::move(out_);
  }

 private:
  template <typename... Args>
  [[noreturn]] void err(int line, const Args&... args) {
    TCFPN_FAULT("compile error at line ", line, ": ", args...);
  }

  void declare(int line, const std::string& name) {
    if (name == "id" || name == "thickness") {
      err(line, "'", name, "' is a reserved word");
    }
    if (out_.arrays.contains(name) || vars_.contains(name) ||
        funcs_.contains(name)) {
      err(line, "duplicate declaration of '", name, "'");
    }
  }

  const tcf::Buffer& array_of(int line, const std::string& name) {
    auto it = out_.arrays.find(name);
    if (it == out_.arrays.end()) err(line, "unknown array '", name, "'");
    return it->second;
  }

  Word base_imm(int line, const tcf::Buffer& b) {
    if (b.base > INT32_MAX) err(line, "array base beyond immediate range");
    return static_cast<Word>(b.base);
  }

  // ---- temp register stack ----
  std::uint8_t alloc_temp(int line) {
    if (temp_top_ > kLastTempReg) {
      err(line, "expression too deep (more than ",
          kLastTempReg - kFirstTempReg + 1, " live temporaries)");
    }
    return temp_top_++;
  }
  void free_temp(std::uint8_t r) {
    TCFPN_CHECK(r + 1 == temp_top_, "temporaries freed out of order");
    --temp_top_;
  }

  // ---- expressions: result in a fresh temp register ----
  std::uint8_t eval(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kNumber: {
        const std::uint8_t rs = alloc_temp(e.line);
        builder_.ldi(Reg{rs}, e.value);
        return rs;
      }
      case K::kVar: {
        const std::uint8_t rs = alloc_temp(e.line);
        if (auto it = vars_.find(e.name); it != vars_.end()) {
          builder_.add(Reg{rs}, Reg{it->second}, Word{0});
        } else if (cells_.contains(e.name)) {
          builder_.ld(Reg{rs}, tcf::r0,
                      base_imm(e.line, out_.arrays.at(e.name)));
        } else if (out_.arrays.contains(e.name)) {
          err(e.line, "'", e.name,
              "' is an array; use '", e.name, ".' or '", e.name, ".[i]'");
        } else {
          err(e.line, "unknown identifier '", e.name, "'");
        }
        return rs;
      }
      case K::kLaneId: {
        const std::uint8_t rs = alloc_temp(e.line);
        builder_.tid(Reg{rs});
        return rs;
      }
      case K::kThickness: {
        const std::uint8_t rs = alloc_temp(e.line);
        builder_.thickq(Reg{rs});
        return rs;
      }
      case K::kElem: {
        const auto& buf = array_of(e.line, e.name);
        if (e.lhs->kind == K::kLaneId) {
          const std::uint8_t rs = alloc_temp(e.line);
          builder_.ld(Reg{rs}, tcf::r0, base_imm(e.line, buf), true);
          return rs;
        }
        const std::uint8_t rs = eval(*e.lhs);
        builder_.add(Reg{rs}, Reg{rs}, base_imm(e.line, buf));
        builder_.ld(Reg{rs}, Reg{rs});
        return rs;
      }
      case K::kUnaryNeg: {
        const std::uint8_t rs = eval(*e.lhs);
        builder_.alu(isa::Opcode::kSub, Reg{rs}, tcf::r0, Reg{rs});
        return rs;
      }
      case K::kUnaryNot: {
        const std::uint8_t rs = eval(*e.lhs);
        builder_.alu(isa::Opcode::kSeq, Reg{rs}, Reg{rs}, Word{0});
        return rs;
      }
      case K::kBinary: {
        const std::uint8_t rs = eval(*e.lhs);
        const std::uint8_t rt = eval(*e.rhs);
        emit_binop(e.line, e.op, rs, rt);
        free_temp(rt);
        return rs;
      }
    }
    err(e.line, "unhandled expression kind");
  }

  void emit_binop(int line, BinOp op, std::uint8_t rs, std::uint8_t rt) {
    using O = isa::Opcode;
    auto r = [](std::uint8_t x) { return Reg{x}; };
    switch (op) {
      case BinOp::kAdd: builder_.alu(O::kAdd, r(rs), r(rs), r(rt)); return;
      case BinOp::kSub: builder_.alu(O::kSub, r(rs), r(rs), r(rt)); return;
      case BinOp::kMul: builder_.alu(O::kMul, r(rs), r(rs), r(rt)); return;
      case BinOp::kDiv: builder_.alu(O::kDiv, r(rs), r(rs), r(rt)); return;
      case BinOp::kMod: builder_.alu(O::kMod, r(rs), r(rs), r(rt)); return;
      case BinOp::kShl: builder_.alu(O::kShl, r(rs), r(rs), r(rt)); return;
      case BinOp::kShr: builder_.alu(O::kShr, r(rs), r(rs), r(rt)); return;
      case BinOp::kLt:  builder_.alu(O::kSlt, r(rs), r(rs), r(rt)); return;
      case BinOp::kLe:  builder_.alu(O::kSle, r(rs), r(rs), r(rt)); return;
      case BinOp::kGt:  builder_.alu(O::kSlt, r(rs), r(rt), r(rs)); return;
      case BinOp::kGe:  builder_.alu(O::kSle, r(rs), r(rt), r(rs)); return;
      case BinOp::kEq:  builder_.alu(O::kSeq, r(rs), r(rs), r(rt)); return;
      case BinOp::kNe:  builder_.alu(O::kSne, r(rs), r(rs), r(rt)); return;
      case BinOp::kAnd: builder_.alu(O::kAnd, r(rs), r(rs), r(rt)); return;
      case BinOp::kOr:  builder_.alu(O::kOr, r(rs), r(rs), r(rt)); return;
      case BinOp::kXor: builder_.alu(O::kXor, r(rs), r(rs), r(rt)); return;
      case BinOp::kLAnd:
        builder_.alu(O::kSne, r(rs), r(rs), Word{0});
        builder_.alu(O::kSne, r(rt), r(rt), Word{0});
        builder_.alu(O::kAnd, r(rs), r(rs), r(rt));
        return;
      case BinOp::kLOr:
        builder_.alu(O::kOr, r(rs), r(rs), r(rt));
        builder_.alu(O::kSne, r(rs), r(rs), Word{0});
        return;
    }
    err(line, "unhandled binary operator");
  }

  // ---- statements ----
  void gen(const Stmt& s) {
    using K = Stmt::Kind;
    switch (s.kind) {
      case K::kSetThickness: {
        const std::uint8_t rs = eval(*s.thickness);
        builder_.setthick(Reg{rs});
        free_temp(rs);
        return;
      }
      case K::kNumaSet:
        builder_.numaset(s.value);
        return;
      case K::kThickPrefixed: {
        if (thick_save_depth_ >= 2) {
          err(s.line, "scoped thickness statements nest at most twice");
        }
        const std::uint8_t save =
            thick_save_depth_ == 0 ? kThickSave0 : kThickSave1;
        ++thick_save_depth_;
        builder_.thickq(Reg{save});
        const std::uint8_t rs = eval(*s.thickness);
        builder_.setthick(Reg{rs});
        free_temp(rs);
        gen(*s.body[0]);
        builder_.setthick(Reg{save});
        --thick_save_depth_;
        return;
      }
      case K::kAssign:
        gen_assign(s);
        return;
      case K::kParallel: {
        for (std::size_t i = 0; i < s.body.size(); ++i) {
          const auto label = builder_.make_label();
          const std::uint8_t rs = eval(*s.branch_thickness[i]);
          builder_.spawn(Reg{rs}, label);
          free_temp(rs);
          pending_.emplace_back(label, s.body[i].get());
        }
        builder_.joinall();
        return;
      }
      case K::kNumaBlock:
        builder_.numaset(s.value);
        gen(*s.body[0]);
        builder_.numaset(0);
        return;
      case K::kIf: {
        const auto else_l = builder_.make_label();
        const std::uint8_t rs = eval(*s.thickness);
        builder_.beqz(Reg{rs}, else_l);
        free_temp(rs);
        gen(*s.body[0]);
        if (s.body.size() > 1) {
          const auto end_l = builder_.make_label();
          builder_.jmp(end_l);
          builder_.bind(else_l);
          gen(*s.body[1]);
          builder_.bind(end_l);
        } else {
          builder_.bind(else_l);
        }
        return;
      }
      case K::kWhile: {
        const auto loop_l = builder_.make_label();
        const auto end_l = builder_.make_label();
        builder_.bind(loop_l);
        const std::uint8_t rs = eval(*s.thickness);
        builder_.beqz(Reg{rs}, end_l);
        free_temp(rs);
        gen(*s.body[0]);
        builder_.jmp(loop_l);
        builder_.bind(end_l);
        return;
      }
      case K::kFor: {
        if (s.body[0]) gen(*s.body[0]);
        const auto loop_l = builder_.make_label();
        const auto end_l = builder_.make_label();
        builder_.bind(loop_l);
        if (s.thickness) {
          const std::uint8_t rs = eval(*s.thickness);
          builder_.beqz(Reg{rs}, end_l);
          free_temp(rs);
        }
        gen(*s.body[2]);
        if (s.body[1]) gen(*s.body[1]);
        builder_.jmp(loop_l);
        builder_.bind(end_l);
        return;
      }
      case K::kBlock:
        for (const auto& child : s.body) gen(*child);
        return;
      case K::kPrefix: {
        const auto& src = array_of(s.line, s.src_array);
        const auto& dst = array_of(s.line, s.dst_array);
        const auto& cell = array_of(s.line, s.sum_cell);
        const std::uint8_t rv = alloc_temp(s.line);
        const std::uint8_t rp = alloc_temp(s.line);
        builder_.ld(Reg{rv}, tcf::r0, base_imm(s.line, src), true);
        const auto pp = static_cast<isa::Opcode>(
            static_cast<int>(isa::Opcode::kPpAdd) + static_cast<int>(s.mop));
        builder_.pp(pp, Reg{rp}, Reg{rv}, tcf::r0, base_imm(s.line, cell));
        builder_.st(Reg{rp}, tcf::r0, base_imm(s.line, dst), true);
        free_temp(rp);
        free_temp(rv);
        return;
      }
      case K::kMulti: {
        // Combining multioperation: all same-address contributions of the
        // step merge in the active memory (no read-modify-write race).
        const auto& buf = array_of(s.line, s.target);
        const std::uint8_t rv = eval(*s.thickness);  // contribution
        const auto mp = static_cast<isa::Opcode>(
            static_cast<int>(isa::Opcode::kMpAdd) + static_cast<int>(s.mop));
        if (s.target_index->kind == Expr::Kind::kLaneId) {
          builder_.mp(mp, Reg{rv}, tcf::r0, base_imm(s.line, buf), true);
        } else {
          const std::uint8_t ra = eval(*s.target_index);
          builder_.add(Reg{ra}, Reg{ra}, base_imm(s.line, buf));
          builder_.mp(mp, Reg{rv}, Reg{ra});
          free_temp(ra);
        }
        free_temp(rv);
        return;
      }
      case K::kPrint: {
        const std::uint8_t rs = eval(*s.thickness);
        builder_.print(Reg{rs});
        free_temp(rs);
        return;
      }
      case K::kCall: {
        // The flow calls the method ONCE, whatever its thickness: CALL is a
        // control instruction (one op per flow), and the return address
        // goes on the flow's call stack — Section 2.2's novel semantics.
        auto it = funcs_.find(s.target);
        if (it == funcs_.end()) {
          err(s.line, "unknown function '", s.target, "'");
        }
        builder_.call(it->second);
        return;
      }
    }
    err(s.line, "unhandled statement kind");
  }

  void gen_assign(const Stmt& s) {
    const std::uint8_t rs = eval(*s.thickness);  // rhs value
    auto apply = [&](std::uint8_t dst, std::uint8_t src) {
      using O = isa::Opcode;
      auto r = [](std::uint8_t x) { return Reg{x}; };
      switch (s.assign_op) {
        case AssignOp::kSet: builder_.add(r(dst), r(src), Word{0}); return;
        case AssignOp::kAdd: builder_.alu(O::kAdd, r(dst), r(dst), r(src)); return;
        case AssignOp::kSub: builder_.alu(O::kSub, r(dst), r(dst), r(src)); return;
        case AssignOp::kMul: builder_.alu(O::kMul, r(dst), r(dst), r(src)); return;
        case AssignOp::kShl: builder_.alu(O::kShl, r(dst), r(dst), r(src)); return;
        case AssignOp::kShr: builder_.alu(O::kShr, r(dst), r(dst), r(src)); return;
      }
    };

    if (!s.target_is_elem) {
      if (auto it = vars_.find(s.target); it != vars_.end()) {
        apply(it->second, rs);
        free_temp(rs);
        return;
      }
      if (cells_.contains(s.target)) {
        const Word base = base_imm(s.line, out_.arrays.at(s.target));
        if (s.assign_op == AssignOp::kSet) {
          builder_.st(Reg{rs}, tcf::r0, base);
        } else {
          const std::uint8_t rt = alloc_temp(s.line);
          builder_.ld(Reg{rt}, tcf::r0, base);
          apply(rt, rs);
          builder_.st(Reg{rt}, tcf::r0, base);
          free_temp(rt);
        }
        free_temp(rs);
        return;
      }
      err(s.line, "unknown variable '", s.target, "'");
    }

    // array element
    const auto& buf = array_of(s.line, s.target);
    const Word base = base_imm(s.line, buf);
    if (s.target_index->kind == Expr::Kind::kLaneId) {
      if (s.assign_op == AssignOp::kSet) {
        builder_.st(Reg{rs}, tcf::r0, base, true);
      } else {
        const std::uint8_t rt = alloc_temp(s.line);
        builder_.ld(Reg{rt}, tcf::r0, base, true);
        apply(rt, rs);
        builder_.st(Reg{rt}, tcf::r0, base, true);
        free_temp(rt);
      }
      free_temp(rs);
      return;
    }
    const std::uint8_t ra = eval(*s.target_index);
    builder_.add(Reg{ra}, Reg{ra}, base);  // ra = &target[index]
    if (s.assign_op == AssignOp::kSet) {
      builder_.st(Reg{rs}, Reg{ra});
    } else {
      const std::uint8_t rt = alloc_temp(s.line);
      builder_.ld(Reg{rt}, Reg{ra});
      apply(rt, rs);
      builder_.st(Reg{rt}, Reg{ra});
      free_temp(rt);
    }
    free_temp(ra);
    free_temp(rs);
    return;
  }

  const ProgramAst& ast_;
  AsmBuilder builder_;
  Compiled out_;
  std::map<std::string, std::uint8_t> vars_;
  std::map<std::string, AsmBuilder::Label> funcs_;
  std::set<std::string> cells_;
  std::uint8_t next_var_ = kFirstVarReg;
  std::uint8_t temp_top_ = kFirstTempReg;
  int thick_save_depth_ = 0;
  std::vector<std::pair<AsmBuilder::Label, const Stmt*>> pending_;
};

}  // namespace

const tcf::Buffer& Compiled::buffer(const std::string& name) const {
  auto it = arrays.find(name);
  TCFPN_CHECK(it != arrays.end(), "unknown array/cell '", name, "'");
  return it->second;
}

Compiled compile(const ProgramAst& ast, Addr heap_base) {
  return Codegen(ast, heap_base).run();
}

Compiled compile_source(const std::string& source, Addr heap_base) {
  return compile(parse(source), heap_base);
}

}  // namespace tcfpn::lang
