#include "lang/parser.hpp"

#include "common/check.hpp"
#include "lang/lexer.hpp"

namespace tcfpn::lang {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : toks_(lex(src)) {}

  ProgramAst run() {
    ProgramAst prog;
    while (!at_end()) {
      if (is_kw("array")) {
        prog.arrays.push_back(parse_array_decl());
      } else if (is_kw("var")) {
        prog.vars.push_back(parse_var_decl());
      } else if (is_kw("cell")) {
        prog.cells.push_back(parse_cell_decl());
      } else if (is_kw("func")) {
        prog.funcs.push_back(parse_func_decl());
      } else {
        break;
      }
    }
    while (!at_end()) {
      if (is_kw("func")) {
        prog.funcs.push_back(parse_func_decl());
      } else {
        prog.stmts.push_back(parse_stmt());
      }
    }
    return prog;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at_end() const { return cur().kind == Tok::kEnd; }
  Token advance() { return toks_[pos_++]; }

  [[noreturn]] void error(const std::string& msg) const {
    TCFPN_FAULT("parse error at line ", cur().line, ": ", msg);
  }

  bool is(Tok k) const { return cur().kind == k; }
  bool is_kw(const char* kw) const {
    return cur().kind == Tok::kIdent && cur().text == kw;
  }
  bool accept(Tok k) {
    if (!is(k)) return false;
    ++pos_;
    return true;
  }
  void expect(Tok k, const char* what) {
    if (!accept(k)) {
      error(std::string("expected ") + to_string(k) + " " + what + ", got '" +
            (cur().kind == Tok::kIdent ? cur().text : to_string(cur().kind)) +
            "'");
    }
  }
  std::string expect_ident(const char* what) {
    if (!is(Tok::kIdent)) error(std::string("expected identifier ") + what);
    return advance().text;
  }
  Word expect_number(const char* what) {
    if (!is(Tok::kNumber)) error(std::string("expected number ") + what);
    return advance().value;
  }

  // ---- declarations ----
  ArrayDecl parse_array_decl() {
    ArrayDecl d;
    d.line = cur().line;
    advance();  // 'array'
    d.name = expect_ident("after 'array'");
    expect(Tok::kLBracket, "for array size");
    d.size = static_cast<std::size_t>(parse_const_expr());
    expect(Tok::kRBracket, "after array size");
    if (accept(Tok::kAssign)) {
      expect(Tok::kLBrace, "for array initialiser");
      while (!is(Tok::kRBrace)) {
        bool neg = accept(Tok::kMinus);
        const Word v = expect_number("in array initialiser");
        d.init.push_back(neg ? -v : v);
        if (!accept(Tok::kComma)) break;
      }
      expect(Tok::kRBrace, "to close array initialiser");
      if (d.init.size() > d.size) {
        error("array initialiser longer than the array");
      }
    }
    expect(Tok::kSemi, "after array declaration");
    return d;
  }

  VarDecl parse_var_decl() {
    VarDecl d;
    d.line = cur().line;
    advance();  // 'var'
    d.name = expect_ident("after 'var'");
    if (accept(Tok::kAssign)) d.init = parse_expr();
    expect(Tok::kSemi, "after var declaration");
    return d;
  }

  FuncDecl parse_func_decl() {
    FuncDecl d;
    d.line = cur().line;
    advance();  // 'func'
    d.name = expect_ident("after 'func'");
    expect(Tok::kLParen, "after function name");
    expect(Tok::kRParen, "— functions take no parameters; use vars/cells");
    d.body = parse_stmt();
    return d;
  }

  CellDecl parse_cell_decl() {
    CellDecl d;
    d.line = cur().line;
    advance();  // 'cell'
    d.name = expect_ident("after 'cell'");
    if (accept(Tok::kAssign)) {
      const bool neg = accept(Tok::kMinus);
      d.init = expect_number("as cell initialiser");
      if (neg) d.init = -d.init;
    }
    expect(Tok::kSemi, "after cell declaration");
    return d;
  }

  /// Constant expressions: literals with + - * / % << >> and parens.
  Word parse_const_expr() {
    ExprPtr e = parse_expr();
    return eval_const(*e);
  }

  Word eval_const(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return e.value;
      case Expr::Kind::kUnaryNeg:
        return -eval_const(*e.lhs);
      case Expr::Kind::kBinary: {
        const Word a = eval_const(*e.lhs);
        const Word b = eval_const(*e.rhs);
        switch (e.op) {
          case BinOp::kAdd: return a + b;
          case BinOp::kSub: return a - b;
          case BinOp::kMul: return a * b;
          case BinOp::kDiv:
            if (b == 0) error("division by zero in constant expression");
            return a / b;
          case BinOp::kMod:
            if (b == 0) error("modulo by zero in constant expression");
            return a % b;
          case BinOp::kShl: return a << (b & 63);
          case BinOp::kShr: return a >> (b & 63);
          default:
            error("operator not allowed in constant expression");
        }
      }
      default:
        error("expected a constant expression");
    }
  }

  // ---- statements ----
  StmtPtr parse_stmt() {
    const int line = cur().line;
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;

    if (accept(Tok::kHash)) {
      ExprPtr e = parse_expr();
      // `#1/K` => NUMA block length K (the paper's 1-over-T thickness).
      if (e->kind == Expr::Kind::kBinary && e->op == BinOp::kDiv &&
          e->lhs->kind == Expr::Kind::kNumber && e->lhs->value == 1) {
        stmt->kind = Stmt::Kind::kNumaSet;
        stmt->value = eval_const(*e->rhs);
        if (stmt->value < 1) error("NUMA block length must be >= 1");
        expect(Tok::kSemi, "after #1/T statement");
        return stmt;
      }
      if (accept(Tok::kColon)) {
        stmt->kind = Stmt::Kind::kThickPrefixed;
        stmt->thickness = std::move(e);
        stmt->body.push_back(parse_stmt());
        return stmt;
      }
      stmt->kind = Stmt::Kind::kSetThickness;
      stmt->thickness = std::move(e);
      expect(Tok::kSemi, "after thickness statement");
      return stmt;
    }
    if (is_kw("numa")) {
      advance();
      expect(Tok::kLParen, "after 'numa'");
      stmt->kind = Stmt::Kind::kNumaBlock;
      stmt->value = parse_const_expr();
      if (stmt->value < 1) error("NUMA block length must be >= 1");
      expect(Tok::kRParen, "after numa block length");
      stmt->body.push_back(parse_stmt());
      return stmt;
    }
    if (is_kw("parallel")) {
      advance();
      expect(Tok::kLBrace, "after 'parallel'");
      stmt->kind = Stmt::Kind::kParallel;
      while (!accept(Tok::kRBrace)) {
        expect(Tok::kHash, "to open a parallel branch (#thickness: stmt)");
        stmt->branch_thickness.push_back(parse_expr());
        expect(Tok::kColon, "after branch thickness");
        stmt->body.push_back(parse_stmt());
      }
      if (stmt->body.empty()) error("parallel{} needs at least one branch");
      return stmt;
    }
    if (is_kw("if")) {
      advance();
      expect(Tok::kLParen, "after 'if'");
      stmt->kind = Stmt::Kind::kIf;
      stmt->thickness = parse_expr();
      expect(Tok::kRParen, "after if condition");
      stmt->body.push_back(parse_stmt());
      if (is_kw("else")) {
        advance();
        stmt->body.push_back(parse_stmt());
      }
      return stmt;
    }
    if (is_kw("while")) {
      advance();
      expect(Tok::kLParen, "after 'while'");
      stmt->kind = Stmt::Kind::kWhile;
      stmt->thickness = parse_expr();
      expect(Tok::kRParen, "after while condition");
      stmt->body.push_back(parse_stmt());
      return stmt;
    }
    if (is_kw("for")) {
      advance();
      expect(Tok::kLParen, "after 'for'");
      stmt->kind = Stmt::Kind::kFor;
      stmt->body.resize(3);
      if (!is(Tok::kSemi)) stmt->body[0] = parse_simple();
      expect(Tok::kSemi, "after for-init");
      if (!is(Tok::kSemi)) stmt->thickness = parse_expr();
      expect(Tok::kSemi, "after for-condition");
      if (!is(Tok::kRParen)) stmt->body[1] = parse_simple();
      expect(Tok::kRParen, "after for-step");
      stmt->body[2] = parse_stmt();
      return stmt;
    }
    if (is_kw("prefix")) {
      advance();
      expect(Tok::kLParen, "after 'prefix'");
      stmt->kind = Stmt::Kind::kPrefix;
      stmt->src_array = expect_ident("as prefix source array");
      expect(Tok::kComma, "after prefix source");
      const std::string mop = expect_ident("as multioperation");
      if (mop == "MPADD") stmt->mop = mem::MultiOp::kAdd;
      else if (mop == "MPMAX") stmt->mop = mem::MultiOp::kMax;
      else if (mop == "MPMIN") stmt->mop = mem::MultiOp::kMin;
      else if (mop == "MPAND") stmt->mop = mem::MultiOp::kAnd;
      else if (mop == "MPOR") stmt->mop = mem::MultiOp::kOr;
      else error("unknown multioperation '" + mop + "'");
      expect(Tok::kComma, "after multioperation");
      expect(Tok::kAmp, "before the sum cell (&cell)");
      stmt->sum_cell = expect_ident("as the sum cell");
      expect(Tok::kComma, "after the sum cell");
      stmt->dst_array = expect_ident("as prefix destination array");
      expect(Tok::kRParen, "to close prefix(...)");
      expect(Tok::kSemi, "after prefix statement");
      return stmt;
    }
    if (is_kw("multi")) {
      advance();
      expect(Tok::kLParen, "after 'multi'");
      stmt->kind = Stmt::Kind::kMulti;
      stmt->target = expect_ident("as multioperation target array");
      expect(Tok::kDot, "— multi() targets an array element (arr.[i])");
      if (accept(Tok::kLBracket)) {
        stmt->target_index = parse_expr();
        expect(Tok::kRBracket, "after element index");
      } else {
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::Kind::kLaneId;
        idx->line = stmt->line;
        stmt->target_index = std::move(idx);
      }
      stmt->target_is_elem = true;
      expect(Tok::kComma, "after multi target");
      const std::string mop = expect_ident("as multioperation");
      if (mop == "MPADD") stmt->mop = mem::MultiOp::kAdd;
      else if (mop == "MPMAX") stmt->mop = mem::MultiOp::kMax;
      else if (mop == "MPMIN") stmt->mop = mem::MultiOp::kMin;
      else if (mop == "MPAND") stmt->mop = mem::MultiOp::kAnd;
      else if (mop == "MPOR") stmt->mop = mem::MultiOp::kOr;
      else error("unknown multioperation '" + mop + "'");
      expect(Tok::kComma, "after multioperation");
      stmt->thickness = parse_expr();  // the contribution value
      expect(Tok::kRParen, "to close multi(...)");
      expect(Tok::kSemi, "after multi statement");
      return stmt;
    }
    if (is_kw("print")) {
      advance();
      expect(Tok::kLParen, "after 'print'");
      stmt->kind = Stmt::Kind::kPrint;
      stmt->thickness = parse_expr();
      expect(Tok::kRParen, "after print argument");
      expect(Tok::kSemi, "after print statement");
      return stmt;
    }
    if (accept(Tok::kLBrace)) {
      stmt->kind = Stmt::Kind::kBlock;
      while (!accept(Tok::kRBrace)) stmt->body.push_back(parse_stmt());
      return stmt;
    }
    // simple statement
    StmtPtr simple = parse_simple();
    expect(Tok::kSemi, "after statement");
    return simple;
  }

  StmtPtr parse_simple() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = cur().line;
    // `name();` — flow-level call.
    if (is(Tok::kIdent) && peek(1).kind == Tok::kLParen) {
      stmt->kind = Stmt::Kind::kCall;
      stmt->target = advance().text;
      expect(Tok::kLParen, "in call");
      expect(Tok::kRParen, "in call");
      return stmt;
    }
    stmt->kind = Stmt::Kind::kAssign;
    stmt->target = expect_ident("as assignment target");
    if (accept(Tok::kDot)) {
      stmt->target_is_elem = true;
      if (accept(Tok::kLBracket)) {
        stmt->target_index = parse_expr();
        expect(Tok::kRBracket, "after element index");
      } else {
        // `a.` is shorthand for `a.[id]`
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::Kind::kLaneId;
        idx->line = stmt->line;
        stmt->target_index = std::move(idx);
      }
    }
    switch (cur().kind) {
      case Tok::kAssign: stmt->assign_op = AssignOp::kSet; break;
      case Tok::kPlusAssign: stmt->assign_op = AssignOp::kAdd; break;
      case Tok::kMinusAssign: stmt->assign_op = AssignOp::kSub; break;
      case Tok::kStarAssign: stmt->assign_op = AssignOp::kMul; break;
      case Tok::kShlAssign: stmt->assign_op = AssignOp::kShl; break;
      case Tok::kShrAssign: stmt->assign_op = AssignOp::kShr; break;
      default: error("expected an assignment operator");
    }
    advance();
    stmt->thickness = parse_expr();
    return stmt;
  }

  // ---- expressions (precedence climbing) ----
  ExprPtr parse_expr() { return parse_binary(0); }

  static int precedence(Tok t) {
    switch (t) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kBitOr: return 3;
      case Tok::kBitXor: return 4;
      case Tok::kBitAnd: case Tok::kAmp: return 5;
      case Tok::kEq: case Tok::kNe: return 6;
      case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe: return 7;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  static BinOp binop_of(Tok t) {
    switch (t) {
      case Tok::kOrOr: return BinOp::kLOr;
      case Tok::kAndAnd: return BinOp::kLAnd;
      case Tok::kBitOr: return BinOp::kOr;
      case Tok::kBitXor: return BinOp::kXor;
      case Tok::kBitAnd: case Tok::kAmp: return BinOp::kAnd;
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kGe: return BinOp::kGe;
      case Tok::kShl: return BinOp::kShl;
      case Tok::kShr: return BinOp::kShr;
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      case Tok::kPercent: return BinOp::kMod;
      default: TCFPN_FAULT("not a binary operator");
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const int prec = precedence(cur().kind);
      if (prec < min_prec || prec < 0) return lhs;
      const Tok op = advance().kind;
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = binop_of(op);
      e->line = lhs->line;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    const int line = cur().line;
    if (accept(Tok::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnaryNeg;
      e->line = line;
      e->lhs = parse_unary();
      return e;
    }
    if (accept(Tok::kNot)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnaryNot;
      e->line = line;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (is(Tok::kNumber)) {
      e->kind = Expr::Kind::kNumber;
      e->value = advance().value;
      return e;
    }
    if (accept(Tok::kLParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::kRParen, "to close parenthesised expression");
      return inner;
    }
    if (is(Tok::kIdent)) {
      const std::string name = advance().text;
      if (name == "id") {
        e->kind = Expr::Kind::kLaneId;
        return e;
      }
      if (name == "thickness") {
        e->kind = Expr::Kind::kThickness;
        return e;
      }
      if (accept(Tok::kDot)) {
        e->kind = Expr::Kind::kElem;
        e->name = name;
        if (accept(Tok::kLBracket)) {
          e->lhs = parse_expr();
          expect(Tok::kRBracket, "after element index");
        } else {
          auto idx = std::make_unique<Expr>();
          idx->kind = Expr::Kind::kLaneId;
          idx->line = e->line;
          e->lhs = std::move(idx);
        }
        return e;
      }
      e->kind = Expr::Kind::kVar;
      e->name = name;
      return e;
    }
    error("expected an expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse(const std::string& source) { return Parser(source).run(); }

}  // namespace tcfpn::lang
