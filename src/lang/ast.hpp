// AST for the TCF source language (see lexer.hpp for the surface syntax
// and codegen.hpp for the semantics of each node).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/shared_memory.hpp"

namespace tcfpn::lang {

// ---------------------------------------------------------------- exprs --

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr, kXor,
  kLAnd, kLOr,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kNumber,   // value
    kVar,      // name: register scalar, or memory cell
    kLaneId,   // `id`
    kThickness,// `thickness`
    kElem,     // name.[index]  (thick array element)
    kUnaryNeg,
    kUnaryNot,
    kBinary,
  };
  Kind kind;
  Word value = 0;        // kNumber
  std::string name;      // kVar / kElem
  BinOp op = BinOp::kAdd;
  ExprPtr lhs;           // kUnary*: operand; kBinary: left; kElem: index
  ExprPtr rhs;
  int line = 0;
};

// ----------------------------------------------------------------- stmts --

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class AssignOp : std::uint8_t { kSet, kAdd, kSub, kMul, kShl, kShr };

struct Stmt {
  enum class Kind : std::uint8_t {
    kSetThickness,  // `# expr ;`              expr in `thickness`
    kNumaSet,       // `# 1/K ;` or numa(K)    constant in `value`
    kThickPrefixed, // `# expr : stmt`         expr + body[0]
    kAssign,        // lvalue in `target`(+index), op, expr in `thickness`
    kParallel,      // branches: thicknesses[i] + body[i]
    kNumaBlock,     // `numa (K) stmt`         value + body[0]
    kIf,            // cond in `thickness`, body[0], optional body[1]
    kWhile,         // cond + body[0]
    kFor,           // init=body[0], cond, step=body[1], body[2]
    kBlock,         // body*
    kPrefix,        // prefix(src, MOP, &cell, dst)
    kMulti,         // multi(arr.[i], MOP, v) — combining multioperation
    kPrint,         // expr
    kCall,          // name();  — flow-level call: once per FLOW, not per
                    // implicit thread (the paper's novel method-call
                    // semantics; the call stack belongs to the flow)
  };
  Kind kind;
  int line = 0;

  ExprPtr thickness;  // doubles as cond / assigned expr / printed expr
  Word value = 0;     // NumaSet / NumaBlock block length

  // kAssign
  std::string target;      // scalar var, cell, or array name
  bool target_is_elem = false;
  ExprPtr target_index;    // for array elements
  AssignOp assign_op = AssignOp::kSet;

  // kParallel
  std::vector<ExprPtr> branch_thickness;

  // kPrefix
  std::string src_array;
  std::string dst_array;
  std::string sum_cell;
  mem::MultiOp mop = mem::MultiOp::kAdd;

  std::vector<StmtPtr> body;
};

// --------------------------------------------------------------- program --

struct ArrayDecl {
  std::string name;
  std::size_t size = 0;
  std::vector<Word> init;  // empty or size elements
  int line = 0;
};

struct VarDecl {
  std::string name;
  ExprPtr init;  // may be null
  int line = 0;
};

struct CellDecl {
  std::string name;
  Word init = 0;
  int line = 0;
};

/// `func name() stmt` — a method with the thickness of its calling flow.
struct FuncDecl {
  std::string name;
  StmtPtr body;
  int line = 0;
};

struct ProgramAst {
  std::vector<ArrayDecl> arrays;
  std::vector<VarDecl> vars;
  std::vector<CellDecl> cells;
  std::vector<FuncDecl> funcs;
  std::vector<StmtPtr> stmts;
};

}  // namespace tcfpn::lang
