#include "lang/lexer.hpp"

#include <cctype>

#include "common/check.hpp"

namespace tcfpn::lang {

const char* to_string(Tok t) {
  switch (t) {
    case Tok::kEnd: return "<end>";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kHash: return "#";
    case Tok::kDot: return ".";
    case Tok::kAmp: return "&";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kSemi: return ";";
    case Tok::kColon: return ":";
    case Tok::kComma: return ",";
    case Tok::kAssign: return "=";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kStarAssign: return "*=";
    case Tok::kShlAssign: return "<<=";
    case Tok::kShrAssign: return ">>=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kLt: return "<";
    case Tok::kLe: return "<=";
    case Tok::kGt: return ">";
    case Tok::kGe: return ">=";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kBitAnd: return "&";
    case Tok::kBitOr: return "|";
    case Tok::kBitXor: return "^";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kNot: return "!";
  }
  return "?";
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  auto push = [&](Tok kind, std::string text = {}, Word value = 0) {
    out.push_back(Token{kind, std::move(text), value, line});
  };
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // comments
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) {
        TCFPN_FAULT("lex error at line ", line, ": unterminated /* comment");
      }
      i += 2;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i;
      Word v = 0;
      if (c == '0' && i + 1 < src.size() &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        end = i + 2;
        while (end < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[end]))) {
          ++end;
        }
        v = static_cast<Word>(std::stoll(src.substr(i, end - i), nullptr, 16));
      } else {
        while (end < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[end]))) {
          ++end;
        }
        v = static_cast<Word>(std::stoll(src.substr(i, end - i)));
      }
      push(Tok::kNumber, {}, v);
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[end])) ||
              src[end] == '_')) {
        ++end;
      }
      push(Tok::kIdent, src.substr(i, end - i));
      i = end;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    auto three = [&](char a, char b, char d) {
      return c == a && i + 2 < src.size() && src[i + 1] == b &&
             src[i + 2] == d;
    };
    if (three('<', '<', '=')) { push(Tok::kShlAssign); i += 3; continue; }
    if (three('>', '>', '=')) { push(Tok::kShrAssign); i += 3; continue; }
    if (two('<', '<')) { push(Tok::kShl); i += 2; continue; }
    if (two('>', '>')) { push(Tok::kShr); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe); i += 2; continue; }
    if (two('=', '=')) { push(Tok::kEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNe); i += 2; continue; }
    if (two('+', '=')) { push(Tok::kPlusAssign); i += 2; continue; }
    if (two('-', '=')) { push(Tok::kMinusAssign); i += 2; continue; }
    if (two('*', '=')) { push(Tok::kStarAssign); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr); i += 2; continue; }
    switch (c) {
      case '#': push(Tok::kHash); break;
      case '.': push(Tok::kDot); break;
      case '&': push(Tok::kAmp); break;
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ';': push(Tok::kSemi); break;
      case ':': push(Tok::kColon); break;
      case ',': push(Tok::kComma); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '<': push(Tok::kLt); break;
      case '>': push(Tok::kGt); break;
      case '|': push(Tok::kBitOr); break;
      case '^': push(Tok::kBitXor); break;
      case '!': push(Tok::kNot); break;
      default:
        TCFPN_FAULT("lex error at line ", line, ": unexpected character '",
                    std::string(1, c), "'");
    }
    ++i;
  }
  push(Tok::kEnd);
  return out;
}

}  // namespace tcfpn::lang
