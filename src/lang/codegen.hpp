// Code generation: TCF source -> tcfpn ISA.
//
// This is the compiler the paper lists as future work ("attempts to create
// an execution architecture and compiler for the extended PRAM-NUMA
// model"): Section 4's statements map to the machine as
//
//   #e;                     SETTHICK (evaluated e)
//   #1/K;  /  numa(K) s     NUMASET K ... NUMASET 0
//   #e: s                   THICK save; SETTHICK e; s; SETTHICK save
//   c. = a. + b.;           lane-addressed LD/LD/ADD/ST, one fetch each
//   parallel { #t: s ... }  SPAWN per branch + JOINALL (implicit join)
//   prefix(s, MPADD, &c, d) LD / PPADD / ST of thickness `thickness`
//   if/while/for            flow-uniform branches (divergence faults)
//
// Storage model: `array` and `cell` declarations live in simulated shared
// memory from `heap_base` up; `var` declarations live in registers r1..r7
// (flow-level scalars — every lane holds the same value). Registers r8/r9
// hold the scoped-thickness save stack and r10..r15 the expression stack.
#pragma once

#include <map>
#include <string>

#include "isa/program.hpp"
#include "lang/ast.hpp"
#include "tcf/buffer.hpp"

namespace tcfpn::lang {

struct Compiled {
  isa::Program program;
  std::map<std::string, tcf::Buffer> arrays;  ///< arrays and 1-word cells
  Addr heap_base = 0;
  Addr heap_end = 0;

  const tcf::Buffer& buffer(const std::string& name) const;
};

/// Compiles a parsed program. Throws SimError on semantic errors
/// (unknown names, too many scalars, nesting limits).
Compiled compile(const ProgramAst& ast, Addr heap_base = 1024);

/// Front door: parse + compile.
Compiled compile_source(const std::string& source, Addr heap_base = 1024);

}  // namespace tcfpn::lang
