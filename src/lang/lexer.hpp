// Lexer for the TCF source language.
//
// The language realises the notation of Section 4 of the paper: thickness
// statements (`#size;`, `#size/2: stmt`, `#1/T;`), thick element-wise
// expressions (`c. = a. + b.;`, `c.[id + n/2] = 0;`), `parallel { ... }`
// split/join blocks, `prefix(src, MPADD, &sum, dst);` multioperations, and
// ordinary flow-level control (`if`, `while`, `for`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tcfpn::lang {

enum class Tok : std::uint8_t {
  kEnd,
  kIdent,    // names, keywords resolved by the parser
  kNumber,
  kHash,     // #
  kDot,      // .  (thick marker suffix)
  kAmp,      // &
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kColon, kComma,
  kAssign,       // =
  kPlusAssign,   // +=
  kMinusAssign,  // -=
  kStarAssign,   // *=
  kShlAssign,    // <<=
  kShrAssign,    // >>=
  kPlus, kMinus, kStar, kSlash, kPercent,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kBitAnd, kBitOr, kBitXor,
  kAndAnd, kOrOr, kNot,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier spelling
  Word value = 0;     // number value
  int line = 0;
};

const char* to_string(Tok t);

/// Tokenises TCF source. `//` and `/* */` comments are skipped.
/// Throws SimError with a line number on illegal input.
std::vector<Token> lex(const std::string& source);

}  // namespace tcfpn::lang
