// Recursive-descent parser for the TCF source language.
//
// Grammar (EBNF, ws/comments elided):
//   program   := decl* stmt*
//   decl      := 'array' IDENT '[' const ']' ('=' '{' num {',' num} '}')? ';'
//              | 'var'  IDENT ('=' expr)? ';'
//              | 'cell' IDENT ('=' num)? ';'
//   stmt      := '#' expr ';'                      -- thickness statement
//              | '#' expr ':' stmt                 -- scoped thickness
//              | 'numa' '(' const ')' stmt         -- #1/K block
//              | 'parallel' '{' { '#' expr ':' stmt } '}'
//              | 'if' '(' expr ')' stmt ('else' stmt)?
//              | 'while' '(' expr ')' stmt
//              | 'for' '(' simple? ';' expr? ';' simple? ')' stmt
//              | 'prefix' '(' IDENT ',' MOP ',' '&' IDENT ',' IDENT ')' ';'
//              | 'print' '(' expr ')' ';'
//              | '{' stmt* '}'
//              | simple ';'
//   simple    := lvalue ('='|'+='|'-='|'*='|'<<='|'>>=') expr
//   lvalue    := IDENT | IDENT '.' ('[' expr ']')?
//   expr      := usual C precedence over || && |^& == != < <= > >=
//                << >> + - * / % with unary -/! and primaries:
//                NUMBER | IDENT | 'id' | 'thickness' | IDENT '.' ['[' e ']']
//                | '(' expr ')'
//
// A thickness statement whose expression is `1/K` (K constant) switches to
// NUMA mode with block length K — the paper's `#1/T;` notation.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace tcfpn::lang {

/// Parses a full TCF program. Throws SimError with line info on errors.
ProgramAst parse(const std::string& source);

}  // namespace tcfpn::lang
