#include "machine/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/log.hpp"
#include "machine/cost_model.hpp"
#include "machine/shapes.hpp"

namespace tcfpn::machine {

namespace {

// Priority-CRCW lane keys order accesses by (flow id, lane): lower flow ids
// and lower lanes win ties deterministically.
LaneId lane_key(FlowId flow, LaneId lane) { return (flow << 40) | lane; }

constexpr std::uint64_t kUnlimited = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kLaneOpGuard = 4'000'000;  // runaway-lane guard (XMT)

// Host-profiling span cap: a span is ~50 bytes, so this bounds the buffer at
// a few tens of MB even for million-step runs.
constexpr std::size_t kMaxHostSpans = 1u << 20;

}  // namespace

const char* to_string(DebugEventKind k) {
  switch (k) {
    case DebugEventKind::kFlowCreated: return "flow_created";
    case DebugEventKind::kFlowHalted: return "flow_halted";
    case DebugEventKind::kThicknessChanged: return "thickness_changed";
    case DebugEventKind::kSpawn: return "spawn";
    case DebugEventKind::kJoin: return "join";
    case DebugEventKind::kSuspend: return "suspend";
    case DebugEventKind::kResume: return "resume";
    case DebugEventKind::kEvict: return "evict";
    case DebugEventKind::kPrint: return "print";
    case DebugEventKind::kStepCommitted: return "step_committed";
    case DebugEventKind::kFault: return "fault";
    case DebugEventKind::kFaultInjected: return "fault_injected";
    case DebugEventKind::kRetry: return "retry";
    case DebugEventKind::kRollback: return "rollback";
    case DebugEventKind::kGroupRetired: return "group_retired";
    case DebugEventKind::kShardFault: return "shard_fault";
    case DebugEventKind::kShardRestart: return "shard_restart";
    case DebugEventKind::kShardRetired: return "shard_retired";
  }
  return "?";
}

void Machine::emit(GroupCtx& ctx, DebugEventKind kind, const TcfDescriptor& f,
                   Word a, Word b) {
  // Sharded stepping captures events unconditionally: the replica executing
  // this group is in general not the one with the journaling observer, so
  // the events must travel in the batch either way.
  if (observer_ == nullptr && !shard_mode_) return;
  ctx.events.push_back(DebugEvent{kind, stats_.steps, f.id, f.home, a, b});
}

void Machine::emit_now(DebugEventKind kind, FlowId flow, GroupId group, Word a,
                       Word b) {
  if (observer_ == nullptr) return;
  observer_->on_event(DebugEvent{kind, stats_.steps, flow, group, a, b});
}

void Machine::bind_lane_counters(metrics::MetricsRegistry& reg,
                                 LaneCounters& lc) {
  lc.shared_reads = &reg.counter("mem/shared_reads");
  lc.shared_writes = &reg.counter("mem/shared_writes");
  lc.local_reads = &reg.counter("mem/local_reads");
  lc.local_writes = &reg.counter("mem/local_writes");
  lc.multiop_contributions = &reg.counter("mem/multiop_contributions");
  lc.prefix_contributions = &reg.counter("mem/prefix_contributions");
  lc.store_forwards = &reg.counter("mem/store_forwards");
}

namespace {

// The machine's topology: the physical network, wrapped in an
// OverrideTopology when any group of a heterogeneous shape carries a
// private NUMA distance row. Routing stays physical; the distance metric
// (analytic latency bound, dist_cache_, diameter) sees the override.
std::unique_ptr<net::Topology> make_machine_topology(
    const MachineConfig& cfg) {
  auto base = net::make_topology(cfg.topology, cfg.groups);
  bool any_row = false;
  for (const auto& spec : cfg.group_specs) {
    if (!spec.numa_row.empty()) any_row = true;
  }
  if (!any_row) return base;
  std::vector<std::vector<std::uint32_t>> rows(cfg.groups);
  for (std::uint32_t g = 0; g < cfg.groups && g < cfg.group_specs.size();
       ++g) {
    rows[g] = cfg.group_specs[g].numa_row;
  }
  return std::make_unique<net::OverrideTopology>(std::move(base),
                                                 std::move(rows));
}

}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      shared_(cfg.shared_words, cfg.groups, cfg.crcw),
      net_(std::make_unique<net::Network>(make_machine_topology(cfg),
                                          cfg.net)) {
  TCFPN_CHECK(cfg_.groups >= 1, "machine needs at least one group");
  TCFPN_CHECK(cfg_.slots_per_group >= 1, "machine needs at least one slot");
  TCFPN_CHECK(cfg_.variant != Variant::kFixedThickness || cfg_.groups == 1,
              "the fixed-thickness (vector/SIMD) variant has one processor");
  TCFPN_CHECK(cfg_.balanced_bound >= 1, "balanced bound must be >= 1");
  TCFPN_CHECK(cfg_.host_threads >= 1, "host_threads must be >= 1");
  validate_shape(cfg_);
  locals_.reserve(cfg_.groups);
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    locals_.emplace_back(g, cfg_.local_words, cfg_.local_latency);
  }
  groups_.resize(cfg_.groups);
  dead_.assign(cfg_.groups, 0);
  recompute_step_fill();
  step_ctx_.resize(cfg_.groups);
  for (auto& ctx : step_ctx_) {
    ctx.port.attach(&shared_);
    ctx.net_loads.assign(shared_.modules(), 0);
    bind_lane_counters(ctx.metrics, ctx.lanes);
  }
  net_loads_.assign(shared_.modules(), 0);
  dist_cache_.resize(cfg_.groups);
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    dist_cache_[g].resize(shared_.modules());
    for (std::uint32_t m = 0; m < shared_.modules(); ++m) {
      dist_cache_[g][m] = net_->topology().distance(g, m % cfg_.groups);
    }
  }
  // The machine-level registry also carries the lane counters (fed directly
  // by the single-threaded XMT path, and by the group registries' merges)
  // plus the commit-side memory and router instruments — all of which are
  // only touched at the step barrier.
  bind_lane_counters(metrics_, gm_);
  sc_.pipeline_fill_cycles = &metrics_.counter("machine/pipeline_fill_cycles");
  sc_.slot_term_cycles = &metrics_.counter("machine/slot_term_cycles");
  sc_.memory_term_cycles = &metrics_.counter("machine/memory_term_cycles");
  sc_.memory_wait_cycles = &metrics_.counter("machine/memory_wait_cycles");
  sc_.slot_occupancy = &metrics_.accumulator("sched/slot_occupancy");
  sc_.overflow_depth = &metrics_.accumulator("sched/overflow_depth");
  sc_.hot_module_load = &metrics_.accumulator("net/hot_module_load");
  sc_.wire_distance = &metrics_.accumulator("net/wire_distance");
  shared_.bind_metrics(&metrics_);
  net_->bind_metrics(&metrics_);
  if (cfg_.host_threads > 1 && is_step_synchronous(cfg_.variant)) {
    pool_ = std::make_unique<common::ThreadPool>(cfg_.host_threads);
    if (cfg_.effect_channels) {
      channels_ = std::make_unique<common::EffectChannel[]>(cfg_.groups);
    }
  }
  trace_.set_enabled(cfg_.record_trace);
}

void Machine::GroupCtx::reset() {
  port.clear();
  delta = MachineStats{};
  refs.clear();
  if (net_refs != 0) {
    std::fill(net_loads.begin(), net_loads.end(), 0);
    net_refs = 0;
    net_max_dist = 0;
  }
  prefix_reqs.clear();
  spawns.clear();
  halted.clear();
  prints.clear();
  trace.clear();
  error = nullptr;
  metrics.reset();  // zeroes values, keeps instruments: lane pointers survive
  events.clear();
  prof_bins.clear();
}

double Machine::host_clock_us() {
  if (!host_t0_set_) {
    host_t0_ = std::chrono::steady_clock::now();
    host_t0_set_ = true;
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - host_t0_)
      .count();
}

void Machine::host_span(const char* name, double start_us) {
  if (host_spans_.size() >= kMaxHostSpans) {
    if (!host_spans_truncated_) {
      host_spans_truncated_ = true;
      obs::warn("machine/host_spans",
                "host-span buffer full (" +
                    std::to_string(host_spans_.size()) +
                    " spans); further spans dropped — trace export is "
                    "truncated");
    }
    return;
  }
  const double now = host_clock_us();
  host_spans_.push_back(HostSpan{name, 0, start_us, now - start_us});
}

void Machine::maybe_sample_step() {
  if (cfg_.sample_every == 0 || stats_.steps % cfg_.sample_every != 0) return;
  step_samples_.push_back(StepSample{stats_.steps, stats_.cycles,
                                     stats_.operations, stats_.busy_slots,
                                     stats_.idle_slots, live_flows()});
}

void Machine::charge(Cycle c) {
  stats_.cycles += c;
  metrics_.counter("sched/charged_cycles").add(c);
  if (cfg_.profile) {
    profile_.add({prof::kNoIndex, prof::kNoIndex, prof::kNoIndex,
                  prof::Term::kSched},
                 c);
  }
}

void Machine::load(const isa::Program& program) {
  program_ = program;
  for (const auto& init : program_.data) {
    for (std::size_t i = 0; i < init.words.size(); ++i) {
      shared_.poke(init.addr + i, init.words[i]);
    }
  }
}

FlowId Machine::boot(Word thickness) {
  return boot_at(program_.entry(), thickness, 0);
}

FlowId Machine::boot_at(std::size_t pc, Word thickness, GroupId home) {
  TCFPN_CHECK(thickness >= 1, "boot thickness must be >= 1, got ", thickness);
  TCFPN_CHECK(home < cfg_.groups, "boot group ", home, " out of range");
  TCFPN_CHECK(group_alive(home), "boot group ", home, " is retired");
  TCFPN_CHECK(pc < program_.code.size(), "boot pc ", pc, " out of range");
  TcfDescriptor& f = make_flow(pc, thickness, home, kNoFlow);
  auto& grp = groups_[home];
  if (grp.resident.size() < cfg_.group_slots(home)) {
    grp.resident.push_back(f.id);
  } else {
    grp.overflow.push_back(f.id);
  }
  emit_now(DebugEventKind::kFlowCreated, f.id, home, thickness, -1);
  return f.id;
}

TcfDescriptor& Machine::flow(FlowId id) {
  TCFPN_CHECK(id < flows_.size(), "unknown flow id ", id);
  return *flows_[id];
}

const TcfDescriptor* Machine::find_flow(FlowId id) const {
  return id < flows_.size() ? flows_[id].get() : nullptr;
}

void Machine::poke_reg(FlowId id, LaneId lane, std::uint8_t reg, Word value) {
  TcfDescriptor& f = flow(id);
  TCFPN_CHECK(lane < f.lane_regs.lanes(), "lane ", lane, " out of range");
  TCFPN_CHECK(reg > 0 && reg < isa::kNumRegisters, "bad register r", reg);
  f.lane_regs.set(lane, reg, value);
}

Word Machine::peek_reg(FlowId id, LaneId lane, std::uint8_t reg) const {
  TCFPN_CHECK(id < flows_.size(), "unknown flow id ", id);
  const TcfDescriptor& f = *flows_[id];
  TCFPN_CHECK(lane < f.lane_regs.lanes(), "lane ", lane, " out of range");
  TCFPN_CHECK(reg < isa::kNumRegisters, "bad register r", reg);
  return f.lane_regs.get(lane, reg);
}

TcfDescriptor& Machine::make_flow(std::size_t pc, Word thickness, GroupId home,
                                  FlowId parent) {
  auto f = std::make_unique<TcfDescriptor>();
  f->id = flows_.size();
  f->parent = parent;
  f->home = home;
  f->pc = pc;
  f->thickness = thickness;
  f->lane_regs.assign(static_cast<std::size_t>(thickness), LaneRegs{});
  flows_.push_back(std::move(f));
  return *flows_.back();
}

std::uint64_t Machine::group_load(GroupId g) const {
  std::uint64_t load = 0;
  auto add = [&](FlowId id) {
    const auto& f = *flows_[id];
    if (f.status == FlowStatus::kReady) {
      load += f.ops_per_instruction();
    }
  };
  for (FlowId id : groups_[g].resident) add(id);
  for (FlowId id : groups_[g].overflow) add(id);
  // Flows spawned this step but not yet admitted already have a home;
  // placement must see them or sibling fragments pile onto one group.
  for (FlowId id : pending_spawns_) {
    if (flows_[id]->home == g) add(id);
  }
  return load;
}

GroupId Machine::pick_group(const TcfDescriptor& child) const {
  if (alloc_) return alloc_(child);
  return least_loaded_alive();
}

GroupId Machine::least_loaded_alive() const {
  GroupId best = 0;
  bool found = false;
  std::uint64_t best_load = std::numeric_limits<std::uint64_t>::max();
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;
    const std::uint64_t load = group_load(g);
    if (!found || load < best_load) {
      best_load = load;
      best = g;
      found = true;
    }
  }
  TCFPN_CHECK(found, "no live group left to place a flow on");
  return best;
}

std::uint32_t Machine::alive_groups() const {
  std::uint32_t n = 0;
  for (std::uint8_t d : dead_) n += d == 0;
  return n;
}

Word Machine::retire_group(GroupId g) {
  TCFPN_CHECK(g < cfg_.groups, "retire: group ", g, " out of range");
  TCFPN_CHECK(group_alive(g), "retire: group ", g, " already retired");
  TCFPN_CHECK(alive_groups() >= 2,
              "retire: cannot retire the last surviving group");
  dead_[g] = 1;
  Word total_thickness = 0;
  std::uint64_t moved = 0;
  // Rehome resident before overflow, each list in FIFO order, always onto
  // the least-loaded survivor: the same deterministic placement rule as
  // spawn, so the degraded schedule is host-thread invariant. The custom
  // allocation hook is deliberately bypassed — it may not know about dead
  // groups, and fault migration is an OS decision, not a program one.
  auto rehome = [&](std::vector<FlowId>& list) {
    for (FlowId id : list) {
      TcfDescriptor& f = flow(id);
      const GroupId target = least_loaded_alive();
      f.home = target;
      auto& t = groups_[target];
      if (t.resident.size() < cfg_.group_slots(target)) {
        t.resident.push_back(id);
      } else {
        t.overflow.push_back(id);
      }
      // Migrating off a dead group is a non-resident reload (Section 3.3
      // task-switch cost): the survivor must fetch the TCF's state anew.
      const Cycle c = task_switch_cost(cfg_, f.thickness,
                                       /*resident_in_buffer=*/false,
                                       cfg_.group_slots(target));
      stats_.task_switch_cycles += c;
      stats_.cycles += c;
      if (cfg_.profile) {
        profile_.add({static_cast<std::int64_t>(f.home),
                      static_cast<std::int64_t>(f.id), prof::kNoIndex,
                      prof::Term::kSwitch},
                     c);
      }
      metrics_.counter("sched/swap_in_cycles").add(c);
      metrics_.counter("sched/fault_migrations").add();
      total_thickness += f.thickness;
      ++moved;
    }
    list.clear();
  };
  rehome(groups_[g].resident);
  rehome(groups_[g].overflow);
  // Spawned-but-unadmitted flows only need a new home; admission (and its
  // accounting) happens at the barrier as usual.
  for (FlowId id : pending_spawns_) {
    TcfDescriptor& f = flow(id);
    if (f.home != g) continue;
    f.home = least_loaded_alive();
    total_thickness += f.thickness;
    ++moved;
  }
  metrics_.counter("sched/groups_retired").add();
  // A dead group's pipeline no longer gates the step: the fill is the max
  // over *alive* groups on a heterogeneous shape.
  recompute_step_fill();
  emit_now(DebugEventKind::kGroupRetired, kNoFlow, g, total_thickness,
           static_cast<Word>(moved));
  return total_thickness;
}

void Machine::recompute_step_fill() {
  if (!cfg_.is_heterogeneous()) {
    step_fill_ = cfg_.pipeline_fill;
    return;
  }
  std::uint32_t fill = 0;
  bool any = false;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;
    fill = std::max(fill, cfg_.group_fill(g));
    any = true;
  }
  step_fill_ = any ? fill : cfg_.pipeline_fill;
}

Word Machine::resident_thickness(GroupId g) const {
  Word total = 0;
  auto add = [&](FlowId id) {
    const auto& f = *flows_[id];
    if (f.status == FlowStatus::kReady) total += f.thickness;
  };
  for (FlowId id : groups_[g].resident) add(id);
  for (FlowId id : groups_[g].overflow) add(id);
  for (FlowId id : pending_spawns_) {
    if (flows_[id]->home == g) add(id);
  }
  return total;
}

void Machine::admit_pending_spawns() {
  for (FlowId id : pending_spawns_) {
    TcfDescriptor& f = flow(id);
    auto& grp = groups_[f.home];
    if (grp.resident.size() < cfg_.group_slots(f.home)) {
      grp.resident.push_back(id);
    } else {
      grp.overflow.push_back(id);
    }
  }
  pending_spawns_.clear();
}

void Machine::promote_overflow(GroupId g) {
  auto& grp = groups_[g];
  std::size_t i = 0;
  while (i < grp.overflow.size() &&
         grp.resident.size() < cfg_.group_slots(g)) {
    const FlowId id = grp.overflow[i];
    TcfDescriptor& f = flow(id);
    if (f.status != FlowStatus::kReady) {
      ++i;  // suspended/waiting flows keep their overflow seat
      continue;
    }
    grp.overflow.erase(grp.overflow.begin() +
                       static_cast<std::ptrdiff_t>(i));
    metrics_.counter("sched/overflow_promotions").add();
    if (f.evicted_once) {
      // Reloading a previously displaced TCF pays the swap-in.
      const Cycle c = task_switch_cost(cfg_, f.thickness,
                                       /*resident_in_buffer=*/false,
                                       cfg_.group_slots(g));
      stats_.task_switch_cycles += c;
      stats_.cycles += c;
      if (cfg_.profile) {
        profile_.add({static_cast<std::int64_t>(g),
                      static_cast<std::int64_t>(id), prof::kNoIndex,
                      prof::Term::kSwitch},
                     c);
      }
      metrics_.counter("sched/swap_in_cycles").add(c);
    }
    grp.resident.push_back(id);
  }
}

void Machine::on_flow_halted(TcfDescriptor& f) {
  f.status = FlowStatus::kHalted;
  emit_now(DebugEventKind::kFlowHalted, f.id, f.home);
  if (f.parent != kNoFlow) {
    TcfDescriptor& p = flow(f.parent);
    TCFPN_CHECK(p.live_children > 0, "child halt underflows parent counter");
    --p.live_children;
  }
}

void Machine::halt_in_step(TcfDescriptor& f) {
  f.status = FlowStatus::kHalted;
  emit(step_ctx_[f.home], DebugEventKind::kFlowHalted, f);
  if (f.parent == kNoFlow) return;
  TcfDescriptor& p = flow(f.parent);
  if (p.home == f.home) {
    // Same group: the parent is driven by this host thread, so the notice
    // can land immediately — a later JOINALL of the parent in this very
    // step already sees the child gone (the sequential-engine semantics).
    TCFPN_CHECK(p.live_children > 0, "child halt underflows parent counter");
    --p.live_children;
    return;
  }
  // Cross-group: the parent may be executing on another host thread right
  // now; the join notice travels through the group context and lands at the
  // barrier, in group order, independent of host-thread interleaving.
  step_ctx_[f.home].halted.push_back(f.id);
}

std::size_t Machine::live_flows() const {
  std::size_t n = 0;
  for (const auto& f : flows_) {
    if (f->status != FlowStatus::kHalted) ++n;
  }
  return n;
}

std::size_t Machine::resident_flows(GroupId g) const {
  TCFPN_CHECK(g < cfg_.groups, "group ", g, " out of range");
  return groups_[g].resident.size();
}

bool Machine::done() const { return live_flows() == 0; }

RunResult Machine::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && step()) ++n;
  return RunResult{done(), stats_.cycles, stats_.steps};
}

bool Machine::step() {
  try {
    if (cfg_.variant == Variant::kMultiInstruction) {
      return step_multi_instruction();
    }
    return step_synchronous();
  } catch (const SimError& e) {
    // Give the flight recorder its post-mortem hook before the fault
    // propagates. The mid-step machine state is dirty; the recorder may
    // only inspect it read-only or restore a checkpoint.
    if (observer_ != nullptr) observer_->on_fault(e.what(), *this);
    throw;
  }
}

// --------------------------------------------------------------------------
// Step-synchronous variants
// --------------------------------------------------------------------------

bool Machine::step_synchronous() {
  bool any_ready = false;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    promote_overflow(g);
    for (FlowId id : groups_[g].resident) {
      if (flows_[id]->status == FlowStatus::kReady) any_ready = true;
    }
  }
  if (!any_ready) return false;

  // A fault may have aborted the previous step after some groups streamed
  // their profiler bins; never let them leak into this step's apportionment.
  step_bins_.clear();

  const Cycle step_base = stats_.cycles + step_fill_;

  // Per-group phase. Each group executes against its own effect buffer
  // (GroupCtx): it reads only committed shared memory and its own flows, so
  // the groups are independent and may run on separate host threads. Faults
  // are captured per group and rethrown deterministically below.
  auto run_group = [&](std::size_t g) {
    auto& ctx = step_ctx_[g];
    ctx.reset();
    try {
      execute_group(static_cast<GroupId>(g), step_base);
    } catch (...) {
      ctx.error = std::current_exception();
    }
  };
  double t0 = cfg_.profile_host ? host_clock_us() : 0;
  if (channels_) {
    // Streaming engine: instead of a hard barrier, each group owns a seal
    // channel. A worker publishes after execute_group sealed the GroupCtx;
    // the stepping thread consumes the channels in group order 0..P-1,
    // stream-merging group g's effects while higher groups are still
    // executing. The merge order — and therefore every committed byte — is
    // identical to the barrier engine; only the wall-clock overlap differs.
    for (GroupId g = 0; g < cfg_.groups; ++g) channels_[g].reset();
    // Named std::function, not a lambda passed inline: the pool stores a
    // pointer to it and the workers call through it until end().
    const std::function<void(std::size_t)> run_and_publish =
        [&](std::size_t g) {
          run_group(g);
          channels_[g].publish();
        };
    pool_->begin(cfg_.groups, run_and_publish);
    std::exception_ptr error;
    for (GroupId g = 0; g < cfg_.groups; ++g) {
      // Never sleep while unclaimed groups remain — steal one instead, so
      // the engine stays live even if every worker is preempted.
      while (!channels_[g].ready() && pool_->try_run_one()) {
      }
      channels_[g].await();
      if (step_ctx_[g].error) {
        // Same contract as merge_group_effects: the lowest faulting group
        // wins (lower groups streamed, the step never reaches the deferred
        // pass). Groups above g may not have published yet, but their
        // errors lose to this one in either engine.
        error = step_ctx_[g].error;
        break;
      }
      try {
        stream_merge_group(g);
      } catch (...) {
        // A merge-side fault (commit-policy checks fire at drain) must not
        // leave the pool job open — the workers would outlive this frame.
        error = std::current_exception();
        break;
      }
    }
    // All groups must finish executing before the machine mutates further
    // state (or unwinds a fault) — stragglers still write their GroupCtx.
    pool_->end();
    if (cfg_.profile_host) {
      host_span("machine/group_phase", t0);
      t0 = host_clock_us();
    }
    if (error) std::rethrow_exception(error);
    for (GroupId g = 0; g < cfg_.groups; ++g) deferred_merge_group(g);
    if (cfg_.profile_host) host_span("machine/merge_effects", t0);
  } else {
    if (pool_) {
      pool_->parallel_for(cfg_.groups, run_group);
    } else {
      for (GroupId g = 0; g < cfg_.groups; ++g) run_group(g);
    }
    if (cfg_.profile_host) {
      host_span("machine/group_phase", t0);
      t0 = host_clock_us();
    }

    // Step barrier: merge every group's effects in group order — the same
    // order the sequential engine produced them in, so the machine state
    // after the merge is bit-identical for every host_threads value.
    merge_group_effects();
    if (cfg_.profile_host) host_span("machine/merge_effects", t0);
  }

  group_work_.assign(cfg_.groups, 0);
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    group_work_[g] = groups_[g].step_ops;
  }

  finish_step(synchronous_slot_term(), group_work_);
  return true;
}

Cycle Machine::synchronous_slot_term() const {
  // Slot term per variant (DESIGN.md §4 item 3). ILP co-execution issues
  // `functional_units` operations per group per cycle; on a heterogeneous
  // shape each group additionally divides by its clock multiplier — a 3x
  // group retires 3 operations per base-clock cycle — with one exact
  // ceiling division: ceil(term * den / (num * fu)). num = den = 1 reduces
  // to the uniform ceil(term / fu) bit-for-bit.
  const Cycle fu = std::max<std::uint32_t>(cfg_.functional_units, 1);
  Cycle slot_max = 0;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;  // retired groups carry no slot term
    Cycle term = 0;
    switch (cfg_.variant) {
      case Variant::kSingleInstruction:
      case Variant::kFixedThickness:
        term = group_work_[g];
        break;
      case Variant::kBalanced:
        term = cfg_.balanced_bound;
        break;
      case Variant::kSingleOperation:
      case Variant::kConfigSingleOperation:
        term = cfg_.group_slots(g);  // fixed interleaved pipeline
        break;
      case Variant::kMultiInstruction:
        TCFPN_FAULT("multi-instruction variant in synchronous stepper");
    }
    const Cycle num = cfg_.group_clock_num(g);
    const Cycle den = cfg_.group_clock_den(g);
    slot_max = std::max(slot_max, (term * den + num * fu - 1) / (num * fu));
  }
  return slot_max;
}

void Machine::execute_group(GroupId g, Cycle step_base) {
  auto& grp = groups_[g];
  auto& ctx = step_ctx_[g];
  grp.step_ops = 0;
  // Flows spawned/woken during the step join the next one; nothing is
  // admitted to the resident list until the barrier, so no snapshot copy is
  // needed.
  const std::vector<FlowId>& active = grp.resident;

  auto record = [&](const TcfDescriptor& f, std::uint64_t ops) {
    if (ops == 0 || !trace_.enabled()) return;
    ctx.trace.push_back(TraceSpan{g, step_base + grp.step_ops - ops,
                                  step_base + grp.step_ops,
                                  static_cast<char>('A' + f.id % 26),
                                  "flow " + std::to_string(f.id)});
  };

  if (cfg_.variant == Variant::kBalanced) {
    std::uint64_t budget = cfg_.balanced_bound;
    // Round-robin over resident flows until the bound or no eligible work.
    bool progressed = true;
    std::vector<bool> numa_done(active.size(), false);
    while (budget > 0 && progressed) {
      progressed = false;
      for (std::size_t i = 0; i < active.size() && budget > 0; ++i) {
        TcfDescriptor& f = flow(active[i]);
        if (f.status != FlowStatus::kReady || f.multiop_blocked) continue;
        if (f.mode == FlowMode::kNuma) {
          if (numa_done[i]) continue;
          numa_done[i] = true;  // one block slice per step
        }
        const std::uint64_t ops = run_flow_slice(f, budget);
        if (ops > 0) {
          progressed = true;
          budget -= std::min(budget, ops);
          grp.step_ops += ops;
          record(f, ops);
        }
      }
    }
  } else {
    // One TCF instruction (or NUMA block) per ready flow per step.
    for (FlowId id : active) {
      TcfDescriptor& f = flow(id);
      if (f.status != FlowStatus::kReady) continue;
      const std::uint64_t ops = run_flow_slice(f, kUnlimited);
      grp.step_ops += ops;
      record(f, ops);
    }
  }
  // Pre-sort the staged writes on this worker thread so the barrier-side
  // commit only merges per-group runs.
  ctx.port.seal();
}

void Machine::merge_group_effects() {
  // A fault anywhere in the phase aborts the step like the sequential
  // engine would; the lowest-numbered faulting group wins so the surfaced
  // error does not depend on host-thread timing. Groups below the faulting
  // one are streamed first — the same prefix the streaming engine has
  // already consumed by the time it reaches the faulting group — and the
  // deferred pass is skipped entirely (the step never reaches the barrier).
  GroupId limit = cfg_.groups;
  std::exception_ptr error;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (step_ctx_[g].error) {
      limit = g;
      error = step_ctx_[g].error;
      break;
    }
  }
  for (GroupId g = 0; g < limit; ++g) stream_merge_group(g);
  if (error) std::rethrow_exception(error);
  for (GroupId g = 0; g < cfg_.groups; ++g) deferred_merge_group(g);
}

bool Machine::group_quiet(const GroupCtx& ctx) const {
  const LaneCounters& lc = ctx.lanes;
  return ctx.events.empty() && ctx.refs.empty() && ctx.net_refs == 0 &&
         ctx.port.empty() && ctx.prefix_reqs.empty() && ctx.spawns.empty() &&
         ctx.halted.empty() && ctx.prints.empty() && ctx.trace.empty() &&
         lc.shared_reads->value() == 0 && lc.shared_writes->value() == 0 &&
         lc.local_reads->value() == 0 && lc.local_writes->value() == 0 &&
         lc.multiop_contributions->value() == 0 &&
         lc.prefix_contributions->value() == 0 &&
         lc.store_forwards->value() == 0;
}

void Machine::stream_merge_group(GroupId g) {
  auto& ctx = step_ctx_[g];

  stats_.tcf_instructions += ctx.delta.tcf_instructions;
  stats_.operations += ctx.delta.operations;
  stats_.instruction_fetches += ctx.delta.instruction_fetches;
  stats_.spawns += ctx.delta.spawns;
  stats_.joins += ctx.delta.joins;
  stats_.branch_cost_cycles += ctx.delta.branch_cost_cycles;

  // Profiler bins stream before the quiet-group fast path: a register-only
  // group step has no cross-group effects but it did execute operations,
  // and those cycles must reach the apportionment in finish_step.
  if (cfg_.profile && !ctx.prof_bins.empty()) {
    step_bins_.insert(step_bins_.end(), ctx.prof_bins.begin(),
                      ctx.prof_bins.end());
  }

  if (cfg_.merge_skip && group_quiet(ctx)) {
    // Register-only group step: besides the stat deltas just added there is
    // nothing to merge — every buffer is empty and every group-local
    // instrument zero, so the registry walk, port drain and ref transfer
    // are all no-ops and can be skipped wholesale.
    ++merge_skips_;
    return;
  }

  // Flight-recorder events buffered during the group phase surface here,
  // in group order — identical sequence for every host-thread count.
  if (observer_ != nullptr) {
    for (const DebugEvent& ev : ctx.events) observer_->on_event(ev);
  }

  // Per-group metric instruments land in the machine registry here, in
  // group order, so snapshots are bit-identical across host_threads.
  metrics_.merge(ctx.metrics);

  // Memory-term references: the detailed router is injection-order
  // sensitive, so it gets the full per-reference sequence (group by group,
  // flows in resident order); the analytic bound only needs the per-module
  // aggregates the group already summed in the parallel phase.
  if (cfg_.detailed_network) {
    step_refs_.insert(step_refs_.end(), ctx.refs.begin(), ctx.refs.end());
  } else if (ctx.net_refs != 0) {
    for (std::size_t m = 0; m < net_loads_.size(); ++m) {
      net_loads_[m] += ctx.net_loads[m];
    }
    net_refs_ += ctx.net_refs;
    net_max_dist_ = std::max(net_max_dist_, ctx.net_max_dist);
  }

  // Drain the group's staged shared-memory traffic; multiprefix tickets
  // are assigned here, in drain order, exactly as a sequential run would.
  const std::size_t ticket_base = shared_.drain(ctx.port);
  for (const auto& req : ctx.prefix_reqs) {
    pending_prefixes_.push_back(
        PendingPrefix{req.flow, req.lane, req.rd, ticket_base + req.local});
  }

  debug_out_.insert(debug_out_.end(), ctx.prints.begin(), ctx.prints.end());
  for (auto& span : ctx.trace) {
    trace_.add(span.row, span.begin, span.end, span.glyph,
               std::move(span.label));
  }
}

void Machine::deferred_merge_group(GroupId g) {
  auto& ctx = step_ctx_[g];
  if (ctx.halted.empty() && ctx.spawns.empty()) return;

  // Join notices: a child halting this step reaches its parent only at
  // the barrier, so JOINALL outcomes never depend on which host thread
  // finished first. finish_step wakes satisfied joiners right after.
  // Deferred past the streaming pass because the parent may belong to a
  // group that is still executing while lower groups stream.
  for (FlowId id : ctx.halted) {
    const TcfDescriptor& child = *flows_[id];
    if (child.parent == kNoFlow) continue;
    TcfDescriptor& p = flow(child.parent);
    TCFPN_CHECK(p.live_children > 0, "child halt underflows parent counter");
    --p.live_children;
  }

  // Deferred SPAWN placement: creating and placing children in group
  // order fixes flow ids and allocation decisions across thread counts.
  // Placement reads other groups' loads and grows flows_, so it must wait
  // until every group finished executing.
  for (const auto& sp : ctx.spawns) {
    Word base = 0;
    for (Word part : sp.fragments) {
      TcfDescriptor& child = make_flow(sp.entry, part, 0, sp.parent);
      child.home = pick_group(child);
      TCFPN_CHECK(group_alive(child.home),
                  "allocation hook placed flow on retired group ",
                  child.home);
      metrics_.counter("sched/spawn_placements").add();
      metrics_.accumulator("sched/placement_load")
          .add(static_cast<double>(group_load(child.home)));
      // The child inherits a broadcast copy of the parent's lane-0
      // registers (flow-level state); fragments learn their base lane
      // offset through r15 (the fragment convention).
      child.lane_regs.assign(child.lane_regs.lanes(), sp.broadcast);
      if (sp.fragments.size() > 1) {
        Word* r15 = child.lane_regs.bank(15);
        std::fill(r15, r15 + child.lane_regs.lanes(), base);
      }
      emit_now(DebugEventKind::kFlowCreated, child.id, child.home, part,
               static_cast<Word>(sp.parent));
      pending_spawns_.push_back(child.id);
      base += part;
    }
  }
}

std::uint64_t Machine::run_flow_slice(TcfDescriptor& f,
                                      std::uint64_t op_quota) {
  TCFPN_CHECK(f.status == FlowStatus::kReady, "slicing a non-ready flow");
  if (op_quota == 0) return 0;
  if (f.mode == FlowMode::kNuma) return run_numa_block(f);

  const isa::Instr& instr = fetch(f);
  const isa::OpInfo& info = isa::op_info(instr.op);
  auto& delta = step_ctx_[f.home].delta;

  if (info.is_control || instr.op == isa::Opcode::kPrint) {
    TCFPN_CHECK(f.at_instruction_boundary(),
                "control instruction interrupted mid-thickness");
    std::uint64_t ops = 1;
    if (instr.op == isa::Opcode::kSpawn) {
      // The split copies the flow-level register state: O(R), Table 1.
      const Cycle branch = flow_branch_cost(cfg_);
      delta.branch_cost_cycles += branch;
      ops += branch + cfg_.spawn_cost;
    }
    if (cfg_.profile) {
      // Bin before exec_control mutates f.pc: one activation slot of
      // compute, plus the SPAWN branch/dispatch surcharge if any.
      auto& bins = step_ctx_[f.home].prof_bins;
      const prof::Key at{static_cast<std::int64_t>(f.home),
                         static_cast<std::int64_t>(f.id),
                         static_cast<std::int64_t>(f.pc),
                         prof::Term::kCompute};
      bins[at] += 1;
      if (ops > 1) {
        prof::Key br = at;
        br.term = prof::Term::kBranch;
        bins[br] += ops - 1;
      }
    }
    const bool still_ready = exec_control(f, instr);
    ++delta.tcf_instructions;
    ++delta.operations;
    if (still_ready) {
      // Merge (control ops don't write memory, but keep the invariant).
      complete_instruction(f, instr);
    }
    return ops;
  }

  // Data-parallel instruction: execute lanes [next_unexecuted, ...).
  const auto thickness = static_cast<std::uint64_t>(f.thickness);
  const std::uint64_t start = f.next_unexecuted;
  TCFPN_CHECK(start < thickness, "resume point beyond thickness");
  const std::uint64_t count = std::min(op_quota, thickness - start);
  std::uint64_t cost = 0;
  if (exec_alu_lanes(f, instr, start, count)) {
    cost = count + operand_penalty_range(start, count);
  } else {
    for (std::uint64_t lane = start; lane < start + count; ++lane) {
      exec_data_lane(f, instr, lane);
      cost += 1 + operand_penalty(lane);
    }
  }
  if (cfg_.profile) {
    // One compute slot per lane; whatever the operand-storage model added
    // on top is itemized under its own term (operand spills vs NUMA local
    // memory), so hotspot rows show *why* a pc is expensive.
    auto& bins = step_ctx_[f.home].prof_bins;
    prof::Key at{static_cast<std::int64_t>(f.home),
                 static_cast<std::int64_t>(f.id),
                 static_cast<std::int64_t>(f.pc), prof::Term::kCompute};
    bins[at] += count;
    if (cost > count) {
      at.term = operand_penalty_term(cfg_.operand_storage);
      bins[at] += cost - count;
    }
  }
  delta.operations += count;
  f.next_unexecuted += count;
  if (f.next_unexecuted == thickness) {
    f.next_unexecuted = 0;
    ++delta.tcf_instructions;
    complete_instruction(f, instr);
    ++f.pc;
  }
  return cost;
}

Cycle Machine::operand_penalty(LaneId lane) const {
  // Section 3.3: where do a thick instruction's lane-private intermediate
  // results live? The choice prices every lane operation.
  switch (cfg_.operand_storage) {
    case OperandStorage::kCachedRegisterFile: {
      // The first register_cache_words/R lanes hit the physical register
      // cache; the rest spill to local memory per access.
      const std::uint64_t cached =
          cfg_.register_cache_words /
          std::max<std::uint32_t>(cfg_.registers_per_context, 1);
      return lane < cached ? 0 : cfg_.register_spill_penalty;
    }
    case OperandStorage::kMemoryToMemory:
      // Operand fetch and writeback both go through memory.
      return 2;
    case OperandStorage::kLocalMemory:
      return cfg_.local_latency;
  }
  TCFPN_FAULT("unknown operand storage model");
}

Cycle Machine::operand_penalty_range(LaneId start, std::uint64_t count) const {
  // Closed form of sum(operand_penalty(l), l in [start, start+count)): the
  // penalty only depends on whether a lane index clears the cache boundary,
  // so the whole range prices in O(1).
  switch (cfg_.operand_storage) {
    case OperandStorage::kCachedRegisterFile: {
      const std::uint64_t cached =
          cfg_.register_cache_words /
          std::max<std::uint32_t>(cfg_.registers_per_context, 1);
      const std::uint64_t end = start + count;
      const std::uint64_t spilled =
          end > cached ? end - std::max<std::uint64_t>(start, cached) : 0;
      return spilled * cfg_.register_spill_penalty;
    }
    case OperandStorage::kMemoryToMemory:
      return 2 * count;
    case OperandStorage::kLocalMemory:
      return cfg_.local_latency * count;
  }
  TCFPN_FAULT("unknown operand storage model");
}

bool Machine::exec_alu_lanes(TcfDescriptor& f, const isa::Instr& instr,
                             std::uint64_t start, std::uint64_t count) {
  using isa::Opcode;
  switch (instr.op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSlt:
    case Opcode::kSle:
    case Opcode::kSeq:
    case Opcode::kSne:
    case Opcode::kMax:
    case Opcode::kMin:
    case Opcode::kLdi:
    case Opcode::kTid:
    case Opcode::kFid:
    case Opcode::kThick:
    case Opcode::kGid:
    case Opcode::kNop:
      break;
    default:
      // Memory traffic, multioperations and faulting divides keep the
      // scalar per-lane path (side effects and fault order must match the
      // lane-by-lane semantics exactly).
      return false;
  }
  if (instr.op == Opcode::kNop) return true;
  if (instr.rd == 0) return true;  // r0 writes are discarded, no other effect
  LaneFile& lf = f.lane_regs;
  Word* dst = lf.bank(instr.rd);
  const std::uint64_t end = start + count;
  auto fill = [&](Word v) {
    for (std::uint64_t l = start; l < end; ++l) dst[l] = v;
  };
  switch (instr.op) {
    case Opcode::kLdi:
      fill(instr.imm);
      return true;
    case Opcode::kTid:
      for (std::uint64_t l = start; l < end; ++l) {
        dst[l] = static_cast<Word>(l);
      }
      return true;
    case Opcode::kFid:
      fill(static_cast<Word>(f.id));
      return true;
    case Opcode::kThick:
      fill(f.mode == FlowMode::kPram ? f.thickness : 1);
      return true;
    case Opcode::kGid:
      fill(static_cast<Word>(f.home));
      return true;
    default:
      break;
  }
  // Two-operand ALU sweep over contiguous banks. Each lambda mirrors alu()
  // bit for bit (unsigned wraparound, shift masking); the per-lane loop has
  // no cross-lane dependence, so it vectorizes.
  const Word* a = lf.bank(instr.ra);
  const Word* b = instr.use_imm() ? nullptr : lf.bank(instr.rb);
  const Word imm = instr.imm;
  auto sweep = [&](auto op2) {
    if (b == nullptr) {
      for (std::uint64_t l = start; l < end; ++l) dst[l] = op2(a[l], imm);
    } else {
      for (std::uint64_t l = start; l < end; ++l) dst[l] = op2(a[l], b[l]);
    }
  };
  const auto u = [](Word w) { return static_cast<std::uint64_t>(w); };
  switch (instr.op) {
    case Opcode::kAdd:
      sweep([u](Word x, Word y) { return static_cast<Word>(u(x) + u(y)); });
      return true;
    case Opcode::kSub:
      sweep([u](Word x, Word y) { return static_cast<Word>(u(x) - u(y)); });
      return true;
    case Opcode::kMul:
      sweep([u](Word x, Word y) { return static_cast<Word>(u(x) * u(y)); });
      return true;
    case Opcode::kAnd:
      sweep([](Word x, Word y) { return x & y; });
      return true;
    case Opcode::kOr:
      sweep([](Word x, Word y) { return x | y; });
      return true;
    case Opcode::kXor:
      sweep([](Word x, Word y) { return x ^ y; });
      return true;
    case Opcode::kShl:
      sweep([u](Word x, Word y) {
        return static_cast<Word>(u(x) << (u(y) & 63));
      });
      return true;
    case Opcode::kShr:
      sweep([u](Word x, Word y) {
        return static_cast<Word>(u(x) >> (u(y) & 63));
      });
      return true;
    case Opcode::kSlt:
      sweep([](Word x, Word y) { return Word{x < y ? 1 : 0}; });
      return true;
    case Opcode::kSle:
      sweep([](Word x, Word y) { return Word{x <= y ? 1 : 0}; });
      return true;
    case Opcode::kSeq:
      sweep([](Word x, Word y) { return Word{x == y ? 1 : 0}; });
      return true;
    case Opcode::kSne:
      sweep([](Word x, Word y) { return Word{x != y ? 1 : 0}; });
      return true;
    case Opcode::kMax:
      sweep([](Word x, Word y) { return std::max(x, y); });
      return true;
    case Opcode::kMin:
      sweep([](Word x, Word y) { return std::min(x, y); });
      return true;
    default:
      TCFPN_FAULT("unreachable ALU sweep opcode");
  }
}

std::uint64_t Machine::run_numa_block(TcfDescriptor& f) {
  // NUMA mode (thickness "1/L"): L consecutive instructions of a single
  // sequential stream per step; each instruction is fetched separately —
  // that asymmetry is the "Fetches per TCF" row of Table 1.
  std::uint64_t executed = 0;
  std::uint64_t branch_ops = 0;
  const auto pc0 = static_cast<std::int64_t>(f.pc);
  auto& delta = step_ctx_[f.home].delta;
  while (executed < f.numa_block && f.status == FlowStatus::kReady &&
         !f.multiop_blocked) {
    const isa::Instr& instr = fetch(f);
    const isa::OpInfo& info = isa::op_info(instr.op);
    ++executed;
    ++delta.operations;
    ++delta.tcf_instructions;
    if (info.is_control || instr.op == isa::Opcode::kPrint) {
      if (instr.op == isa::Opcode::kSpawn) {
        const Cycle branch = flow_branch_cost(cfg_);
        delta.branch_cost_cycles += branch;
        executed += branch + cfg_.spawn_cost;
        branch_ops += branch + cfg_.spawn_cost;
      }
      if (!exec_control(f, instr)) break;
      complete_instruction(f, instr);
    } else {
      exec_data_lane(f, instr, 0);
      complete_instruction(f, instr);
      ++f.pc;
    }
  }
  if (cfg_.profile && executed > 0) {
    // The whole block bins at its start pc — a NUMA bunch is one scheduling
    // unit, and per-instruction binning would cost a map op per instruction.
    auto& bins = step_ctx_[f.home].prof_bins;
    prof::Key at{static_cast<std::int64_t>(f.home),
                 static_cast<std::int64_t>(f.id), pc0, prof::Term::kCompute};
    bins[at] += executed - branch_ops;
    if (branch_ops > 0) {
      at.term = prof::Term::kBranch;
      bins[at] += branch_ops;
    }
  }
  return executed;
}

const isa::Instr& Machine::fetch(TcfDescriptor& f) {
  if (f.pc >= program_.code.size()) {
    TCFPN_FAULT("flow ", f.id, " ran off the end of the program (pc=", f.pc,
                ")");
  }
  // Every activation — first execution or balanced-variant resume — costs
  // one instruction-memory fetch. PRAM-mode flows therefore fetch once per
  // TCF instruction regardless of thickness; NUMA streams fetch per
  // instruction; interrupted instructions re-fetch on resume.
  ++step_ctx_[f.home].delta.instruction_fetches;
  return program_.code[f.pc];
}

Word Machine::read_operand_b(const TcfDescriptor& f, const isa::Instr& instr,
                             LaneId lane) const {
  if (instr.use_imm()) return instr.imm;
  return f.lane_regs.get(lane, instr.rb);
}

Word Machine::alu(const isa::Instr& instr, Word a, Word b) const {
  using isa::Opcode;
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (instr.op) {
    case Opcode::kAdd: return static_cast<Word>(ua + ub);
    case Opcode::kSub: return static_cast<Word>(ua - ub);
    case Opcode::kMul: return static_cast<Word>(ua * ub);
    case Opcode::kDiv:
      if (b == 0) TCFPN_FAULT("division by zero");
      return a / b;
    case Opcode::kMod:
      if (b == 0) TCFPN_FAULT("modulo by zero");
      return a % b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return static_cast<Word>(ua << (ub & 63));
    case Opcode::kShr: return static_cast<Word>(ua >> (ub & 63));
    case Opcode::kSlt: return a < b ? 1 : 0;
    case Opcode::kSle: return a <= b ? 1 : 0;
    case Opcode::kSeq: return a == b ? 1 : 0;
    case Opcode::kSne: return a != b ? 1 : 0;
    case Opcode::kMax: return std::max(a, b);
    case Opcode::kMin: return std::min(a, b);
    default:
      TCFPN_FAULT("alu() called with non-ALU opcode");
  }
}

Addr Machine::effective_addr(const TcfDescriptor& f, const isa::Instr& instr,
                             LaneId lane) const {
  const Word base = f.lane_regs.get(lane, instr.ra);
  Word ea = base + instr.imm;
  if (instr.lane_addr()) ea += static_cast<Word>(lane);
  if (ea < 0) {
    TCFPN_FAULT("negative effective address ", ea, " in flow ", f.id);
  }
  return static_cast<Addr>(ea);
}

void Machine::note_ref(GroupCtx& ctx, GroupId src, std::uint32_t module) {
  if (cfg_.detailed_network) {
    // The detailed router is injection-order sensitive: keep the full
    // per-reference sequence for the barrier-side replay.
    ctx.refs.emplace_back(src, module);
    return;
  }
  // Analytic bound: module load counts and the wire-distance maximum are
  // order-insensitive, so they aggregate in the parallel phase and the
  // barrier only sums P short vectors instead of walking every reference.
  ++ctx.net_loads[module];
  ++ctx.net_refs;
  ctx.net_max_dist =
      std::max(ctx.net_max_dist, dist_cache_[src][module % cfg_.groups]);
}

Word Machine::read_shared(TcfDescriptor& f, Addr a, LaneId lane) {
  auto& ctx = step_ctx_[f.home];
  const std::uint32_t m = shared_.module_of(a);
  note_ref(ctx, f.home, m);
  // Store forwarding: the flow sees its own *completed* writes of this step;
  // everything else is the pre-step committed state. A forwarded value still
  // counts as a memory reference for traffic purposes (but not as
  // shared-memory traffic — the value never left the group).
  if (const Word* v = f.step_writes.find(a)) {
    ctx.lanes.store_forwards->add();
    return *v;
  }
  ctx.lanes.shared_reads->add();
  return ctx.port.read(a, lane_key(f.id, lane), m);
}

void Machine::exec_data_lane(TcfDescriptor& f, const isa::Instr& instr,
                             LaneId lane) {
  using isa::Opcode;
  auto& lf = f.lane_regs;
  auto write_reg = [&](std::uint8_t r, Word v) { lf.set(lane, r, v); };
  const auto key = lane_key(f.id, lane);
  switch (instr.op) {
    case Opcode::kLdi:
      write_reg(instr.rd, instr.imm);
      return;
    case Opcode::kLd: {
      const Addr a = effective_addr(f, instr, lane);
      write_reg(instr.rd, read_shared(f, a, lane));
      return;
    }
    case Opcode::kSt: {
      const Addr a = effective_addr(f, instr, lane);
      const Word v = lf.get(lane, instr.rb);
      auto& ctx = step_ctx_[f.home];
      const std::uint32_t m = shared_.module_of(a);
      note_ref(ctx, f.home, m);
      ctx.lanes.shared_writes->add();
      ctx.port.write(a, v, key, m);
      f.instr_writes.put(a, v);
      return;
    }
    case Opcode::kLld: {
      const Addr a = effective_addr(f, instr, lane);
      step_ctx_[f.home].lanes.local_reads->add();
      write_reg(instr.rd, locals_[f.home].read(a));
      return;
    }
    case Opcode::kLst: {
      const Addr a = effective_addr(f, instr, lane);
      step_ctx_[f.home].lanes.local_writes->add();
      locals_[f.home].write(a, lf.get(lane, instr.rb));
      return;
    }
    case Opcode::kMpAdd:
    case Opcode::kMpMax:
    case Opcode::kMpMin:
    case Opcode::kMpAnd:
    case Opcode::kMpOr: {
      const Addr a = effective_addr(f, instr, lane);
      const Word v = lf.get(lane, instr.rb);
      const auto op = static_cast<mem::MultiOp>(
          static_cast<int>(instr.op) - static_cast<int>(Opcode::kMpAdd));
      auto& ctx = step_ctx_[f.home];
      const std::uint32_t m = shared_.module_of(a);
      note_ref(ctx, f.home, m);
      ctx.lanes.multiop_contributions->add();
      ctx.port.multiop(a, op, v, key, m);
      f.multiop_blocked = true;
      return;
    }
    case Opcode::kPpAdd:
    case Opcode::kPpMax:
    case Opcode::kPpMin:
    case Opcode::kPpAnd:
    case Opcode::kPpOr: {
      const Addr a = effective_addr(f, instr, lane);
      const Word v = lf.get(lane, instr.rb);
      const auto op = static_cast<mem::MultiOp>(
          static_cast<int>(instr.op) - static_cast<int>(Opcode::kPpAdd));
      auto& ctx = step_ctx_[f.home];
      const std::uint32_t m = shared_.module_of(a);
      note_ref(ctx, f.home, m);
      ctx.lanes.prefix_contributions->add();
      const std::size_t local = ctx.port.multiprefix(a, op, v, key, m);
      ctx.prefix_reqs.push_back(PrefixRequest{f.id, lane, instr.rd, local});
      f.multiop_blocked = true;
      return;
    }
    case Opcode::kTid:
      write_reg(instr.rd, static_cast<Word>(lane));
      return;
    case Opcode::kFid:
      write_reg(instr.rd, static_cast<Word>(f.id));
      return;
    case Opcode::kThick:
      write_reg(instr.rd, f.mode == FlowMode::kPram ? f.thickness : 1);
      return;
    case Opcode::kGid:
      write_reg(instr.rd, static_cast<Word>(f.home));
      return;
    case Opcode::kNop:
      return;
    default: {
      const Word a = lf.get(lane, instr.ra);
      write_reg(instr.rd, alu(instr, a, read_operand_b(f, instr, lane)));
      return;
    }
  }
}

bool Machine::exec_control(TcfDescriptor& f, const isa::Instr& instr) {
  using isa::Opcode;
  auto target = [&](std::int32_t imm) {
    if (imm < 0 || static_cast<std::size_t>(imm) > program_.code.size()) {
      TCFPN_FAULT("branch target ", imm, " out of range in flow ", f.id);
    }
    return static_cast<std::size_t>(imm);
  };
  switch (instr.op) {
    case Opcode::kJmp:
      f.pc = target(instr.imm);
      return true;
    case Opcode::kBeqz:
    case Opcode::kBnez: {
      // The whole flow takes exactly one path through a control statement
      // (Section 2.2); a divergent condition is a program fault.
      const Word head = f.lane_regs.get(0, instr.ra);
      if (f.mode == FlowMode::kPram && instr.ra != 0) {
        const Word* b = f.lane_regs.bank(instr.ra);
        const bool head_zero = head == 0;
        for (std::size_t l = 0, n = f.lane_regs.lanes(); l < n; ++l) {
          if ((b[l] == 0) != head_zero) {
            TCFPN_FAULT("divergent branch condition in flow ", f.id,
                        ": use parallel{} to split the flow");
          }
        }
      }
      const bool taken =
          (instr.op == Opcode::kBeqz) ? (head == 0) : (head != 0);
      f.pc = taken ? target(instr.imm) : f.pc + 1;
      return true;
    }
    case Opcode::kCall:
      f.call_stack.push_back(f.pc + 1);
      f.pc = target(instr.imm);
      return true;
    case Opcode::kRet:
      if (f.call_stack.empty()) {
        TCFPN_FAULT("RET with empty call stack in flow ", f.id);
      }
      f.pc = f.call_stack.back();
      f.call_stack.pop_back();
      return true;
    case Opcode::kHalt:
      halt_in_step(f);
      return false;
    case Opcode::kSetThick: {
      const Word t =
          instr.use_imm() ? instr.imm : f.lane_regs.get(0, instr.ra);
      if (t < 0) TCFPN_FAULT("negative thickness ", t, " in flow ", f.id);
      switch (cfg_.variant) {
        case Variant::kSingleOperation:
        case Variant::kConfigSingleOperation:
          if (t != 1) {
            TCFPN_FAULT(to_string(cfg_.variant),
                        " variant has fixed thickness 1 (got SETTHICK ", t,
                        "); use loops over the thread set");
          }
          break;
        case Variant::kFixedThickness:
          if (t != f.thickness) {
            TCFPN_FAULT("fixed-thickness variant cannot change thickness");
          }
          break;
        default:
          break;
      }
      if (t == 0) {
        // "If the thickness is set to zero then the processor does not
        // execute anything" — the flow is over.
        halt_in_step(f);
        return false;
      }
      emit(step_ctx_[f.home], DebugEventKind::kThicknessChanged, f,
           f.thickness, t);
      f.lane_regs.resize_fill_from_lane0(static_cast<std::size_t>(t));
      f.thickness = t;
      f.mode = FlowMode::kPram;
      f.pc += 1;
      return true;
    }
    case Opcode::kNumaSet: {
      const auto l = instr.imm;
      if (l < 0) TCFPN_FAULT("negative NUMA block length ", l);
      if (l == 0) {
        f.mode = FlowMode::kPram;
        f.pc += 1;
        return true;
      }
      switch (cfg_.variant) {
        case Variant::kSingleOperation:
          TCFPN_FAULT("single-operation variant has no NUMA support");
        case Variant::kMultiInstruction:
          TCFPN_FAULT("multi-instruction variant drops NUMA support");
        default:
          break;  // fixed-thickness: modelled as the scalar unit
      }
      f.mode = FlowMode::kNuma;
      f.numa_block = static_cast<std::uint32_t>(l);
      f.thickness = 1;
      f.lane_regs.resize_fill_from_lane0(1);
      f.pc += 1;
      return true;
    }
    case Opcode::kSpawn: {
      if (cfg_.variant == Variant::kFixedThickness) {
        TCFPN_FAULT("fixed-thickness (SIMD) variant has no control "
                    "parallelism: SPAWN is unavailable");
      }
      const Word t = f.lane_regs.get(0, instr.ra);
      if (t < 0) TCFPN_FAULT("negative spawn thickness ", t);
      if ((cfg_.variant == Variant::kSingleOperation ||
           cfg_.variant == Variant::kConfigSingleOperation) &&
          t > 1) {
        TCFPN_FAULT(to_string(cfg_.variant),
                    " variant spawns threads of thickness 1 only");
      }
      auto& ctx = step_ctx_[f.home];
      ++ctx.delta.spawns;
      if (t > 0) {
        const std::size_t entry = target(instr.imm);
        std::vector<Word> fragments{t};
        if (splitter_) {
          fragments = splitter_(t);
          Word total = 0;
          for (Word part : fragments) {
            TCFPN_CHECK(part > 0, "spawn splitter returned an empty fragment");
            total += part;
          }
          TCFPN_CHECK(total == t, "spawn splitter fragments sum to ", total,
                      ", expected ", t);
        }
        // The children are created at the step barrier (merge_group_effects)
        // so that flow ids and group placement are independent of host-thread
        // interleaving; the parent's live-children counter rises now so a
        // same-step JOINALL already sees them.
        f.live_children += static_cast<std::uint32_t>(fragments.size());
        emit(ctx, DebugEventKind::kSpawn, f, t,
             static_cast<Word>(fragments.size()));
        ctx.spawns.push_back(SpawnRequest{f.id, entry, std::move(fragments),
                                          f.lane_regs.snapshot(0)});
      }
      f.pc += 1;
      return true;
    }
    case Opcode::kJoinAll:
      f.pc += 1;
      emit(step_ctx_[f.home], DebugEventKind::kJoin, f,
           static_cast<Word>(f.live_children));
      if (f.live_children > 0) {
        f.status = FlowStatus::kWaitingJoin;
        return false;
      }
      ++step_ctx_[f.home].delta.joins;
      return true;
    case Opcode::kPrint: {
      const Word v =
          instr.use_imm() ? instr.imm : f.lane_regs.get(0, instr.ra);
      step_ctx_[f.home].prints.push_back(v);
      emit(step_ctx_[f.home], DebugEventKind::kPrint, f, v);
      f.pc += 1;
      return true;
    }
    default:
      TCFPN_FAULT("exec_control() called with non-control opcode");
  }
}

void Machine::complete_instruction(TcfDescriptor& f,
                                   const isa::Instr& /*instr*/) {
  if (!f.instr_writes.empty()) {
    f.instr_writes.for_each([&](Addr a, Word v) { f.step_writes.put(a, v); });
    f.instr_writes.clear();
  }
}

Machine::MemTerm Machine::memory_term() {
  // Injected link faults (retried drops, delayed replies) extend this
  // step's memory term even when the step itself issued no references —
  // the stalled reply still has to arrive before the next step. Kept
  // separate from the network bound so the profiler can itemize kFault.
  const Cycle fault_extra = net_->consume_fault_delay();
  if (cfg_.detailed_network) {
    if (step_refs_.empty()) return {fault_extra, 0};
    for (const auto& [src, module] : step_refs_) {
      net_->inject(src, module % cfg_.groups);
    }
    return {fault_extra, net_->drain()};
  }
  // Analytic bound from the aggregates the groups summed in the parallel
  // phase (merged in stream_merge_group) — no per-reference walk here.
  if (net_refs_ == 0) return {fault_extra, 0};
  std::uint64_t hottest = 0;
  for (std::uint64_t l : net_loads_) hottest = std::max(hottest, l);
  sc_.hot_module_load->add(static_cast<double>(hottest));
  sc_.wire_distance->add(net_max_dist_);
  const Cycle bound = net_->latency_bound(net_loads_, net_max_dist_);
  std::fill(net_loads_.begin(), net_loads_.end(), 0);
  net_refs_ = 0;
  net_max_dist_ = 0;
  return {fault_extra, bound};
}

void Machine::profile_step(Cycle slot_term_max, MemTerm mt, Cycle body,
                           const std::vector<Cycle>& group_work) {
  using prof::Key;
  using prof::kNoIndex;
  using prof::Term;
  // Pipeline fill is a per-step machine cost, attributable to nobody.
  profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kFill}, step_fill_);
  // The slot term distributes over the bins the groups recorded this step.
  // Three regimes: no recorded work (pure idle), slot capacity at or above
  // the recorded work (bins charge at face value, remainder is barrier
  // wait), or recorded work exceeding the slot term (balanced/interleaved
  // variants execute more ops than the fixed term — apportion by largest
  // remainder so the shares still sum exactly).
  Cycle work = 0;
  for (const auto& [k, w] : step_bins_) work += w;
  if (work == 0) {
    profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kIdle}, slot_term_max);
  } else if (slot_term_max >= work) {
    for (const auto& [k, w] : step_bins_) profile_.add(k, w);
    profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kIdle},
                 slot_term_max - work);
  } else if (slot_term_max > 0) {
    std::vector<Cycle> weights;
    weights.reserve(step_bins_.size());
    for (const auto& [k, w] : step_bins_) weights.push_back(w);
    const std::vector<Cycle> shares = prof::apportion(slot_term_max, weights);
    for (std::size_t i = 0; i < step_bins_.size(); ++i) {
      profile_.add(step_bins_[i].first, shares[i]);
    }
  }
  // Memory extension beyond the slot term: network first, then whatever the
  // injected fault delay added on top. c1/body reproduce finish_step's
  // max() exactly, so fill + slot + net + fault == the cycles just charged.
  const Cycle c1 = std::max(slot_term_max, mt.bound);
  profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kNet}, c1 - slot_term_max);
  profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kFault}, body - c1);

  std::int64_t limit_group = kNoIndex;
  Cycle best = 0;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;
    if (limit_group == kNoIndex || group_work[g] > best) {
      limit_group = static_cast<std::int64_t>(g);
      best = group_work[g];
    }
  }
  profile_.record_step({stats_.steps - 1, limit_group, step_fill_,
                        slot_term_max, mt.bound, mt.fault, work});
}

void Machine::finish_step(Cycle slot_term_max,
                          const std::vector<Cycle>& group_work) {
  double t0 = cfg_.profile_host ? host_clock_us() : 0;
  shared_.commit_step();
  // Multiprefix results materialise at commit; deliver them to lanes.
  for (const auto& p : pending_prefixes_) {
    TcfDescriptor& f = flow(p.flow);
    if (p.rd != 0 && p.lane < f.lane_regs.lanes()) {
      f.lane_regs.set(p.lane, p.rd, shared_.prefix_result(p.ticket));
    }
  }
  pending_prefixes_.clear();
  if (cfg_.profile_host) {
    host_span("mem/commit_step", t0);
    t0 = host_clock_us();
  }

  const MemTerm mt = memory_term();
  const Cycle mem = mt.fault + mt.bound;
  if (cfg_.profile_host) {
    host_span("net/memory_term", t0);
    t0 = host_clock_us();
  }
  step_refs_.clear();
  const Cycle body = std::max(slot_term_max, mem);
  stats_.memory_wait_cycles += mem > slot_term_max ? mem - slot_term_max : 0;
  stats_.cycles += step_fill_ + body;
  ++stats_.steps;
  if (cfg_.profile) profile_step(slot_term_max, mt, body, group_work);
  step_bins_.clear();
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;  // degraded P-1 capacity (DESIGN.md §9)
    stats_.busy_slots += group_work[g];
    stats_.idle_slots += body - std::min<Cycle>(body, group_work[g]);
  }

  // Cost-category accounting: where the step's cycles went (the cost model
  // of DESIGN.md §4 item 3, one counter per term) and how full the TCF
  // buffers ran. All barrier-side, so plain registry lookups are fine.
  sc_.pipeline_fill_cycles->add(step_fill_);
  sc_.slot_term_cycles->add(slot_term_max);
  sc_.memory_term_cycles->add(mem);
  sc_.memory_wait_cycles->add(mem > slot_term_max ? mem - slot_term_max : 0);
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    if (!group_alive(g)) continue;
    sc_.slot_occupancy->add(static_cast<double>(groups_[g].resident.size()));
    sc_.overflow_depth->add(static_cast<double>(groups_[g].overflow.size()));
  }

  // Step-boundary housekeeping: forwarding buffers, multiop blocks, wakes,
  // buffer cleanup, freshly spawned flows. Walks the group lists instead of
  // every flow ever created — long-halted flows need no housekeeping, and
  // flows that halted *this* step are still listed (the erase below runs
  // after). Freshly spawned flows are not listed yet but are born clean.
  auto housekeep = [&](FlowId id) {
    TcfDescriptor& f = *flows_[id];
    f.step_writes.clear();
    f.multiop_blocked = false;
    if (f.status == FlowStatus::kWaitingJoin && f.live_children == 0) {
      f.status = FlowStatus::kReady;
      ++stats_.joins;
    }
  };
  for (auto& grp : groups_) {
    for (FlowId id : grp.resident) housekeep(id);
    for (FlowId id : grp.overflow) housekeep(id);
    std::erase_if(grp.resident, [&](FlowId id) {
      return flows_[id]->status == FlowStatus::kHalted;
    });
    std::erase_if(grp.overflow, [&](FlowId id) {
      return flows_[id]->status == FlowStatus::kHalted;
    });
  }
  admit_pending_spawns();
  maybe_sample_step();
  if (cfg_.profile_host) host_span("sched/step_housekeeping", t0);
  if (observer_ != nullptr) {
    // stats_.steps already advanced; the event names the step just committed.
    observer_->on_event(DebugEvent{DebugEventKind::kStepCommitted,
                                   stats_.steps - 1, kNoFlow, 0,
                                   static_cast<Word>(stats_.cycles), 0});
    observer_->on_step(*this);
  }
}

// --------------------------------------------------------------------------
// Multi-instruction (XMT-style) variant
// --------------------------------------------------------------------------

std::uint64_t Machine::run_lane_to_event(TcfDescriptor& f, LaneId lane,
                                         std::size_t& lane_pc, bool& halted,
                                         bool& wants_join) {
  using isa::Opcode;
  std::uint64_t ops = 0;
  std::vector<std::size_t> stack;
  auto& lf = f.lane_regs;
  auto rget = [&](std::uint8_t r) { return lf.get(lane, r); };
  auto write_reg = [&](std::uint8_t r, Word v) { lf.set(lane, r, v); };
  halted = false;
  wants_join = false;
  while (true) {
    if (lane_pc >= program_.code.size()) {
      TCFPN_FAULT("lane ", lane, " of flow ", f.id,
                  " ran off the end of the program");
    }
    const isa::Instr& instr = program_.code[lane_pc];
    ++stats_.instruction_fetches;  // every thread fetches every instruction
    ++ops;
    if (ops > kLaneOpGuard) {
      TCFPN_FAULT("runaway lane (>", kLaneOpGuard, " ops) in flow ", f.id);
    }
    auto ea = [&]() {
      const Word base = rget(instr.ra);
      Word a = base + instr.imm;
      if (instr.lane_addr()) a += static_cast<Word>(lane);
      if (a < 0) TCFPN_FAULT("negative effective address in flow ", f.id);
      return static_cast<Addr>(a);
    };
    switch (instr.op) {
      case Opcode::kJmp:
        lane_pc = static_cast<std::size_t>(instr.imm);
        continue;
      case Opcode::kBeqz:
      case Opcode::kBnez: {
        const Word v = rget(instr.ra);
        const bool taken = instr.op == Opcode::kBeqz ? v == 0 : v != 0;
        lane_pc = taken ? static_cast<std::size_t>(instr.imm) : lane_pc + 1;
        continue;
      }
      case Opcode::kCall:
        stack.push_back(lane_pc + 1);
        lane_pc = static_cast<std::size_t>(instr.imm);
        continue;
      case Opcode::kRet:
        TCFPN_CHECK(!stack.empty(), "RET with empty stack (XMT lane)");
        lane_pc = stack.back();
        stack.pop_back();
        continue;
      case Opcode::kHalt:
        halted = true;
        return ops;
      case Opcode::kJoinAll:
        wants_join = true;
        ++lane_pc;
        return ops;
      case Opcode::kSpawn: {
        const Word t = rget(instr.ra);
        if (t < 0) TCFPN_FAULT("negative spawn thickness ", t);
        ++stats_.spawns;
        stats_.branch_cost_cycles += 1;  // XMT fork: O(1) enqueue
        if (t > 0) {
          TcfDescriptor& child = make_flow(
              static_cast<std::size_t>(instr.imm), t, 0, f.id);
          child.home = pick_group(child);
          child.lane_regs.assign(child.lane_regs.lanes(), lf.snapshot(lane));
          ++f.live_children;
          emit_now(DebugEventKind::kSpawn, f.id, f.home, t, 1);
          emit_now(DebugEventKind::kFlowCreated, child.id, child.home, t,
                   static_cast<Word>(f.id));
          pending_spawns_.push_back(child.id);
        }
        ++lane_pc;
        continue;
      }
      case Opcode::kSetThick:
        TCFPN_FAULT("SETTHICK on a running flow is not available in the "
                    "multi-instruction variant: thickness is set at fork");
      case Opcode::kNumaSet:
        TCFPN_FAULT("multi-instruction variant drops NUMA support");
      case Opcode::kLd:
        gm_.shared_reads->add();
        write_reg(instr.rd, shared_.peek(ea()));
        ++lane_pc;
        continue;
      case Opcode::kSt:
        gm_.shared_writes->add();
        shared_.poke(ea(), rget(instr.rb));
        ++lane_pc;
        continue;
      case Opcode::kLld:
        gm_.local_reads->add();
        write_reg(instr.rd, locals_[f.home].read(ea()));
        ++lane_pc;
        continue;
      case Opcode::kLst:
        gm_.local_writes->add();
        locals_[f.home].write(ea(), rget(instr.rb));
        ++lane_pc;
        continue;
      case Opcode::kMpAdd:
      case Opcode::kMpMax:
      case Opcode::kMpMin:
      case Opcode::kMpAnd:
      case Opcode::kMpOr: {
        // Immediate fetch-and-op (XMT-style atomic): one legal asynchronous
        // interleaving, serialised by simulation order.
        gm_.multiop_contributions->add();
        const Addr a = ea();
        const auto op = static_cast<mem::MultiOp>(
            static_cast<int>(instr.op) - static_cast<int>(Opcode::kMpAdd));
        shared_.poke(a, mem::apply_multiop(op, shared_.peek(a),
                                           rget(instr.rb)));
        ++lane_pc;
        continue;
      }
      case Opcode::kPpAdd:
      case Opcode::kPpMax:
      case Opcode::kPpMin:
      case Opcode::kPpAnd:
      case Opcode::kPpOr: {
        gm_.prefix_contributions->add();
        const Addr a = ea();
        const auto op = static_cast<mem::MultiOp>(
            static_cast<int>(instr.op) - static_cast<int>(Opcode::kPpAdd));
        const Word old = shared_.peek(a);
        // Read the contribution before delivering the prefix result: with
        // rd == rb the result write must not clobber the contribution.
        const Word contribution = rget(instr.rb);
        write_reg(instr.rd, old);
        shared_.poke(a, mem::apply_multiop(op, old, contribution));
        ++lane_pc;
        continue;
      }
      case Opcode::kTid:
        write_reg(instr.rd, static_cast<Word>(lane));
        ++lane_pc;
        continue;
      case Opcode::kFid:
        write_reg(instr.rd, static_cast<Word>(f.id));
        ++lane_pc;
        continue;
      case Opcode::kThick:
        write_reg(instr.rd, f.thickness);
        ++lane_pc;
        continue;
      case Opcode::kGid:
        write_reg(instr.rd, static_cast<Word>(f.home));
        ++lane_pc;
        continue;
      case Opcode::kPrint:
        if (lane == 0) {
          const Word v = instr.use_imm() ? instr.imm : rget(instr.ra);
          debug_out_.push_back(v);
          emit_now(DebugEventKind::kPrint, f.id, f.home, v);
        }
        ++lane_pc;
        continue;
      case Opcode::kLdi:
        write_reg(instr.rd, instr.imm);
        ++lane_pc;
        continue;
      case Opcode::kNop:
        ++lane_pc;
        continue;
      default: {
        const Word a = rget(instr.ra);
        const Word b = instr.use_imm() ? instr.imm : rget(instr.rb);
        write_reg(instr.rd, alu(instr, a, b));
        ++lane_pc;
        continue;
      }
    }
  }
}

bool Machine::step_multi_instruction() {
  // One "phase": every ready flow's lanes run asynchronously to their next
  // event (HALT or JOINALL); the phase costs ceil(total ops / thread units).
  std::vector<FlowId> ready;
  for (const auto& fp : flows_) {
    if (fp->status == FlowStatus::kReady) ready.push_back(fp->id);
  }
  if (ready.empty()) return false;

  const double t0 = cfg_.profile_host ? host_clock_us() : 0;
  std::uint64_t total_ops = 0;
  // Per-flow attribution bins for this phase (cfg.profile): each flow's
  // lane operations bin at the pc the phase started from; the phase cycles
  // are then apportioned over the bins below.
  std::vector<std::pair<prof::Key, Cycle>> xbins;
  std::int64_t limit_group = prof::kNoIndex;
  std::uint64_t best_ops = 0;
  for (FlowId id : ready) {
    TcfDescriptor& f = flow(id);
    const auto pc0 = static_cast<std::int64_t>(f.pc);
    std::uint64_t flow_ops = 0;
    bool flow_halt = true;
    bool flow_join = false;
    std::size_t uniform_pc = 0;
    for (LaneId lane = 0;
         lane < static_cast<std::uint64_t>(f.thickness); ++lane) {
      std::size_t lane_pc = f.pc;
      bool halted = false, wants_join = false;
      flow_ops += run_lane_to_event(f, lane, lane_pc, halted, wants_join);
      if (lane == 0) {
        flow_halt = halted;
        flow_join = wants_join;
        uniform_pc = lane_pc;
      } else if (halted != flow_halt || wants_join != flow_join ||
                 lane_pc != uniform_pc) {
        TCFPN_FAULT("lanes of flow ", f.id,
                    " diverged to different events in multi-instruction "
                    "mode; join points must be uniform");
      }
    }
    total_ops += flow_ops;
    if (limit_group == prof::kNoIndex || flow_ops > best_ops) {
      limit_group = static_cast<std::int64_t>(f.home);
      best_ops = flow_ops;
    }
    if (cfg_.profile && flow_ops > 0) {
      xbins.emplace_back(
          prof::Key{static_cast<std::int64_t>(f.home),
                    static_cast<std::int64_t>(f.id), pc0,
                    prof::Term::kCompute},
          flow_ops);
    }
    if (flow_halt) {
      on_flow_halted(f);
    } else {
      TCFPN_CHECK(flow_join, "lane stopped without halt or join");
      f.pc = uniform_pc;
      emit_now(DebugEventKind::kJoin, f.id, f.home,
               static_cast<Word>(f.live_children));
      f.status = f.live_children > 0 ? FlowStatus::kWaitingJoin
                                     : FlowStatus::kReady;
      if (f.live_children == 0) ++stats_.joins;
    }
  }
  stats_.operations += total_ops;

  // P pipelines execute one operation per cycle each; the T_p thread units
  // per processor hide latency rather than multiply throughput (the same
  // capacity assumption the synchronous variants run under). Retired
  // groups no longer pipeline: degraded runs pay P-1 throughput. On a
  // heterogeneous shape each alive pipeline contributes its clock
  // multiplier to the aggregate throughput; the 16-bit fixed-point sum is
  // exact for the bounded num/den range and reduces to the uniform
  // ceil(total_ops / alive) bit-for-bit when every multiplier is 1.
  Cycle phase = 0;
  std::uint64_t units = std::max<std::uint32_t>(alive_groups(), 1);
  if (!cfg_.is_heterogeneous()) {
    phase = (total_ops + units - 1) / units;
  } else {
    std::uint64_t weight_fp = 0;  // aggregate throughput, 16.16 fixed point
    for (GroupId g = 0; g < cfg_.groups; ++g) {
      if (!group_alive(g)) continue;
      weight_fp += (static_cast<std::uint64_t>(cfg_.group_clock_num(g)) << 16) /
                   cfg_.group_clock_den(g);
    }
    if (weight_fp == 0) weight_fp = 1u << 16;
    phase = ((total_ops << 16) + weight_fp - 1) / weight_fp;
  }
  stats_.cycles += phase;
  stats_.busy_slots += total_ops;
  // Guarded: with >1x clocks the pipelines may retire more than one op per
  // base-clock cycle, so phase * units can undershoot total_ops.
  stats_.idle_slots +=
      phase * units > total_ops ? phase * units - total_ops : 0;
  ++stats_.steps;
  metrics_.counter("machine/phase_cycles").add(phase);
  if (cfg_.profile) {
    using prof::Key;
    using prof::kNoIndex;
    using prof::Term;
    // Apportion the phase cycles over the per-flow bins: with one alive
    // group phase == total_ops (face value); with more the pipelines
    // co-execute and each flow gets its proportional share.
    if (total_ops == 0) {
      profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kIdle}, phase);
    } else if (phase >= total_ops) {
      for (const auto& [k, w] : xbins) profile_.add(k, w);
      profile_.add({kNoIndex, kNoIndex, kNoIndex, Term::kIdle},
                   phase - total_ops);
    } else if (phase > 0) {
      std::vector<Cycle> weights;
      weights.reserve(xbins.size());
      for (const auto& [k, w] : xbins) weights.push_back(w);
      const std::vector<Cycle> shares = prof::apportion(phase, weights);
      for (std::size_t i = 0; i < xbins.size(); ++i) {
        profile_.add(xbins[i].first, shares[i]);
      }
    }
    profile_.record_step({stats_.steps - 1, limit_group, /*fill=*/0, phase,
                          /*net=*/0, /*fault=*/0, total_ops});
  }

  // Wake joiners whose children have all halted; charge the join barrier.
  for (auto& fp : flows_) {
    if (fp->status == FlowStatus::kWaitingJoin && fp->live_children == 0) {
      fp->status = FlowStatus::kReady;
      stats_.cycles += cfg_.join_cost;
      ++stats_.joins;
      metrics_.counter("machine/join_cycles").add(cfg_.join_cost);
      if (cfg_.profile) {
        profile_.add({static_cast<std::int64_t>(fp->home),
                      static_cast<std::int64_t>(fp->id), prof::kNoIndex,
                      prof::Term::kSwitch},
                     cfg_.join_cost);
      }
    }
  }
  admit_pending_spawns();
  if (!pending_spawns_.empty() || !ready.empty()) {
    stats_.cycles += cfg_.spawn_cost;  // dispatch overhead per phase
    metrics_.counter("machine/spawn_cycles").add(cfg_.spawn_cost);
    if (cfg_.profile) {
      profile_.add({prof::kNoIndex, prof::kNoIndex, prof::kNoIndex,
                    prof::Term::kBranch},
                   cfg_.spawn_cost);
    }
  }
  maybe_sample_step();
  if (cfg_.profile_host) host_span("machine/xmt_phase", t0);
  if (observer_ != nullptr) {
    observer_->on_event(DebugEvent{DebugEventKind::kStepCommitted,
                                   stats_.steps - 1, kNoFlow, 0,
                                   static_cast<Word>(stats_.cycles), 0});
    observer_->on_step(*this);
  }
  return true;
}

// --------------------------------------------------------------------------
// Task management
// --------------------------------------------------------------------------

mem::LocalMemory& Machine::local(GroupId g) {
  TCFPN_CHECK(g < locals_.size(), "group ", g, " out of range");
  return locals_[g];
}

Cycle Machine::suspend_flow(FlowId id) {
  TcfDescriptor& f = flow(id);
  TCFPN_CHECK(f.status == FlowStatus::kReady, "can only suspend ready flows");
  f.status = FlowStatus::kSuspended;
  // The descriptor stays in the TCF buffer: for the TCF variants suspension
  // is free (Table 1); thread machines pay the full context switch.
  const bool resident =
      std::find(groups_[f.home].resident.begin(),
                groups_[f.home].resident.end(),
                id) != groups_[f.home].resident.end();
  const Cycle c = task_switch_cost(cfg_, f.thickness, resident,
                                   cfg_.group_slots(f.home));
  stats_.task_switch_cycles += c;
  stats_.cycles += c;
  if (cfg_.profile) {
    profile_.add({static_cast<std::int64_t>(f.home),
                  static_cast<std::int64_t>(f.id), prof::kNoIndex,
                  prof::Term::kSwitch},
                 c);
  }
  metrics_.counter("sched/suspends").add();
  metrics_.counter("sched/swap_out_cycles").add(c);
  emit_now(DebugEventKind::kSuspend, id, f.home, static_cast<Word>(c));
  return c;
}

Cycle Machine::resume_flow(FlowId id) {
  TcfDescriptor& f = flow(id);
  TCFPN_CHECK(f.status == FlowStatus::kSuspended,
              "can only resume suspended flows");
  f.status = FlowStatus::kReady;
  auto& grp = groups_[f.home];
  bool resident =
      std::find(grp.resident.begin(), grp.resident.end(), id) !=
      grp.resident.end();
  Cycle c = 0;
  if (!resident) {
    // Make room: displace a suspended resident flow if the buffer is full.
    if (grp.resident.size() >= cfg_.group_slots(f.home)) {
      for (FlowId victim : grp.resident) {
        if (flows_[victim]->status == FlowStatus::kSuspended) {
          c += evict_flow(victim);
          break;
        }
      }
    }
    std::erase(grp.overflow, id);
    if (grp.resident.size() < cfg_.group_slots(f.home)) {
      grp.resident.push_back(id);
      resident = true;
      // Loading the descriptor and its cached lane registers back into the
      // buffer is the swap-in half of the task switch.
      c += task_switch_cost(cfg_, f.thickness, /*resident_in_buffer=*/false,
                            cfg_.group_slots(f.home));
    } else {
      grp.overflow.push_back(id);
    }
  } else {
    c += task_switch_cost(cfg_, f.thickness, /*resident_in_buffer=*/true,
                          cfg_.group_slots(f.home));
  }
  stats_.task_switch_cycles += c;
  stats_.cycles += c;
  if (cfg_.profile) {
    profile_.add({static_cast<std::int64_t>(f.home),
                  static_cast<std::int64_t>(f.id), prof::kNoIndex,
                  prof::Term::kSwitch},
                 c);
  }
  metrics_.counter("sched/resumes").add();
  metrics_.counter("sched/swap_in_cycles").add(c);
  emit_now(DebugEventKind::kResume, id, f.home, static_cast<Word>(c));
  return c;
}

Cycle Machine::evict_flow(FlowId id) {
  TcfDescriptor& f = flow(id);
  auto& grp = groups_[f.home];
  const auto it = std::find(grp.resident.begin(), grp.resident.end(), id);
  TCFPN_CHECK(it != grp.resident.end(), "evicting a non-resident flow");
  grp.resident.erase(it);
  grp.overflow.push_back(id);
  f.evicted_once = true;
  const Cycle c = task_switch_cost(cfg_, f.thickness,
                                   /*resident_in_buffer=*/false,
                                   cfg_.group_slots(f.home));
  stats_.task_switch_cycles += c;
  metrics_.counter("sched/evictions").add();
  metrics_.counter("sched/swap_out_cycles").add(c);
  emit_now(DebugEventKind::kEvict, id, f.home, static_cast<Word>(c));
  return c;
}

}  // namespace tcfpn::machine
