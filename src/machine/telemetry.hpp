// Machine-readable telemetry documents for a finished (or in-flight) run.
//
// Two formats, both dependency-free:
//
//  - metrics_json_document: run metadata + the machine's full metrics
//    registry snapshot as a nested JSON object (one subtree per subsystem:
//    "net", "mem", "sched", "machine") + the optional per-step time series
//    (cfg.sample_every). The snapshot is bit-identical for every
//    cfg.host_threads value — the registry merges per-group instruments at
//    the step barrier in group order — so two runs of the same program at
//    different host parallelism produce byte-identical "metrics" subtrees.
//
//  - trace_json_document: the Chrome trace-event / Perfetto rendering of the
//    simulated schedule (cfg.record_trace) and the host-side phase timings
//    (cfg.profile_host). Open in ui.perfetto.dev or chrome://tracing.
//
// The CLI drivers (--metrics-json / --trace-json), the benches and the tests
// all build their documents through these two functions.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hpp"
#include "prof/report.hpp"

namespace tcfpn::machine {

using MetaPairs = std::vector<std::pair<std::string, std::string>>;

/// Serialises run metadata, the metrics snapshot and any step samples as one
/// JSON document. `extra` key/value pairs (tool name, input file, ...) are
/// merged into the "run" object. `shard_json`, when nonempty, is a
/// pre-rendered JSON object emitted as the top-level "shard" block — the
/// supervision counters live OUTSIDE "metrics" so the metrics subtree stays
/// byte-identical to a --shards 1 run (same contract as the stream's "obs"
/// object).
std::string metrics_json_document(const Machine& m, const RunResult& run,
                                  const MetaPairs& extra = {},
                                  const std::string& shard_json = {});

/// Serialises the schedule trace and host spans as Chrome trace-event JSON.
/// `extra` pairs land under "otherData" alongside the machine description,
/// including a "truncated" flag when the host-span buffer overflowed.
std::string trace_json_document(const Machine& m, const MetaPairs& extra = {});

/// Serialises the attribution profile (cfg.profile, src/prof) as a
/// "tcfpn-profile-v1" document: run metadata, the closed-world term list,
/// per-term totals, every (group, tcf, pc, term) cell, the step-criticality
/// aggregate and the folded flame-graph stacks. `program` names the
/// folded-stack root.
std::string profile_json_document(const Machine& m, const RunResult& run,
                                  const std::string& program,
                                  const MetaPairs& extra = {});

/// The prof::RunInfo for a run — shared by the JSON export above and the
/// tcfprof report renderers.
prof::RunInfo profile_run_info(const Machine& m, const RunResult& run,
                               const std::string& program,
                               const MetaPairs& extra = {});

}  // namespace tcfpn::machine
