// A flat open-addressing map for per-flow store-forwarding buffers.
//
// The step hot path clears and refills these buffers every machine step for
// every ready flow; std::unordered_map paid a node allocation per staged
// write and a full rehash-walk per clear. This map keeps its slot array
// across steps (epoch tagging makes clear() O(1)), records insertion order
// in a side log so iteration is O(entries) rather than O(capacity), and
// never allocates on the clear path. Keys are shared-memory addresses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace tcfpn::machine {

class WriteBuffer {
 public:
  bool empty() const { return keys_.empty(); }
  std::size_t size() const { return keys_.size(); }

  /// Forgets every entry without releasing storage: bumps the epoch so old
  /// slots read as vacant. O(1) except once per 2^64 clears.
  void clear() {
    keys_.clear();
    if (++epoch_ == 0) {  // epoch wrapped: scrub slots so stale tags die
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  /// Last value staged for `a` this epoch, or nullptr.
  const Word* find(Addr a) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe_start(a);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == a) return &s.value;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts or overwrites the value for `a`.
  void put(Addr a, Word v) {
    if (keys_.size() + 1 > (slots_.size() >> 1)) grow();
    std::size_t i = probe_start(a);
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.key = a;
        s.value = v;
        s.epoch = epoch_;
        keys_.push_back(a);
        return;
      }
      if (s.key == a) {
        s.value = v;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Visits entries in insertion order (each key once, latest value).
  template <typename F>
  void for_each(F&& f) const {
    for (Addr a : keys_) f(a, *find(a));
  }

  /// Entries as (addr, value) pairs in insertion order (checkpoint layer;
  /// the caller sorts for a canonical serialization).
  std::vector<std::pair<Addr, Word>> items() const {
    std::vector<std::pair<Addr, Word>> out;
    out.reserve(keys_.size());
    for_each([&](Addr a, Word v) { out.emplace_back(a, v); });
    return out;
  }

 private:
  struct Slot {
    Addr key = 0;
    Word value = 0;
    std::uint64_t epoch = 0;  ///< vacant unless == current epoch
  };

  std::size_t probe_start(Addr a) const {
    // Fibonacci hashing spreads the low-entropy address keys over the table.
    return static_cast<std::size_t>((a * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::pair<Addr, Word>> live = items();
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    keys_.clear();
    epoch_ = 1;
    for (const auto& [a, v] : live) put(a, v);
  }

  std::vector<Slot> slots_;
  std::vector<Addr> keys_;  ///< insertion log: one entry per live key
  std::size_t mask_ = 0;
  std::uint64_t epoch_ = 1;
};

}  // namespace tcfpn::machine
