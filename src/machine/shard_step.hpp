// The unit of exchange for sharded execution (src/shard, DESIGN.md §14).
//
// A ShardGroupBatch is one group's sealed per-step effect context plus the
// pieces of machine state only the executing replica could have advanced:
// the post-phase flow descriptors of the group's resident list and the
// group's local-memory delta. Installing a batch on a replica that did not
// execute the group leaves that replica in exactly the state the owner is
// in — so the barrier merge (shard_finish_step) runs on bit-identical
// inputs everywhere and every replica commits the same step.
//
// Everything here is plain data: POD fields, vectors and strings. The wire
// codec (src/shard/wire.cpp) serialises batches field by field; keeping the
// struct free of machine internals (exception_ptr, metric pointers) is what
// makes that codec total.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "machine/machine.hpp"
#include "machine/state.hpp"
#include "mem/shared_memory.hpp"
#include "prof/profile.hpp"

namespace tcfpn::machine {

struct ShardGroupBatch {
  GroupId group = 0;
  StepId step = 0;  ///< stats_.steps at capture time (lockstep sanity check)

  // ----- GroupCtx image (sealed effect buffer) -----
  std::uint64_t step_ops = 0;  ///< groups_[g].step_ops after the phase
  MachineStats delta;
  mem::MemoryPort::Image port;
  std::vector<std::pair<GroupId, std::uint32_t>> refs;  ///< (src, module)
  /// Analytic network aggregates. `net_loads` ships empty when net_refs == 0
  /// (the GroupCtx invariant: loads are only nonzero alongside net_refs).
  std::vector<std::uint64_t> net_loads;
  std::uint64_t net_refs = 0;
  std::uint32_t net_max_dist = 0;
  /// Machine::PrefixRequest, flattened (that type is Machine-private).
  struct Prefix {
    FlowId flow = kNoFlow;
    LaneId lane = 0;
    std::uint8_t rd = 0;
    std::uint64_t local = 0;  ///< index into the port drain ticket mapping
  };
  std::vector<Prefix> prefix_reqs;
  /// Machine::SpawnRequest, flattened.
  struct Spawn {
    FlowId parent = kNoFlow;
    std::uint64_t entry = 0;
    std::vector<Word> fragments;
    LaneRegs broadcast{};
  };
  std::vector<Spawn> spawns;
  std::vector<FlowId> halted;
  std::vector<Word> prints;
  std::vector<DebugEvent> events;
  /// ctx.prof_bins flattened in its canonical (map) order.
  std::vector<std::pair<prof::Key, Cycle>> prof_bins;
  metrics::RawMetrics metrics;  ///< the group registry (lane counters)
  /// Nonempty: the group's phase faulted with this message. The replica
  /// materialises it back into ctx.error so merge ordering ("lowest faulting
  /// group wins") is identical to single-process execution.
  std::string error;

  // ----- replica state only the owner advanced -----
  /// Post-phase images of the group's resident flows (overflow flows never
  /// execute, so they cannot diverge and are not shipped).
  std::vector<FlowState> flows;
  /// NUMA-mode writes are immediate (not step-buffered); replayed verbatim.
  std::vector<std::pair<Addr, Word>> local_writes;
  /// Absolute post-phase local-memory counters (reads also advance on loads
  /// the write journal cannot see).
  std::uint64_t local_reads = 0;
  std::uint64_t local_write_count = 0;
  std::uint64_t local_remote = 0;
};

}  // namespace tcfpn::machine
