// Heterogeneous machine shapes (DESIGN.md §12): named presets, a CLI spec
// parser, a telemetry summary and a seeded sampler for the fuzzer.
//
// A "shape" is the per-group half of a MachineConfig: the groups count plus
// the group_specs vector (per-group T_p, clock multiplier, pipeline depth
// and NUMA distance row). Everything here is a pure function of its inputs
// so shapes are reproducible from their spec string or seed.
#pragma once

#include <cstdint>
#include <string>

#include "machine/config.hpp"

namespace tcfpn::machine {

/// Applies a shape to `cfg`. `spec` is either a named preset —
///
///   uniform    the classic homogeneous machine (clears group_specs)
///   fat-thin   2 fat NUMA groups (T_p 64, clock 3x, deep pipe, near
///              distance row) + 6 thin PRAM-mode groups (T_p 4)
///   gpu        8 identical GPU-like fixed-thickness groups (T_p 32,
///              clock 2x, deep pipeline, crossbar-flat distance rows)
///
/// — or an explicit group list: `COUNT*key=val[,key=val...]` terms joined
/// by '+', with keys `slots=N`, `clock=N` or `clock=N/D`, `fill=N` and
/// `dist=a:b:...` (one distance per group, matching the final group
/// count). Example:
///
///   2*slots=64,clock=3/1,fill=6+6*slots=4,clock=1/2
///
/// Explicit lists set cfg.groups to the total count. Throws SimError on a
/// malformed spec. The result always passes validate_shape().
void apply_shape(MachineConfig& cfg, const std::string& spec);

/// One-line shape description for run metadata: "uniform" for the
/// homogeneous machine, else run-length-encoded per-group specs, e.g.
/// "2*slots=64,clock=3/1,fill=6,dist+6*slots=4,clock=1/2" ("dist" marks a
/// private NUMA row without spelling the whole matrix out).
std::string shape_summary(const MachineConfig& cfg);

/// Deterministic seeded sampler over the heterogeneous config space (the
/// conformance fuzzer's shape lane): keeps cfg.groups and draws per-group
/// T_p, clock multiplier, pipeline depth and an optional NUMA row from the
/// seed. Pure: the same seed always yields the same shape.
void sample_shape(MachineConfig& cfg, std::uint64_t seed);

/// Shape invariants (group_specs size, clocks >= 1, slot and row bounds).
/// Machine's constructor enforces this; throws SimError on violation.
void validate_shape(const MachineConfig& cfg);

}  // namespace tcfpn::machine
