#include "machine/shapes.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tcfpn::machine {

namespace {

// Hard bounds on what a shape may ask for: large enough for every preset
// and any interesting fuzzer draw, small enough that a typo'd spec fails
// loudly instead of allocating gigabytes of slot state.
constexpr std::uint32_t kMaxGroupSlots = 4096;
constexpr std::uint32_t kMaxClock = 64;
constexpr std::uint32_t kMaxFill = 256;
constexpr std::uint32_t kMaxDistance = 1u << 20;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::uint32_t parse_u32(const std::string& s, const std::string& what) {
  if (s.empty()) throw SimError("shape: empty " + what + " value");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw SimError("shape: non-numeric " + what + " value '" + s + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffull) throw SimError("shape: " + what + " overflows");
  }
  return static_cast<std::uint32_t>(v);
}

// One '+'-separated term: `COUNT*key=val[,key=val...]`.
void parse_term(const std::string& term, std::vector<GroupSpec>& out) {
  const auto star = term.find('*');
  if (star == std::string::npos) {
    throw SimError("shape: term '" + term + "' missing COUNT* prefix");
  }
  const std::uint32_t count = parse_u32(term.substr(0, star), "group count");
  if (count == 0) throw SimError("shape: zero group count in '" + term + "'");
  GroupSpec spec;
  for (const std::string& kv : split(term.substr(star + 1), ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      throw SimError("shape: expected key=value, got '" + kv + "'");
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "slots") {
      spec.slots = parse_u32(val, "slots");
    } else if (key == "clock") {
      const auto slash = val.find('/');
      if (slash == std::string::npos) {
        spec.clock_num = parse_u32(val, "clock");
        spec.clock_den = 1;
      } else {
        spec.clock_num = parse_u32(val.substr(0, slash), "clock numerator");
        spec.clock_den = parse_u32(val.substr(slash + 1), "clock denominator");
      }
    } else if (key == "fill") {
      spec.pipeline_fill = parse_u32(val, "fill");
    } else if (key == "dist") {
      spec.numa_row.clear();
      for (const std::string& d : split(val, ':')) {
        spec.numa_row.push_back(parse_u32(d, "distance"));
      }
    } else {
      throw SimError("shape: unknown key '" + key + "' (want slots/clock/fill/dist)");
    }
  }
  out.insert(out.end(), count, spec);
}

void apply_specs(MachineConfig& cfg, std::vector<GroupSpec> specs) {
  cfg.groups = static_cast<std::uint32_t>(specs.size());
  cfg.group_specs = std::move(specs);
  validate_shape(cfg);
}

// The two non-trivial presets of ISSUE 8's acceptance bar. Both are 8-group
// machines so the scenario bench compares shapes at equal P.
void preset_fat_thin(MachineConfig& cfg) {
  std::vector<GroupSpec> specs;
  // Two fat NUMA-style groups: 64 slots, 3x clock, deeper pipeline, and a
  // distance row that keeps the fat pair close while the thin groups sit a
  // full mesh diameter away.
  GroupSpec fat;
  fat.slots = 64;
  fat.clock_num = 3;
  fat.clock_den = 1;
  fat.pipeline_fill = 6;
  fat.numa_row = {1, 1, 4, 4, 4, 4, 4, 4};
  specs.insert(specs.end(), 2, fat);
  // Six thin PRAM-mode groups: 4 slots, base clock, shallow pipeline,
  // uniformly far from everything (classic emulated-shared-memory rows).
  GroupSpec thin;
  thin.slots = 4;
  thin.clock_num = 1;
  thin.clock_den = 1;
  thin.pipeline_fill = 2;
  thin.numa_row = {4, 4, 2, 2, 2, 2, 2, 2};
  specs.insert(specs.end(), 6, thin);
  apply_specs(cfg, std::move(specs));
}

void preset_gpu(MachineConfig& cfg) {
  // Eight identical GPU-like groups: wide fixed thickness per group, double
  // clock, a deep pipeline (latency-hiding via thickness, as in the paper's
  // Fig. 12 discussion), and crossbar-flat distance rows.
  GroupSpec sm;
  sm.slots = 32;
  sm.clock_num = 2;
  sm.clock_den = 1;
  sm.pipeline_fill = 12;
  sm.numa_row = {1, 1, 1, 1, 1, 1, 1, 1};
  apply_specs(cfg, std::vector<GroupSpec>(8, sm));
}

}  // namespace

void apply_shape(MachineConfig& cfg, const std::string& spec) {
  if (spec.empty() || spec == "uniform") {
    cfg.group_specs.clear();
    return;
  }
  if (spec == "fat-thin") {
    preset_fat_thin(cfg);
    return;
  }
  if (spec == "gpu") {
    preset_gpu(cfg);
    return;
  }
  std::vector<GroupSpec> specs;
  for (const std::string& term : split(spec, '+')) parse_term(term, specs);
  apply_specs(cfg, std::move(specs));
}

std::string shape_summary(const MachineConfig& cfg) {
  if (!cfg.is_heterogeneous()) return "uniform";
  std::ostringstream os;
  bool first_term = true;
  for (std::size_t i = 0; i < cfg.group_specs.size();) {
    std::size_t run = 1;
    while (i + run < cfg.group_specs.size() &&
           cfg.group_specs[i + run] == cfg.group_specs[i]) {
      ++run;
    }
    const GroupSpec& s = cfg.group_specs[i];
    if (!first_term) os << '+';
    first_term = false;
    os << run << '*';
    bool first_kv = true;
    auto kv = [&](const char* key) -> std::ostringstream& {
      if (!first_kv) os << ',';
      first_kv = false;
      os << key;
      return os;
    };
    if (s.slots != 0) kv("slots=") << s.slots;
    if (s.clock_num != 1 || s.clock_den != 1) {
      kv("clock=") << s.clock_num;
      if (s.clock_den != 1) os << '/' << s.clock_den;
    }
    if (s.pipeline_fill != kInheritFill) kv("fill=") << s.pipeline_fill;
    if (!s.numa_row.empty()) kv("dist");
    if (first_kv) kv("default");
    i += run;
  }
  return os.str();
}

void sample_shape(MachineConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t groups = cfg.groups;
  std::vector<GroupSpec> specs(groups);
  // Draw a small palette of group kinds and tile it over the machine, so
  // sampled shapes look like real heterogeneous parts (a few kinds, many
  // groups) instead of per-group noise.
  const std::uint32_t kinds =
      1 + static_cast<std::uint32_t>(rng.below(std::min<std::uint32_t>(groups, 3)));
  std::vector<GroupSpec> palette(kinds);
  for (GroupSpec& k : palette) {
    // Slot counts around the uniform T_p: 1/4x .. 4x, clamped to >= 1.
    static constexpr std::uint32_t kSlotChoices[] = {0, 1, 2, 4, 8, 16, 32, 64};
    k.slots = kSlotChoices[rng.below(8)];
    static constexpr std::uint32_t kNums[] = {1, 1, 2, 3, 4};
    static constexpr std::uint32_t kDens[] = {1, 1, 1, 2, 4};
    k.clock_num = kNums[rng.below(5)];
    k.clock_den = kDens[rng.below(5)];
    if (rng.chance(0.5)) {
      k.pipeline_fill = static_cast<std::uint32_t>(rng.range(1, 12));
    }
    if (rng.chance(0.5)) {
      k.numa_row.resize(groups);
      for (std::uint32_t m = 0; m < groups; ++m) {
        k.numa_row[m] = static_cast<std::uint32_t>(rng.range(1, 8));
      }
    }
  }
  for (std::uint32_t g = 0; g < groups; ++g) {
    specs[g] = palette[rng.below(kinds)];
  }
  cfg.group_specs = std::move(specs);
  validate_shape(cfg);
}

void validate_shape(const MachineConfig& cfg) {
  if (!cfg.is_heterogeneous()) return;
  if (cfg.group_specs.size() != cfg.groups) {
    throw SimError("shape: " + std::to_string(cfg.group_specs.size()) +
                   " group specs for " + std::to_string(cfg.groups) +
                   " groups");
  }
  for (std::size_t g = 0; g < cfg.group_specs.size(); ++g) {
    const GroupSpec& s = cfg.group_specs[g];
    const std::string where = "shape: group " + std::to_string(g);
    if (s.slots > kMaxGroupSlots) {
      throw SimError(where + ": slots " + std::to_string(s.slots) + " > " +
                     std::to_string(kMaxGroupSlots));
    }
    if (s.clock_num == 0 || s.clock_den == 0) {
      throw SimError(where + ": clock multiplier must be >= 1/N with N >= 1");
    }
    if (s.clock_num > kMaxClock || s.clock_den > kMaxClock) {
      throw SimError(where + ": clock multiplier out of range");
    }
    if (s.pipeline_fill != kInheritFill && s.pipeline_fill > kMaxFill) {
      throw SimError(where + ": pipeline fill out of range");
    }
    if (!s.numa_row.empty()) {
      if (s.numa_row.size() != cfg.groups) {
        throw SimError(where + ": NUMA row has " +
                       std::to_string(s.numa_row.size()) + " entries for " +
                       std::to_string(cfg.groups) + " groups");
      }
      for (std::uint32_t d : s.numa_row) {
        if (d > kMaxDistance) throw SimError(where + ": distance out of range");
      }
    }
  }
}

}  // namespace tcfpn::machine
