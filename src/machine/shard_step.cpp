// Sharded stepping (src/shard, DESIGN.md §14): the Machine half of the
// replicated-step protocol. Every replica holds the full machine; these
// entry points split step_synchronous() at the seal boundary — phase
// (shard_begin_step, owned groups only), exchange (shard_extract /
// shard_install) and barrier (shard_finish_step) — without changing a
// single merged byte relative to a one-process step.
#include "machine/shard_step.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "machine/config.hpp"

namespace tcfpn::machine {

void Machine::set_shard_mode(std::vector<std::uint8_t> owned) {
  if (owned.empty()) {
    shard_mode_ = false;
    shard_owned_.clear();
    shard_local_writes_.clear();
    return;
  }
  TCFPN_CHECK(is_step_synchronous(cfg_.variant),
              "sharded stepping requires a step-synchronous variant");
  TCFPN_CHECK(owned.size() == cfg_.groups,
              "shard ownership mask has ", owned.size(), " entries for ",
              cfg_.groups, " groups");
  TCFPN_CHECK(!trace_.enabled(),
              "schedule tracing records host-side spans per executing "
              "replica and cannot be sharded");
  shard_mode_ = true;
  shard_owned_ = std::move(owned);
  shard_local_writes_.assign(cfg_.groups, {});
}

bool Machine::shard_begin_step() {
  TCFPN_CHECK(shard_mode_, "shard_begin_step outside shard mode");
  // Replicated end-of-run decision: identical resident lists and statuses on
  // every replica yield the same answer everywhere.
  bool any_ready = false;
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    promote_overflow(g);
    for (FlowId id : groups_[g].resident) {
      if (flows_[id]->status == FlowStatus::kReady) any_ready = true;
    }
  }
  if (!any_ready) return false;

  step_bins_.clear();
  const Cycle step_base = stats_.cycles + step_fill_;

  // Every context resets — non-owned ones must be clean for shard_install.
  // step_ops is normally zeroed by execute_group; non-owned groups take the
  // owner's value from the batch, but zero it here so a missing batch is a
  // loud divergence rather than a stale carry-over.
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    step_ctx_[g].reset();
    groups_[g].step_ops = 0;
    shard_local_writes_[g].clear();
  }

  auto run_group = [&](std::size_t g) {
    if (!shard_owned_[g]) return;
    locals_[g].set_write_log(&shard_local_writes_[g]);
    try {
      execute_group(static_cast<GroupId>(g), step_base);
    } catch (...) {
      step_ctx_[g].error = std::current_exception();
    }
    locals_[g].set_write_log(nullptr);
  };
  if (pool_) {
    pool_->parallel_for(cfg_.groups, run_group);
  } else {
    for (GroupId g = 0; g < cfg_.groups; ++g) run_group(g);
  }
  return true;
}

ShardGroupBatch Machine::shard_extract(GroupId g) const {
  TCFPN_CHECK(shard_mode_, "shard_extract outside shard mode");
  TCFPN_CHECK(g < cfg_.groups, "shard_extract: group ", g, " out of range");
  TCFPN_CHECK(shard_owned_[g], "shard_extract of non-owned group ", g);
  const GroupCtx& ctx = step_ctx_[g];

  ShardGroupBatch b;
  b.group = g;
  b.step = stats_.steps;
  b.step_ops = groups_[g].step_ops;
  b.delta = ctx.delta;
  b.port = ctx.port.save_image();
  b.refs = ctx.refs;
  if (ctx.net_refs != 0) b.net_loads = ctx.net_loads;
  b.net_refs = ctx.net_refs;
  b.net_max_dist = ctx.net_max_dist;
  b.prefix_reqs.reserve(ctx.prefix_reqs.size());
  for (const PrefixRequest& p : ctx.prefix_reqs) {
    b.prefix_reqs.push_back(ShardGroupBatch::Prefix{
        p.flow, p.lane, p.rd, static_cast<std::uint64_t>(p.local)});
  }
  b.spawns.reserve(ctx.spawns.size());
  for (const SpawnRequest& s : ctx.spawns) {
    b.spawns.push_back(
        ShardGroupBatch::Spawn{s.parent, s.entry, s.fragments, s.broadcast});
  }
  b.halted = ctx.halted;
  b.prints = ctx.prints;
  b.events = ctx.events;
  b.prof_bins.assign(ctx.prof_bins.begin(), ctx.prof_bins.end());
  b.metrics = ctx.metrics.save_raw();
  if (ctx.error) {
    try {
      std::rethrow_exception(ctx.error);
    } catch (const std::exception& e) {
      b.error = e.what();
    } catch (...) {
      b.error = "unknown group-phase fault";
    }
    if (b.error.empty()) b.error = "unknown group-phase fault";
  }

  b.flows.reserve(groups_[g].resident.size());
  for (FlowId id : groups_[g].resident) {
    b.flows.push_back(capture_flow_state(*flows_[id],
                                         /*require_boundary=*/false));
  }
  b.local_writes = shard_local_writes_[g];
  b.local_reads = locals_[g].reads();
  b.local_write_count = locals_[g].writes();
  b.local_remote = locals_[g].remote_accesses();
  return b;
}

void Machine::shard_install(const ShardGroupBatch& b) {
  TCFPN_CHECK(shard_mode_, "shard_install outside shard mode");
  TCFPN_CHECK(b.group < cfg_.groups,
              "shard_install: group ", b.group, " out of range");
  TCFPN_CHECK(!shard_owned_[b.group],
              "shard_install of owned group ", b.group,
              " — the exchange is misrouted");
  TCFPN_CHECK(b.step == stats_.steps,
              "shard_install: batch for step ", b.step,
              " installed at step ", stats_.steps, " — replicas diverged");
  GroupCtx& ctx = step_ctx_[b.group];

  groups_[b.group].step_ops = b.step_ops;
  ctx.delta = b.delta;
  ctx.port.load_image(b.port);
  ctx.refs = b.refs;
  if (b.net_refs != 0) {
    TCFPN_CHECK(b.net_loads.size() == ctx.net_loads.size(),
                "shard batch net_loads size mismatch");
    ctx.net_loads = b.net_loads;
  }
  ctx.net_refs = b.net_refs;
  ctx.net_max_dist = b.net_max_dist;
  ctx.prefix_reqs.clear();
  ctx.prefix_reqs.reserve(b.prefix_reqs.size());
  for (const ShardGroupBatch::Prefix& p : b.prefix_reqs) {
    ctx.prefix_reqs.push_back(PrefixRequest{
        p.flow, p.lane, p.rd, static_cast<std::size_t>(p.local)});
  }
  ctx.spawns.clear();
  ctx.spawns.reserve(b.spawns.size());
  for (const ShardGroupBatch::Spawn& s : b.spawns) {
    ctx.spawns.push_back(
        SpawnRequest{s.parent, s.entry, s.fragments, s.broadcast});
  }
  ctx.halted = b.halted;
  ctx.prints = b.prints;
  ctx.events = b.events;
  ctx.prof_bins.clear();
  for (const auto& [k, v] : b.prof_bins) ctx.prof_bins.emplace(k, v);
  ctx.metrics.restore_raw(b.metrics);
  if (!b.error.empty()) {
    ctx.error = std::make_exception_ptr(SimError(b.error));
  }

  for (const FlowState& fs : b.flows) {
    TCFPN_CHECK(fs.id < flows_.size(),
                "shard batch names unknown flow ", fs.id);
    TCFPN_CHECK(fs.home == b.group,
                "shard batch for group ", b.group, " carries flow ", fs.id,
                " homed on group ", fs.home);
    install_flow_state(*flows_[fs.id], fs);
  }
  for (const auto& [a, v] : b.local_writes) {
    locals_[b.group].replay_write(a, v);
  }
  locals_[b.group].set_counters(b.local_reads, b.local_write_count,
                                b.local_remote);
}

void Machine::shard_finish_step() {
  TCFPN_CHECK(shard_mode_, "shard_finish_step outside shard mode");
  try {
    // The exact tail of step_synchronous(): merge in group order (lowest
    // faulting group wins, same as one process), then slot term + commit.
    merge_group_effects();
    group_work_.assign(cfg_.groups, 0);
    for (GroupId g = 0; g < cfg_.groups; ++g) {
      group_work_[g] = groups_[g].step_ops;
    }
    finish_step(synchronous_slot_term(), group_work_);
  } catch (const SimError& e) {
    // Same post-mortem hook as Machine::step().
    if (observer_ != nullptr) observer_->on_fault(e.what(), *this);
    throw;
  }
}

}  // namespace tcfpn::machine
