#include "machine/state.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::machine {

namespace {

// FNV-1a over a stream of 64-bit values, folded byte-wise so the hash does
// not depend on host struct layout.
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::uint64_t config_fingerprint(const MachineConfig& cfg) {
  Fnv1a fp;
  fp.mix(cfg.groups);
  fp.mix(cfg.slots_per_group);
  fp.mix(cfg.shared_words);
  fp.mix(cfg.local_words);
  fp.mix(static_cast<std::uint64_t>(cfg.crcw));
  fp.mix(static_cast<std::uint64_t>(cfg.topology));
  fp.mix(cfg.net.link_bandwidth);
  fp.mix(cfg.net.ejection_bandwidth);
  fp.mix(cfg.net.wire_latency);
  fp.mix(cfg.detailed_network ? 1 : 0);
  fp.mix(cfg.local_latency);
  fp.mix(static_cast<std::uint64_t>(cfg.variant));
  fp.mix(cfg.balanced_bound);
  fp.mix(cfg.pipeline_fill);
  fp.mix(cfg.spawn_cost);
  fp.mix(cfg.join_cost);
  fp.mix(cfg.registers_per_context);
  fp.mix(cfg.register_cache_words);
  fp.mix(static_cast<std::uint64_t>(cfg.operand_storage));
  fp.mix(cfg.register_spill_penalty);
  fp.mix(cfg.functional_units);
  // host_threads, shards, effect_channels, merge_skip, record_trace,
  // sample_every, profile_host, profile: observation/engine knobs, not
  // semantics — excluded so checkpoints move across them.
  //
  // The heterogeneous shape is semantics: per-group T_p changes buffer
  // capacity, clocks and fills change every step's cost, NUMA rows change
  // the memory term. Mixed only when present so every uniform config keeps
  // its pre-shape fingerprint (existing TCFCKPT images stay loadable).
  if (cfg.is_heterogeneous()) {
    fp.mix(0x5348415045ull);  // "SHAPE" tag: uniform vs [default specs]
    fp.mix(cfg.group_specs.size());
    for (const GroupSpec& s : cfg.group_specs) {
      fp.mix(s.slots);
      fp.mix(s.clock_num);
      fp.mix(s.clock_den);
      fp.mix(s.pipeline_fill);
      fp.mix(s.numa_row.size());
      for (std::uint32_t d : s.numa_row) fp.mix(d);
    }
  }
  return fp.h;
}

std::uint64_t program_fingerprint(const isa::Program& program) {
  Fnv1a fp;
  fp.mix(program.code.size());
  for (const auto& instr : program.code) fp.mix(instr.encode());
  fp.mix(program.data.size());
  for (const auto& init : program.data) {
    fp.mix(init.addr);
    fp.mix(init.words.size());
    for (Word w : init.words) fp.mix(static_cast<std::uint64_t>(w));
  }
  return fp.h;
}

FlowState capture_flow_state(const TcfDescriptor& f, bool require_boundary) {
  if (require_boundary) {
    TCFPN_CHECK(f.step_writes.empty(),
                "flow ", f.id,
                " has uncommitted step writes: checkpoint requires a step "
                "boundary");
  }
  FlowState fs;
  fs.id = f.id;
  fs.parent = f.parent;
  fs.home = f.home;
  fs.pc = f.pc;
  fs.mode = f.mode;
  fs.thickness = f.thickness;
  fs.numa_block = f.numa_block;
  fs.status = f.status;
  fs.live_children = f.live_children;
  fs.next_unexecuted = f.next_unexecuted;
  fs.lane_regs = f.lane_regs.to_aos();
  fs.call_stack.assign(f.call_stack.begin(), f.call_stack.end());
  fs.instr_writes = f.instr_writes.items();
  std::sort(fs.instr_writes.begin(), fs.instr_writes.end());
  fs.multiop_blocked = f.multiop_blocked;
  fs.evicted_once = f.evicted_once;
  return fs;
}

void install_flow_state(TcfDescriptor& f, const FlowState& fs) {
  f.id = fs.id;
  f.parent = fs.parent;
  f.home = fs.home;
  f.pc = fs.pc;
  f.mode = fs.mode;
  f.thickness = fs.thickness;
  f.numa_block = fs.numa_block;
  f.status = fs.status;
  f.live_children = fs.live_children;
  f.next_unexecuted = fs.next_unexecuted;
  f.lane_regs.from_aos(fs.lane_regs);
  f.call_stack.assign(fs.call_stack.begin(), fs.call_stack.end());
  f.step_writes.clear();
  f.instr_writes.clear();
  for (const auto& [a, v] : fs.instr_writes) f.instr_writes.put(a, v);
  f.multiop_blocked = fs.multiop_blocked;
  f.evicted_once = fs.evicted_once;
}

MachineState Machine::save_state() const {
  MachineState s;
  s.config_fingerprint = config_fingerprint(cfg_);
  s.program_fingerprint = program_fingerprint(program_);
  s.stats = stats_;

  s.flows.reserve(flows_.size());
  for (const auto& fp : flows_) {
    s.flows.push_back(capture_flow_state(*fp, /*require_boundary=*/true));
  }

  s.groups.reserve(groups_.size());
  for (const auto& g : groups_) {
    s.groups.push_back(GroupQueueState{g.resident, g.overflow});
  }
  s.pending_spawns = pending_spawns_;
  s.dead_groups = dead_;

  s.shared = shared_.save_state();
  s.locals.reserve(locals_.size());
  for (const auto& lm : locals_) s.locals.push_back(lm.save_state());
  s.net = net_->save_state();
  s.metrics = metrics_.save_raw();
  s.debug_out = debug_out_;
  s.step_samples = step_samples_;
  s.profile = profile_;
  return s;
}

void Machine::restore_state(const MachineState& s) {
  TCFPN_CHECK(s.config_fingerprint == config_fingerprint(cfg_),
              "checkpoint was taken under a different machine configuration");
  TCFPN_CHECK(s.program_fingerprint == program_fingerprint(program_),
              "checkpoint was taken with a different program loaded");
  TCFPN_CHECK(s.groups.size() == groups_.size(),
              "checkpoint group count mismatch");
  TCFPN_CHECK(s.locals.size() == locals_.size(),
              "checkpoint local-memory count mismatch");

  stats_ = s.stats;

  flows_.clear();
  flows_.reserve(s.flows.size());
  for (const FlowState& fs : s.flows) {
    TCFPN_CHECK(fs.id == flows_.size(),
                "checkpoint flow ids must be dense, got ", fs.id, " at index ",
                flows_.size());
    auto f = std::make_unique<TcfDescriptor>();
    install_flow_state(*f, fs);
    flows_.push_back(std::move(f));
  }

  for (GroupId g = 0; g < groups_.size(); ++g) {
    groups_[g].resident = s.groups[g].resident;
    groups_[g].overflow = s.groups[g].overflow;
    groups_[g].step_ops = 0;
  }
  pending_spawns_ = s.pending_spawns;
  if (s.dead_groups.empty()) {
    dead_.assign(cfg_.groups, 0);  // pre-resilience image: all groups alive
  } else {
    TCFPN_CHECK(s.dead_groups.size() == cfg_.groups,
                "checkpoint dead-group vector size mismatch");
    dead_ = s.dead_groups;
  }
  recompute_step_fill();  // dead-group set may differ from pre-restore

  // Mid-step staging is never part of a checkpoint; clear it unconditionally
  // since a restore may land on a machine whose step a fault aborted.
  pending_prefixes_.clear();
  step_refs_.clear();
  std::fill(net_loads_.begin(), net_loads_.end(), 0);
  net_refs_ = 0;
  net_max_dist_ = 0;
  step_bins_.clear();
  for (auto& ctx : step_ctx_) ctx.reset();

  shared_.restore_state(s.shared);
  for (GroupId g = 0; g < locals_.size(); ++g) {
    locals_[g].restore_state(s.locals[g]);
  }
  net_->restore_state(s.net);
  metrics_.restore_raw(s.metrics);
  debug_out_ = s.debug_out;
  step_samples_ = s.step_samples;
  profile_ = s.profile;
}

}  // namespace tcfpn::machine
