// Complete machine state at a step boundary (the checkpoint layer of the
// flight recorder, DESIGN.md §8).
//
// A MachineState is everything the simulator needs to resume a run
// bit-identically: flow descriptors, scheduler queues, the three memory
// state images, network counters, raw metrics, cumulative stats, debug
// output and the step-sample series. Host-side artefacts — the schedule
// trace, host profiling spans and the router's per-packet latency Samples —
// are summaries of how a run *was produced*, not simulated state, and are
// deliberately excluded; re-stepping from a checkpoint regenerates simulated
// state exactly but not those summaries. That boundary is the replay
// contract.
//
// Checkpoints are guarded by two FNV-1a fingerprints: one over the machine
// configuration (excluding host_threads and the instrumentation knobs, so a
// checkpoint taken at --host-threads 8 restores into a 1-thread machine and
// vice versa) and one over the loaded program.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "machine/machine.hpp"

namespace tcfpn::machine {

/// One flow's descriptor, flattened for the checkpoint. `step_writes` is
/// empty at every step boundary (stores commit at the barrier) and is not
/// saved; `instr_writes` and `next_unexecuted` persist — the balanced
/// variant interrupts flows mid-instruction across step boundaries.
struct FlowState {
  FlowId id = kNoFlow;
  FlowId parent = kNoFlow;
  GroupId home = 0;
  std::uint64_t pc = 0;
  FlowMode mode = FlowMode::kPram;
  Word thickness = 1;
  std::uint32_t numa_block = 1;
  FlowStatus status = FlowStatus::kReady;
  std::uint32_t live_children = 0;
  LaneId next_unexecuted = 0;
  std::vector<LaneRegs> lane_regs;
  std::vector<std::uint64_t> call_stack;
  /// instr_writes sorted by address: a canonical order keeps the serialized
  /// image byte-stable across unordered_map iteration orders.
  std::vector<std::pair<Addr, Word>> instr_writes;
  bool multiop_blocked = false;
  bool evicted_once = false;
};

/// One group's TCF storage buffer and overflow list (FIFO order preserved).
struct GroupQueueState {
  std::vector<FlowId> resident;
  std::vector<FlowId> overflow;
};

struct MachineState {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t program_fingerprint = 0;

  MachineStats stats;
  std::vector<FlowState> flows;          ///< indexed by flow id
  std::vector<GroupQueueState> groups;   ///< indexed by group id
  std::vector<FlowId> pending_spawns;    ///< spawned, not yet admitted
  /// 1 = group retired via Machine::retire_group (degraded mode). Empty
  /// means all groups alive — images from before the resilience layer
  /// restore unchanged.
  std::vector<std::uint8_t> dead_groups;
  mem::SharedMemoryState shared;
  std::vector<mem::LocalMemoryState> locals;  ///< indexed by group id
  net::NetworkState net;
  metrics::RawMetrics metrics;
  std::vector<Word> debug_out;
  std::vector<StepSample> step_samples;
  /// Attribution profile (cfg.profile, src/prof). Saved and restored so a
  /// tcfdbg rollback-and-replay reproduces the exact profile a straight-line
  /// run would have produced — the replay-consistency contract the profiler
  /// tests assert. Empty when profiling is off (or for pre-profiler images).
  prof::Profile profile;
};

/// Flattens one flow descriptor into a FlowState. `require_boundary`
/// asserts the store-forwarding buffer is empty — the checkpoint contract.
/// The sharded batch path (src/shard) captures post-phase, where
/// step_writes is legitimately non-empty; it stays owner-local (only the
/// executing replica ever forwards from it) and the barrier housekeeping
/// clears it on every replica, so it is never part of a FlowState.
FlowState capture_flow_state(const TcfDescriptor& f, bool require_boundary);

/// Installs a FlowState into an existing descriptor. Clears step_writes —
/// legal both on a checkpoint restore and on a pre-merge batch install
/// (the receiving replica never executed the flow this step).
void install_flow_state(TcfDescriptor& f, const FlowState& fs);

/// FNV-1a fingerprint of the semantically relevant configuration fields.
/// host_threads, record_trace, sample_every and profile_host are excluded:
/// they change how a run is *observed*, never what it computes, so
/// checkpoints stay portable across host thread counts and telemetry knobs.
std::uint64_t config_fingerprint(const MachineConfig& cfg);

/// FNV-1a fingerprint over the program's instruction encodings and data
/// initialisers (labels are assembler bookkeeping, not semantics).
std::uint64_t program_fingerprint(const isa::Program& program);

}  // namespace tcfpn::machine
