// The extended PRAM-NUMA machine simulator.
//
// Implements Section 3 of the paper: P groups of T_p TCF processors, a
// word-wise shared memory behind a distance-aware network, per-group local
// memories, a TCF storage buffer per group, and the six execution variants
// of Section 3.2 as scheduling disciplines over the same substrate.
//
// Execution model (DESIGN.md §4):
//  - step-synchronous variants advance in machine steps; shared-memory
//    writes commit at step boundaries; a flow is sequentially consistent
//    with itself via store forwarding (flow.hpp);
//  - the multi-instruction (XMT-style) variant runs flows from creation to
//    termination with immediate memory semantics and charges explicit
//    spawn/join barrier costs;
//  - cycle accounting per step: pipeline fill F plus the variant's slot
//    term, extended by the memory term (serialisation at the hottest module
//    vs wire distance — or a measured drain of the detailed router), so a
//    step only hides memory latency when it carries enough parallel slack;
//  - host parallelism: with cfg.host_threads > 1 the per-group phase of each
//    step fans out over a persistent worker pool; every group's effects are
//    buffered (GroupCtx) and merged at the step barrier in group order, so
//    cycle counts, MachineStats and memory images are bit-identical to the
//    sequential engine (the determinism differential test asserts this).
//
// The instruction semantics (src/isa) are interpreted per lane; control
// instructions execute once per flow — that asymmetry is the TCF model's
// core economy and what the Table 1 bench measures.
#pragma once

#include <chrono>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/effect_channel.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"
#include "machine/config.hpp"
#include "machine/flow.hpp"
#include "mem/local_memory.hpp"
#include "mem/shared_memory.hpp"
#include "net/network.hpp"
#include "prof/profile.hpp"

namespace tcfpn::machine {

struct MachineStats {
  Cycle cycles = 0;
  StepId steps = 0;
  std::uint64_t tcf_instructions = 0;   ///< instruction activations completed
  std::uint64_t operations = 0;         ///< lane-level operations executed
  std::uint64_t instruction_fetches = 0;
  std::uint64_t spawns = 0;
  std::uint64_t joins = 0;
  std::uint64_t busy_slots = 0;   ///< group-cycles spent executing operations
  std::uint64_t idle_slots = 0;   ///< group-cycles idle inside steps
  Cycle memory_wait_cycles = 0;   ///< step extension caused by the memory term
  Cycle task_switch_cycles = 0;   ///< explicit suspend/resume + buffer spills
  Cycle branch_cost_cycles = 0;   ///< SPAWN register-copy charges

  /// Fraction of in-step group capacity that did useful operations.
  double utilization() const {
    const double total = static_cast<double>(busy_slots + idle_slots);
    return total > 0 ? static_cast<double>(busy_slots) / total : 0.0;
  }

  /// Every field is an integer counter, so defaulted equality is exact —
  /// the checkpoint round-trip tests compare restored stats this way.
  bool operator==(const MachineStats&) const = default;
};

struct RunResult {
  bool completed = false;  ///< every flow halted
  Cycle cycles = 0;
  StepId steps = 0;
};

class Machine;
struct MachineState;
struct ShardGroupBatch;

/// Step-granular events for the flight-recorder layer (src/debug). Only
/// emitted while an observer is attached, so the hot path stays free of
/// journal work by default.
enum class DebugEventKind : std::uint8_t {
  kFlowCreated,       ///< a = thickness, b = parent flow (-1 for roots)
  kFlowHalted,
  kThicknessChanged,  ///< a = old thickness, b = new thickness
  kSpawn,             ///< a = spawned thickness, b = fragment count
  kJoin,              ///< a = live children at the JOINALL
  kSuspend,
  kResume,
  kEvict,
  kPrint,             ///< a = printed value
  kStepCommitted,     ///< a = cumulative cycles after the step
  kFault,             ///< a = faulting address when parsed, else 0
  // Resilience events (src/resil, DESIGN.md §9). Appended so recorded
  // tapes from earlier versions keep their kind encodings.
  kFaultInjected,     ///< a = injected fault kind, b = magnitude/address
  kRetry,             ///< a = retry attempt, b = backoff cycles charged
  kRollback,          ///< a = steps lost, b = checkpoint step restored
  kGroupRetired,      ///< a = remapped thickness, b = flows rehomed
  // Sharded-execution supervision events (src/shard, DESIGN.md §14).
  // Appended so recorded tapes from earlier versions keep their encodings.
  kShardFault,        ///< a = shard id, b = failure class (shard::Failure)
  kShardRestart,      ///< a = shard id, b = checkpoint step restored into
  kShardRetired,      ///< a = shard id, b = groups retired with it
};

const char* to_string(DebugEventKind k);

/// One recorded event. `step` is the index of the machine step during which
/// the event occurred (== MachineStats::steps before that step commits);
/// the meaning of `a`/`b` depends on `kind` (see DebugEventKind).
struct DebugEvent {
  DebugEventKind kind = DebugEventKind::kStepCommitted;
  StepId step = 0;
  FlowId flow = kNoFlow;
  GroupId group = 0;
  Word a = 0;
  Word b = 0;

  bool operator==(const DebugEvent&) const = default;
};

/// Observer interface implemented by debug::FlightRecorder. Events produced
/// during the per-group phase are buffered in the group's effect context and
/// forwarded at the step barrier in group order — the same determinism
/// contract as metrics — so an observer sees the exact same sequence for
/// every cfg.host_threads value. All callbacks run on the stepping thread.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_event(const DebugEvent& ev) = 0;
  /// Called after a step fully committed (housekeeping done, stats advanced).
  virtual void on_step(Machine& m) = 0;
  /// Called when a SimError is about to propagate out of Machine::step().
  /// The machine's mid-step state is in general not consistent afterwards;
  /// only restore_state() (or read-only inspection for a post-mortem) is
  /// legal from then on.
  virtual void on_fault(const std::string& message, Machine& m) = 0;
};

/// One point of the optional per-step time series (cfg.sample_every): the
/// cumulative MachineStats counters as they stood after sampled steps.
struct StepSample {
  StepId step = 0;
  Cycle cycles = 0;
  std::uint64_t operations = 0;
  std::uint64_t busy_slots = 0;
  std::uint64_t idle_slots = 0;
  std::uint64_t live_flows = 0;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  // ----- program & flow setup -----
  void load(const isa::Program& program);
  const isa::Program& program() const { return program_; }

  /// Creates a root flow at the program entry. Returns its id.
  FlowId boot(Word thickness = 1);
  /// Creates a root flow at an explicit pc on an explicit group.
  FlowId boot_at(std::size_t pc, Word thickness, GroupId home);

  // ----- execution -----
  /// Runs machine steps until every flow halts or `max_steps` elapse.
  RunResult run(std::uint64_t max_steps = 10'000'000);
  /// Executes one machine step. Returns false when no flow can progress.
  bool step();
  bool done() const;

  // ----- task management (used by src/sched) -----
  /// Suspends a ready flow; returns (and accounts) the switch-out cost.
  Cycle suspend_flow(FlowId id);
  /// Makes a suspended flow ready again; returns the switch-in cost. If the
  /// flow is not resident in its group's TCF buffer and the buffer is full,
  /// a suspended resident flow is evicted (its swap-out cost included).
  Cycle resume_flow(FlowId id);

  /// Forces a flow out of its group's TCF buffer into the overflow list;
  /// returns the swap-out cost. The next promotion pays the swap-in.
  Cycle evict_flow(FlowId id);
  /// Adds external cycles (scheduler decisions) to the run clock.
  void charge(Cycle c);

  /// Placement policy for spawned flows; default = least loaded group.
  using AllocationHook = std::function<GroupId(const TcfDescriptor& child)>;
  void set_allocation_hook(AllocationHook hook) { alloc_ = std::move(hook); }

  /// OS-level automatic splitting of overly thick flows (Section 3.3: "the
  /// OS can split such flows automatically"). When set, every SPAWN's
  /// thickness is passed to the hook, which returns the fragment
  /// thicknesses to create instead (return {thickness} to keep one flow).
  /// Each fragment flow receives its base lane offset in register r15 —
  /// the fragment convention used by sched:: and the fragment kernels —
  /// and all fragments are children of the spawning flow (JOINALL waits
  /// for every fragment). The hook runs at SPAWN execution time — under
  /// host_threads > 1 possibly on a worker thread — so it must be a pure
  /// function of the thickness (no reads of mutable machine state).
  using SpawnSplitter = std::function<std::vector<Word>(Word thickness)>;
  void set_spawn_splitter(SpawnSplitter hook) { splitter_ = std::move(hook); }

  // ----- accessors -----
  const MachineConfig& config() const { return cfg_; }
  mem::SharedMemory& shared() { return shared_; }
  const mem::SharedMemory& shared() const { return shared_; }
  mem::LocalMemory& local(GroupId g);
  net::Network& network() { return *net_; }
  const MachineStats& stats() const { return stats_; }
  const ScheduleTrace& trace() const { return trace_; }
  const std::vector<Word>& debug_output() const { return debug_out_; }

  /// The machine's metrics registry ("net/...", "mem/...", "sched/...",
  /// "machine/..." instruments). Per-group counters accumulate in each
  /// group's effect buffer during the parallel phase and merge here at the
  /// step barrier in group order, so a snapshot is bit-identical for every
  /// cfg.host_threads value.
  metrics::MetricsRegistry& metrics() { return metrics_; }
  const metrics::MetricsRegistry& metrics() const { return metrics_; }
  metrics::MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }

  /// Wall-clock phase timings recorded when cfg.profile_host is set.
  const std::vector<HostSpan>& host_spans() const { return host_spans_; }
  /// True when host_span() hit the kMaxHostSpans cap and dropped spans —
  /// exported so --trace-json never looks complete when it is not.
  bool host_spans_truncated() const { return host_spans_truncated_; }
  /// The attribution profile accumulated while cfg.profile is set. Conserves
  /// cycles (attributed() == stats().cycles) when profiling was on from
  /// machine construction.
  const prof::Profile& profile() const { return profile_; }
  /// Per-step time series recorded when cfg.sample_every > 0.
  const std::vector<StepSample>& step_samples() const { return step_samples_; }

  // ----- flight recorder / time travel (src/debug, DESIGN.md §8) -----
  /// Attaches (or detaches, with nullptr) the step observer. Not owned.
  void set_observer(StepObserver* obs) { observer_ = obs; }
  StepObserver* observer() const { return observer_; }

  /// Captures the complete simulated state at the current step boundary
  /// (flows, scheduler queues, memories, network counters, raw metrics,
  /// stats, debug output, step samples). Host-side artefacts — the schedule
  /// trace and host profiling spans — are summaries, not simulated state,
  /// and are excluded: that is the replay contract's documented boundary.
  /// Defined in state.cpp.
  MachineState save_state() const;
  /// Restores a save_state() image. The machine must have been constructed
  /// with an equivalent config and loaded with the same program (checked via
  /// fingerprints); host_threads and instrumentation knobs may differ.
  /// Legal at any time, including after a fault aborted a step mid-way.
  void restore_state(const MachineState& s);

  /// Sets a lane register of a flow before running (front-end/test setup).
  void poke_reg(FlowId id, LaneId lane, std::uint8_t reg, Word value);
  /// Reads a lane register of a flow (result checking).
  Word peek_reg(FlowId id, LaneId lane, std::uint8_t reg) const;

  const TcfDescriptor* find_flow(FlowId id) const;
  std::size_t live_flows() const;  ///< flows not yet halted
  /// Flows currently resident in group g's TCF storage buffer.
  std::size_t resident_flows(GroupId g) const;

  // ----- graceful degradation (src/resil, DESIGN.md §9) -----
  /// Permanently retires group `g` after a fatal injected fault: every flow
  /// homed there (resident, overflow, pending spawn) is rehomed onto the
  /// least-loaded surviving group — the Section 3.1 thickness
  /// redistribution — paying the non-resident task-switch cost per moved
  /// flow, and the group stops contributing capacity to the cost model.
  /// Returns the total thickness remapped. At least one group must survive.
  Word retire_group(GroupId g);
  bool group_alive(GroupId g) const {
    return g < dead_.size() && dead_[g] == 0;
  }
  std::uint32_t alive_groups() const;

  /// The pipeline fill charged per machine step: cfg().pipeline_fill on the
  /// uniform machine, else the max of group_fill(g) over alive groups
  /// (lockstep drains the deepest pipe). Recomputed when a group retires or
  /// a checkpoint is restored.
  std::uint32_t step_fill() const { return step_fill_; }

  /// Sum of thickness of the ready flows homed on group g (resident,
  /// overflow and pending spawns) — the load the placement-aware LPT
  /// scheduler divides by per-group throughput.
  Word resident_thickness(GroupId g) const;

  // ----- sharded stepping (src/shard, DESIGN.md §14) -----
  //
  // Multi-process execution keeps a full deterministic machine replica in
  // every process; only the per-group phase is partitioned. Each replica
  // executes the groups it *owns*, exports one ShardGroupBatch per owned
  // group (the sealed GroupCtx plus the post-phase flow states and
  // local-memory deltas), installs every other group's batch, and then runs
  // the identical barrier merge — so all replicas hold bit-identical state
  // at every step boundary, and memory/PRINT/metrics match --shards 1.
  //
  // Step protocol (all replicas in lockstep):
  //   if (!shard_begin_step()) -> run over (replicated decision)
  //   for each owned g: batch = shard_extract(g)   // exchange batches
  //   for each non-owned g: shard_install(batch_g)
  //   shard_finish_step()                          // merge + cost + commit
  //
  // shard_finish_step throws SimError exactly where a single-process step()
  // would (lowest faulting group wins); the supervisor commits first and
  // only releases batches to workers on success, so workers never execute a
  // faulting merge. Defined in shard_step.cpp.

  /// Enters (or with an empty vector leaves) sharded stepping: `owned[g]`
  /// != 0 marks groups this replica executes. Requires a step-synchronous
  /// variant. Also forces debug-event capture into the group contexts even
  /// without an observer — the owning replica may not be the one journaling.
  void set_shard_mode(std::vector<std::uint8_t> owned);
  bool shard_mode() const { return shard_mode_; }
  /// Promotes overflow, resets every group context and executes the owned
  /// groups' share of the step. Returns false (and executes nothing) when no
  /// flow anywhere is ready — the replicated end-of-run decision.
  bool shard_begin_step();
  /// Exports the sealed effect batch of owned group `g` (legal after
  /// shard_begin_step returned true, before shard_finish_step).
  ShardGroupBatch shard_extract(GroupId g) const;
  /// Installs a batch received for a non-owned group: materialises the
  /// group context, overwrites the group's flow states with the owner's
  /// post-phase images and replays its local-memory delta.
  void shard_install(const ShardGroupBatch& b);
  /// Barrier half of the sharded step: merges every group context in group
  /// order, computes the variant slot term and commits the step — the exact
  /// tail of step_synchronous().
  void shard_finish_step();

 private:
  struct PendingPrefix {
    FlowId flow;
    LaneId lane;
    std::uint8_t rd;
    std::size_t ticket;
  };
  struct GroupState {
    std::vector<FlowId> resident;  ///< the TCF storage buffer (FIFO order)
    std::vector<FlowId> overflow;  ///< ready flows waiting for a buffer slot
    std::uint64_t step_ops = 0;    ///< operations executed this step
  };

  /// A deferred SPAWN: the child flows are created (and placed) at the step
  /// barrier, in group order, so flow ids and allocation decisions do not
  /// depend on how host threads interleave the per-group phase.
  struct SpawnRequest {
    FlowId parent;
    std::size_t entry;
    std::vector<Word> fragments;  ///< thickness per child (splitter applied)
    LaneRegs broadcast;           ///< parent lane-0 registers at spawn time
  };

  /// A multiprefix issued this step; `local` indexes into the group port's
  /// drain() ticket mapping.
  struct PrefixRequest {
    FlowId flow;
    LaneId lane;
    std::uint8_t rd;
    std::size_t local;
  };

  /// Raw pointers to the per-lane-operation counters of one registry, bound
  /// once at construction so the hot path never pays a path lookup.
  struct LaneCounters {
    metrics::Counter* shared_reads = nullptr;
    metrics::Counter* shared_writes = nullptr;
    metrics::Counter* local_reads = nullptr;
    metrics::Counter* local_writes = nullptr;
    metrics::Counter* multiop_contributions = nullptr;
    metrics::Counter* prefix_contributions = nullptr;
    metrics::Counter* store_forwards = nullptr;
  };

  /// Registers the per-lane-operation counters in `reg` and caches their
  /// addresses in `lc` (registry entries are heap-allocated, so the pointers
  /// survive registry moves).
  static void bind_lane_counters(metrics::MetricsRegistry& reg,
                                 LaneCounters& lc);

  /// Barrier-side per-step instruments, bound once at construction so
  /// finish_step and memory_term never pay a registry path lookup.
  struct StepCounters {
    metrics::Counter* pipeline_fill_cycles = nullptr;
    metrics::Counter* slot_term_cycles = nullptr;
    metrics::Counter* memory_term_cycles = nullptr;
    metrics::Counter* memory_wait_cycles = nullptr;
    Accumulator* slot_occupancy = nullptr;
    Accumulator* overflow_depth = nullptr;
    Accumulator* hot_module_load = nullptr;
    Accumulator* wire_distance = nullptr;
  };

  /// Per-group effect buffer for one machine step. During the per-group
  /// phase a group's execution touches only its own flows, its local memory
  /// and this context; everything cross-group (stats, shared-memory staging,
  /// spawns, join notifications, trace, debug prints, memory-term refs,
  /// metric counters) accumulates here and is merged at the step barrier in
  /// group order — the determinism contract of the parallel stepping engine.
  struct GroupCtx {
    mem::MemoryPort port;
    MachineStats delta;  ///< counter deltas (cycles/steps stay untouched)
    std::vector<std::pair<GroupId, std::uint32_t>> refs;  ///< (src, module)
    /// Analytic network-term aggregates, maintained in the parallel phase
    /// when cfg.detailed_network is off (the ordered `refs` log is then not
    /// needed): per-module reference counts, reference total, and the
    /// maximum source→module wire distance seen this step.
    std::vector<std::uint64_t> net_loads;
    std::uint64_t net_refs = 0;
    std::uint32_t net_max_dist = 0;
    std::vector<PrefixRequest> prefix_reqs;
    std::vector<SpawnRequest> spawns;
    std::vector<FlowId> halted;  ///< flows halted this step (join notices)
    std::vector<Word> prints;
    std::vector<TraceSpan> trace;
    std::exception_ptr error;
    metrics::MetricsRegistry metrics;  ///< merged at the barrier, group order
    LaneCounters lanes;                ///< bound into `metrics`
    std::vector<DebugEvent> events;    ///< forwarded at the barrier, group order
    /// Attribution bins for the profiler (cfg.profile): cycles of slot-term
    /// work charged to (group, tcf, pc, term) during the parallel phase;
    /// merged at the barrier in group order like everything else here. A
    /// std::map so the per-group bin order is already canonical.
    std::map<prof::Key, Cycle> prof_bins;

    void reset();
  };

  TcfDescriptor& flow(FlowId id);
  TcfDescriptor& make_flow(std::size_t pc, Word thickness, GroupId home,
                           FlowId parent);
  GroupId pick_group(const TcfDescriptor& child) const;
  GroupId least_loaded_alive() const;
  std::uint64_t group_load(GroupId g) const;
  void recompute_step_fill();
  void admit_pending_spawns();
  void promote_overflow(GroupId g);
  void on_flow_halted(TcfDescriptor& f);
  /// Step-synchronous halt: marks the flow halted and records a join notice
  /// in its group context; the parent's live-children counter is decremented
  /// at the step barrier (deterministic under host parallelism).
  void halt_in_step(TcfDescriptor& f);

  // step-synchronous execution
  bool step_synchronous();
  /// The variant slot term over the merged per-group work (the max over
  /// alive groups of the heterogeneous-clock ceiling division). Shared by
  /// step_synchronous and shard_finish_step so the cost model cannot drift.
  Cycle synchronous_slot_term() const;
  /// Runs one group's share of the current step into step_ctx_[g].
  void execute_group(GroupId g, Cycle step_base);
  /// Merges every group's effect buffer, in group order, into the machine.
  void merge_group_effects();
  /// First merge pass for one group: observer events, stats deltas, metric
  /// counters, network aggregates, port drain + prefix ticket mapping,
  /// prints and trace. Touches no flow state, so the stepping thread may run
  /// it for group g while higher groups are still executing (the streaming
  /// effect-channel engine relies on this).
  void stream_merge_group(GroupId g);
  /// Second merge pass for one group, after every group finished: join
  /// notices (decrement other groups' parents) and spawn creation/placement
  /// (reads group loads, grows flows_).
  void deferred_merge_group(GroupId g);
  /// True when a group's step produced no cross-group effects — the merge
  /// fast path then reduces to six integer adds (the stats deltas).
  bool group_quiet(const GroupCtx& ctx) const;
  /// Records one shared-memory reference for the network term: ordered log
  /// under cfg.detailed_network, per-module aggregates otherwise.
  void note_ref(GroupCtx& ctx, GroupId src, std::uint32_t module);
  /// Executes up to `op_quota` operation slots of flow f (a full instruction
  /// when quota covers it). Returns ops consumed.
  std::uint64_t run_flow_slice(TcfDescriptor& f, std::uint64_t op_quota);
  std::uint64_t run_numa_block(TcfDescriptor& f);
  const isa::Instr& fetch(TcfDescriptor& f);
  void exec_data_lane(TcfDescriptor& f, const isa::Instr& instr, LaneId lane);
  /// Executes a control instruction flow-wise; returns false if the flow
  /// left the ready state (halt / join wait / thickness 0).
  bool exec_control(TcfDescriptor& f, const isa::Instr& instr);
  void complete_instruction(TcfDescriptor& f, const isa::Instr& instr);
  Word read_operand_b(const TcfDescriptor& f, const isa::Instr& instr,
                      LaneId lane) const;
  Word alu(const isa::Instr& instr, Word a, Word b) const;
  Addr effective_addr(const TcfDescriptor& f, const isa::Instr& instr,
                      LaneId lane) const;
  Word read_shared(TcfDescriptor& f, Addr a, LaneId lane);
  Cycle operand_penalty(LaneId lane) const;
  /// Closed-form sum of operand_penalty(lane) over [start, start + count):
  /// the vectorized ALU path charges a whole instruction at once.
  Cycle operand_penalty_range(LaneId start, std::uint64_t count) const;
  /// Register-to-register fast path: executes `instr` over lanes
  /// [start, start + count) of `f` as contiguous bank sweeps (SoA, inner
  /// loop vectorizes). Returns false when the opcode needs the scalar
  /// per-lane path (memory traffic, faulting divides).
  bool exec_alu_lanes(TcfDescriptor& f, const isa::Instr& instr,
                      std::uint64_t start, std::uint64_t count);
  void finish_step(Cycle slot_term_max, const std::vector<Cycle>& group_work);
  /// The two components of the step's memory extension: the injected fault
  /// delay consumed this step and the network latency/bandwidth bound. The
  /// step body is max(slot term, fault + bound); keeping the parts separate
  /// lets the profiler itemize kFault vs kNet exactly.
  struct MemTerm {
    Cycle fault = 0;
    Cycle bound = 0;
  };
  MemTerm memory_term();
  /// Profiler barrier work for one step-synchronous step: apportions the
  /// slot term over the merged bins (idle remainder explicit), adds the
  /// fill/net/fault machine cells and the step record. `body` is the step
  /// body actually charged (max(slot, fault + bound)).
  void profile_step(Cycle slot_term_max, MemTerm mt, Cycle body,
                    const std::vector<Cycle>& group_work);

  // multi-instruction (XMT) execution
  bool step_multi_instruction();
  std::uint64_t run_lane_to_event(TcfDescriptor& f, LaneId lane,
                                  std::size_t& lane_pc, bool& halted,
                                  bool& wants_join);

  MachineConfig cfg_;
  isa::Program program_;
  mem::SharedMemory shared_;
  std::vector<mem::LocalMemory> locals_;
  std::unique_ptr<net::Network> net_;
  AllocationHook alloc_;
  SpawnSplitter splitter_;

  std::vector<std::unique_ptr<TcfDescriptor>> flows_;
  std::vector<GroupState> groups_;
  std::vector<std::uint8_t> dead_;  ///< 1 = group retired (degraded mode)
  std::uint32_t step_fill_ = 0;     ///< see step_fill(); kept in sync with
                                    ///< dead_ + the heterogeneous shape
  std::vector<FlowId> pending_spawns_;
  std::vector<PendingPrefix> pending_prefixes_;
  std::vector<std::pair<GroupId, std::uint32_t>> step_refs_;  ///< (src, module)

  std::vector<GroupCtx> step_ctx_;  ///< one effect buffer per group
  bool shard_mode_ = false;         ///< sharded stepping active
  std::vector<std::uint8_t> shard_owned_;  ///< groups this replica executes
  /// Per-step local-memory write journals, one per owned group, captured
  /// during shard_begin_step and shipped in the group's batch.
  std::vector<std::vector<std::pair<Addr, Word>>> shard_local_writes_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< nullptr => sequential
  /// One seal channel per group for the streaming engine (effect_channels):
  /// the worker publishes after sealing its GroupCtx; the stepping thread
  /// consumes them in group order while higher groups still execute.
  std::unique_ptr<common::EffectChannel[]> channels_;

  /// dist_cache_[g][m] = topology distance from group g to module-owner
  /// group m % P, precomputed so the per-reference hot path is a table load.
  std::vector<std::vector<std::uint32_t>> dist_cache_;
  /// Merged analytic network aggregates for the current step (memory_term
  /// consumes and clears them).
  std::vector<std::uint64_t> net_loads_;
  std::uint64_t net_refs_ = 0;
  std::uint32_t net_max_dist_ = 0;
  std::vector<Cycle> group_work_;  ///< per-step scratch, reused across steps
  std::uint64_t merge_skips_ = 0;  ///< quiet-group merges taken (plain member,
                                   ///< not a metric, so telemetry is identical
                                   ///< with the fast path on or off)

 public:
  /// Group merges short-circuited by the quiet-group fast path (perf
  /// introspection for tests and benches; not part of the metrics snapshot).
  std::uint64_t merge_skips() const { return merge_skips_; }

 private:

  MachineStats stats_;
  ScheduleTrace trace_;
  std::vector<Word> debug_out_;
  StepObserver* observer_ = nullptr;

  /// Buffers a group-phase event into the group's effect context (no-op
  /// without an observer); forwarded at the step barrier in group order.
  void emit(GroupCtx& ctx, DebugEventKind kind, const TcfDescriptor& f,
            Word a = 0, Word b = 0);
  /// Emits a barrier-side / sequential-path event directly.
  void emit_now(DebugEventKind kind, FlowId flow, GroupId group, Word a = 0,
                Word b = 0);

  // ---- telemetry ----
  /// Microseconds since the first host-profiling observation.
  double host_clock_us();
  /// Appends a HostSpan named `name` covering [start_us, now] (main-thread
  /// only; bounded so pathological runs cannot exhaust memory).
  void host_span(const char* name, double start_us);
  void maybe_sample_step();

  metrics::MetricsRegistry metrics_;
  LaneCounters gm_;  ///< machine-level lane counters (single-threaded paths)
  StepCounters sc_;  ///< barrier-side per-step instruments
  /// Attribution profile (cfg.profile). Group bins stream into step_bins_
  /// at the barrier in group order, finish_step apportions the slot term
  /// over them; direct charges (switch/sched/fill/net/fault/idle) go to
  /// profile_ immediately on the stepping thread.
  prof::Profile profile_;
  std::vector<std::pair<prof::Key, Cycle>> step_bins_;
  std::vector<HostSpan> host_spans_;
  bool host_spans_truncated_ = false;
  std::vector<StepSample> step_samples_;
  std::chrono::steady_clock::time_point host_t0_{};
  bool host_t0_set_ = false;
};

}  // namespace tcfpn::machine
