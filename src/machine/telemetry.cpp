#include "machine/telemetry.hpp"

#include <sstream>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "machine/shapes.hpp"

namespace tcfpn::machine {

namespace {

MetaPairs run_metadata(const Machine& m, const MetaPairs& extra) {
  const MachineConfig& cfg = m.config();
  MetaPairs meta = extra;
  meta.emplace_back("variant", to_string(cfg.variant));
  meta.emplace_back("groups", std::to_string(cfg.groups));
  meta.emplace_back("slots_per_group", std::to_string(cfg.slots_per_group));
  meta.emplace_back("host_threads", std::to_string(cfg.host_threads));
  meta.emplace_back("shards", std::to_string(cfg.shards));
  meta.emplace_back("crcw", mem::to_string(cfg.crcw));
  meta.emplace_back("machine_shape", shape_summary(cfg));
  return meta;
}

}  // namespace

std::string metrics_json_document(const Machine& m, const RunResult& run,
                                  const MetaPairs& extra,
                                  const std::string& shard_json) {
  std::ostringstream os;
  os << "{\n  \"run\": {\n";
  for (const auto& [k, v] : run_metadata(m, extra)) {
    // Metadata values are strings; numbers stay readable and the schema
    // stays uniform for the validator.
    os << "    \"" << metrics::json_escape(k) << "\": \""
       << metrics::json_escape(v) << "\",\n";
  }
  os << "    \"completed\": " << (run.completed ? "true" : "false") << ",\n"
     << "    \"steps\": " << run.steps << ",\n"
     << "    \"cycles\": " << run.cycles << "\n"
     << "  },\n";
  os << "  \"metrics\": " << m.metrics_snapshot().to_json(2);
  if (!shard_json.empty()) {
    os << ",\n  \"shard\": " << shard_json;
  }
  const auto& samples = m.step_samples();
  if (!samples.empty()) {
    os << ",\n  \"samples\": [";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const StepSample& s = samples[i];
      os << (i ? "," : "") << "\n    {\"step\": " << s.step
         << ", \"cycles\": " << s.cycles
         << ", \"operations\": " << s.operations
         << ", \"busy_slots\": " << s.busy_slots
         << ", \"idle_slots\": " << s.idle_slots
         << ", \"live_flows\": " << s.live_flows << "}";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
  return os.str();
}

std::string trace_json_document(const Machine& m, const MetaPairs& extra) {
  return chrome_trace_json(m.trace(), m.host_spans(), run_metadata(m, extra),
                           m.host_spans_truncated());
}

prof::RunInfo profile_run_info(const Machine& m, const RunResult& run,
                               const std::string& program,
                               const MetaPairs& extra) {
  prof::RunInfo info;
  info.program = program;
  info.meta = run_metadata(m, extra);
  info.completed = run.completed;
  info.steps = run.steps;
  info.cycles = m.stats().cycles;
  info.pipeline_fill = m.step_fill();
  return info;
}

std::string profile_json_document(const Machine& m, const RunResult& run,
                                  const std::string& program,
                                  const MetaPairs& extra) {
  return prof::report_json(m.profile(),
                           profile_run_info(m, run, program, extra));
}

}  // namespace tcfpn::machine
