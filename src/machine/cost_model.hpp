// Cost formulas behind Table 1 of the paper.
//
// These give the *analytic* rows (number of TCFs / threads, registers per
// thread, operation-class support) and the cost formulas the machine charges
// for task switches and flow branches. The bench for Table 1 combines these
// with counters *measured* on real executions (instruction fetches, actual
// switch/branch cycles) so the table is reproduced, not asserted.
#pragma once

#include <string>

#include "machine/config.hpp"
#include "machine/flow.hpp"
#include "prof/profile.hpp"

namespace tcfpn::machine {

/// Static, per-variant properties (the yes/no rows of Table 1).
struct VariantTraits {
  bool pram_operation;        ///< lockstep PRAM-style steps available
  bool numa_operation;        ///< NUMA bunching / 1-over-T thickness available
  bool mimd;                  ///< multiple independent control flows
  const char* sequential_via; ///< how sequential sections run
  const char* num_tcfs;       ///< symbolic row "Number of TCFs"
  const char* num_threads;    ///< symbolic row "Number of threads"
  const char* regs_per_thread;///< symbolic row "Registers per thread"
  const char* fetches_per_tcf;///< symbolic row "Fetches per TCF"
};

VariantTraits variant_traits(Variant v);

/// Cycles to switch a flow/task out of (or into) execution.
///
/// Table 1: 0 for the TCF variants while the flow is resident in the TCF
/// storage buffer; O(1) for multi-instruction; O(T_p) for the thread-based
/// variants (all T_p thread contexts must be switched). `group_slots` is
/// the T_p of the group the switch happens on — 0 means the uniform
/// cfg.slots_per_group; heterogeneous shapes pass cfg.group_slots(g).
Cycle task_switch_cost(const MachineConfig& cfg, Word thickness,
                       bool resident_in_buffer,
                       std::uint32_t group_slots = 0);

/// Cycles to branch (split) a flow: the TCF variants copy the flow-level
/// register state into the child, O(R); thread machines branch in O(1).
Cycle flow_branch_cost(const MachineConfig& cfg);

/// Architectural registers available per implicit thread when a flow of the
/// given thickness runs under `cfg` (the R/u + m row: u lanes share the
/// register cache, plus a few flow-level registers).
double registers_per_thread(const MachineConfig& cfg, Word thickness);

/// Which profiler term the operand-storage penalty of Section 3.3 belongs
/// to: local-memory operands are NUMA memory time (prof::Term::kLocal);
/// spills and memory-to-memory traffic are operand overhead
/// (prof::Term::kOperand).
prof::Term operand_penalty_term(OperandStorage s);

}  // namespace tcfpn::machine
