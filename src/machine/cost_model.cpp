#include "machine/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcfpn::machine {

VariantTraits variant_traits(Variant v) {
  switch (v) {
    case Variant::kSingleInstruction:
      return {true, true, true, "NUMA",
              "P×Tp", "u", "R/u + m", "1"};
    case Variant::kBalanced:
      return {true, true, true, "NUMA",
              "P×Tp", "u", "R/u + m", "u/b"};
    case Variant::kMultiInstruction:
      return {false, false, true, "single thr.",
              "P×Tp", "P×Tp", "R", "Tp"};
    case Variant::kSingleOperation:
      return {true, false, true, "single thr.",
              "P×Tp", "P×Tp", "R", "Tp"};
    case Variant::kConfigSingleOperation:
      return {true, true, true, "NUMA",
              "P×Tp", "P×Tp", "R", "Tp"};
    case Variant::kFixedThickness:
      return {false, false, false, "scalar unit",
              "P×Tp", "P×Tp", "R", "Tp"};
  }
  TCFPN_FAULT("unknown variant");
}

Cycle task_switch_cost(const MachineConfig& cfg, Word thickness,
                       bool resident_in_buffer, std::uint32_t group_slots) {
  const Cycle r = cfg.registers_per_context;
  if (group_slots == 0) group_slots = cfg.slots_per_group;
  switch (cfg.variant) {
    case Variant::kSingleInstruction:
    case Variant::kBalanced: {
      if (resident_in_buffer) return 0;  // pointer advance in the TCF buffer
      // Swapping a TCF descriptor: flow-level registers plus whatever slice
      // of the lane-register cache the flow occupied. All factors widen to
      // Cycle (64-bit) before multiplying: T_p, R and cache sizes are 32-bit
      // config fields whose products overflow 32 bits at plausible scales.
      const auto cached_lanes = std::min<Cycle>(
          static_cast<Cycle>(std::max<Word>(thickness, 1)),
          static_cast<Cycle>(cfg.register_cache_words) /
              std::max<Cycle>(r, 1));
      return r + cached_lanes * r;
    }
    case Variant::kMultiInstruction:
      return 1;  // O(1): enqueue/dequeue a run-to-completion work item
    case Variant::kSingleOperation:
    case Variant::kConfigSingleOperation:
    case Variant::kFixedThickness:
      // Thread machines switch all T_p contexts (Table 1: O(T_p)).
      return static_cast<Cycle>(group_slots) * r;
  }
  TCFPN_FAULT("unknown variant");
}

Cycle flow_branch_cost(const MachineConfig& cfg) {
  switch (cfg.variant) {
    case Variant::kSingleInstruction:
    case Variant::kBalanced:
      return cfg.registers_per_context;  // O(R): copy flow-level state
    case Variant::kMultiInstruction:
    case Variant::kSingleOperation:
    case Variant::kConfigSingleOperation:
    case Variant::kFixedThickness:
      return 1;  // O(1): threads have per-thread state already
  }
  TCFPN_FAULT("unknown variant");
}

double registers_per_thread(const MachineConfig& cfg, Word thickness) {
  const double r = cfg.register_cache_words;
  const double m = 4.0;  // flow-level scalars (pc, thickness, mode, spare)
  switch (cfg.variant) {
    case Variant::kSingleInstruction:
    case Variant::kBalanced:
      return r / static_cast<double>(std::max<Word>(thickness, 1)) + m;
    default:
      return cfg.registers_per_context;
  }
}

prof::Term operand_penalty_term(OperandStorage s) {
  return s == OperandStorage::kLocalMemory ? prof::Term::kLocal
                                           : prof::Term::kOperand;
}

}  // namespace tcfpn::machine
