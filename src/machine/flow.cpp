#include "machine/flow.hpp"

namespace tcfpn::machine {

const char* to_string(FlowStatus s) {
  switch (s) {
    case FlowStatus::kReady: return "ready";
    case FlowStatus::kWaitingJoin: return "waiting-join";
    case FlowStatus::kSuspended: return "suspended";
    case FlowStatus::kHalted: return "halted";
  }
  return "?";
}

}  // namespace tcfpn::machine
