// Thick-control-flow descriptors: the contents of the TCF storage buffer.
//
// Section 3.3: "there needs to be a T_p-element storage block, e.g. ring
// buffer or addressable register file that contains the TCF information,
// e.g. thickness and mode as well as a pointer to the next yet not executed
// operation in the case of the balanced variant."
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/instr.hpp"
#include "machine/write_buffer.hpp"

namespace tcfpn::machine {

inline constexpr FlowId kNoFlow = ~FlowId{0};

enum class FlowMode : std::uint8_t {
  kPram,  ///< thickness >= 1 data-parallel lanes, step-synchronous
  kNuma,  ///< thickness "1/L": L consecutive instructions per step, local mem
};

enum class FlowStatus : std::uint8_t {
  kReady,        ///< has an instruction to execute
  kWaitingJoin,  ///< blocked in JOINALL until children halt
  kSuspended,    ///< swapped out by the task scheduler
  kHalted,
};

const char* to_string(FlowStatus s);

/// One lane's architectural register values. r0 is hardwired to zero (writes
/// ignored). Used at flow boundaries (spawn broadcast, checkpoints); the hot
/// path works on the SoA LaneFile below.
using LaneRegs = std::array<Word, isa::kNumRegisters>;

/// Register-major (structure-of-arrays) lane register file: register r of
/// lane l lives at data[r * lanes + l], so a thick instruction's inner loop
/// over lanes walks contiguous memory per operand bank and vectorizes.
/// Bank 0 is kept physically zero — reads of r0 can use the bank pointer
/// unconditionally; set() discards r0 writes.
class LaneFile {
 public:
  std::size_t lanes() const { return lanes_; }
  bool empty() const { return lanes_ == 0; }

  /// Replaces the file with `lanes` lanes all holding `fill` (r0 forced 0).
  void assign(std::size_t lanes, const LaneRegs& fill) {
    lanes_ = lanes;
    data_.assign(lanes * isa::kNumRegisters, 0);
    for (std::uint8_t r = 1; r < isa::kNumRegisters; ++r) {
      if (fill[r] == 0) continue;
      Word* b = bank(r);
      for (std::size_t l = 0; l < lanes; ++l) b[l] = fill[r];
    }
  }

  /// SETTHICK semantics: keeps the first min(old, new) lanes; new lanes
  /// beyond the old thickness copy lane 0's registers.
  void resize_fill_from_lane0(std::size_t lanes) {
    const LaneRegs seed = lanes_ > 0 ? snapshot(0) : LaneRegs{};
    std::vector<Word> next(lanes * isa::kNumRegisters, 0);
    const std::size_t keep = lanes < lanes_ ? lanes : lanes_;
    for (std::uint8_t r = 1; r < isa::kNumRegisters; ++r) {
      Word* dst = next.data() + static_cast<std::size_t>(r) * lanes;
      const Word* src = data_.data() + static_cast<std::size_t>(r) * lanes_;
      for (std::size_t l = 0; l < keep; ++l) dst[l] = src[l];
      for (std::size_t l = keep; l < lanes; ++l) dst[l] = seed[r];
    }
    data_ = std::move(next);
    lanes_ = lanes;
  }

  Word get(std::size_t lane, std::uint8_t r) const {
    return r == 0 ? 0 : data_[static_cast<std::size_t>(r) * lanes_ + lane];
  }
  void set(std::size_t lane, std::uint8_t r, Word v) {
    if (r != 0) data_[static_cast<std::size_t>(r) * lanes_ + lane] = v;
  }

  /// Contiguous per-register lane bank; bank(0) is all zeros.
  Word* bank(std::uint8_t r) {
    return data_.data() + static_cast<std::size_t>(r) * lanes_;
  }
  const Word* bank(std::uint8_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * lanes_;
  }

  /// One lane's registers gathered into the AoS form (r0 == 0).
  LaneRegs snapshot(std::size_t lane) const {
    LaneRegs out{};
    for (std::uint8_t r = 1; r < isa::kNumRegisters; ++r) {
      out[r] = data_[static_cast<std::size_t>(r) * lanes_ + lane];
    }
    return out;
  }

  /// Scatters AoS registers into one lane (r0 write discarded).
  void store(std::size_t lane, const LaneRegs& regs) {
    for (std::uint8_t r = 1; r < isa::kNumRegisters; ++r) {
      data_[static_cast<std::size_t>(r) * lanes_ + lane] = regs[r];
    }
  }

  /// AoS conversions for the checkpoint layer (state.cpp keeps the lane-major
  /// FlowState format so serialized images stay byte-identical).
  std::vector<LaneRegs> to_aos() const {
    std::vector<LaneRegs> out(lanes_);
    for (std::size_t l = 0; l < lanes_; ++l) out[l] = snapshot(l);
    return out;
  }
  void from_aos(const std::vector<LaneRegs>& lanes) {
    assign(lanes.size(), LaneRegs{});
    for (std::size_t l = 0; l < lanes.size(); ++l) store(l, lanes[l]);
  }

 private:
  std::size_t lanes_ = 0;
  std::vector<Word> data_;  ///< register-major: [r * lanes_ + lane]
};

struct TcfDescriptor {
  FlowId id = kNoFlow;
  FlowId parent = kNoFlow;
  GroupId home = 0;  ///< group whose TCF buffer holds this flow

  std::size_t pc = 0;
  FlowMode mode = FlowMode::kPram;
  Word thickness = 1;          ///< PRAM lanes (>= 1 while ready)
  std::uint32_t numa_block = 1;///< L: instructions per step in NUMA mode
  FlowStatus status = FlowStatus::kReady;
  std::uint32_t live_children = 0;

  /// Balanced variant: first lane of the current instruction not yet
  /// executed; 0 when the flow is at an instruction boundary.
  LaneId next_unexecuted = 0;

  /// Lane-private register files in register-major (SoA) layout (physically
  /// a cached register file / local memory; the cost model charges for the
  /// caching).
  LaneFile lane_regs;

  /// Flow-level call stack (Section 2.2: "a call stack is not related to
  /// each thread but to each of the parallel control flows").
  std::vector<std::size_t> call_stack;

  /// Store-forwarding buffer: this flow's shared-memory writes from
  /// instructions *completed* during the current machine step. A flow is
  /// sequentially consistent with itself even when a variant executes
  /// several of its instructions within one step; other flows see these
  /// writes only after the step commits.
  WriteBuffer step_writes;

  /// Writes staged by the instruction currently in (possibly interrupted)
  /// execution. Merged into step_writes when the last lane completes, so
  /// lanes of one instruction never observe each other's writes (lockstep
  /// PRAM semantics within the flow).
  WriteBuffer instr_writes;

  /// Set when this flow issued a multioperation/multiprefix this step: the
  /// result only materialises at step commit, so the flow must not run
  /// further instructions within the same step.
  bool multiop_blocked = false;

  /// The flow has been evicted from the TCF storage buffer at least once;
  /// its next promotion back into the buffer pays the swap-in cost.
  bool evicted_once = false;

  bool at_instruction_boundary() const { return next_unexecuted == 0; }

  /// Operation slots one full instruction of this flow occupies.
  std::uint64_t ops_per_instruction() const {
    return mode == FlowMode::kPram ? static_cast<std::uint64_t>(thickness)
                                   : numa_block;
  }
};

}  // namespace tcfpn::machine
