// Thick-control-flow descriptors: the contents of the TCF storage buffer.
//
// Section 3.3: "there needs to be a T_p-element storage block, e.g. ring
// buffer or addressable register file that contains the TCF information,
// e.g. thickness and mode as well as a pointer to the next yet not executed
// operation in the case of the balanced variant."
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace tcfpn::machine {

inline constexpr FlowId kNoFlow = ~FlowId{0};

enum class FlowMode : std::uint8_t {
  kPram,  ///< thickness >= 1 data-parallel lanes, step-synchronous
  kNuma,  ///< thickness "1/L": L consecutive instructions per step, local mem
};

enum class FlowStatus : std::uint8_t {
  kReady,        ///< has an instruction to execute
  kWaitingJoin,  ///< blocked in JOINALL until children halt
  kSuspended,    ///< swapped out by the task scheduler
  kHalted,
};

const char* to_string(FlowStatus s);

/// Per-lane register file. r0 is hardwired to zero (writes ignored).
using LaneRegs = std::array<Word, isa::kNumRegisters>;

struct TcfDescriptor {
  FlowId id = kNoFlow;
  FlowId parent = kNoFlow;
  GroupId home = 0;  ///< group whose TCF buffer holds this flow

  std::size_t pc = 0;
  FlowMode mode = FlowMode::kPram;
  Word thickness = 1;          ///< PRAM lanes (>= 1 while ready)
  std::uint32_t numa_block = 1;///< L: instructions per step in NUMA mode
  FlowStatus status = FlowStatus::kReady;
  std::uint32_t live_children = 0;

  /// Balanced variant: first lane of the current instruction not yet
  /// executed; 0 when the flow is at an instruction boundary.
  LaneId next_unexecuted = 0;

  /// Lane-private register files (physically a cached register file /
  /// local memory; the cost model charges for the caching).
  std::vector<LaneRegs> lane_regs;

  /// Flow-level call stack (Section 2.2: "a call stack is not related to
  /// each thread but to each of the parallel control flows").
  std::vector<std::size_t> call_stack;

  /// Store-forwarding buffer: this flow's shared-memory writes from
  /// instructions *completed* during the current machine step. A flow is
  /// sequentially consistent with itself even when a variant executes
  /// several of its instructions within one step; other flows see these
  /// writes only after the step commits.
  std::unordered_map<Addr, Word> step_writes;

  /// Writes staged by the instruction currently in (possibly interrupted)
  /// execution. Merged into step_writes when the last lane completes, so
  /// lanes of one instruction never observe each other's writes (lockstep
  /// PRAM semantics within the flow).
  std::unordered_map<Addr, Word> instr_writes;

  /// Set when this flow issued a multioperation/multiprefix this step: the
  /// result only materialises at step commit, so the flow must not run
  /// further instructions within the same step.
  bool multiop_blocked = false;

  /// The flow has been evicted from the TCF storage buffer at least once;
  /// its next promotion back into the buffer pays the swap-in cost.
  bool evicted_once = false;

  bool at_instruction_boundary() const { return next_unexecuted == 0; }

  /// Operation slots one full instruction of this flow occupies.
  std::uint64_t ops_per_instruction() const {
    return mode == FlowMode::kPram ? static_cast<std::uint64_t>(thickness)
                                   : numa_block;
  }
};

}  // namespace tcfpn::machine
