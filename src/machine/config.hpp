// Machine configuration: the parameters of the (extended) PRAM-NUMA model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/shared_memory.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace tcfpn::machine {

/// Sentinel for GroupSpec::pipeline_fill: inherit the machine-wide value.
inline constexpr std::uint32_t kInheritFill = 0xffffffffu;

/// Per-group override for heterogeneous machine shapes (DESIGN.md §12).
///
/// A uniform machine leaves MachineConfig::group_specs empty; a
/// heterogeneous one carries exactly `groups` entries, each of which may
/// override the group's thread-slot count T_p, its clock (as a rational
/// multiplier of the base clock), its pipeline depth, and its row of the
/// NUMA distance matrix. Every field defaults to "inherit the uniform
/// value", so a vector of default-constructed specs behaves exactly like
/// the uniform machine (and fingerprints differently only because the
/// shape was declared — see state.cpp).
struct GroupSpec {
  std::uint32_t slots = 0;        ///< T_p override; 0 = slots_per_group
  std::uint32_t clock_num = 1;    ///< clock multiplier numerator (>= 1)
  std::uint32_t clock_den = 1;    ///< clock multiplier denominator (>= 1)
  std::uint32_t pipeline_fill = kInheritFill;  ///< F override
  /// Distance from this group to the module-owner group m (one row of the
  /// NUMA distance matrix). Empty = the topology's own row. Overrides the
  /// analytic latency bound and the routing distance estimate; detailed
  /// routing still follows the physical topology's links.
  std::vector<std::uint32_t> numa_row;

  bool operator==(const GroupSpec&) const = default;
};

/// The six execution variants of Section 3.2, in paper order.
enum class Variant : std::uint8_t {
  kSingleInstruction,      ///< full TCF model; 1 TCF instruction/flow/step (Fig. 7)
  kBalanced,               ///< bounded ops per processor per step (Fig. 8)
  kMultiInstruction,       ///< XMT-style run-to-completion, join barriers (Fig. 9)
  kSingleOperation,        ///< plain interleaved ESM, thickness == 1 (Fig. 10)
  kConfigSingleOperation,  ///< original PRAM-NUMA: thickness 1 + bunching (Fig. 11)
  kFixedThickness,         ///< vector/SIMD: one processor, fixed thickness (Fig. 12)
};

const char* to_string(Variant v);

/// True for the variants whose execution is PRAM-lockstep per machine step.
bool is_step_synchronous(Variant v);

/// Where lane-private intermediate results live (Section 3.3): "we see
/// three possible solutions for this: memory-to-memory instructions,
/// cached register file, and usage of a number of fast local memories".
enum class OperandStorage : std::uint8_t {
  kCachedRegisterFile,  ///< lanes beyond the cache pay a spill penalty
  kMemoryToMemory,      ///< every operand through memory: flat penalty
  kLocalMemory,         ///< operands in the group's local memory
};

const char* to_string(OperandStorage s);

struct MachineConfig {
  // ---- structural parameters (Section 3.1's P, T_p, M) ----
  std::uint32_t groups = 4;            ///< P processor groups
  std::uint32_t slots_per_group = 16;  ///< T_p: thread slots / TCF buffer entries
  std::size_t shared_words = 1u << 20; ///< global shared memory size
  std::size_t local_words = 1u << 16;  ///< per-group local memory size

  // ---- memory & network ----
  mem::CrcwPolicy crcw = mem::CrcwPolicy::kArbitrary;
  net::TopologyKind topology = net::TopologyKind::kMesh2D;
  net::NetworkConfig net;
  bool detailed_network = false;  ///< route refs as packets vs analytic bound
  Cycle local_latency = 1;        ///< NUMA local-memory access latency

  // ---- execution variant & its knobs ----
  Variant variant = Variant::kSingleInstruction;
  std::uint32_t balanced_bound = 16;  ///< B: ops per processor per step (Balanced)
  std::uint32_t pipeline_fill = 4;    ///< F: pipeline fill/drain cycles per step
  Cycle spawn_cost = 2;               ///< flow creation base cost (cycles)
  Cycle join_cost = 16;               ///< per-join barrier cost (Multi-instruction)

  // ---- register architecture (Table 1's R, Section 3.3 operand storage) --
  std::uint32_t registers_per_context = 16;  ///< R architectural registers
  std::uint32_t register_cache_words = 1024; ///< physical register cache per group
  OperandStorage operand_storage = OperandStorage::kCachedRegisterFile;
  Cycle register_spill_penalty = 1;  ///< extra cycles per uncached lane-op

  // ---- ILP co-execution (Section 3.2: "it is possible and even advisable
  // to apply heterogeneous instruction-level parallelism to execution of
  // TCFs") ----
  std::uint32_t functional_units = 1;  ///< operations issued per cycle/group

  // ---- host-side execution ----
  /// Host threads driving the per-group phase of each machine step. 1 keeps
  /// the classic sequential stepper; N > 1 fans the groups of every step out
  /// over a persistent worker pool. Results (cycle counts, MachineStats,
  /// shared-memory images, trace) are bit-identical for every value: all
  /// cross-group effects are buffered per group and merged at the step
  /// barrier in group order. Ignored by the multi-instruction (XMT) variant,
  /// which runs flows to completion with immediate memory semantics.
  std::uint32_t host_threads = 1;

  /// Shard count of the run this machine takes part in (tcfrun --shards).
  /// Pure observation — recorded so every telemetry export (metrics,
  /// profile, stream) says how the run was hosted — and excluded from the
  /// config fingerprint like host_threads: a sharded run is bit-identical
  /// to --shards 1 by contract, so checkpoints move across shard counts.
  std::uint32_t shards = 1;

  /// Stream each group's effect merge as soon as that group's seal channel
  /// publishes (overlapping the merge of lower groups with the execution of
  /// higher ones) instead of waiting for the full step barrier. Merge order
  /// is group order either way, so results stay bit-identical; off falls
  /// back to the barrier merge. Only meaningful with host_threads > 1.
  bool effect_channels = true;

  /// Short-circuit the merge of groups whose step produced no cross-group
  /// effects (no memory traffic, spawns, halts, prints, events): only the
  /// integer stat deltas are added. Observable results are bit-identical
  /// with the fast path on or off; the knob exists for the differential
  /// determinism tests.
  bool merge_skip = true;

  // ---- instrumentation ----
  bool record_trace = false;  ///< keep the per-step Gantt trace

  /// Record a StepSample (cumulative stats snapshot) every N machine steps
  /// into Machine::step_samples(). 0 disables sampling. Sampling reads only
  /// barrier-side state, so it never perturbs determinism.
  std::uint32_t sample_every = 0;

  /// Time the host-side phases of the stepping engine (group phase, effect
  /// merge, memory commit, memory term, housekeeping) with a wall clock and
  /// keep them as HostSpans for the Chrome trace export. Wall-clock values
  /// are inherently non-deterministic; they live outside the metrics
  /// registry and never feed back into simulated state.
  bool profile_host = false;

  /// Cost-model attribution profiling (src/prof, DESIGN.md §11): charge
  /// every simulated cycle to a (group, tcf, pc, term) cell and record the
  /// per-step cost components for the critical-path analyzer. Deterministic
  /// (bins merge at the step barrier in group order) and an observation
  /// knob only: simulated results are bit-identical with it on or off, so
  /// like the other instrumentation flags it stays outside the checkpoint
  /// config fingerprint.
  bool profile = false;

  // ---- heterogeneous machine shape (DESIGN.md §12) ----
  /// Per-group overrides. Empty = the classic uniform machine. When
  /// non-empty the vector must carry exactly `groups` entries (checked at
  /// Machine construction); group g then runs with group_slots(g) thread
  /// slots, a clock_num/clock_den clock multiplier (its slot term shrinks
  /// by the multiplier), pipeline depth group_fill(g) (the step's fill is
  /// the max over alive groups — lockstep drains the deepest pipe), and an
  /// optional private NUMA distance row.
  std::vector<GroupSpec> group_specs;

  bool is_heterogeneous() const { return !group_specs.empty(); }

  std::uint32_t group_slots(std::uint32_t g) const {
    if (g < group_specs.size() && group_specs[g].slots != 0) {
      return group_specs[g].slots;
    }
    return slots_per_group;
  }
  std::uint32_t group_clock_num(std::uint32_t g) const {
    return g < group_specs.size() ? group_specs[g].clock_num : 1u;
  }
  std::uint32_t group_clock_den(std::uint32_t g) const {
    return g < group_specs.size() ? group_specs[g].clock_den : 1u;
  }
  std::uint32_t group_fill(std::uint32_t g) const {
    if (g < group_specs.size() &&
        group_specs[g].pipeline_fill != kInheritFill) {
      return group_specs[g].pipeline_fill;
    }
    return pipeline_fill;
  }

  /// Total thread/TCF slots across the machine: P * T_p, or the sum of the
  /// per-group overrides on a heterogeneous shape.
  std::uint64_t total_slots() const {
    if (!is_heterogeneous()) {
      return static_cast<std::uint64_t>(groups) * slots_per_group;
    }
    std::uint64_t total = 0;
    for (std::uint32_t g = 0; g < groups; ++g) total += group_slots(g);
    return total;
  }
};

}  // namespace tcfpn::machine
