#include "machine/config.hpp"

namespace tcfpn::machine {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::kSingleInstruction: return "single-instruction";
    case Variant::kBalanced: return "balanced";
    case Variant::kMultiInstruction: return "multi-instruction";
    case Variant::kSingleOperation: return "single-operation";
    case Variant::kConfigSingleOperation: return "config-single-operation";
    case Variant::kFixedThickness: return "fixed-thickness";
  }
  return "?";
}

bool is_step_synchronous(Variant v) {
  return v != Variant::kMultiInstruction;
}

const char* to_string(OperandStorage s) {
  switch (s) {
    case OperandStorage::kCachedRegisterFile: return "cached-register-file";
    case OperandStorage::kMemoryToMemory: return "memory-to-memory";
    case OperandStorage::kLocalMemory: return "local-memory";
  }
  return "?";
}

}  // namespace tcfpn::machine
