#include "mem/shared_memory.hpp"

#include <algorithm>

namespace tcfpn::mem {

Word apply_multiop(MultiOp op, Word a, Word b) {
  switch (op) {
    case MultiOp::kAdd:
      return static_cast<Word>(static_cast<std::uint64_t>(a) +
                               static_cast<std::uint64_t>(b));
    case MultiOp::kMax:
      return std::max(a, b);
    case MultiOp::kMin:
      return std::min(a, b);
    case MultiOp::kAnd:
      return a & b;
    case MultiOp::kOr:
      return a | b;
  }
  TCFPN_FAULT("unknown multiop ", static_cast<int>(op));
}

const char* to_string(CrcwPolicy policy) {
  switch (policy) {
    case CrcwPolicy::kErew: return "EREW";
    case CrcwPolicy::kCrew: return "CREW";
    case CrcwPolicy::kCommon: return "Common-CRCW";
    case CrcwPolicy::kArbitrary: return "Arbitrary-CRCW";
    case CrcwPolicy::kPriority: return "Priority-CRCW";
  }
  return "?";
}

const char* to_string(MultiOp op) {
  switch (op) {
    case MultiOp::kAdd: return "MPADD";
    case MultiOp::kMax: return "MPMAX";
    case MultiOp::kMin: return "MPMIN";
    case MultiOp::kAnd: return "MPAND";
    case MultiOp::kOr: return "MPOR";
  }
  return "?";
}

void MemoryPort::attach(const SharedMemory* shm) {
  shm_ = shm;
  const std::size_t m = shm != nullptr ? shm->modules() : 0;
  mod_reads_.assign(m, 0);
  mod_writes_.assign(m, 0);
  mod_multis_.assign(m, 0);
}

Word MemoryPort::read(Addr a, LaneId lane, std::uint32_t module) {
  TCFPN_CHECK(shm_ != nullptr, "memory port used before attach()");
  ++mod_reads_[module];
  ++n_reads_;
  if (shm_->policy_ == CrcwPolicy::kErew) reads_.emplace_back(a, lane);
  return shm_->peek(a);  // committed pre-step state; check_addr included
}

void MemoryPort::write(Addr a, Word v, LaneId lane, std::uint32_t module) {
  shm_->check_addr(a);
  ++mod_writes_[module];
  writes_.push_back(StagedWrite{a, v, lane});
}

void MemoryPort::multiop(Addr a, MultiOp op, Word v, LaneId lane,
                         std::uint32_t module) {
  shm_->check_addr(a);
  ++mod_multis_[module];
  multis_.push_back(StagedMulti{a, op, v, lane, false});
}

std::size_t MemoryPort::multiprefix(Addr a, MultiOp op, Word v, LaneId lane,
                                    std::uint32_t module) {
  shm_->check_addr(a);
  ++mod_multis_[module];
  multis_.push_back(StagedMulti{a, op, v, lane, true});
  return prefixes_++;
}

void MemoryPort::seal() {
  std::stable_sort(writes_.begin(), writes_.end(),
                   [](const StagedWrite& x, const StagedWrite& y) {
                     return x.addr != y.addr ? x.addr < y.addr
                                             : x.lane < y.lane;
                   });
  // Collapse same-(addr, lane) runs to the last staged value: rewrites by one
  // lane within a step are program-ordered, so only the final value reaches
  // the commit and the CRCW policy — exactly the collapse commit_writes used
  // to do globally, moved onto the worker thread.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    if (kept > 0 && writes_[kept - 1].addr == writes_[i].addr &&
        writes_[kept - 1].lane == writes_[i].lane) {
      writes_[kept - 1].value = writes_[i].value;
    } else {
      writes_[kept++] = writes_[i];
    }
  }
  writes_.resize(kept);
  sealed_ = true;
}

MemoryPort::Image MemoryPort::save_image() const {
  Image img;
  img.writes = writes_;
  img.multis = multis_;
  img.reads = reads_;
  img.mod_reads = mod_reads_;
  img.mod_writes = mod_writes_;
  img.mod_multis = mod_multis_;
  img.n_reads = n_reads_;
  img.prefixes = prefixes_;
  img.sealed = sealed_;
  return img;
}

void MemoryPort::load_image(const Image& img) {
  TCFPN_CHECK(shm_ != nullptr, "port image loaded before attach()");
  TCFPN_CHECK(img.mod_reads.size() == mod_reads_.size(),
              "port image module count mismatch: ", img.mod_reads.size(),
              " into ", mod_reads_.size());
  writes_ = img.writes;
  multis_ = img.multis;
  reads_ = img.reads;
  mod_reads_ = img.mod_reads;
  mod_writes_ = img.mod_writes;
  mod_multis_ = img.mod_multis;
  n_reads_ = img.n_reads;
  prefixes_ = static_cast<std::size_t>(img.prefixes);
  sealed_ = img.sealed;
}

void MemoryPort::clear() {
  writes_.clear();
  multis_.clear();
  reads_.clear();
  std::fill(mod_reads_.begin(), mod_reads_.end(), 0);
  std::fill(mod_writes_.begin(), mod_writes_.end(), 0);
  std::fill(mod_multis_.begin(), mod_multis_.end(), 0);
  n_reads_ = 0;
  prefixes_ = 0;
  sealed_ = false;
}

SharedMemory::SharedMemory(std::size_t words, std::uint32_t modules,
                           CrcwPolicy policy)
    : store_(words, 0),
      modules_(modules),
      policy_(policy),
      traffic_(modules),
      last_traffic_(modules) {
  TCFPN_CHECK(words > 0, "shared memory must hold at least one word");
  TCFPN_CHECK(modules > 0, "shared memory needs at least one module");
}

std::uint32_t SharedMemory::module_of(Addr a) const {
  if (hash_) {
    const std::uint32_t m = hash_(a);
    TCFPN_CHECK(m < modules_, "address hash returned module ", m,
                " out of range ", modules_);
    return m;
  }
  return static_cast<std::uint32_t>(a % modules_);
}

void SharedMemory::set_address_hash(std::function<std::uint32_t(Addr)> hash) {
  hash_ = std::move(hash);
}

void SharedMemory::check_addr(Addr a) const {
  if (a >= store_.size()) {
    TCFPN_FAULT("shared memory access out of range: addr ", a, " >= ",
                store_.size());
  }
}

void SharedMemory::note_traffic(Addr a, std::uint64_t ModuleTraffic::*field) {
  ++(traffic_[module_of(a)].*field);
}

Word SharedMemory::read(Addr a, LaneId lane) {
  check_addr(a);
  note_traffic(a, &ModuleTraffic::reads);
  ++total_reads_;
  if (policy_ == CrcwPolicy::kErew) {
    step_reads_.emplace_back(a, lane);
  }
  return store_[a];
}

void SharedMemory::write(Addr a, Word v, LaneId lane) {
  check_addr(a);
  note_traffic(a, &ModuleTraffic::writes);
  ++total_writes_;
  pending_writes_.push_back(PendingWrite{a, v, lane});
  runs_ok_ = false;  // unsorted tail: commit falls back to the full sort
}

void SharedMemory::multiop(Addr a, MultiOp op, Word v, LaneId lane) {
  check_addr(a);
  note_traffic(a, &ModuleTraffic::multiops);
  ++total_multiops_;
  pending_multis_.push_back(PendingMulti{a, op, v, lane, ~std::size_t{0}});
}

std::size_t SharedMemory::multiprefix(Addr a, MultiOp op, Word v, LaneId lane) {
  check_addr(a);
  note_traffic(a, &ModuleTraffic::multiops);
  ++total_multiops_;
  const std::size_t ticket = next_ticket_++;
  pending_multis_.push_back(PendingMulti{a, op, v, lane, ticket});
  return ticket;
}

Word SharedMemory::prefix_result(std::size_t ticket) const {
  TCFPN_CHECK(ticket < prefix_results_.size(),
              "prefix ticket ", ticket, " has no committed result");
  return prefix_results_[ticket];
}

void SharedMemory::bind_metrics(metrics::MetricsRegistry* reg) {
  if (reg == nullptr) {
    m_write_cells_ = nullptr;
    m_concurrent_write_cells_ = nullptr;
    m_multiop_cells_ = nullptr;
    m_prefix_tickets_ = nullptr;
    return;
  }
  m_write_cells_ = &reg->counter("mem/committed_write_cells");
  m_concurrent_write_cells_ = &reg->counter("mem/concurrent_write_cells");
  m_multiop_cells_ = &reg->counter("mem/multiop_cells_combined");
  m_prefix_tickets_ = &reg->counter("mem/prefix_tickets");
}

void SharedMemory::commit_writes() {
  if (pending_writes_.empty()) {
    check_erew_reads();
    write_run_ends_.clear();
    runs_ok_ = true;
    return;
  }
  const auto by_addr_lane = [](const PendingWrite& x, const PendingWrite& y) {
    return x.addr != y.addr ? x.addr < y.addr : x.lane < y.lane;
  };
  if (runs_ok_ && !write_run_ends_.empty() &&
      write_run_ends_.back() == pending_writes_.size()) {
    // Port path: every run is already sorted on its worker thread; a stable
    // left-to-right merge cascade reproduces the stable_sort of the issue
    // order without touching most elements (disjoint address ranges merge in
    // O(n) moves).
    const auto it = pending_writes_.begin();
    std::size_t prefix = write_run_ends_.front();
    for (std::size_t r = 1; r < write_run_ends_.size(); ++r) {
      std::inplace_merge(it, it + static_cast<std::ptrdiff_t>(prefix),
                         it + static_cast<std::ptrdiff_t>(write_run_ends_[r]),
                         by_addr_lane);
      prefix = write_run_ends_[r];
    }
  } else {
    std::stable_sort(pending_writes_.begin(), pending_writes_.end(),
                     by_addr_lane);
  }
  write_run_ends_.clear();
  runs_ok_ = true;
  // Collapse runs with the same (addr, lane) key to the *last* staged value:
  // one lane rewriting a cell several times within a step (balanced
  // multi-instruction steps, NUMA blocks) is program-ordered, not
  // concurrent — store forwarding already made the earlier values
  // flow-private, so only the final one reaches the commit and the CRCW
  // policy.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_writes_.size(); ++i) {
    if (kept > 0 && pending_writes_[kept - 1].addr == pending_writes_[i].addr &&
        pending_writes_[kept - 1].lane == pending_writes_[i].lane) {
      pending_writes_[kept - 1].value = pending_writes_[i].value;
    } else {
      pending_writes_[kept++] = pending_writes_[i];
    }
  }
  pending_writes_.resize(kept);
  for (std::size_t i = 0; i < pending_writes_.size();) {
    std::size_t j = i + 1;
    while (j < pending_writes_.size() &&
           pending_writes_[j].addr == pending_writes_[i].addr) {
      ++j;
    }
    const std::size_t writers = j - i;
    const Addr addr = pending_writes_[i].addr;
    if (m_write_cells_ != nullptr) m_write_cells_->add();
    if (writers > 1) {
      if (m_concurrent_write_cells_ != nullptr) {
        m_concurrent_write_cells_->add();
      }
      switch (policy_) {
        case CrcwPolicy::kErew:
        case CrcwPolicy::kCrew:
          TCFPN_FAULT(to_string(policy_), " violation: ", writers,
                      " concurrent writes to address ", addr, " in step ",
                      step_);
        case CrcwPolicy::kCommon:
          for (std::size_t k = i + 1; k < j; ++k) {
            if (pending_writes_[k].value != pending_writes_[i].value) {
              TCFPN_FAULT("Common-CRCW violation: unequal concurrent writes "
                          "to address ", addr, " in step ", step_, " (",
                          pending_writes_[i].value, " vs ",
                          pending_writes_[k].value, ")");
            }
          }
          break;
        case CrcwPolicy::kArbitrary:
        case CrcwPolicy::kPriority:
          break;  // lowest lane (= first after sort) wins
      }
    }
    store_[addr] = pending_writes_[i].value;
    i = j;
  }
  check_erew_reads();
  pending_writes_.clear();
}

void SharedMemory::check_erew_reads() {
  if (policy_ != CrcwPolicy::kErew || step_reads_.empty()) return;
  std::sort(step_reads_.begin(), step_reads_.end());
  // Re-reads by one (flow, lane) key are exclusive accesses, not concurrent
  // ones — a single lane may touch a cell any number of times in a step.
  step_reads_.erase(std::unique(step_reads_.begin(), step_reads_.end()),
                    step_reads_.end());
  for (std::size_t r = 1; r < step_reads_.size(); ++r) {
    if (step_reads_[r].first == step_reads_[r - 1].first) {
      TCFPN_FAULT("EREW violation: concurrent reads of address ",
                  step_reads_[r].first, " in step ", step_);
    }
  }
  // At most one key per read address from here on; a write by a *different*
  // key to a read address breaks exclusivity (read-modify-write by the same
  // key is legal).
  for (const auto& w : pending_writes_) {
    const auto it = std::lower_bound(
        step_reads_.begin(), step_reads_.end(), w.addr,
        [](const auto& lhs, Addr rhs) { return lhs.first < rhs; });
    if (it != step_reads_.end() && it->first == w.addr &&
        it->second != w.lane) {
      TCFPN_FAULT("EREW violation: address ", w.addr,
                  " both read and written in step ", step_);
    }
  }
}

void SharedMemory::commit_multis() {
  if (pending_multis_.empty()) return;
  std::sort(pending_multis_.begin(), pending_multis_.end());
  prefix_results_.resize(next_ticket_);
  for (std::size_t i = 0; i < pending_multis_.size();) {
    std::size_t j = i + 1;
    while (j < pending_multis_.size() &&
           pending_multis_[j].addr == pending_multis_[i].addr) {
      ++j;
    }
    const Addr addr = pending_multis_[i].addr;
    const MultiOp op = pending_multis_[i].op;
    if (m_multiop_cells_ != nullptr) m_multiop_cells_->add();
    Word running = store_[addr];
    for (std::size_t k = i; k < j; ++k) {
      if (pending_multis_[k].op != op) {
        TCFPN_FAULT("mixed multioperations (", to_string(op), " vs ",
                    to_string(pending_multis_[k].op), ") on address ", addr,
                    " in step ", step_);
      }
      if (pending_multis_[k].ticket != ~std::size_t{0}) {
        // Multiprefix semantics: participant k receives the combination of
        // the cell's previous value with all lower-lane contributions.
        prefix_results_[pending_multis_[k].ticket] = running;
        if (m_prefix_tickets_ != nullptr) m_prefix_tickets_->add();
      }
      running = apply_multiop(op, running, pending_multis_[k].value);
    }
    store_[addr] = running;
    i = j;
  }
  pending_multis_.clear();
}

std::size_t SharedMemory::drain(MemoryPort& port) {
  TCFPN_CHECK(port.sealed_, "drain() requires a sealed port");
  // Bulk traffic accounting: issue counts were aggregated per module in the
  // parallel phase; values were served from committed state at issue time.
  std::uint64_t writes = 0;
  std::uint64_t multis = 0;
  for (std::uint32_t m = 0; m < modules_; ++m) {
    traffic_[m].reads += port.mod_reads_[m];
    traffic_[m].writes += port.mod_writes_[m];
    traffic_[m].multiops += port.mod_multis_[m];
    writes += port.mod_writes_[m];
    multis += port.mod_multis_[m];
  }
  total_reads_ += port.n_reads_;
  total_writes_ += writes;
  total_multiops_ += multis;
  if (policy_ == CrcwPolicy::kErew) {
    step_reads_.insert(step_reads_.end(), port.reads_.begin(),
                       port.reads_.end());
  }
  // Append the port's pre-sorted, pre-collapsed write run; commit_writes
  // merges the runs instead of sorting from scratch. Drain order = group
  // order, so an equal-key tie between runs resolves exactly as the
  // sequential issue order would (stable merge keeps the earlier group
  // first; the last-wins collapse then takes the later one).
  pending_writes_.reserve(pending_writes_.size() + port.writes_.size());
  for (const auto& w : port.writes_) {
    pending_writes_.push_back(PendingWrite{w.addr, w.value, w.lane});
  }
  if (runs_ok_) write_run_ends_.push_back(pending_writes_.size());
  // Multioperation contributions replay in issue order (= ticket order).
  const std::size_t base = next_ticket_;
  for (const auto& s : port.multis_) {
    const std::size_t ticket = s.prefix ? next_ticket_++ : ~std::size_t{0};
    pending_multis_.push_back(PendingMulti{s.addr, s.op, s.value, s.lane,
                                           ticket});
  }
  port.clear();
  return base;
}

void SharedMemory::commit_step() {
  commit_writes();
  commit_multis();
  step_reads_.clear();
  last_traffic_ = traffic_;
  std::fill(traffic_.begin(), traffic_.end(), ModuleTraffic{});
  ++step_;
}

Word SharedMemory::peek(Addr a) const {
  check_addr(a);
  return store_[a];
}

void SharedMemory::poke(Addr a, Word v) {
  check_addr(a);
  store_[a] = v;
}

SharedMemoryState SharedMemory::save_state() const {
  TCFPN_CHECK(pending_writes_.empty() && pending_multis_.empty() &&
                  step_reads_.empty(),
              "shared-memory checkpoint requires a step boundary");
  SharedMemoryState s;
  s.store = store_;
  s.step = step_;
  s.next_ticket = next_ticket_;
  s.total_reads = total_reads_;
  s.total_writes = total_writes_;
  s.total_multiops = total_multiops_;
  s.last_traffic = last_traffic_;
  return s;
}

void SharedMemory::restore_state(const SharedMemoryState& s) {
  TCFPN_CHECK(s.store.size() == store_.size(),
              "shared-memory restore size mismatch: ", s.store.size(),
              " words into ", store_.size());
  TCFPN_CHECK(s.last_traffic.size() == traffic_.size(),
              "shared-memory restore module-count mismatch");
  store_ = s.store;
  step_ = s.step;
  next_ticket_ = s.next_ticket;
  total_reads_ = s.total_reads;
  total_writes_ = s.total_writes;
  total_multiops_ = s.total_multiops;
  last_traffic_ = s.last_traffic;
  // Discard any mid-step staging the current (possibly fault-aborted) step
  // left behind. Prefix results are write-once-read-once within their own
  // step, so a zeroed table of the right size is indistinguishable from the
  // original.
  pending_writes_.clear();
  write_run_ends_.clear();
  runs_ok_ = true;
  pending_multis_.clear();
  step_reads_.clear();
  prefix_results_.assign(next_ticket_, 0);
  std::fill(traffic_.begin(), traffic_.end(), ModuleTraffic{});
}

std::uint64_t SharedMemory::last_step_max_module_load() const {
  std::uint64_t peak = 0;
  for (const auto& t : last_traffic_) peak = std::max(peak, t.total());
  return peak;
}

}  // namespace tcfpn::mem
