// The emulated shared memory of the (extended) PRAM-NUMA machine.
//
// Section 2.1/3.1 of the paper: a word-wise accessible global shared memory,
// physically distributed over M memory modules, accessed in synchronous
// steps. This class implements the *memory semantics* of that model:
//
//  - module interleaving: word address a lives in module a mod M (the
//    standard ESM randomization point; callers may also supply their own
//    hashed placement through `set_address_hash`);
//  - step-synchronous visibility: reads performed during step s observe the
//    state committed at the end of step s-1; all writes of step s become
//    visible atomically at commit_step();
//  - concurrent-access policies: EREW / CREW / Common / Arbitrary / Priority
//    CRCW, enforced per step with SimError on violation;
//  - multioperations (MPADD/MPMAX/MPMIN/MPAND/MPOR): all same-address
//    contributions of a step combine into one value (active memory, as in
//    SB-PRAM and ECLIPSE);
//  - ordered multiprefix: each participant additionally receives the
//    reduction of the *preceding* participants (ordered by lane id) combined
//    with the cell's previous value — the `prefix(...)` primitive used by
//    Section 4's examples.
//
// Network latency and congestion are modelled separately (src/net); this
// class only counts per-module traffic so the machine layer can couple the
// two.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"

namespace tcfpn::mem {

enum class CrcwPolicy : std::uint8_t {
  kErew,       ///< exclusive read, exclusive write
  kCrew,       ///< concurrent read, exclusive write
  kCommon,     ///< concurrent writes allowed if all write the same value
  kArbitrary,  ///< one of the concurrent writes wins (lowest lane, for determinism)
  kPriority,   ///< lowest lane id wins
};

enum class MultiOp : std::uint8_t { kAdd, kMax, kMin, kAnd, kOr };

/// Applies a multioperation to two words.
Word apply_multiop(MultiOp op, Word a, Word b);

const char* to_string(CrcwPolicy policy);
const char* to_string(MultiOp op);

/// Per-step, per-module traffic counters (reset at commit_step()).
struct ModuleTraffic {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t multiops = 0;
  std::uint64_t total() const { return reads + writes + multiops; }
};

class SharedMemory;

/// A per-group staging port for concurrent host-side stepping.
///
/// During the per-group phase of a machine step every group issues its
/// shared-memory traffic through its own port: reads return the committed
/// (pre-step) state — safe to perform concurrently, since nothing mutates
/// the store mid-step — while writes and multioperations are buffered in
/// issue order. Traffic accounting is order-insensitive, so the port
/// pre-aggregates it per module during the parallel phase (the caller
/// supplies module_of(addr), which it already computed for the network
/// term); the barrier-side drain then adds P short count vectors instead of
/// replaying every access. seal() additionally pre-sorts and collapses the
/// staged writes on the worker thread, leaving the commit a linear merge of
/// per-group sorted runs. Draining ports in a fixed group order keeps
/// traffic counters, CRCW checks and multiprefix ticket numbering
/// bit-identical to a sequential run.
/// One staged (pre-commit) write as a port buffers it during the group
/// phase. Public so the sharded execution mode can serialize port images.
struct StagedWrite {
  Addr addr;
  Word value;
  LaneId lane;
};

/// One staged multioperation / multiprefix contribution.
struct StagedMulti {
  Addr addr;
  MultiOp op;
  Word value;
  LaneId lane;
  bool prefix;
};

class MemoryPort {
 public:
  MemoryPort() = default;
  explicit MemoryPort(const SharedMemory* shm) { attach(shm); }

  void attach(const SharedMemory* shm);

  /// Committed-state read (concurrent-safe); accounting lands at drain().
  Word read(Addr a, LaneId lane, std::uint32_t module);
  /// Stages a write for the next commit (bounds-checked at issue time).
  void write(Addr a, Word v, LaneId lane, std::uint32_t module);
  /// Stages a multioperation contribution.
  void multiop(Addr a, MultiOp op, Word v, LaneId lane, std::uint32_t module);
  /// Stages a multiprefix contribution; returns a port-local request index.
  /// drain() returns the global ticket base; global = base + local.
  std::size_t multiprefix(Addr a, MultiOp op, Word v, LaneId lane,
                          std::uint32_t module);

  /// Sorts the staged writes by (addr, lane) and collapses same-key runs to
  /// the last staged value (program order within the port). Safe to call on
  /// a worker thread at the end of the group phase; drain() requires it.
  void seal();

  bool empty() const {
    return n_reads_ == 0 && writes_.empty() && multis_.empty();
  }
  void clear();

  /// Complete image of a port's staged (pre-drain) traffic. The sharded
  /// execution mode (src/shard, DESIGN.md §14) ships one of these per group
  /// per step so a remote replica can drain the exact traffic the owning
  /// shard staged — same order, same per-module accounting, same tickets.
  struct Image {
    std::vector<StagedWrite> writes;
    std::vector<StagedMulti> multis;
    std::vector<std::pair<Addr, LaneId>> reads;
    std::vector<std::uint64_t> mod_reads;
    std::vector<std::uint64_t> mod_writes;
    std::vector<std::uint64_t> mod_multis;
    std::uint64_t n_reads = 0;
    std::uint64_t prefixes = 0;
    bool sealed = false;
  };
  Image save_image() const;
  /// Installs an image captured by save_image() on an identically-attached
  /// port (the attachment itself is kept).
  void load_image(const Image& img);

 private:
  friend class SharedMemory;

  const SharedMemory* shm_ = nullptr;
  std::vector<StagedWrite> writes_;  ///< issue order until seal()
  std::vector<StagedMulti> multis_;  ///< issue order (= ticket order)
  std::vector<std::pair<Addr, LaneId>> reads_;  ///< EREW accounting only
  std::vector<std::uint64_t> mod_reads_;   ///< per-module read counts
  std::vector<std::uint64_t> mod_writes_;  ///< per-module write counts
  std::vector<std::uint64_t> mod_multis_;  ///< per-module multiop counts
  std::uint64_t n_reads_ = 0;
  std::size_t prefixes_ = 0;
  bool sealed_ = false;
};

/// Committed state of a SharedMemory at a step boundary (checkpoint layer,
/// DESIGN.md §8). Mid-step staging (pending writes/multis, step reads,
/// per-step traffic) is empty at every boundary and therefore not part of
/// the state. The multiprefix result table is restored zeroed but sized:
/// results are delivered to their lanes in the same machine step that
/// produces them and never read again afterwards.
struct SharedMemoryState {
  std::vector<Word> store;
  StepId step = 0;
  std::size_t next_ticket = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  std::uint64_t total_multiops = 0;
  std::vector<ModuleTraffic> last_traffic;
};

class SharedMemory {
 public:
  /// `words` cells of shared memory spread over `modules` modules.
  SharedMemory(std::size_t words, std::uint32_t modules,
               CrcwPolicy policy = CrcwPolicy::kArbitrary);

  std::size_t size() const { return store_.size(); }
  std::uint32_t modules() const { return modules_; }
  CrcwPolicy policy() const { return policy_; }
  void set_policy(CrcwPolicy p) { policy_ = p; }

  /// Module that owns address `a` under the current placement.
  std::uint32_t module_of(Addr a) const;

  /// Installs a custom address->module placement (e.g. a hashed placement to
  /// break hot modules). Must map into [0, modules).
  void set_address_hash(std::function<std::uint32_t(Addr)> hash);

  // ----- step-synchronous access (PRAM mode) -----

  /// Read the value committed before the current step.
  Word read(Addr a, LaneId lane);

  /// Stage a write; visible after commit_step().
  void write(Addr a, Word v, LaneId lane);

  /// Stage a multioperation contribution; combined at commit_step().
  void multiop(Addr a, MultiOp op, Word v, LaneId lane);

  /// Stage a multiprefix contribution. Returns a ticket whose result — the
  /// cell's pre-step value combined with all strictly-lower-lane
  /// contributions to the same cell — is readable after commit_step().
  std::size_t multiprefix(Addr a, MultiOp op, Word v, LaneId lane);

  /// Result of a multiprefix ticket from the *previous* commit.
  Word prefix_result(std::size_t ticket) const;

  /// Absorbs a sealed port's staged traffic into this memory: per-module
  /// counts are added in bulk, the pre-sorted write run is appended (with its
  /// boundary recorded so commit_writes can merge runs instead of sorting),
  /// and multioperations replay in issue order. Returns the global ticket
  /// base assigned to the port's multiprefix requests: port-local index i
  /// became ticket base + i. Draining ports in a fixed order makes a
  /// host-parallel step bit-identical to a sequential one.
  std::size_t drain(MemoryPort& port);

  /// Ends the step: applies writes under the CRCW policy, combines
  /// multioperations, computes multiprefix results, resets traffic counters
  /// into the last-step snapshot, and advances the step number.
  void commit_step();

  // ----- out-of-band access (initialisation, result checking, NUMA path) ---

  /// Immediate read of committed state without traffic accounting.
  Word peek(Addr a) const;
  /// Immediate write to committed state (test/benchmark setup only).
  void poke(Addr a, Word v);

  // ----- statistics -----
  StepId step() const { return step_; }
  /// Traffic each module received during the last committed step.
  const std::vector<ModuleTraffic>& last_step_traffic() const {
    return last_traffic_;
  }
  /// Maximum single-module load of the last committed step (the serialisation
  /// bound: a module serves one request per cycle).
  std::uint64_t last_step_max_module_load() const;
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_writes() const { return total_writes_; }
  std::uint64_t total_multiops() const { return total_multiops_; }

  /// Registers commit-side instruments under "mem/" in `reg`: cells written
  /// per commit, cells that saw concurrent writers, and multiop cells
  /// combined. Commits run single-threaded at the step barrier, so the
  /// instruments need no synchronisation. Pass nullptr to detach.
  void bind_metrics(metrics::MetricsRegistry* reg);

  // ----- checkpointing -----
  /// Committed state for a checkpoint (call only at a step boundary).
  SharedMemoryState save_state() const;
  /// Restores a save_state() image taken from an identically-shaped memory.
  /// Also clears any mid-step staging unconditionally — a restore may land
  /// on a machine whose current step was aborted by a fault.
  void restore_state(const SharedMemoryState& s);

 private:
  friend class MemoryPort;  // issue-time check_addr and policy peeks
  struct PendingWrite {
    Addr addr;
    Word value;
    LaneId lane;
  };
  struct PendingMulti {
    Addr addr;
    MultiOp op;
    Word value;
    LaneId lane;
    std::size_t ticket;  ///< ~0 when no prefix result requested
    bool operator<(const PendingMulti& o) const {
      return addr != o.addr ? addr < o.addr : lane < o.lane;
    }
  };

  void check_addr(Addr a) const;
  void note_traffic(Addr a, std::uint64_t ModuleTraffic::*field);
  void commit_writes();
  /// EREW exclusivity over this step's reads (and read/write overlaps with
  /// the already-deduplicated pending writes). Runs every commit — also in
  /// steps that stage no write at all.
  void check_erew_reads();
  void commit_multis();

  std::vector<Word> store_;
  std::uint32_t modules_;
  CrcwPolicy policy_;
  std::function<std::uint32_t(Addr)> hash_;

  std::vector<PendingWrite> pending_writes_;
  /// End offsets into pending_writes_ of each drained port's pre-sorted run;
  /// valid while runs_ok_ — a direct write() (non-port caller) appends an
  /// unsorted entry and drops commit back to the full sort.
  std::vector<std::size_t> write_run_ends_;
  bool runs_ok_ = true;
  std::vector<PendingMulti> pending_multis_;
  std::vector<Word> prefix_results_;
  std::size_t next_ticket_ = 0;

  // Per-step exclusive-access tracking (only maintained for EREW/CREW).
  std::vector<std::pair<Addr, LaneId>> step_reads_;

  std::vector<ModuleTraffic> traffic_;
  std::vector<ModuleTraffic> last_traffic_;
  StepId step_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
  std::uint64_t total_multiops_ = 0;

  // Bound instruments (nullptr when no registry is attached).
  metrics::Counter* m_write_cells_ = nullptr;
  metrics::Counter* m_concurrent_write_cells_ = nullptr;
  metrics::Counter* m_multiop_cells_ = nullptr;
  metrics::Counter* m_prefix_tickets_ = nullptr;
};

}  // namespace tcfpn::mem
