// Per-group local memory blocks (the NUMA side of PRAM-NUMA).
//
// Section 2.1: "each processor group is attached to its own local memory
// block". NUMA-mode accesses hit this block with a small fixed latency and
// *immediate* (non-step-buffered) semantics — a NUMA bunch is a single
// sequential instruction stream, so ordinary sequential consistency within
// the bunch is exactly the model.
//
// Accesses from a *different* group are legal in the model (the
// interconnection network connects the local-memory access paths together)
// but pay distance-proportional latency; the machine layer routes those
// through src/net and merely calls remote_access() here for accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcfpn::mem {

/// Complete state of a LocalMemory (checkpoint layer). NUMA accesses are
/// immediate, so unlike SharedMemory there is no staging to exclude.
struct LocalMemoryState {
  std::vector<Word> store;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t remote_accesses = 0;
};

class LocalMemory {
 public:
  LocalMemory(GroupId owner, std::size_t words, Cycle access_latency = 1);

  GroupId owner() const { return owner_; }
  std::size_t size() const { return store_.size(); }
  Cycle access_latency() const { return latency_; }

  Word read(Addr a) const;
  void write(Addr a, Word v);

  /// Accounting hook for accesses that arrived over the network.
  void remote_access() { ++remote_accesses_; }

  // ----- sharded execution (src/shard, DESIGN.md §14) -----
  /// While set, every write() also appends (addr, value) to `log` — the
  /// owning shard's per-step local-write journal, replayed verbatim on the
  /// other replicas. Pass nullptr to detach.
  void set_write_log(std::vector<std::pair<Addr, Word>>* log) {
    write_log_ = log;
  }
  /// Raw store without counters or the write log: batch replay on a
  /// non-owning replica (counters are installed separately, see
  /// set_counters).
  void replay_write(Addr a, Word v) {
    check_addr(a);
    store_[a] = v;
  }
  /// Installs the owner's absolute post-phase counter values on a replica.
  void set_counters(std::uint64_t reads, std::uint64_t writes,
                    std::uint64_t remote) {
    reads_ = reads;
    writes_ = writes;
    remote_accesses_ = remote;
  }

  // ----- fault injection (src/resil, DESIGN.md §9) -----
  /// Marks the block dead: every subsequent access faults. Executor-owned
  /// and transient — deliberately not part of LocalMemoryState, so a
  /// checkpoint restore (rollback repair) revives the block.
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t remote_accesses() const { return remote_accesses_; }

  // ----- checkpointing -----
  LocalMemoryState save_state() const {
    return LocalMemoryState{store_, reads_, writes_, remote_accesses_};
  }
  void restore_state(const LocalMemoryState& s) {
    TCFPN_CHECK(s.store.size() == store_.size(),
                "local-memory restore size mismatch: ", s.store.size(),
                " words into ", store_.size());
    store_ = s.store;
    reads_ = s.reads;
    writes_ = s.writes;
    remote_accesses_ = s.remote_accesses;
  }

 private:
  void check_addr(Addr a) const;

  GroupId owner_;
  std::vector<Word> store_;
  std::vector<std::pair<Addr, Word>>* write_log_ = nullptr;
  Cycle latency_;
  bool failed_ = false;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t remote_accesses_ = 0;
};

}  // namespace tcfpn::mem
