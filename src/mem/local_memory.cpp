#include "mem/local_memory.hpp"

namespace tcfpn::mem {

LocalMemory::LocalMemory(GroupId owner, std::size_t words,
                         Cycle access_latency)
    : owner_(owner), store_(words, 0), latency_(access_latency) {
  TCFPN_CHECK(words > 0, "local memory must hold at least one word");
  TCFPN_CHECK(access_latency >= 1, "local memory latency must be >= 1 cycle");
}

void LocalMemory::check_addr(Addr a) const {
  if (failed_) {
    TCFPN_FAULT("local memory block of group ", owner_,
                " has failed; access to address ", a, " lost");
  }
  if (a >= store_.size()) {
    TCFPN_FAULT("local memory (group ", owner_, ") access out of range: ", a,
                " >= ", store_.size());
  }
}

Word LocalMemory::read(Addr a) const {
  check_addr(a);
  ++reads_;
  return store_[a];
}

void LocalMemory::write(Addr a, Word v) {
  check_addr(a);
  ++writes_;
  store_[a] = v;
  if (write_log_ != nullptr) write_log_->emplace_back(a, v);
}

}  // namespace tcfpn::mem
