// Seeded random TCF program generator for the differential conformance
// harness.
//
// Programs are generated as a small statement tree (Stmt) rather than raw
// instructions so that (a) well-formedness is guaranteed by construction —
// bounded loops, flow-uniform branch conditions, in-range addresses — and
// (b) the delta-debugging shrinker (shrink.hpp) can remove or simplify
// whole statements and still have a runnable program.
//
// The generator enforces the register discipline below; the materializer
// (Stmt tree -> isa::Program via tcf::AsmBuilder) relies on it:
//
//   r1       lane/thread index (TID at flow entry; re-issued after SETTHICK;
//            poked by the ESM boot convention instead)
//   r2       ESM thread count (0 outside ESM programs) — uniform
//   r3, r11  loop counters for nesting depth 0 / 1 — uniform
//   r4..r8   lane-varying scratch
//   r9,r10,r13  flow-uniform scratch (r9 doubles as the SPAWN thickness reg)
//   r12      address scratch for computed (gather/scatter) accesses
//   r14      loop condition scratch — uniform
//   r15      reserved (fragment base convention; always 0 here)
//
// Branch conditions only ever come from uniform registers, so generated
// programs never trip the divergent-branch fault and behave identically
// under the multi-instruction (XMT) variant's per-lane control flow.
//
// Shared-memory address map (all generated traffic stays inside it):
//   [kAccBase,  +kAccCells)   multiop/multiprefix accumulator cells; each
//                             cell is bound to one MultiOp for the whole
//                             program and (for multiprefix) used by at most
//                             one PP instruction
//   [kFlagBase, +kFlagCells)  deliberate same-cell conflict targets
//   [kInBase,   +kInCells)    read-only inputs (.data initialised); under
//                             EREW every load gets a fresh window
//   [kOutBase,  ...)          64-cell output windows, one per flow /
//                             exclusive store site
//   [kScratchBase, ...)       computed-address (gather/scatter) windows
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"
#include "mem/shared_memory.hpp"

namespace tcfpn::conformance {

inline constexpr std::size_t kSharedWords = 4096;
inline constexpr std::size_t kLocalWords = 512;
inline constexpr Addr kAccBase = 32;
inline constexpr std::size_t kAccCells = 32;
inline constexpr Addr kFlagBase = 96;
inline constexpr std::size_t kFlagCells = 8;
inline constexpr Addr kInBase = 128;
inline constexpr std::size_t kInCells = 768;
inline constexpr Addr kOutBase = 1024;
inline constexpr Addr kWindow = 64;       ///< cells per exclusive window
inline constexpr Addr kScratchBase = 2048;
inline constexpr Word kMaxThickness = 64;  ///< fits one window

struct Stmt {
  enum class Kind : std::uint8_t {
    kAlu,          ///< rd <- ra op (rb | imm)
    kLdi,          ///< rd <- imm
    kLoad,         ///< rd <- shared[imm (+lane)]
    kGather,       ///< r12 <- r1 + imm; rd <- shared[r12]
    kStore,        ///< shared[imm (+lane)] <- ra
    kScatter,      ///< r12 <- r1 + imm; shared[r12] <- ra
    kLocalLoad,    ///< rd <- local[imm (+lane)]
    kLocalStore,   ///< local[imm (+lane)] <- ra
    kMulti,        ///< shared[imm] op= ra          (op in kMpAdd..kMpOr)
    kPrefix,       ///< rd <- prefix; shared[imm] op= ra (op in kPpAdd..kPpOr)
    kPrint,        ///< print ra (or imm when use_imm)
    kGuardedPrint, ///< if (r1 == 0) print ra/imm   (ESM programs)
    kSetThick,     ///< SETTHICK imm; TID r1
    kNuma,         ///< NUMASET imm; body; NUMASET 0
    kLoop,         ///< uniform counted loop, imm iterations, over body
    kSpawn,        ///< LDI r9, imm; SPAWN r9, <body as worker>
    kJoin,         ///< JOINALL
  };
  Kind kind = Kind::kAlu;
  isa::Opcode op = isa::Opcode::kAdd;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  bool use_imm = true;   ///< kAlu/kPrint: operand B is imm
  bool lane = false;     ///< memory kinds: lane-indexed addressing (+@)
  bool conflict = false; ///< deliberate same-cell CRCW traffic (legal)
  bool violate = false;  ///< deliberately breaks the CRCW policy (SimError)
  Word imm = 0;
  std::uint8_t depth = 0;  ///< loop nesting depth (selects the counter reg)
  std::vector<Stmt> body;  ///< kLoop / kNuma / kSpawn
};

/// A generated (or shrunk) program plus everything needed to boot it.
struct GenProgram {
  std::vector<Stmt> main;
  Word boot_thickness = 1;
  std::uint32_t boot_flows = 1;  ///< > 1 boots ESM-style thickness-1 flows
  bool esm_boot = false;         ///< r1 = thread id, r2 = count poked at boot
  mem::CrcwPolicy policy = mem::CrcwPolicy::kArbitrary;
  std::vector<isa::DataInit> data;
  std::uint64_t seed = 0;
};

/// Structural features of a GenProgram, recomputed from the tree (so it
/// stays correct after shrinking). Drives variant applicability.
struct Profile {
  bool uses_setthick = false;
  bool uses_numa = false;
  bool uses_spawn = false;
  bool uses_local = false;
  bool uses_multiop = false;
  bool uses_prefix = false;
  bool prefix_in_spawn = false;  ///< PP inside a worker body
  bool prefix_in_loop = false;   ///< PP inside a loop body
  bool conflicting = false;      ///< legal same-cell CRCW traffic
  bool expects_error = false;    ///< program must raise SimError
  Word max_thickness = 1;        ///< max static thickness anywhere
  Word max_spawn_thickness = 0;
};

struct GenOptions {
  std::uint64_t seed = 1;
  std::size_t max_stmts = 18;  ///< soft cap on statements per body
  bool allow_errors = true;    ///< include expected-SimError programs
};

struct Materialized {
  isa::Program program;
  std::vector<std::size_t> worker_entries;  ///< spawn bodies, in walk order
};

GenProgram generate(const GenOptions& opt);
Profile profile_of(const GenProgram& gp);
Materialized materialize(const GenProgram& gp);

/// Number of statements in the tree (shrinker progress metric).
std::size_t stmt_count(const GenProgram& gp);

}  // namespace tcfpn::conformance
