// Differential driver: one generated program, many executions, one verdict.
//
// A DiffCase pairs a materialized program with the set of machine "lanes"
// applicable to it — (variant, balanced bound) pairs plus an alignment flag.
// An *aligned* lane takes exactly one oracle step per machine step for this
// program, so even deliberate same-cell CRCW traffic (conflict stores,
// expected SimErrors) lands in the same step on both sides and the full
// outcome — fault class included — must match. A non-aligned lane may chop
// thick instructions across steps or batch several instructions into one
// (balanced / NUMA / XMT), so only race-free programs run on it and the
// comparison covers completion, final memory images and debug output.
//
// Applicability rules (lanes_for):
//  - single-instruction: always, aligned — one instruction per ready flow
//    per step is exactly the oracle's schedule;
//  - balanced: conflicting/faulting programs only when single-flow, with a
//    bound large enough (4096) to stay one-instruction-aligned; multi-flow
//    multiprefix is excluded (group-local budgets can reorder ticket steps);
//  - multi-instruction (XMT): immediate memory, no CRCW checks, per-lane
//    control — only race-free, thickness-stable programs without NUMA /
//    SETTHICK, and multiprefix only when a single flat flow issues it;
//  - single-operation / config-single-operation: thickness-1 programs (the
//    latter also NUMA);
//  - fixed-thickness: single flow, no SETTHICK/SPAWN, one group.
//
// On top of the variant sweep the driver re-runs step-synchronous lanes at
// every requested host-thread count (bit-identical contract, cycles and
// steps included), once with perturbed cost-model knobs (results must not
// move), and through the applicable baseline:: frontends (completion +
// debug output only — Outcome carries no memory image).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "conformance/gen.hpp"
#include "conformance/oracle.hpp"
#include "isa/program.hpp"
#include "machine/config.hpp"
#include "mem/shared_memory.hpp"

namespace tcfpn::conformance {

struct LaneSpec {
  machine::Variant variant = machine::Variant::kSingleInstruction;
  std::uint32_t balanced_bound = 16;  ///< only meaningful for kBalanced
  bool aligned = false;  ///< machine steps == oracle steps for this program

  std::string name() const;
};

/// Everything needed to execute and judge one program, independent of the
/// generator (corpus replay builds these directly from files).
struct DiffCase {
  isa::Program program;
  Word boot_thickness = 1;
  std::uint32_t boot_flows = 1;
  bool esm_boot = false;
  mem::CrcwPolicy policy = mem::CrcwPolicy::kArbitrary;
  bool expect_error = false;
  bool uses_local = false;
  std::vector<LaneSpec> lanes;
};

/// Derives the applicable lanes from a program's structural profile.
std::vector<LaneSpec> lanes_for(const Profile& p, const GenProgram& gp);

/// Materializes a generated program into a ready-to-run case.
DiffCase to_case(const GenProgram& gp);

struct DiffOptions {
  std::vector<std::uint32_t> host_threads = {1, 8};
  bool frontends = true;      ///< also run the applicable baseline:: frontends
  bool perturb_costs = true;  ///< cost-knob invariance lane
  std::uint64_t max_steps = 1u << 18;
  /// When non-zero, every machine lane additionally runs under the
  /// all-kinds fault schedule resil::default_spec_for_seed(fault_seed) with
  /// checkpoint-rollback recovery. The faulted-then-recovered execution must
  /// be indistinguishable from the fault-free oracle (completion, memory
  /// images, debug output) and bit-identical across host-thread counts
  /// (tcffuzz --fault-seed).
  std::uint64_t fault_seed = 0;
  /// When non-zero, two heterogeneous-shape lanes run on top of the sweep
  /// (tcffuzz --shape-seed). First, a vector of default-constructed
  /// GroupSpecs (every field inheriting the uniform value) must be
  /// bit-identical — cycles included — to the uniform machine on the
  /// aligned single-instruction lane: declaring a shape is not allowed to
  /// move anything. Second, every *non-aligned* lane re-runs under the
  /// seeded shape machine::sample_shape draws (per-group T_p, clocks,
  /// pipeline fills, NUMA rows): non-aligned applicability already means
  /// the program's result is schedule-independent, so the shaped run — in
  /// which small groups overflow, fast groups finish early and placement
  /// drifts — must still land exactly on the oracle's memory and PRINT
  /// images, and stay bit-identical across host-thread counts.
  std::uint64_t shape_seed = 0;
  /// When > 1, every step-synchronous lane with enough groups additionally
  /// runs under the loopback shard supervisor (DESIGN.md §14) at this shard
  /// count, and the supervised execution must be *identical* — fault
  /// message, memory, PRINT, cycles and steps — to the plain run of the
  /// same lane (tcffuzz --shards).
  std::uint32_t shards = 0;
  /// When non-zero (with shards > 1) the sharded lane re-runs under a
  /// seeded shard_kill schedule with an ample restart budget: every worker
  /// death must recover from checkpoint onto the exact same result
  /// (tcffuzz --shard-fault-seed).
  std::uint64_t shard_fault_seed = 0;
  /// When non-empty, only these variants' lanes run (tcffuzz --variants).
  std::vector<machine::Variant> only_variants;
  /// Oracle misimplementations for harness self-tests (tcffuzz --inject-bug).
  bool oracle_skip_common = false;
  bool oracle_reverse_prefix = false;
};

struct Divergence {
  std::string lane;    ///< which execution disagreed with the oracle
  std::string detail;  ///< first observed difference
  /// Exact machine configuration of the diverging lane (host threads
  /// included) when the lane was a machine execution; empty for oracle-only
  /// and frontend divergences. flight_record_json replays it.
  std::optional<machine::MachineConfig> config;
};

/// Runs the case through the oracle and every applicable lane; returns the
/// first divergence, or nullopt when every execution agrees.
std::optional<Divergence> run_differential(const DiffCase& c,
                                           const DiffOptions& opt);

/// Convenience: materialize + profile + judge a generated program.
std::optional<Divergence> run_differential(const GenProgram& gp,
                                           const DiffOptions& opt);

/// Coarse fault classification used when comparing SimError outcomes across
/// executions that cannot agree on exact step numbers. Delegates to
/// debug::classify_fault so the fuzzer and the post-mortem exporter can
/// never drift apart on what a "policy" fault is.
std::string fault_class(const std::string& message);

/// Replays the diverging lane of `d` (its config when recorded, otherwise
/// the aligned single-instruction lane) with a flight recorder attached and
/// renders a "tcfpn-postmortem-v1" document: the machine's own fault when
/// the lane faulted, or a synthesized "divergence"-class record carrying
/// `d.detail` when the run finished but disagreed with the oracle. tcffuzz
/// writes this next to every shrunken reproducer.
std::string flight_record_json(const DiffCase& c, const Divergence& d,
                               std::uint64_t max_steps = 1u << 18);

}  // namespace tcfpn::conformance
