#include "conformance/oracle.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/check.hpp"
#include "isa/instr.hpp"

namespace tcfpn::conformance {

namespace {

using isa::Opcode;
using mem::CrcwPolicy;
using mem::MultiOp;

constexpr std::size_t kNoFlow = ~std::size_t{0};

using Regs = std::array<Word, isa::kNumRegisters>;

enum class Status : std::uint8_t { kReady, kWaitingJoin, kHalted };

struct OFlow {
  std::size_t id = 0;
  std::size_t parent = kNoFlow;
  std::size_t pc = 0;
  bool numa = false;
  std::uint32_t numa_block = 1;
  Word thickness = 1;
  Status status = Status::kReady;
  std::uint32_t live_children = 0;
  std::vector<Regs> regs;
  std::vector<std::size_t> call_stack;
  // Store forwarding, exactly as machine/flow.hpp: a flow sees its own
  // writes from instructions *completed* this step; lanes of one
  // instruction never observe each other.
  std::unordered_map<Addr, Word> step_writes;
  std::unordered_map<Addr, Word> instr_writes;
  bool multiop_blocked = false;
};

// Priority key, identical to the machine's lane_key().
std::uint64_t okey(std::size_t flow, LaneId lane) {
  return (static_cast<std::uint64_t>(flow) << 40) | lane;
}

struct OWrite {
  Addr addr;
  std::uint64_t key;
  Word value;
};

struct OMulti {
  Addr addr;
  std::uint64_t key;
  MultiOp op;
  Word value;
  std::size_t flow;
  LaneId lane;
  std::uint8_t rd;
  bool want_result;
};

struct OSpawn {
  std::size_t parent;
  std::size_t entry;
  Word thickness;
  Regs broadcast;
};

class Oracle {
 public:
  Oracle(const isa::Program& program, const OracleOptions& opt)
      : program_(program), opt_(opt), shared_(opt.shared_words, 0),
        local_(opt.local_words, 0) {
    for (const auto& init : program_.data) {
      for (std::size_t i = 0; i < init.words.size(); ++i) {
        check_shared(init.addr + i);
        shared_[init.addr + i] = init.words[i];
      }
    }
  }

  void boot(Word thickness, std::uint32_t flows, bool esm) {
    if (esm) {
      for (std::uint32_t t = 0; t < flows; ++t) {
        OFlow f;
        f.id = flows_.size();
        f.pc = program_.entry();
        f.thickness = 1;
        f.regs.assign(1, Regs{});
        f.regs[0][1] = t;
        f.regs[0][2] = flows;
        flows_.push_back(std::move(f));
      }
      return;
    }
    OFlow f;
    f.id = 0;
    f.pc = program_.entry();
    f.thickness = thickness;
    f.regs.assign(static_cast<std::size_t>(thickness), Regs{});
    flows_.push_back(std::move(f));
  }

  OracleResult run() {
    OracleResult r;
    try {
      while (steps_ < opt_.max_steps && step()) {
      }
      r.completed = std::all_of(flows_.begin(), flows_.end(), [](const OFlow& f) {
        return f.status == Status::kHalted;
      });
    } catch (const SimError& e) {
      r.faulted = true;
      r.fault = e.what();
    }
    r.shared = shared_;
    r.local = local_;
    r.debug = debug_;
    r.steps = steps_;
    return r;
  }

 private:
  bool step() {
    bool any_ready = false;
    for (const OFlow& f : flows_) {
      any_ready |= f.status == Status::kReady;
    }
    if (!any_ready) return false;

    // One TCF instruction (or NUMA block) per ready flow, in flow-id order.
    const std::size_t booted = flows_.size();  // children join the next step
    for (std::size_t i = 0; i < booted; ++i) {
      OFlow& f = flows_[i];
      if (f.status != Status::kReady) continue;
      if (f.numa) {
        run_numa_block(f);
      } else {
        run_instruction(f);
      }
    }

    commit();

    // Step-boundary housekeeping, mirroring Machine::finish_step.
    for (OFlow& f : flows_) {
      f.step_writes.clear();
      f.multiop_blocked = false;
    }
    for (std::size_t id : halted_this_step_) {
      const std::size_t parent = flows_[id].parent;
      if (parent == kNoFlow) continue;
      TCFPN_CHECK(flows_[parent].live_children > 0,
                  "oracle: child halt underflows parent counter");
      --flows_[parent].live_children;
    }
    halted_this_step_.clear();
    for (OFlow& f : flows_) {
      if (f.status == Status::kWaitingJoin && f.live_children == 0) {
        f.status = Status::kReady;
      }
    }
    for (const OSpawn& sp : spawns_) {
      OFlow child;
      child.id = flows_.size();
      child.parent = sp.parent;
      child.pc = sp.entry;
      child.thickness = sp.thickness;
      child.regs.assign(static_cast<std::size_t>(sp.thickness), sp.broadcast);
      flows_.push_back(std::move(child));
    }
    spawns_.clear();
    ++steps_;
    return true;
  }

  const isa::Instr& fetch(const OFlow& f) const {
    if (f.pc >= program_.code.size()) {
      TCFPN_FAULT("flow ", f.id, " ran off the end of the program (pc=", f.pc,
                  ")");
    }
    return program_.code[f.pc];
  }

  void run_instruction(OFlow& f) {
    const isa::Instr& instr = fetch(f);
    const isa::OpInfo& info = isa::op_info(instr.op);
    if (info.is_control || instr.op == Opcode::kPrint) {
      if (exec_control(f, instr)) complete_instruction(f);
      return;
    }
    for (LaneId lane = 0; lane < static_cast<LaneId>(f.thickness); ++lane) {
      exec_data_lane(f, instr, lane);
    }
    complete_instruction(f);
    ++f.pc;
  }

  void run_numa_block(OFlow& f) {
    // Mirror Machine::run_numa_block: up to numa_block instructions per
    // step, stopping at a multioperation or a flow-state change; NUMASET 0
    // mid-block keeps consuming the block's remaining budget in PRAM mode
    // (thickness is 1 by then either way).
    std::uint32_t executed = 0;
    while (executed < f.numa_block && f.status == Status::kReady &&
           !f.multiop_blocked) {
      const isa::Instr& instr = fetch(f);
      const isa::OpInfo& info = isa::op_info(instr.op);
      ++executed;
      if (info.is_control || instr.op == Opcode::kPrint) {
        if (!exec_control(f, instr)) break;
        complete_instruction(f);
      } else {
        exec_data_lane(f, instr, 0);
        complete_instruction(f);
        ++f.pc;
      }
    }
  }

  void complete_instruction(OFlow& f) {
    for (const auto& [a, v] : f.instr_writes) f.step_writes[a] = v;
    f.instr_writes.clear();
  }

  void check_shared(Addr a) const {
    if (a >= shared_.size()) {
      TCFPN_FAULT("shared memory access out of range: addr ", a, " >= ",
                  shared_.size());
    }
  }

  void check_local(Addr a) const {
    if (a >= local_.size()) {
      TCFPN_FAULT("local memory (group 0) access out of range: ", a, " >= ",
                  local_.size());
    }
  }

  Addr effective_addr(const OFlow& f, const isa::Instr& instr,
                      LaneId lane) const {
    const Word base = instr.ra == 0 ? 0 : f.regs[lane][instr.ra];
    Word ea = base + instr.imm;
    if (instr.lane_addr()) ea += static_cast<Word>(lane);
    if (ea < 0) {
      TCFPN_FAULT("negative effective address ", ea, " in flow ", f.id);
    }
    return static_cast<Addr>(ea);
  }

  Word alu(const isa::Instr& instr, Word a, Word b) const {
    const auto ua = static_cast<std::uint64_t>(a);
    const auto ub = static_cast<std::uint64_t>(b);
    switch (instr.op) {
      case Opcode::kAdd: return static_cast<Word>(ua + ub);
      case Opcode::kSub: return static_cast<Word>(ua - ub);
      case Opcode::kMul: return static_cast<Word>(ua * ub);
      case Opcode::kDiv:
        if (b == 0) TCFPN_FAULT("division by zero");
        return a / b;
      case Opcode::kMod:
        if (b == 0) TCFPN_FAULT("modulo by zero");
        return a % b;
      case Opcode::kAnd: return a & b;
      case Opcode::kOr: return a | b;
      case Opcode::kXor: return a ^ b;
      case Opcode::kShl: return static_cast<Word>(ua << (ub & 63));
      case Opcode::kShr: return static_cast<Word>(ua >> (ub & 63));
      case Opcode::kSlt: return a < b ? 1 : 0;
      case Opcode::kSle: return a <= b ? 1 : 0;
      case Opcode::kSeq: return a == b ? 1 : 0;
      case Opcode::kSne: return a != b ? 1 : 0;
      case Opcode::kMax: return std::max(a, b);
      case Opcode::kMin: return std::min(a, b);
      default:
        TCFPN_FAULT("oracle alu() called with non-ALU opcode");
    }
  }

  Word read_shared(OFlow& f, Addr a, LaneId lane) {
    if (auto it = f.step_writes.find(a); it != f.step_writes.end()) {
      // Forwarded from the flow's own committed-this-step writes; exclusive
      // by construction, so it leaves no EREW footprint (same as machine).
      return it->second;
    }
    check_shared(a);
    if (opt_.policy == CrcwPolicy::kErew) {
      reads_.emplace_back(a, okey(f.id, lane));
    }
    return shared_[a];
  }

  void exec_data_lane(OFlow& f, const isa::Instr& instr, LaneId lane) {
    auto& regs = f.regs[lane];
    auto write_reg = [&](std::uint8_t r, Word v) {
      if (r != 0) regs[r] = v;
    };
    const std::uint64_t key = okey(f.id, lane);
    switch (instr.op) {
      case Opcode::kLdi:
        write_reg(instr.rd, instr.imm);
        return;
      case Opcode::kLd: {
        const Addr a = effective_addr(f, instr, lane);
        write_reg(instr.rd, read_shared(f, a, lane));
        return;
      }
      case Opcode::kSt: {
        const Addr a = effective_addr(f, instr, lane);
        check_shared(a);
        const Word v = instr.rb == 0 ? 0 : regs[instr.rb];
        writes_.push_back(OWrite{a, key, v});
        f.instr_writes[a] = v;
        return;
      }
      case Opcode::kLld: {
        const Addr a = effective_addr(f, instr, lane);
        check_local(a);
        write_reg(instr.rd, local_[a]);
        return;
      }
      case Opcode::kLst: {
        const Addr a = effective_addr(f, instr, lane);
        check_local(a);
        local_[a] = instr.rb == 0 ? 0 : regs[instr.rb];
        return;
      }
      case Opcode::kMpAdd:
      case Opcode::kMpMax:
      case Opcode::kMpMin:
      case Opcode::kMpAnd:
      case Opcode::kMpOr: {
        const Addr a = effective_addr(f, instr, lane);
        check_shared(a);
        const auto op = static_cast<MultiOp>(static_cast<int>(instr.op) -
                                             static_cast<int>(Opcode::kMpAdd));
        multis_.push_back(OMulti{a, key, op,
                                 instr.rb == 0 ? 0 : regs[instr.rb], f.id,
                                 lane, 0, false});
        f.multiop_blocked = true;
        return;
      }
      case Opcode::kPpAdd:
      case Opcode::kPpMax:
      case Opcode::kPpMin:
      case Opcode::kPpAnd:
      case Opcode::kPpOr: {
        const Addr a = effective_addr(f, instr, lane);
        check_shared(a);
        const auto op = static_cast<MultiOp>(static_cast<int>(instr.op) -
                                             static_cast<int>(Opcode::kPpAdd));
        multis_.push_back(OMulti{a, key, op,
                                 instr.rb == 0 ? 0 : regs[instr.rb], f.id,
                                 lane, instr.rd, true});
        f.multiop_blocked = true;
        return;
      }
      case Opcode::kTid:
        write_reg(instr.rd, static_cast<Word>(lane));
        return;
      case Opcode::kFid:
        write_reg(instr.rd, static_cast<Word>(f.id));
        return;
      case Opcode::kThick:
        write_reg(instr.rd, f.numa ? 1 : f.thickness);
        return;
      case Opcode::kGid:
        write_reg(instr.rd, 0);  // the oracle has no groups
        return;
      case Opcode::kNop:
        return;
      default: {
        const Word a = instr.ra == 0 ? 0 : regs[instr.ra];
        const Word b = instr.use_imm()
                           ? instr.imm
                           : (instr.rb == 0 ? 0 : regs[instr.rb]);
        write_reg(instr.rd, alu(instr, a, b));
        return;
      }
    }
  }

  // Returns false when the flow left the ready state.
  bool exec_control(OFlow& f, const isa::Instr& instr) {
    auto target = [&](std::int32_t imm) {
      if (imm < 0 || static_cast<std::size_t>(imm) > program_.code.size()) {
        TCFPN_FAULT("branch target ", imm, " out of range in flow ", f.id);
      }
      return static_cast<std::size_t>(imm);
    };
    switch (instr.op) {
      case Opcode::kJmp:
        f.pc = target(instr.imm);
        return true;
      case Opcode::kBeqz:
      case Opcode::kBnez: {
        const Word head = instr.ra == 0 ? 0 : f.regs[0][instr.ra];
        if (!f.numa) {
          for (const auto& regs : f.regs) {
            const Word v = instr.ra == 0 ? 0 : regs[instr.ra];
            if ((v == 0) != (head == 0)) {
              TCFPN_FAULT("divergent branch condition in flow ", f.id,
                          ": use parallel{} to split the flow");
            }
          }
        }
        const bool taken =
            instr.op == Opcode::kBeqz ? (head == 0) : (head != 0);
        f.pc = taken ? target(instr.imm) : f.pc + 1;
        return true;
      }
      case Opcode::kCall:
        f.call_stack.push_back(f.pc + 1);
        f.pc = target(instr.imm);
        return true;
      case Opcode::kRet:
        if (f.call_stack.empty()) {
          TCFPN_FAULT("RET with empty call stack in flow ", f.id);
        }
        f.pc = f.call_stack.back();
        f.call_stack.pop_back();
        return true;
      case Opcode::kHalt:
        f.status = Status::kHalted;
        halted_this_step_.push_back(f.id);
        return false;
      case Opcode::kSetThick: {
        const Word t = instr.use_imm()
                           ? instr.imm
                           : (instr.ra == 0 ? 0 : f.regs[0][instr.ra]);
        if (t < 0) TCFPN_FAULT("negative thickness ", t, " in flow ", f.id);
        if (t == 0) {
          f.status = Status::kHalted;
          halted_this_step_.push_back(f.id);
          return false;
        }
        const Regs old = f.regs.empty() ? Regs{} : f.regs[0];
        f.regs.resize(static_cast<std::size_t>(t), old);
        f.thickness = t;
        f.numa = false;
        f.pc += 1;
        return true;
      }
      case Opcode::kNumaSet: {
        const auto l = instr.imm;
        if (l < 0) TCFPN_FAULT("negative NUMA block length ", l);
        if (l == 0) {
          f.numa = false;
          f.pc += 1;
          return true;
        }
        f.numa = true;
        f.numa_block = static_cast<std::uint32_t>(l);
        f.thickness = 1;
        f.regs.resize(1);
        f.pc += 1;
        return true;
      }
      case Opcode::kSpawn: {
        const Word t = instr.ra == 0 ? 0 : f.regs[0][instr.ra];
        if (t < 0) TCFPN_FAULT("negative spawn thickness ", t);
        if (t > 0) {
          ++f.live_children;
          spawns_.push_back(OSpawn{f.id, target(instr.imm), t, f.regs[0]});
        }
        f.pc += 1;
        return true;
      }
      case Opcode::kJoinAll:
        f.pc += 1;
        if (f.live_children > 0) {
          f.status = Status::kWaitingJoin;
          return false;
        }
        return true;
      case Opcode::kPrint: {
        const Word v = instr.use_imm()
                           ? instr.imm
                           : (instr.ra == 0 ? 0 : f.regs[0][instr.ra]);
        debug_.push_back(v);
        f.pc += 1;
        return true;
      }
      default:
        TCFPN_FAULT("oracle exec_control() called with non-control opcode");
    }
  }

  void commit() {
    commit_writes();
    commit_multis();
    reads_.clear();
  }

  void commit_writes() {
    if (writes_.empty()) {
      check_erew_reads();
      return;
    }
    std::stable_sort(writes_.begin(), writes_.end(),
                     [](const OWrite& x, const OWrite& y) {
                       return x.addr != y.addr ? x.addr < y.addr
                                               : x.key < y.key;
                     });
    // Collapse same-key runs to the last (program-order) value: one lane
    // rewriting a cell within a step is sequential, not concurrent.
    std::size_t out = 0;
    for (std::size_t i = 0; i < writes_.size(); ++i) {
      if (out > 0 && writes_[out - 1].addr == writes_[i].addr &&
          writes_[out - 1].key == writes_[i].key) {
        writes_[out - 1].value = writes_[i].value;
      } else {
        writes_[out++] = writes_[i];
      }
    }
    writes_.resize(out);
    for (std::size_t i = 0; i < writes_.size();) {
      std::size_t j = i + 1;
      while (j < writes_.size() && writes_[j].addr == writes_[i].addr) ++j;
      const std::size_t writers = j - i;
      const Addr addr = writes_[i].addr;
      if (writers > 1) {
        switch (opt_.policy) {
          case CrcwPolicy::kErew:
          case CrcwPolicy::kCrew:
            TCFPN_FAULT(mem::to_string(opt_.policy), " violation: ", writers,
                        " concurrent writes to address ", addr, " in step ",
                        steps_);
          case CrcwPolicy::kCommon:
            if (!opt_.skip_common_check) {
              for (std::size_t k = i + 1; k < j; ++k) {
                if (writes_[k].value != writes_[i].value) {
                  TCFPN_FAULT(
                      "Common-CRCW violation: unequal concurrent writes "
                      "to address ", addr, " in step ", steps_, " (",
                      writes_[i].value, " vs ", writes_[k].value, ")");
                }
              }
            }
            break;
          case CrcwPolicy::kArbitrary:
          case CrcwPolicy::kPriority:
            break;  // lowest key wins
        }
      }
      shared_[addr] = writes_[i].value;
      i = j;
    }
    check_erew_reads();
    writes_.clear();
  }

  void check_erew_reads() {
    if (opt_.policy != CrcwPolicy::kErew || reads_.empty()) return;
    std::sort(reads_.begin(), reads_.end());
    reads_.erase(std::unique(reads_.begin(), reads_.end()), reads_.end());
    for (std::size_t r = 1; r < reads_.size(); ++r) {
      if (reads_[r].first == reads_[r - 1].first) {
        TCFPN_FAULT("EREW violation: concurrent reads of address ",
                    reads_[r].first, " in step ", steps_);
      }
    }
    // reads_ now has at most one key per address; a write by a *different*
    // key to a read address is a concurrent access.
    for (const OWrite& w : writes_) {
      const auto it = std::lower_bound(
          reads_.begin(), reads_.end(), w.addr,
          [](const auto& lhs, Addr rhs) { return lhs.first < rhs; });
      if (it != reads_.end() && it->first == w.addr && it->second != w.key) {
        TCFPN_FAULT("EREW violation: address ", w.addr,
                    " both read and written in step ", steps_);
      }
    }
  }

  void commit_multis() {
    if (multis_.empty()) return;
    const bool rev = opt_.reverse_prefix_order;
    std::stable_sort(multis_.begin(), multis_.end(),
                     [rev](const OMulti& x, const OMulti& y) {
                       if (x.addr != y.addr) return x.addr < y.addr;
                       return rev ? x.key > y.key : x.key < y.key;
                     });
    for (std::size_t i = 0; i < multis_.size();) {
      std::size_t j = i + 1;
      while (j < multis_.size() && multis_[j].addr == multis_[i].addr) ++j;
      const Addr addr = multis_[i].addr;
      const MultiOp op = multis_[i].op;
      Word running = shared_[addr];
      for (std::size_t k = i; k < j; ++k) {
        if (multis_[k].op != op) {
          TCFPN_FAULT("mixed multioperations (", mem::to_string(op), " vs ",
                      mem::to_string(multis_[k].op), ") on address ", addr,
                      " in step ", steps_);
        }
        if (multis_[k].want_result) {
          OFlow& f = flows_[multis_[k].flow];
          if (multis_[k].rd != 0 && multis_[k].lane < f.regs.size()) {
            f.regs[multis_[k].lane][multis_[k].rd] = running;
          }
        }
        running = mem::apply_multiop(op, running, multis_[k].value);
      }
      shared_[addr] = running;
      i = j;
    }
    multis_.clear();
  }

  const isa::Program& program_;
  const OracleOptions& opt_;
  std::vector<Word> shared_;
  std::vector<Word> local_;
  std::vector<Word> debug_;
  std::vector<OFlow> flows_;
  std::vector<OWrite> writes_;
  std::vector<OMulti> multis_;
  std::vector<std::pair<Addr, std::uint64_t>> reads_;
  std::vector<OSpawn> spawns_;
  std::vector<std::size_t> halted_this_step_;
  std::uint64_t steps_ = 0;
};

}  // namespace

OracleResult run_oracle(const isa::Program& program, Word boot_thickness,
                        std::uint32_t boot_flows, bool esm_boot,
                        const OracleOptions& opt) {
  Oracle o(program, opt);
  o.boot(boot_thickness, boot_flows, esm_boot);
  return o.run();
}

}  // namespace tcfpn::conformance
