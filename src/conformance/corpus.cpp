#include "conformance/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "isa/assembler.hpp"

namespace tcfpn::conformance {

namespace {

using machine::Variant;
using mem::CrcwPolicy;

const char* policy_name(CrcwPolicy p) {
  switch (p) {
    case CrcwPolicy::kErew: return "erew";
    case CrcwPolicy::kCrew: return "crew";
    case CrcwPolicy::kCommon: return "common";
    case CrcwPolicy::kArbitrary: return "arbitrary";
    case CrcwPolicy::kPriority: return "priority";
  }
  return "?";
}

CrcwPolicy parse_policy(const std::string& s) {
  if (s == "erew") return CrcwPolicy::kErew;
  if (s == "crew") return CrcwPolicy::kCrew;
  if (s == "common") return CrcwPolicy::kCommon;
  if (s == "arbitrary") return CrcwPolicy::kArbitrary;
  if (s == "priority") return CrcwPolicy::kPriority;
  TCFPN_FAULT("corpus: unknown policy '", s, "'");
}

Variant parse_variant(const std::string& s) {
  if (s == "single-instruction") return Variant::kSingleInstruction;
  if (s == "balanced") return Variant::kBalanced;
  if (s == "multi-instruction") return Variant::kMultiInstruction;
  if (s == "single-operation") return Variant::kSingleOperation;
  if (s == "config-single-operation") return Variant::kConfigSingleOperation;
  if (s == "fixed-thickness") return Variant::kFixedThickness;
  TCFPN_FAULT("corpus: unknown variant '", s, "'");
}

LaneSpec parse_lane(std::string tok) {
  LaneSpec lane;
  if (auto slash = tok.find('/'); slash != std::string::npos) {
    const std::string suffix = tok.substr(slash + 1);
    TCFPN_CHECK(suffix == "aligned", "corpus: unknown lane suffix '", suffix,
                "'");
    lane.aligned = true;
    tok.resize(slash);
  }
  if (auto colon = tok.find(':'); colon != std::string::npos) {
    lane.balanced_bound =
        static_cast<std::uint32_t>(std::stoul(tok.substr(colon + 1)));
    tok.resize(colon);
  }
  lane.variant = parse_variant(tok);
  return lane;
}

/// Value of "key=<digits>" inside a directive payload.
std::uint64_t field(const std::string& s, const std::string& key) {
  const std::string needle = key + "=";
  const auto at = s.find(needle);
  TCFPN_CHECK(at != std::string::npos, "corpus: missing field '", key, "'");
  return std::stoull(s.substr(at + needle.size()));
}

}  // namespace

std::string serialize_case(const DiffCase& c) {
  std::ostringstream os;
  os << "; tcffuzz corpus v1\n";
  os << "; policy: " << policy_name(c.policy) << "\n";
  os << "; boot: thickness=" << c.boot_thickness << " flows=" << c.boot_flows
     << " esm=" << (c.esm_boot ? 1 : 0) << "\n";
  os << "; expect: " << (c.expect_error ? "error" : "ok") << "\n";
  os << "; local: " << (c.uses_local ? 1 : 0) << "\n";
  os << "; lanes:";
  for (const LaneSpec& lane : c.lanes) {
    os << " " << machine::to_string(lane.variant);
    if (lane.variant == Variant::kBalanced) os << ":" << lane.balanced_bound;
    if (lane.aligned) os << "/aligned";
  }
  os << "\n";
  for (const auto& init : c.program.data) {
    os << ".data " << init.addr;
    for (Word w : init.words) os << ", " << w;
    os << "\n";
  }
  for (const isa::Instr& instr : c.program.code) {
    os << "  " << isa::disassemble(instr) << "\n";
  }
  return os.str();
}

DiffCase parse_case(const std::string& text) {
  DiffCase c;
  bool versioned = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("; ", 0) != 0) continue;
    const std::string body = line.substr(2);
    if (body == "tcffuzz corpus v1") {
      versioned = true;
    } else if (body.rfind("policy: ", 0) == 0) {
      c.policy = parse_policy(body.substr(8));
    } else if (body.rfind("boot: ", 0) == 0) {
      const std::string payload = body.substr(6);
      c.boot_thickness = static_cast<Word>(field(payload, "thickness"));
      c.boot_flows = static_cast<std::uint32_t>(field(payload, "flows"));
      c.esm_boot = field(payload, "esm") != 0;
    } else if (body.rfind("expect: ", 0) == 0) {
      c.expect_error = body.substr(8) == "error";
    } else if (body.rfind("local: ", 0) == 0) {
      c.uses_local = body.substr(7) == "1";
    } else if (body.rfind("lanes:", 0) == 0) {
      std::istringstream ls(body.substr(6));
      std::string tok;
      while (ls >> tok) c.lanes.push_back(parse_lane(tok));
    }
  }
  TCFPN_CHECK(versioned, "corpus: missing '; tcffuzz corpus v1' header");
  TCFPN_CHECK(!c.lanes.empty(), "corpus: entry declares no lanes");
  c.program = isa::assemble(text);
  return c;
}

void save_case(const DiffCase& c, const std::string& path) {
  std::ofstream out(path);
  TCFPN_CHECK(out.good(), "corpus: cannot write '", path, "'");
  out << serialize_case(c);
}

DiffCase load_case(const std::string& path) {
  std::ifstream in(path);
  TCFPN_CHECK(in.good(), "corpus: cannot read '", path, "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_case(text.str());
}

std::vector<std::string> corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".s") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace tcfpn::conformance
