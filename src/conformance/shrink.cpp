#include "conformance/shrink.hpp"

#include <optional>
#include <vector>

namespace tcfpn::conformance {

namespace {

/// Path to a statement: child indices from the root body down.
using Path = std::vector<std::size_t>;

void collect_paths(const std::vector<Stmt>& body, Path& prefix,
                   std::vector<Path>& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    prefix.push_back(i);
    // Children first: deleting an inner statement is a smaller move than
    // deleting the construct around it.
    collect_paths(body[i].body, prefix, out);
    out.push_back(prefix);
    prefix.pop_back();
  }
}

std::vector<Stmt>* body_of(GenProgram& gp, const Path& path,
                           std::size_t depth) {
  std::vector<Stmt>* body = &gp.main;
  for (std::size_t d = 0; d < depth; ++d) {
    if (path[d] >= body->size()) return nullptr;
    body = &(*body)[path[d]].body;
  }
  return body;
}

Stmt* stmt_at(GenProgram& gp, const Path& path) {
  std::vector<Stmt>* body = body_of(gp, path, path.size() - 1);
  if (body == nullptr || path.back() >= body->size()) return nullptr;
  return &(*body)[path.back()];
}

}  // namespace

ShrinkResult shrink(const GenProgram& gp, const Divergence& seed_divergence,
                    const DiffOptions& opt) {
  ShrinkResult best{gp, seed_divergence, 0, 0};

  auto try_candidate = [&](GenProgram candidate) {
    ++best.attempts;
    if (auto d = run_differential(candidate, opt)) {
      best.program = std::move(candidate);
      best.divergence = *d;
      return true;
    }
    return false;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    ++best.rounds;

    // Pass 1: single-statement deletion, innermost first. Paths are
    // re-enumerated against the current best after every success.
    for (bool deleted = true; deleted;) {
      deleted = false;
      std::vector<Path> paths;
      Path prefix;
      {
        GenProgram cur = best.program;  // enumeration only
        collect_paths(cur.main, prefix, paths);
      }
      for (const Path& p : paths) {
        GenProgram candidate = best.program;
        std::vector<Stmt>* body = body_of(candidate, p, p.size() - 1);
        if (body == nullptr || p.back() >= body->size()) continue;
        body->erase(body->begin() + static_cast<std::ptrdiff_t>(p.back()));
        if (try_candidate(std::move(candidate))) {
          deleted = true;
          improved = true;
          break;  // paths are stale; re-enumerate
        }
      }
    }

    // Pass 2: hoist construct bodies (loop/numa/spawn -> inline body).
    for (bool hoisted = true; hoisted;) {
      hoisted = false;
      std::vector<Path> paths;
      Path prefix;
      {
        GenProgram cur = best.program;
        collect_paths(cur.main, prefix, paths);
      }
      for (const Path& p : paths) {
        GenProgram candidate = best.program;
        Stmt* s = stmt_at(candidate, p);
        if (s == nullptr) continue;
        if (s->kind != Stmt::Kind::kLoop && s->kind != Stmt::Kind::kNuma &&
            s->kind != Stmt::Kind::kSpawn) {
          continue;
        }
        std::vector<Stmt> inner = std::move(s->body);
        std::vector<Stmt>* body = body_of(candidate, p, p.size() - 1);
        const auto at = body->begin() + static_cast<std::ptrdiff_t>(p.back());
        body->erase(at);
        body->insert(body->begin() + static_cast<std::ptrdiff_t>(p.back()),
                     inner.begin(), inner.end());
        if (try_candidate(std::move(candidate))) {
          hoisted = true;
          improved = true;
          break;
        }
      }
    }

    // Pass 3: value reductions.
    {
      std::vector<Path> paths;
      Path prefix;
      {
        GenProgram cur = best.program;
        collect_paths(cur.main, prefix, paths);
      }
      for (const Path& p : paths) {
        GenProgram candidate = best.program;
        Stmt* s = stmt_at(candidate, p);
        if (s == nullptr) continue;
        Word target = s->imm;
        switch (s->kind) {
          case Stmt::Kind::kLoop:
          case Stmt::Kind::kNuma:
            target = 1;
            break;
          case Stmt::Kind::kSpawn:
          case Stmt::Kind::kSetThick:
            target = s->imm > 2 ? 2 : 1;
            break;
          default:
            continue;
        }
        if (target == s->imm) continue;
        s->imm = target;
        if (try_candidate(std::move(candidate))) improved = true;
      }
      for (Word t : {Word{2}, Word{1}}) {
        if (best.program.boot_thickness > t) {
          GenProgram candidate = best.program;
          candidate.boot_thickness = t;
          if (try_candidate(std::move(candidate))) improved = true;
        }
      }
      if (best.program.boot_flows > 2) {
        GenProgram candidate = best.program;
        candidate.boot_flows = 2;
        if (try_candidate(std::move(candidate))) improved = true;
      }
    }
  }
  return best;
}

}  // namespace tcfpn::conformance
