// The sequential reference oracle of the conformance harness.
//
// A plain interpreter for Section 3.1 semantics: step-synchronous shared
// memory, lane-private registers, flow-level control, multioperations and
// ordered multiprefix — and nothing else. No cost model, no network, no
// scheduler, no groups, no host parallelism. Every ready flow executes one
// TCF instruction (or one NUMA block) per step, in flow-id order; staged
// memory traffic commits at the step boundary under the CRCW policy.
//
// The differential driver (diff.hpp) treats this interpreter as the
// specification: any machine variant applicable to a program must produce
// the same final shared-memory image, debug output and SimError outcome.
//
// Commit semantics (the spec the machine is held to):
//  - writes are keyed by (flow id << 40) | lane, the machine's Priority
//    order. Several writes by the *same* key to one cell within a step are
//    program-ordered, not concurrent: the last one wins and the earlier
//    ones are invisible to the CRCW policy (store forwarding already makes
//    them flow-private). Distinct keys on one cell are concurrent: EREW and
//    CREW fault, Common faults unless all values agree, Arbitrary and
//    Priority take the lowest key.
//  - under EREW a cell may be touched by at most one key per step, counting
//    reads and writes together (re-reads and read-modify-write by a single
//    key are exclusive and therefore legal).
//  - multioperation contributions to one cell combine in key order starting
//    from the cell's pre-step value; a multiprefix participant receives the
//    running value before its own contribution (the ordered-multiprefix
//    ticket semantics). Mixing different multioperations on one cell in one
//    step faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"
#include "mem/shared_memory.hpp"

namespace tcfpn::conformance {

struct OracleOptions {
  mem::CrcwPolicy policy = mem::CrcwPolicy::kArbitrary;
  std::size_t shared_words = 4096;
  std::size_t local_words = 512;
  std::uint64_t max_steps = 1u << 18;

  // Deliberate misimplementations for harness self-tests (tcffuzz
  // --inject-bug): the *oracle* is broken so the fuzzer must catch the
  // mismatch and shrink it; the machine stays the correct side.
  bool skip_common_check = false;    ///< drop Common-CRCW value comparison
  bool reverse_prefix_order = false; ///< combine multiprefix in reverse key order
};

struct OracleResult {
  bool completed = false;   ///< every flow halted within max_steps
  bool faulted = false;
  std::string fault;        ///< SimError message when faulted
  std::vector<Word> shared; ///< final shared-memory image (post-fault: partial)
  std::vector<Word> local;  ///< the single flat local memory
  std::vector<Word> debug;  ///< PRINT outputs in execution order
  std::uint64_t steps = 0;
};

/// Boots either one flow of `boot_thickness` at the program entry, or (when
/// `esm_boot`) `boot_flows` thickness-1 flows with r1 = thread id and
/// r2 = thread count, then runs to completion under `opt`.
OracleResult run_oracle(const isa::Program& program, Word boot_thickness,
                        std::uint32_t boot_flows, bool esm_boot,
                        const OracleOptions& opt);

}  // namespace tcfpn::conformance
