// Corpus persistence for the conformance harness.
//
// A corpus entry is a plain tcfpn assembler file: metadata rides in `;`
// comment directives, so every entry also assembles directly with tcfasm /
// isa::assemble. No golden values are stored — replaying an entry re-runs
// the differential against the oracle, which stays the single source of
// truth even as cost-model knobs evolve.
//
//   ; tcffuzz corpus v1
//   ; policy: arbitrary | priority | common | crew | erew
//   ; boot: thickness=<T> flows=<N> esm=<0|1>
//   ; expect: ok | error
//   ; local: 0 | 1
//   ; lanes: <variant>[:<bound>][/aligned] ...
//   .data <addr>, <w0>, <w1>, ...
//   <one disassembled instruction per line; numeric branch targets>
#pragma once

#include <string>
#include <vector>

#include "conformance/diff.hpp"

namespace tcfpn::conformance {

/// Renders a case to the corpus text format.
std::string serialize_case(const DiffCase& c);

/// Parses corpus text back into a runnable case. Throws SimError on
/// malformed directives or assembly errors.
DiffCase parse_case(const std::string& text);

/// File convenience wrappers (throw SimError on I/O failure).
void save_case(const DiffCase& c, const std::string& path);
DiffCase load_case(const std::string& path);

/// All `*.s` files under `dir`, sorted by name (deterministic replay order).
std::vector<std::string> corpus_files(const std::string& dir);

}  // namespace tcfpn::conformance
