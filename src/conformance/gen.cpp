#include "conformance/gen.hpp"

#include <algorithm>

#include "tcf/builder.hpp"

namespace tcfpn::conformance {

namespace {

using isa::Opcode;
using mem::CrcwPolicy;
using mem::MultiOp;

constexpr std::uint8_t kVarRegs[] = {4, 5, 6, 7, 8};
constexpr std::uint8_t kUniRegs[] = {9, 10, 13};

// ALU opcodes the generator draws from. Div/Mod are emitted with a nonzero
// immediate divisor only, so generated programs never fault arithmetically.
constexpr Opcode kAluOps[] = {
    Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd, Opcode::kOr,
    Opcode::kXor, Opcode::kShl, Opcode::kShr, Opcode::kSlt, Opcode::kSle,
    Opcode::kSeq, Opcode::kSne, Opcode::kMax, Opcode::kMin, Opcode::kDiv,
    Opcode::kMod,
};

constexpr MultiOp kMultiOps[] = {MultiOp::kAdd, MultiOp::kMax, MultiOp::kMin,
                                 MultiOp::kAnd, MultiOp::kOr};

Opcode mp_opcode(MultiOp op) {
  return static_cast<Opcode>(static_cast<int>(Opcode::kMpAdd) +
                             static_cast<int>(op));
}
Opcode pp_opcode(MultiOp op) {
  return static_cast<Opcode>(static_cast<int>(Opcode::kPpAdd) +
                             static_cast<int>(op));
}

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&arr)[N]) {
  return arr[rng.below(N)];
}

// ---------------------------------------------------------------------------
// Generation state
// ---------------------------------------------------------------------------

struct AccCell {
  Addr addr;
  MultiOp op;
  bool prefix_used;  ///< bound to a PP instruction: exclusive forever
};

struct GenState {
  explicit GenState(Rng r) : rng(r) {}
  Rng rng;
  CrcwPolicy policy = CrcwPolicy::kArbitrary;
  bool strict = false;  ///< EREW/CREW: every store site statically fresh
  bool erew = false;    ///< EREW: every load site statically fresh too
  Addr in_cursor = kInBase;        ///< next fresh input window
  std::uint32_t out_windows = 0;   ///< windows handed out at kOutBase
  std::uint32_t scat_windows = 0;  ///< windows handed out at kScratchBase
  Addr local_cursor = 0;           ///< next fresh local cell
  std::vector<Addr> local_written;
  std::vector<AccCell> accs;

  bool fresh_input(Addr* a) {
    if (in_cursor + kWindow > kInBase + kInCells) return false;
    *a = in_cursor;
    in_cursor += kWindow;
    return true;
  }
  bool alloc_out(Addr* a) {
    if (out_windows >= 16) return false;
    *a = kOutBase + kWindow * out_windows++;
    return true;
  }
  bool alloc_scatter(Addr* a) {
    if (scat_windows >= 16) return false;
    *a = kScratchBase + kWindow * scat_windows++;
    return true;
  }
};

struct FlowCtx {
  Word thickness = 1;
  bool is_main = true;
  bool esm = false;       ///< thin flow addressing through r1 (thread id)
  bool in_numa = false;
  std::uint8_t depth = 0;  ///< loop nesting depth
  bool can_setthick = false;
  bool can_numa = false;
  bool allow_local = false;
  Addr out_window = 0;      ///< flow's default store window (relaxed policies)
  Addr scatter_window = 0;  ///< flow's computed-address window
  bool has_scatter = false;
};

std::uint8_t var_reg(GenState& st) { return pick(st.rng, kVarRegs); }
std::uint8_t uni_reg(GenState& st) { return pick(st.rng, kUniRegs); }

// Any register whose value is flow-uniform: r0, the ESM thread count (r2,
// zero elsewhere), the loop counters and the uniform scratch set.
std::uint8_t uniform_source(GenState& st) {
  constexpr std::uint8_t srcs[] = {0, 2, 3, 9, 10, 11, 13};
  return pick(st.rng, srcs);
}

std::uint8_t value_source(GenState& st, const FlowCtx& ctx) {
  // Lane-varying value: the lane id or varying scratch; thin non-ESM flows
  // only have uniform state that varies, so anything goes.
  (void)ctx;
  const std::uint32_t roll = static_cast<std::uint32_t>(st.rng.below(4));
  if (roll == 0) return 1;  // r1: lane / thread index
  if (roll == 1) return uniform_source(st);
  return var_reg(st);
}

Stmt make_alu(GenState& st, bool uniform) {
  Stmt s;
  s.kind = Stmt::Kind::kAlu;
  s.op = pick(st.rng, kAluOps);
  if (uniform) {
    s.rd = uni_reg(st);
    s.ra = uniform_source(st);
  } else {
    s.rd = var_reg(st);
    s.ra = st.rng.chance(0.4) ? std::uint8_t{1}
                              : (st.rng.chance(0.5) ? var_reg(st)
                                                    : uniform_source(st));
  }
  if (s.op == Opcode::kDiv || s.op == Opcode::kMod) {
    s.use_imm = true;
    s.imm = st.rng.range(1, 9);
  } else if (s.op == Opcode::kShl || s.op == Opcode::kShr) {
    s.use_imm = true;
    s.imm = st.rng.range(0, 6);
  } else if (st.rng.chance(0.5)) {
    s.use_imm = true;
    s.imm = st.rng.range(-8, 31);
  } else {
    s.use_imm = false;
    s.rb = uniform ? uniform_source(st) : value_source(st, FlowCtx{});
  }
  return s;
}

Stmt make_ldi(GenState& st) {
  Stmt s;
  s.kind = Stmt::Kind::kLdi;
  s.rd = st.rng.chance(0.6) ? var_reg(st) : uni_reg(st);
  s.imm = st.rng.range(-64, 64);
  return s;
}

// Load from the read-only input region. Returns false if the EREW fresh-cell
// budget is exhausted.
bool make_load(GenState& st, FlowCtx& ctx, Stmt* out) {
  Stmt s;
  s.rd = var_reg(st);
  if (ctx.esm) {
    // Thread-indexed gather: r12 = r1 + base, flows hit disjoint cells.
    s.kind = Stmt::Kind::kGather;
    Addr base = 0;
    if (st.erew) {
      if (!st.fresh_input(&base)) return false;
    } else {
      base = kInBase + st.rng.below(kInCells - kWindow);
    }
    s.imm = static_cast<Word>(base);
    *out = s;
    return true;
  }
  if (st.erew) {
    Addr base = 0;
    if (!st.fresh_input(&base)) return false;
    s.kind = st.rng.chance(0.25) ? Stmt::Kind::kGather : Stmt::Kind::kLoad;
    s.lane = s.kind == Stmt::Kind::kLoad;  // lane-disjoint either way
    s.imm = static_cast<Word>(base);
    *out = s;
    return true;
  }
  // Relaxed read policies: any input cell; lane-shared reads are legal
  // everywhere except EREW.
  s.kind = Stmt::Kind::kLoad;
  s.lane = st.rng.chance(0.6);
  s.imm = static_cast<Word>(kInBase + st.rng.below(kInCells - kWindow));
  *out = s;
  return true;
}

bool make_store(GenState& st, FlowCtx& ctx, Stmt* out) {
  Stmt s;
  s.ra = value_source(st, ctx);
  if (ctx.esm) {
    s.kind = Stmt::Kind::kScatter;
    Addr base = 0;
    if (st.strict) {
      if (!st.alloc_scatter(&base)) return false;
    } else {
      if (!ctx.has_scatter) {
        if (!st.alloc_scatter(&ctx.scatter_window)) return false;
        ctx.has_scatter = true;
      }
      base = ctx.scatter_window;
    }
    s.imm = static_cast<Word>(base);
    *out = s;
    return true;
  }
  s.kind = Stmt::Kind::kStore;
  s.lane = ctx.thickness > 1;
  if (st.strict) {
    Addr base = 0;
    if (!st.alloc_out(&base)) return false;
    s.imm = static_cast<Word>(base);
  } else {
    s.imm = static_cast<Word>(ctx.out_window +
                              (ctx.thickness > 1 ? 0 : st.rng.below(kWindow)));
  }
  *out = s;
  return true;
}

Stmt make_multi(GenState& st, FlowCtx& ctx) {
  Stmt s;
  s.kind = Stmt::Kind::kMulti;
  s.ra = value_source(st, ctx);
  // Reuse an accumulator cell (keeping its op) or open a new one.
  std::vector<std::size_t> reusable;
  for (std::size_t i = 0; i < st.accs.size(); ++i) {
    if (!st.accs[i].prefix_used) reusable.push_back(i);
  }
  if (!reusable.empty() && (st.rng.chance(0.6) || st.accs.size() >= kAccCells)) {
    const AccCell& c = st.accs[reusable[st.rng.below(reusable.size())]];
    s.imm = static_cast<Word>(c.addr);
    s.op = mp_opcode(c.op);
  } else {
    const MultiOp op = pick(st.rng, kMultiOps);
    const Addr a = kAccBase + st.accs.size();
    st.accs.push_back(AccCell{a, op, false});
    s.imm = static_cast<Word>(a);
    s.op = mp_opcode(op);
  }
  return s;
}

// Multiprefix cells are exclusive: one PP instruction, nothing else, ever.
// That keeps the ticket ordering comparable across every applicable variant.
bool make_prefix(GenState& st, FlowCtx& ctx, Stmt* out) {
  if (st.accs.size() >= kAccCells) return false;
  Stmt s;
  s.kind = Stmt::Kind::kPrefix;
  s.rd = var_reg(st);
  s.ra = value_source(st, ctx);
  const MultiOp op = pick(st.rng, kMultiOps);
  const Addr a = kAccBase + st.accs.size();
  st.accs.push_back(AccCell{a, op, true});
  s.imm = static_cast<Word>(a);
  s.op = pp_opcode(op);
  return *out = s, true;
}

Stmt make_print(GenState& st, bool guarded) {
  Stmt s;
  s.kind = guarded ? Stmt::Kind::kGuardedPrint : Stmt::Kind::kPrint;
  if (st.rng.chance(0.4)) {
    s.use_imm = true;
    s.imm = st.rng.range(0, 99);
  } else {
    s.use_imm = false;
    s.ra = st.rng.chance(0.5) ? var_reg(st) : uniform_source(st);
  }
  return s;
}

Stmt make_local(GenState& st, bool store) {
  Stmt s;
  if (store) {
    s.kind = Stmt::Kind::kLocalStore;
    s.ra = value_source(st, FlowCtx{});
    s.imm = static_cast<Word>(st.local_cursor);
    st.local_written.push_back(st.local_cursor);
    st.local_cursor = (st.local_cursor + 1) % kLocalWords;
  } else {
    s.kind = Stmt::Kind::kLocalLoad;
    s.rd = var_reg(st);
    if (!st.local_written.empty() && st.rng.chance(0.6)) {
      s.imm = static_cast<Word>(
          st.local_written[st.rng.below(st.local_written.size())]);
    } else {
      s.imm = static_cast<Word>(st.rng.below(kLocalWords));
    }
  }
  return s;
}

void emit_stmts(GenState& st, FlowCtx& ctx, std::vector<Stmt>* out,
                std::size_t budget);

Stmt make_loop(GenState& st, FlowCtx& ctx) {
  Stmt s;
  s.kind = Stmt::Kind::kLoop;
  s.imm = st.rng.range(1, 5);
  s.depth = ctx.depth;
  FlowCtx inner = ctx;
  inner.depth = static_cast<std::uint8_t>(ctx.depth + 1);
  inner.can_setthick = false;  // thickness changes stay loop-free
  inner.can_numa = false;
  emit_stmts(st, inner, &s.body, 1 + st.rng.below(4));
  ctx.has_scatter = inner.has_scatter;
  ctx.scatter_window = inner.scatter_window;
  return s;
}

Stmt make_numa(GenState& st, FlowCtx& ctx) {
  Stmt s;
  s.kind = Stmt::Kind::kNuma;
  s.imm = st.rng.range(1, 6);  // block length: instructions per step
  FlowCtx inner = ctx;
  inner.in_numa = true;
  inner.can_numa = false;
  inner.can_setthick = false;
  inner.thickness = 1;
  emit_stmts(st, inner, &s.body, 2 + st.rng.below(5));
  ctx.has_scatter = inner.has_scatter;
  ctx.scatter_window = inner.scatter_window;
  return s;
}

Stmt make_setthick(GenState& st, FlowCtx& ctx) {
  constexpr Word kThicknesses[] = {1, 2, 3, 4, 8, 16, 32, 64};
  Stmt s;
  s.kind = Stmt::Kind::kSetThick;
  s.imm = pick(st.rng, kThicknesses);
  ctx.thickness = s.imm;
  return s;
}

void emit_stmts(GenState& st, FlowCtx& ctx, std::vector<Stmt>* out,
                std::size_t budget) {
  for (std::size_t i = 0; i < budget; ++i) {
    const std::uint64_t roll = st.rng.below(100);
    Stmt s;
    if (roll < 22) {
      s = make_alu(st, /*uniform=*/st.rng.chance(0.4));
    } else if (roll < 30) {
      s = make_ldi(st);
    } else if (roll < 48) {
      if (!make_load(st, ctx, &s)) s = make_alu(st, false);
    } else if (roll < 64) {
      if (!make_store(st, ctx, &s)) s = make_alu(st, false);
    } else if (roll < 74) {
      s = make_multi(st, ctx);
    } else if (roll < 79) {
      if (!make_prefix(st, ctx, &s)) s = make_multi(st, ctx);
    } else if (roll < 84 && ctx.is_main && !ctx.esm && !ctx.in_numa) {
      s = make_print(st, /*guarded=*/false);
    } else if (roll < 90 && ctx.depth < 2 && !ctx.in_numa) {
      s = make_loop(st, ctx);
    } else if (roll < 94 && ctx.can_setthick && ctx.depth == 0 &&
               !ctx.in_numa) {
      s = make_setthick(st, ctx);
    } else if (roll < 97 && ctx.can_numa && ctx.thickness == 1 &&
               !ctx.in_numa && ctx.depth == 0) {
      s = make_numa(st, ctx);
    } else if (ctx.allow_local && (ctx.in_numa || ctx.thickness == 1)) {
      s = make_local(st, /*store=*/st.rng.chance(0.5));
    } else {
      s = make_alu(st, /*uniform=*/st.rng.chance(0.4));
    }
    out->push_back(std::move(s));
  }
}

// Deliberate same-cell CRCW traffic that stays *legal* under the program's
// policy (Common writes equal values; Arbitrary/Priority pick the lowest
// lane key). Only emitted for programs whose differential lanes are all
// step-aligned with the oracle.
void append_conflict(GenState& st, std::vector<Stmt>* out, Addr flag_cell) {
  if (st.policy == CrcwPolicy::kCommon) {
    // All lanes (and flows) must agree on the value: pin it right before.
    Stmt ldi;
    ldi.kind = Stmt::Kind::kLdi;
    ldi.rd = 13;
    ldi.imm = st.rng.range(0, 15);
    ldi.conflict = true;
    out->push_back(ldi);
    Stmt s;
    s.kind = Stmt::Kind::kStore;
    s.ra = 13;
    s.imm = static_cast<Word>(flag_cell);
    s.conflict = true;
    out->push_back(s);
    return;
  }
  Stmt s;
  s.kind = Stmt::Kind::kStore;
  s.ra = st.rng.chance(0.5) ? std::uint8_t{1} : var_reg(st);
  s.imm = static_cast<Word>(flag_cell);
  s.conflict = true;
  out->push_back(s);
}

// A deliberately-invalid access for the program's policy: the machine (and
// the oracle) must raise SimError.
Stmt make_violation(GenState& st) {
  Stmt s;
  s.violate = true;
  s.imm = static_cast<Word>(kFlagBase + st.rng.below(kFlagCells));
  switch (st.policy) {
    case CrcwPolicy::kErew:
      if (st.rng.chance(0.5)) {
        s.kind = Stmt::Kind::kLoad;  // concurrent read of one cell
        s.rd = var_reg(st);
      } else {
        s.kind = Stmt::Kind::kStore;  // concurrent write
        s.ra = var_reg(st);
      }
      break;
    case CrcwPolicy::kCrew:
      s.kind = Stmt::Kind::kStore;  // any concurrent write
      s.ra = var_reg(st);
      break;
    case CrcwPolicy::kCommon:
      s.kind = Stmt::Kind::kStore;  // unequal values: the lane id
      s.ra = 1;
      break;
    default:
      // Arbitrary/Priority have no invalid accesses; fall back to a benign
      // conflict (generate() never asks for this).
      s.kind = Stmt::Kind::kStore;
      s.ra = 1;
      s.violate = false;
      s.conflict = true;
      break;
  }
  return s;
}

void insert_at_random(Rng& rng, std::vector<Stmt>* body, std::vector<Stmt> add) {
  const std::size_t pos = rng.below(body->size() + 1);
  body->insert(body->begin() + static_cast<std::ptrdiff_t>(pos),
               std::make_move_iterator(add.begin()),
               std::make_move_iterator(add.end()));
}

}  // namespace

// ---------------------------------------------------------------------------
// generate()
// ---------------------------------------------------------------------------

GenProgram generate(const GenOptions& opt) {
  GenState st(Rng(opt.seed));
  GenProgram gp;
  gp.seed = opt.seed;

  {
    const std::uint64_t roll = st.rng.below(100);
    if (roll < 28) gp.policy = CrcwPolicy::kArbitrary;
    else if (roll < 46) gp.policy = CrcwPolicy::kPriority;
    else if (roll < 64) gp.policy = CrcwPolicy::kCommon;
    else if (roll < 82) gp.policy = CrcwPolicy::kCrew;
    else gp.policy = CrcwPolicy::kErew;
  }
  st.policy = gp.policy;
  st.strict = gp.policy == CrcwPolicy::kErew || gp.policy == CrcwPolicy::kCrew;
  st.erew = gp.policy == CrcwPolicy::kErew;

  enum class Shape { kFlatThick, kFork, kEsm, kNumaSingle };
  Shape shape;
  {
    const std::uint64_t roll = st.rng.below(100);
    if (roll < 35) shape = Shape::kFlatThick;
    else if (roll < 60) shape = Shape::kFork;
    else if (roll < 80) shape = Shape::kEsm;
    else shape = Shape::kNumaSingle;
  }

  const bool expect_error =
      opt.allow_errors &&
      (gp.policy == CrcwPolicy::kErew || gp.policy == CrcwPolicy::kCrew ||
       gp.policy == CrcwPolicy::kCommon) &&
      st.rng.chance(0.3);
  if (expect_error) shape = Shape::kFlatThick;

  const bool conflicting =
      !expect_error &&
      (gp.policy == CrcwPolicy::kCommon ||
       gp.policy == CrcwPolicy::kArbitrary ||
       gp.policy == CrcwPolicy::kPriority) &&
      (shape == Shape::kFlatThick || shape == Shape::kFork) &&
      st.rng.chance(0.3);

  const std::size_t cap = std::max<std::size_t>(opt.max_stmts, 6);

  // Initial input data: the rest of the input region reads as zero, which
  // both sides agree on.
  {
    isa::DataInit init;
    init.addr = kInBase;
    init.words.resize(192);
    for (auto& w : init.words) w = st.rng.range(-9, 40);
    gp.data.push_back(std::move(init));
  }

  switch (shape) {
    case Shape::kFlatThick: {
      constexpr Word kBoots[] = {2, 3, 4, 5, 8, 13, 16, 32, 64};
      gp.boot_thickness = pick(st.rng, kBoots);
      FlowCtx ctx;
      ctx.thickness = gp.boot_thickness;
      ctx.can_setthick = !expect_error && st.rng.chance(0.6);
      st.alloc_out(&ctx.out_window);
      emit_stmts(st, ctx, &gp.main, 4 + st.rng.below(cap - 3));
      if (conflicting) {
        const Addr flag = kFlagBase + st.rng.below(kFlagCells);
        std::vector<Stmt> c;
        append_conflict(st, &c, flag);
        insert_at_random(st.rng, &gp.main, std::move(c));
      }
      if (expect_error) {
        insert_at_random(st.rng, &gp.main, {make_violation(st)});
      }
      break;
    }
    case Shape::kFork: {
      gp.boot_thickness = 1;
      FlowCtx main_ctx;
      main_ctx.thickness = 1;
      st.alloc_out(&main_ctx.out_window);
      emit_stmts(st, main_ctx, &gp.main, 1 + st.rng.below(4));
      const Addr flag = kFlagBase + st.rng.below(kFlagCells);
      const std::size_t spawns = 1 + st.rng.below(3);
      const std::size_t acc_before = st.accs.size();
      for (std::size_t i = 0; i < spawns; ++i) {
        constexpr Word kThick[] = {1, 2, 4, 8, 16, 32};
        Stmt sp;
        sp.kind = Stmt::Kind::kSpawn;
        sp.imm = pick(st.rng, kThick);
        FlowCtx wctx;
        wctx.is_main = false;
        wctx.thickness = sp.imm;
        wctx.can_setthick = st.rng.chance(0.3);
        st.alloc_out(&wctx.out_window);
        emit_stmts(st, wctx, &sp.body, 3 + st.rng.below(6));
        if (conflicting && st.rng.chance(0.7)) {
          append_conflict(st, &sp.body, flag);
        }
        gp.main.push_back(std::move(sp));
      }
      Stmt join;
      join.kind = Stmt::Kind::kJoin;
      gp.main.push_back(join);
      // Post-join: observe an accumulator the workers fed (safe in every
      // variant — the join barrier orders it after all contributions).
      if (st.accs.size() > acc_before && st.rng.chance(0.8)) {
        const AccCell& c =
            st.accs[acc_before + st.rng.below(st.accs.size() - acc_before)];
        Stmt ld;
        ld.kind = Stmt::Kind::kLoad;
        ld.rd = 4;
        ld.imm = static_cast<Word>(c.addr);
        gp.main.push_back(ld);
        Stmt pr;
        pr.kind = Stmt::Kind::kPrint;
        pr.use_imm = false;
        pr.ra = 4;
        gp.main.push_back(pr);
      }
      FlowCtx post_ctx = main_ctx;
      emit_stmts(st, post_ctx, &gp.main, st.rng.below(3));
      break;
    }
    case Shape::kEsm: {
      constexpr std::uint32_t kFlows[] = {4, 8, 12};
      gp.boot_flows = pick(st.rng, kFlows);
      gp.esm_boot = true;
      gp.boot_thickness = 1;
      FlowCtx ctx;
      ctx.thickness = 1;
      ctx.esm = true;
      ctx.can_numa = st.rng.chance(0.4);
      emit_stmts(st, ctx, &gp.main, 4 + st.rng.below(cap - 3));
      // Flow-guarded prints only at the tail: the guard desynchronises the
      // flows, which is harmless once no shared traffic follows.
      const std::size_t prints = st.rng.below(3);
      for (std::size_t i = 0; i < prints; ++i) {
        gp.main.push_back(make_print(st, /*guarded=*/true));
      }
      break;
    }
    case Shape::kNumaSingle: {
      gp.boot_thickness = 1;
      FlowCtx ctx;
      ctx.thickness = 1;
      ctx.can_numa = true;
      ctx.allow_local = true;
      st.alloc_out(&ctx.out_window);
      emit_stmts(st, ctx, &gp.main, 3 + st.rng.below(cap - 3));
      bool has_numa = false;
      for (const Stmt& s : gp.main) {
        has_numa |= s.kind == Stmt::Kind::kNuma;
      }
      if (!has_numa) {
        insert_at_random(st.rng, &gp.main, {make_numa(st, ctx)});
      }
      break;
    }
  }
  return gp;
}

// ---------------------------------------------------------------------------
// profile_of()
// ---------------------------------------------------------------------------

namespace {

void profile_walk(const std::vector<Stmt>& body, Word thickness, bool in_spawn,
                  bool in_loop, Profile* p) {
  for (const Stmt& s : body) {
    if (s.conflict) p->conflicting = true;
    if (s.violate) p->expects_error = true;
    switch (s.kind) {
      case Stmt::Kind::kSetThick:
        p->uses_setthick = true;
        thickness = s.imm;
        p->max_thickness = std::max(p->max_thickness, thickness);
        break;
      case Stmt::Kind::kNuma:
        p->uses_numa = true;
        profile_walk(s.body, 1, in_spawn, in_loop, p);
        thickness = 1;
        break;
      case Stmt::Kind::kLoop:
        profile_walk(s.body, thickness, in_spawn, true, p);
        break;
      case Stmt::Kind::kSpawn:
        p->uses_spawn = true;
        p->max_spawn_thickness = std::max(p->max_spawn_thickness, s.imm);
        p->max_thickness = std::max(p->max_thickness, s.imm);
        profile_walk(s.body, s.imm, true, in_loop, p);
        break;
      case Stmt::Kind::kLocalLoad:
      case Stmt::Kind::kLocalStore:
        p->uses_local = true;
        break;
      case Stmt::Kind::kMulti:
        p->uses_multiop = true;
        break;
      case Stmt::Kind::kPrefix:
        p->uses_prefix = true;
        if (in_spawn) p->prefix_in_spawn = true;
        if (in_loop) p->prefix_in_loop = true;
        break;
      default:
        break;
    }
  }
}

}  // namespace

Profile profile_of(const GenProgram& gp) {
  Profile p;
  p.max_thickness = gp.boot_thickness;
  profile_walk(gp.main, gp.boot_thickness, false, false, &p);
  // An expected-error program relies on concurrent same-cell access, which
  // only lines up with the oracle on step-aligned lanes.
  if (p.expects_error) p.conflicting = true;
  return p;
}

// ---------------------------------------------------------------------------
// materialize()
// ---------------------------------------------------------------------------

namespace {

using tcf::AsmBuilder;
using tcf::Reg;

struct PendingWorker {
  const Stmt* spawn;
  AsmBuilder::Label entry;
};

void emit_body(AsmBuilder& b, const std::vector<Stmt>& body,
               std::vector<PendingWorker>* workers) {
  for (const Stmt& s : body) {
    switch (s.kind) {
      case Stmt::Kind::kAlu:
        if (s.use_imm) {
          b.alu(s.op, Reg{s.rd}, Reg{s.ra}, s.imm);
        } else {
          b.alu(s.op, Reg{s.rd}, Reg{s.ra}, Reg{s.rb});
        }
        break;
      case Stmt::Kind::kLdi:
        b.ldi(Reg{s.rd}, s.imm);
        break;
      case Stmt::Kind::kLoad:
        b.ld(Reg{s.rd}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kGather:
        b.add(tcf::r12, tcf::r1, s.imm);
        b.ld(Reg{s.rd}, tcf::r12, 0, false);
        break;
      case Stmt::Kind::kStore:
        b.st(Reg{s.ra}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kScatter:
        b.add(tcf::r12, tcf::r1, s.imm);
        b.st(Reg{s.ra}, tcf::r12, 0, false);
        break;
      case Stmt::Kind::kLocalLoad:
        b.lld(Reg{s.rd}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kLocalStore:
        b.lst(Reg{s.ra}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kMulti:
        b.mp(s.op, Reg{s.ra}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kPrefix:
        b.pp(s.op, Reg{s.rd}, Reg{s.ra}, tcf::r0, s.imm, s.lane);
        break;
      case Stmt::Kind::kPrint:
        if (s.use_imm) b.print(s.imm);
        else b.print(Reg{s.ra});
        break;
      case Stmt::Kind::kGuardedPrint: {
        const auto skip = b.make_label();
        b.bnez(tcf::r1, skip);
        if (s.use_imm) b.print(s.imm);
        else b.print(Reg{s.ra});
        b.bind(skip);
        break;
      }
      case Stmt::Kind::kSetThick:
        b.setthick(s.imm);
        b.tid(tcf::r1);  // fresh lanes copied lane 0's id: re-derive
        break;
      case Stmt::Kind::kNuma:
        b.numaset(s.imm);
        emit_body(b, s.body, workers);
        b.numaset(0);
        break;
      case Stmt::Kind::kLoop: {
        const Reg counter = s.depth == 0 ? tcf::r3 : tcf::r11;
        b.ldi(counter, 0);
        const auto top = b.make_label();
        b.bind(top);
        emit_body(b, s.body, workers);
        b.add(counter, counter, 1);
        b.slt(tcf::r14, counter, s.imm);
        b.bnez(tcf::r14, top);
        break;
      }
      case Stmt::Kind::kSpawn: {
        const auto entry = b.make_label();
        b.ldi(tcf::r9, s.imm);
        b.spawn(tcf::r9, entry);
        workers->push_back(PendingWorker{&s, entry});
        break;
      }
      case Stmt::Kind::kJoin:
        b.joinall();
        break;
    }
  }
}

}  // namespace

Materialized materialize(const GenProgram& gp) {
  AsmBuilder b;
  std::vector<PendingWorker> workers;
  if (!gp.esm_boot) b.tid(tcf::r1);  // ESM boots poke r1/r2 instead
  emit_body(b, gp.main, &workers);
  b.halt();
  Materialized m;
  // Worker bodies land after HALT; the queue may grow while emitting (nested
  // spawns), so iterate by index.
  for (std::size_t i = 0; i < workers.size(); ++i) {
    b.bind(workers[i].entry);
    m.worker_entries.push_back(b.here());
    b.tid(tcf::r1);
    emit_body(b, workers[i].spawn->body, &workers);
    b.halt();
  }
  for (const auto& init : gp.data) b.data(init.addr, init.words);
  m.program = b.build();
  return m;
}

namespace {
std::size_t count_walk(const std::vector<Stmt>& body) {
  std::size_t n = 0;
  for (const Stmt& s : body) n += 1 + count_walk(s.body);
  return n;
}
}  // namespace

std::size_t stmt_count(const GenProgram& gp) { return count_walk(gp.main); }

}  // namespace tcfpn::conformance
