#include "conformance/diff.hpp"

#include <algorithm>
#include <sstream>

#include "baseline/frontends.hpp"
#include "debug/postmortem.hpp"
#include "machine/machine.hpp"
#include "machine/shapes.hpp"
#include "resil/recovery.hpp"
#include "shard/supervisor.hpp"
#include "tcf/kernels.hpp"

namespace tcfpn::conformance {

namespace {

using machine::Variant;

/// Snapshot of one machine (or frontend) execution, shaped like an
/// OracleResult so the comparators are shared.
struct Observed {
  bool completed = false;
  bool faulted = false;
  std::string fault;
  std::vector<Word> shared;
  std::vector<Word> local;
  std::vector<Word> debug;
  Cycle cycles = 0;
  StepId steps = 0;
  bool has_memory = true;  ///< frontends expose no memory image
};

machine::MachineConfig base_config(const DiffCase& c, const LaneSpec& lane) {
  machine::MachineConfig cfg;
  cfg.variant = lane.variant;
  cfg.groups = lane.variant == Variant::kFixedThickness ? 1u : 4u;
  cfg.slots_per_group = 32;
  cfg.shared_words = kSharedWords;
  cfg.local_words = kLocalWords;
  cfg.crcw = c.policy;
  cfg.balanced_bound = lane.balanced_bound;
  return cfg;
}

Observed run_machine(const DiffCase& c, machine::MachineConfig cfg,
                     std::uint64_t max_steps) {
  Observed o;
  machine::Machine m(cfg);
  try {
    m.load(c.program);
    if (c.esm_boot) {
      tcf::kernels::boot_esm_threads(m, c.program.entry(), c.boot_flows);
    } else {
      m.boot(c.boot_thickness);
    }
    const auto r = m.run(max_steps);
    o.completed = r.completed;
    o.cycles = r.cycles;
    o.steps = r.steps;
  } catch (const SimError& e) {
    o.faulted = true;
    o.fault = e.what();
  }
  o.shared.resize(kSharedWords);
  for (Addr a = 0; a < kSharedWords; ++a) o.shared[a] = m.shared().peek(a);
  if (c.uses_local) {
    o.local.resize(kLocalWords);
    for (Addr a = 0; a < kLocalWords; ++a) o.local[a] = m.local(0).read(a);
  }
  o.debug = m.debug_output();
  return o;
}

/// Like run_machine, but through the resilience layer: the default all-kinds
/// fault schedule for `fault_seed`, recovered by checkpoint rollback.
Observed run_machine_resilient(const DiffCase& c, machine::MachineConfig cfg,
                               std::uint64_t max_steps,
                               std::uint64_t fault_seed) {
  Observed o;
  machine::Machine m(cfg);
  try {
    m.load(c.program);
    if (c.esm_boot) {
      tcf::kernels::boot_esm_threads(m, c.program.entry(), c.boot_flows);
    } else {
      m.boot(c.boot_thickness);
    }
    resil::ResilConfig rc;
    rc.spec = resil::default_spec_for_seed(fault_seed);
    rc.mode = resil::RecoverMode::kRollback;
    rc.max_steps = max_steps;
    resil::ResilientExecutor ex(m, rc);
    const auto r = ex.run();
    o.completed = r.run.completed;
    o.faulted = r.faulted;
    o.fault = r.fault_message;
    o.cycles = r.run.cycles;
    o.steps = r.run.steps;
  } catch (const SimError& e) {
    o.faulted = true;
    o.fault = e.what();
  }
  o.shared.resize(kSharedWords);
  for (Addr a = 0; a < kSharedWords; ++a) o.shared[a] = m.shared().peek(a);
  if (c.uses_local) {
    o.local.resize(kLocalWords);
    for (Addr a = 0; a < kLocalWords; ++a) o.local[a] = m.local(0).read(a);
  }
  o.debug = m.debug_output();
  return o;
}

/// Like run_machine, but under the loopback shard supervisor. With a
/// nonzero `shard_fault_seed` a shard_kill schedule runs on top, recovered
/// from checkpoint with an effectively unlimited restart budget — every
/// death must be invisible in the results.
Observed run_machine_sharded(const DiffCase& c, machine::MachineConfig cfg,
                             std::uint64_t max_steps, std::uint32_t shards,
                             std::uint64_t shard_fault_seed) {
  Observed o;
  machine::Machine m(cfg);
  const auto boot = [&](machine::Machine& mm) {
    mm.load(c.program);
    if (c.esm_boot) {
      tcf::kernels::boot_esm_threads(mm, c.program.entry(), c.boot_flows);
    } else {
      mm.boot(c.boot_thickness);
    }
  };
  try {
    boot(m);
    shard::SupervisorOptions sopt;
    sopt.shards = shards;
    sopt.max_steps = max_steps;
    sopt.checkpoint_every = 4;
    sopt.restarts = 1u << 20;
    std::optional<resil::FaultInjector> injector;
    if (shard_fault_seed != 0) {
      resil::FaultSpec spec;
      spec.seed = shard_fault_seed;
      spec.shard_kill_rate = 0.01;
      injector.emplace(spec, cfg.groups, cfg.shared_words, shards);
    }
    const auto r = shard::run_sharded_loopback(
        m,
        [&] {
          auto replica = std::make_unique<machine::Machine>(cfg);
          boot(*replica);
          return replica;
        },
        sopt, injector ? &*injector : nullptr, nullptr);
    o.completed = r.completed;
    o.cycles = r.cycles;
    o.steps = r.steps;
  } catch (const SimError& e) {
    o.faulted = true;
    o.fault = e.what();
  }
  o.shared.resize(kSharedWords);
  for (Addr a = 0; a < kSharedWords; ++a) o.shared[a] = m.shared().peek(a);
  if (c.uses_local) {
    o.local.resize(kLocalWords);
    for (Addr a = 0; a < kLocalWords; ++a) o.local[a] = m.local(0).read(a);
  }
  o.debug = m.debug_output();
  return o;
}

Observed from_outcome(const baseline::Outcome& out) {
  Observed o;
  o.completed = out.completed;
  o.debug = out.debug_output;
  o.has_memory = false;
  return o;
}

std::string describe_fault(const Observed& o) {
  return o.faulted ? "fault [" + o.fault + "]"
                   : (o.completed ? "completed" : "did not complete");
}

std::string describe_fault_oracle(const OracleResult& o) {
  return o.faulted ? "raised [" + o.fault + "]"
                   : (o.completed ? "completed" : "did not complete");
}

/// Compares one execution against the oracle. `aligned` additionally
/// requires fault presence/class agreement; non-aligned lanes only run
/// programs the oracle finished cleanly.
std::optional<std::string> compare(const OracleResult& want, const Observed& got,
                                   bool aligned, bool uses_local) {
  if (aligned) {
    if (want.faulted != got.faulted) {
      return "oracle " + describe_fault_oracle(want) + " but machine " +
             describe_fault(got);
    }
    if (want.faulted && fault_class(want.fault) != fault_class(got.fault)) {
      return "fault class mismatch: oracle [" + want.fault + "] vs machine [" +
             got.fault + "]";
    }
  } else if (got.faulted) {
    return "unexpected machine fault [" + got.fault + "]";
  }
  if (!want.faulted && want.completed != got.completed) {
    return std::string("completion mismatch: oracle ") +
           (want.completed ? "completed" : "timed out") + ", machine " +
           describe_fault(got);
  }
  if (got.has_memory) {
    for (Addr a = 0; a < want.shared.size(); ++a) {
      if (want.shared[a] != got.shared[a]) {
        std::ostringstream os;
        os << "shared[" << a << "] = " << got.shared[a] << ", oracle has "
           << want.shared[a];
        return os.str();
      }
    }
    if (uses_local) {
      for (Addr a = 0; a < want.local.size(); ++a) {
        if (want.local[a] != got.local[a]) {
          std::ostringstream os;
          os << "local[" << a << "] = " << got.local[a] << ", oracle has "
             << want.local[a];
          return os.str();
        }
      }
    }
  }
  if (want.debug != got.debug) {
    std::ostringstream os;
    os << "debug output mismatch: oracle " << want.debug.size()
       << " values, machine " << got.debug.size();
    for (std::size_t i = 0;
         i < std::min(want.debug.size(), got.debug.size()); ++i) {
      if (want.debug[i] != got.debug[i]) {
        os << "; first diff at [" << i << "]: " << got.debug[i] << " vs "
           << want.debug[i];
        break;
      }
    }
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> identical(const Observed& a, const Observed& b) {
  if (a.faulted != b.faulted || a.fault != b.fault) {
    return "fault mismatch: " + describe_fault(a) + " vs " + describe_fault(b);
  }
  if (a.completed != b.completed) return std::string("completion mismatch");
  if (a.shared != b.shared) return std::string("shared memory mismatch");
  if (a.local != b.local) return std::string("local memory mismatch");
  if (a.debug != b.debug) return std::string("debug output mismatch");
  if (a.cycles != b.cycles || a.steps != b.steps) {
    std::ostringstream os;
    os << "cycle/step mismatch: " << a.cycles << "/" << a.steps << " vs "
       << b.cycles << "/" << b.steps;
    return os.str();
  }
  return std::nullopt;
}

bool lane_enabled(const LaneSpec& lane, const DiffOptions& opt) {
  if (opt.only_variants.empty()) return true;
  return std::find(opt.only_variants.begin(), opt.only_variants.end(),
                   lane.variant) != opt.only_variants.end();
}

}  // namespace

std::string LaneSpec::name() const {
  std::string n = machine::to_string(variant);
  if (variant == Variant::kBalanced) {
    n.push_back(':');
    n += std::to_string(balanced_bound);
  }
  return n;
}

std::string fault_class(const std::string& message) {
  return debug::classify_fault(message);
}

std::string flight_record_json(const DiffCase& c, const Divergence& d,
                               std::uint64_t max_steps) {
  const machine::MachineConfig cfg =
      d.config ? *d.config
               : base_config(c, {Variant::kSingleInstruction, 16, true});
  // Checkpoints off: a flight record only needs the tape and the corpse.
  debug::FlightRecorder rec(
      debug::RecorderConfig{.journal_capacity = 4096, .checkpoint_every = 0});
  machine::Machine m(cfg);
  m.load(c.program);
  rec.attach(m);
  StepId steps = 0;
  try {
    if (c.esm_boot) {
      tcf::kernels::boot_esm_threads(m, c.program.entry(), c.boot_flows);
    } else {
      m.boot(c.boot_thickness);
    }
    steps = m.run(max_steps).steps;
  } catch (const SimError&) {
    // rec.on_fault captured the record; fall through to render it.
  }
  const std::vector<std::pair<std::string, std::string>> meta = {
      {"tool", "tcffuzz"}, {"lane", d.lane}};
  if (rec.fault()) {
    return debug::post_mortem_json(m, rec, meta);
  }
  // The lane ran to completion but its results disagree with the oracle:
  // synthesize a divergence-class fault so the document shape is uniform.
  debug::FaultRecord fr;
  fr.message = d.lane + ": " + d.detail;
  fr.fault_class = "divergence";
  fr.step = steps;
  return debug::post_mortem_json(m, rec.journal(), fr, meta);
}

std::vector<LaneSpec> lanes_for(const Profile& p, const GenProgram& gp) {
  std::vector<LaneSpec> lanes;
  const bool single_flow = !p.uses_spawn && gp.boot_flows == 1;
  const bool racy = p.conflicting || p.expects_error;

  // Single-instruction: the oracle's schedule exactly.
  lanes.push_back({Variant::kSingleInstruction, 16, true});

  // Balanced never runs racy programs: its budget either merges several
  // instructions into one step (large bound — the race and the surrounding
  // stores commit together, so the at-fault image differs) or splits one
  // thick instruction across steps (small bound — the race disappears).
  // Multi-flow multiprefix is also excluded: group-local budgets can move a
  // higher-key flow's contribution into an earlier step, which reorders
  // tickets.
  if (!racy &&
      !(p.uses_prefix && (gp.boot_flows > 1 || p.prefix_in_spawn))) {
    const std::uint32_t bounds[] = {2, 3, 8, 16};
    lanes.push_back({Variant::kBalanced, bounds[gp.seed % 4], false});
  }

  const bool xmt_ok = !p.uses_numa && !p.uses_setthick && !racy &&
                      !(p.uses_prefix &&
                        (p.prefix_in_loop || p.prefix_in_spawn ||
                         gp.boot_flows > 1));
  if (xmt_ok) lanes.push_back({Variant::kMultiInstruction, 16, false});

  if (p.max_thickness <= 1 && !p.uses_numa) {
    lanes.push_back({Variant::kSingleOperation, 16, true});
  }
  if (p.max_thickness <= 1) {
    lanes.push_back({Variant::kConfigSingleOperation, 16, true});
  }
  if (single_flow && !p.uses_setthick) {
    lanes.push_back({Variant::kFixedThickness, 16, true});
  }
  return lanes;
}

DiffCase to_case(const GenProgram& gp) {
  const Profile p = profile_of(gp);
  DiffCase c;
  c.program = materialize(gp).program;
  c.boot_thickness = gp.boot_thickness;
  c.boot_flows = gp.boot_flows;
  c.esm_boot = gp.esm_boot;
  c.policy = gp.policy;
  c.expect_error = p.expects_error;
  c.uses_local = p.uses_local;
  c.lanes = lanes_for(p, gp);
  return c;
}

std::optional<Divergence> run_differential(const DiffCase& c,
                                           const DiffOptions& opt) {
  OracleOptions oo;
  oo.policy = c.policy;
  oo.shared_words = kSharedWords;
  oo.local_words = kLocalWords;
  oo.max_steps = opt.max_steps;
  oo.skip_common_check = opt.oracle_skip_common;
  oo.reverse_prefix_order = opt.oracle_reverse_prefix;
  const OracleResult want =
      run_oracle(c.program, c.boot_thickness, c.boot_flows, c.esm_boot, oo);

  // Note: c.expect_error is advisory (it restricts lanes and skips the
  // frontends); a program that no longer faults — e.g. after the shrinker
  // reduced its thickness — is judged like any other, so minimization can
  // never "succeed" by merely destroying the error.

  bool xmt_applicable = false;
  bool fixed_applicable = false;
  bool single_op_applicable = false;
  bool config_single_op_applicable = false;

  for (const LaneSpec& lane : c.lanes) {
    if (lane.variant == Variant::kMultiInstruction) xmt_applicable = true;
    if (lane.variant == Variant::kFixedThickness) fixed_applicable = true;
    if (lane.variant == Variant::kSingleOperation) single_op_applicable = true;
    if (lane.variant == Variant::kConfigSingleOperation) {
      config_single_op_applicable = true;
    }
    if (!lane_enabled(lane, opt)) continue;
    if (!lane.aligned && want.faulted) continue;

    const machine::MachineConfig cfg = base_config(c, lane);
    const bool step_sync = machine::is_step_synchronous(lane.variant);
    std::optional<Observed> first;
    const std::vector<std::uint32_t> hts =
        step_sync ? opt.host_threads : std::vector<std::uint32_t>{1};
    for (std::uint32_t ht : hts) {
      const machine::MachineConfig lane_cfg =
          baseline::with_host_threads(cfg, ht);
      const Observed got = run_machine(c, lane_cfg, opt.max_steps);
      if (auto d = compare(want, got, lane.aligned, c.uses_local)) {
        return Divergence{lane.name() + " ht=" + std::to_string(ht), *d,
                          lane_cfg};
      }
      if (!first) {
        first = got;
      } else if (auto d = identical(*first, got)) {
        // Determinism contract: host threads must be unobservable.
        return Divergence{lane.name() + " ht=" + std::to_string(ht) +
                              " vs ht=" + std::to_string(hts.front()),
                          *d, lane_cfg};
      }
    }

    // Fault-tolerance conformance (DESIGN.md §9): under an injected fault
    // schedule with rollback recovery, the lane must still land exactly on
    // the fault-free oracle — and the faulted run itself must be
    // bit-identical (cycles included) for every host-thread count, because
    // both the schedule and the recovery act on barrier-side state only.
    // Oracle-faulting programs are skipped: a rollback can rewind across
    // the program's own fault point, which changes when (not whether) it
    // fires — the aligned fault-step comparison would be meaningless.
    if (opt.fault_seed != 0 && !want.faulted) {
      std::optional<Observed> ffirst;
      for (std::uint32_t ht : hts) {
        const machine::MachineConfig lane_cfg =
            baseline::with_host_threads(cfg, ht);
        const Observed got =
            run_machine_resilient(c, lane_cfg, opt.max_steps, opt.fault_seed);
        if (auto d = compare(want, got, lane.aligned, c.uses_local)) {
          return Divergence{lane.name() + "+faults ht=" + std::to_string(ht),
                            *d, lane_cfg};
        }
        if (!ffirst) {
          ffirst = got;
        } else if (auto d = identical(*ffirst, got)) {
          return Divergence{lane.name() + "+faults ht=" + std::to_string(ht) +
                                " vs ht=" + std::to_string(hts.front()),
                            *d, lane_cfg};
        }
      }
    }

    // Sharded conformance (DESIGN.md §14): the same lane under the loopback
    // shard supervisor must be *identical* to the plain run — the exchange
    // of effect batches over the frame protocol is not allowed to move a
    // single bit. Step-synchronous lanes only (the supervisor refuses
    // multi-instruction stepping) and only when every shard can own at
    // least one group.
    if (opt.shards > 1 && step_sync && opt.shards <= cfg.groups && first) {
      const machine::MachineConfig lane_cfg =
          baseline::with_host_threads(cfg, hts.front());
      const Observed got =
          run_machine_sharded(c, lane_cfg, opt.max_steps, opt.shards, 0);
      if (auto d = identical(*first, got)) {
        return Divergence{
            lane.name() + " shards=" + std::to_string(opt.shards), *d,
            lane_cfg};
      }
      // And with worker processes dying on a seeded schedule: restart from
      // checkpoint has to reproduce the run exactly. Oracle-faulting
      // programs included — the rollback replays the prefix bit-identically
      // so the program's own fault fires at the same step either way.
      if (opt.shard_fault_seed != 0) {
        const Observed recovered = run_machine_sharded(
            c, lane_cfg, opt.max_steps, opt.shards, opt.shard_fault_seed);
        if (auto d = identical(*first, recovered)) {
          return Divergence{lane.name() + " shards=" +
                                std::to_string(opt.shards) + "+shard_kill",
                            *d, lane_cfg};
        }
      }
    }
  }

  // Cost-model invariance: knobs move cycles, never results.
  if (opt.perturb_costs &&
      (opt.only_variants.empty() ||
       lane_enabled({Variant::kSingleInstruction, 16, true}, opt))) {
    machine::MachineConfig cfg =
        base_config(c, {Variant::kSingleInstruction, 16, true});
    cfg.functional_units = 3;
    cfg.pipeline_fill = 9;
    cfg.operand_storage = machine::OperandStorage::kMemoryToMemory;
    cfg.detailed_network = true;
    cfg.topology = net::TopologyKind::kRing;
    const Observed got = run_machine(c, cfg, opt.max_steps);
    if (auto d = compare(want, got, /*aligned=*/true, c.uses_local)) {
      return Divergence{"single-instruction (perturbed costs)", *d, cfg};
    }
  }

  // Heterogeneous machine shapes (DESIGN.md §12).
  if (opt.shape_seed != 0) {
    // Declared-but-default shape: a vector of default GroupSpecs inherits
    // every uniform value, so the run must be bit-identical — fault, memory,
    // PRINT, cycles and steps — to the undeclared machine. This holds for
    // every program, faulting ones included.
    if (lane_enabled({Variant::kSingleInstruction, 16, true}, opt)) {
      const machine::MachineConfig uni =
          base_config(c, {Variant::kSingleInstruction, 16, true});
      machine::MachineConfig shaped = uni;
      shaped.group_specs.assign(shaped.groups, machine::GroupSpec{});
      const Observed plain = run_machine(c, uni, opt.max_steps);
      const Observed with_shape = run_machine(c, shaped, opt.max_steps);
      if (auto d = identical(plain, with_shape)) {
        return Divergence{"single-instruction (default-spec shape)", *d,
                          shaped};
      }
    }
    // Sampled shapes on the schedule-robust lanes. Non-aligned
    // applicability (lanes_for) already certifies the program's result is
    // independent of how instructions land on steps, which is exactly the
    // freedom a shape exercises: T_p=1 groups overflow and evict, 3x-clock
    // groups race ahead, NUMA rows move the memory term. Results must not.
    if (!want.faulted) {
      for (const LaneSpec& lane : c.lanes) {
        if (lane.aligned || !lane_enabled(lane, opt)) continue;
        machine::MachineConfig cfg = base_config(c, lane);
        machine::sample_shape(cfg, opt.shape_seed);
        const std::vector<std::uint32_t> hts =
            machine::is_step_synchronous(lane.variant)
                ? opt.host_threads
                : std::vector<std::uint32_t>{1};
        std::optional<Observed> first;
        for (std::uint32_t ht : hts) {
          const machine::MachineConfig lane_cfg =
              baseline::with_host_threads(cfg, ht);
          const Observed got = run_machine(c, lane_cfg, opt.max_steps);
          if (auto d = compare(want, got, /*aligned=*/false, c.uses_local)) {
            return Divergence{lane.name() + "+shape ht=" + std::to_string(ht),
                              *d, lane_cfg};
          }
          if (!first) {
            first = got;
          } else if (auto d = identical(*first, got)) {
            return Divergence{lane.name() + "+shape ht=" +
                                  std::to_string(ht) + " vs ht=" +
                                  std::to_string(hts.front()),
                              *d, lane_cfg};
          }
        }
      }
    }
  }

  // Frontends expose completion + debug output only; skip faulting programs
  // (Outcome has no fault channel — the helpers would just rethrow).
  if (opt.frontends && !c.expect_error && !want.faulted) {
    auto check_frontend = [&](const char* name,
                              const baseline::Outcome& out)
        -> std::optional<Divergence> {
      const Observed got = from_outcome(out);
      if (auto d = compare(want, got, /*aligned=*/false, false)) {
        return Divergence{name, *d};
      }
      return std::nullopt;
    };
    try {
      const machine::MachineConfig tcf_cfg =
          base_config(c, {Variant::kSingleInstruction, 16, true});
      if (c.boot_flows == 1 && !c.esm_boot) {
        if (auto d = check_frontend(
                "frontend:run_tcf",
                baseline::run_tcf(tcf_cfg, c.program, c.boot_thickness))) {
          return d;
        }
      }
      if (c.esm_boot && single_op_applicable) {
        machine::MachineConfig cfg =
            base_config(c, {Variant::kSingleOperation, 16, true});
        if (auto d = check_frontend(
                "frontend:run_threaded_esm",
                baseline::run_threaded_esm(cfg, c.program, c.boot_flows))) {
          return d;
        }
      }
      if (c.esm_boot && config_single_op_applicable) {
        machine::MachineConfig cfg =
            base_config(c, {Variant::kConfigSingleOperation, 16, true});
        if (auto d = check_frontend(
                "frontend:run_pram_numa",
                baseline::run_pram_numa(cfg, c.program, c.boot_flows))) {
          return d;
        }
      }
      if (xmt_applicable && c.boot_thickness == 1 && !c.esm_boot) {
        machine::MachineConfig cfg =
            base_config(c, {Variant::kMultiInstruction, 16, false});
        if (auto d = check_frontend("frontend:run_xmt",
                                    baseline::run_xmt(cfg, c.program))) {
          return d;
        }
      }
      if (fixed_applicable && !c.esm_boot) {
        machine::MachineConfig cfg =
            base_config(c, {Variant::kFixedThickness, 16, true});
        if (auto d = check_frontend(
                "frontend:run_simd",
                baseline::run_simd(cfg, c.program, c.boot_thickness))) {
          return d;
        }
      }
    } catch (const SimError& e) {
      return Divergence{"frontend", std::string("unexpected fault [") +
                                        e.what() + "]"};
    }
  }

  return std::nullopt;
}

std::optional<Divergence> run_differential(const GenProgram& gp,
                                           const DiffOptions& opt) {
  return run_differential(to_case(gp), opt);
}

}  // namespace tcfpn::conformance
