#include "conformance/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include "baseline/frontends.hpp"
#include "common/check.hpp"
#include "conformance/gen.hpp"
#include "conformance/oracle.hpp"
#include "lang/codegen.hpp"
#include "machine/machine.hpp"
#include "machine/shapes.hpp"
#include "resil/recovery.hpp"
#include "sched/allocation.hpp"

namespace tcfpn::conformance {

namespace {

using machine::Variant;

// ---------------------------------------------------------------------------
// Sequential reference implementations. Each recomputes, in plain C++, the
// PRINT stream its scenario program emits. They share no code with the
// oracle interpreter (let alone the machine), so agreement of all three is
// two independent checks, not one.

std::vector<Word> ref_sort() {
  constexpr int n = 128;
  Word keys[n], out[n];
  for (int i = 0; i < n; ++i) keys[i] = (i * 73 + 41) % 97;
  for (int i = 0; i < n; ++i) {
    Word rank = 0;
    for (int j = 0; j < n; ++j) {
      rank += (keys[j] < keys[i]) || (keys[j] == keys[i] && j < i);
    }
    out[rank] = keys[i];
  }
  Word chk = 0;
  for (int i = 0; i < n; ++i) chk += out[i] * (i + 1);
  return {out[0], out[n - 1], chk};
}

std::vector<Word> ref_bfs() {
  constexpr int n = 64;
  Word level[n], next[n];
  for (int i = 0; i < n; ++i) level[i] = 9999;
  level[0] = 0;
  for (int r = 0; r < 12; ++r) {
    for (int i = 0; i < n; ++i) next[i] = level[i];
    for (int u = 0; u < n; ++u) {
      const int vs[3] = {(2 * u) % n, (2 * u + 1) % n, (u + 7) % n};
      for (int v : vs) next[v] = std::min(next[v], level[u] + 1);
    }
    for (int i = 0; i < n; ++i) level[i] = next[i];
  }
  Word sum = 0;
  for (int i = 0; i < n; ++i) sum += level[i];
  return {sum, level[37], level[n - 1]};
}

std::vector<Word> ref_histogram() {
  constexpr int n = 256;
  Word hist[16] = {};
  for (int i = 0; i < n; ++i) hist[((i * 131 + 89) ^ (i >> 2)) % 16] += 1;
  Word cdf[16], total = 0;
  for (int b = 0; b < 16; ++b) {
    cdf[b] = total;
    total += hist[b];
  }
  return {cdf[0], cdf[4], cdf[8], cdf[12], total};
}

std::vector<Word> ref_spmv() {
  constexpr int n = 96;
  Word x[n], y[n] = {};
  for (int i = 0; i < n; ++i) x[i] = (i % 7) + 1;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      y[i] += (((i * 5 + k * 13) % 9) + 1) * x[(i * 31 + k * 17) % n];
    }
  }
  Word chk = 0;
  for (int i = 0; i < n; ++i) chk += y[i];
  return {chk, y[0], y[n - 1]};
}

std::vector<Word> ref_compact() {
  constexpr int n = 160;
  Word data[n], out[2 * n] = {};
  Word count = 0;
  for (int i = 0; i < n; ++i) data[i] = (i * 97 + 13) % 200;
  for (int i = 0; i < n; ++i) {
    if (data[i] % 3 == 0) {
      out[count++] = data[i];
    } else {
      out[n + i - count] = data[i];
    }
  }
  Word chk = 0;
  for (int i = 0; i < n; ++i) chk += i < count ? out[i] : 0;
  return {count, chk, out[0]};
}

std::vector<Word> reference_prints(const std::string& name) {
  if (name == "sort") return ref_sort();
  if (name == "bfs") return ref_bfs();
  if (name == "histogram") return ref_histogram();
  if (name == "spmv") return ref_spmv();
  if (name == "compact") return ref_compact();
  throw SimError("no reference implementation for scenario '" + name + "'");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SimError("cannot open scenario source " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Lane execution. Mirrors the differential harness' runner, but with a
// machine shape applied and the stepping engine / placement hook swept.

struct RunImage {
  bool completed = false;
  bool faulted = false;
  std::string fault;
  std::vector<Word> shared;
  std::vector<Word> debug;
  Cycle cycles = 0;
  StepId steps = 0;
};

RunImage run_lane(const Scenario& s, const machine::MachineConfig& cfg,
                  std::uint64_t max_steps, bool lpt_hook,
                  std::uint64_t fault_seed) {
  RunImage o;
  machine::Machine m(cfg);
  try {
    m.load(s.program);
    if (lpt_hook) sched::install_throughput_lpt_hook(m);
    m.boot(s.boot_thickness);
    if (fault_seed != 0) {
      resil::ResilConfig rc;
      rc.spec = resil::default_spec_for_seed(fault_seed);
      rc.mode = resil::RecoverMode::kRollback;
      rc.max_steps = max_steps;
      resil::ResilientExecutor ex(m, rc);
      const auto r = ex.run();
      o.completed = r.run.completed;
      o.faulted = r.faulted;
      o.fault = r.fault_message;
      o.cycles = r.run.cycles;
      o.steps = r.run.steps;
    } else {
      const auto r = m.run(max_steps);
      o.completed = r.completed;
      o.cycles = r.cycles;
      o.steps = r.steps;
    }
  } catch (const SimError& e) {
    o.faulted = true;
    o.fault = e.what();
  }
  o.shared.resize(kSharedWords);
  for (Addr a = 0; a < kSharedWords; ++a) o.shared[a] = m.shared().peek(a);
  o.debug = m.debug_output();
  return o;
}

/// Bit-identity against the oracle: full shared memory, the PRINT stream,
/// and clean completion.
std::optional<std::string> against_oracle(const OracleResult& want,
                                          const RunImage& got) {
  if (got.faulted) return "unexpected machine fault [" + got.fault + "]";
  if (!got.completed) return std::string("machine did not complete");
  const std::size_t words = std::min(want.shared.size(), got.shared.size());
  for (Addr a = 0; a < words; ++a) {
    if (want.shared[a] != got.shared[a]) {
      std::ostringstream os;
      os << "shared[" << a << "] = " << got.shared[a] << ", oracle has "
         << want.shared[a];
      return os.str();
    }
  }
  if (want.debug != got.debug) {
    std::ostringstream os;
    os << "PRINT mismatch: oracle " << want.debug.size() << " values, machine "
       << got.debug.size();
    for (std::size_t i = 0;
         i < std::min(want.debug.size(), got.debug.size()); ++i) {
      if (want.debug[i] != got.debug[i]) {
        os << "; first diff at [" << i << "]: " << got.debug[i] << " vs "
           << want.debug[i];
        break;
      }
    }
    return os.str();
  }
  return std::nullopt;
}

/// Determinism contract within a lane: host threads (and nothing else)
/// vary, so the runs must agree down to the cycle count.
std::optional<std::string> identical(const RunImage& a, const RunImage& b) {
  if (a.faulted != b.faulted || a.fault != b.fault) {
    return std::string("fault mismatch");
  }
  if (a.completed != b.completed) return std::string("completion mismatch");
  if (a.shared != b.shared) return std::string("shared memory mismatch");
  if (a.debug != b.debug) return std::string("PRINT output mismatch");
  if (a.cycles != b.cycles || a.steps != b.steps) {
    std::ostringstream os;
    os << "cycle/step mismatch: " << a.cycles << "/" << a.steps << " vs "
       << b.cycles << "/" << b.steps;
    return os.str();
  }
  return std::nullopt;
}

machine::MachineConfig lane_config(const ScenarioOptions& opt, Variant v,
                                   std::uint32_t bound) {
  machine::MachineConfig cfg;
  cfg.variant = v;
  cfg.groups = 4;
  cfg.slots_per_group = 32;
  cfg.shared_words = kSharedWords;
  cfg.local_words = kLocalWords;
  cfg.crcw = mem::CrcwPolicy::kArbitrary;
  cfg.balanced_bound = bound;
  machine::apply_shape(cfg, opt.shape);
  return cfg;
}

std::string lane_tag(const Scenario& s, const ScenarioOptions& opt,
                     const std::string& lane) {
  return s.name + " shape=" + opt.shape + " " + lane;
}

}  // namespace

std::vector<Scenario> scenario_suite(const std::string& dir) {
  static const char* const kNames[] = {"sort", "bfs", "histogram", "spmv",
                                       "compact"};
  std::vector<Scenario> suite;
  for (const char* name : kNames) {
    Scenario s;
    s.name = name;
    s.path = dir + "/" + name + ".tcf";
    s.program = lang::compile_source(read_file(s.path)).program;
    s.expected_prints = reference_prints(s.name);
    suite.push_back(std::move(s));
  }
  return suite;
}

ScenarioVerdict run_scenario(const Scenario& s, const ScenarioOptions& opt) {
  ScenarioVerdict v;
  auto fail = [&](const std::string& lane, const std::string& why) {
    v.ok = false;
    v.detail = lane_tag(s, opt, lane) + ": " + why;
    return v;
  };

  // Stage 1: the oracle itself must land on the independent C++ reference
  // before it is trusted as the yardstick for any machine lane.
  OracleOptions oopt;
  oopt.shared_words = kSharedWords;
  oopt.local_words = kLocalWords;
  oopt.max_steps = opt.max_steps;
  const OracleResult want = run_oracle(s.program, s.boot_thickness,
                                       /*boot_flows=*/0, /*esm_boot=*/false,
                                       oopt);
  if (want.faulted) return fail("oracle", "raised [" + want.fault + "]");
  if (!want.completed) return fail("oracle", "did not complete");
  if (want.debug != s.expected_prints) {
    std::ostringstream os;
    os << "oracle PRINT stream disagrees with the reference:";
    for (Word w : want.debug) os << ' ' << w;
    os << " vs expected";
    for (Word w : s.expected_prints) os << ' ' << w;
    return fail("oracle", os.str());
  }

  // Stage 2: machine lanes. Scenario programs set their own thickness via
  // `#n`, so only the variants that honor SETTHICK apply; the balanced
  // lanes exercise lane-sliced execution at two very different bounds.
  struct Lane {
    Variant variant;
    std::uint32_t bound;
  };
  static const Lane kLanes[] = {{Variant::kSingleInstruction, 16},
                                {Variant::kBalanced, 16},
                                {Variant::kBalanced, 4096}};

  for (const Lane& lane : kLanes) {
    const machine::MachineConfig cfg =
        lane_config(opt, lane.variant, lane.bound);
    std::string lname = machine::to_string(lane.variant);
    if (lane.variant == Variant::kBalanced) {
      lname += ':' + std::to_string(lane.bound);
    }
    const std::vector<std::uint32_t> hts =
        machine::is_step_synchronous(lane.variant)
            ? opt.host_threads
            : std::vector<std::uint32_t>{1};
    const std::vector<bool> engines =
        opt.sweep_engines ? std::vector<bool>{true, false}
                          : std::vector<bool>{cfg.effect_channels};

    for (bool channels : engines) {
      std::optional<RunImage> first;
      for (std::uint32_t ht : hts) {
        machine::MachineConfig run_cfg = baseline::with_host_threads(cfg, ht);
        run_cfg.effect_channels = channels;
        const std::string tag = lname +
                                (channels ? " engine=channels" : " engine=barrier") +
                                " ht=" + std::to_string(ht);
        const RunImage got =
            run_lane(s, run_cfg, opt.max_steps, /*lpt_hook=*/false,
                     /*fault_seed=*/0);
        if (auto d = against_oracle(want, got)) return fail(tag, *d);
        if (!first) {
          first = got;
        } else if (auto d = identical(*first, got)) {
          return fail(tag + " vs ht=" + std::to_string(hts.front()), *d);
        }
      }
    }

    // Fault-injection lane: the default schedule for the seed, recovered
    // by rollback, must still land exactly on the fault-free oracle, and
    // stay host-thread invariant.
    if (opt.fault_seed != 0) {
      std::optional<RunImage> first;
      for (std::uint32_t ht : hts) {
        const machine::MachineConfig run_cfg =
            baseline::with_host_threads(cfg, ht);
        const std::string tag =
            lname + "+faults ht=" + std::to_string(ht);
        const RunImage got = run_lane(s, run_cfg, opt.max_steps,
                                      /*lpt_hook=*/false, opt.fault_seed);
        if (auto d = against_oracle(want, got)) return fail(tag, *d);
        if (!first) {
          first = got;
        } else if (auto d = identical(*first, got)) {
          return fail(tag + " vs ht=" + std::to_string(hts.front()), *d);
        }
      }
    }
  }

  // Stage 3: placement-aware LPT. The hook may move spawns between groups
  // (on heterogeneous shapes it should), but placement must never be
  // observable in memory or PRINT output.
  if (opt.throughput_lpt_lane) {
    const machine::MachineConfig cfg =
        lane_config(opt, Variant::kSingleInstruction, 16);
    std::optional<RunImage> first;
    for (std::uint32_t ht : opt.host_threads) {
      const machine::MachineConfig run_cfg =
          baseline::with_host_threads(cfg, ht);
      const std::string tag = "lpt-placement ht=" + std::to_string(ht);
      const RunImage got = run_lane(s, run_cfg, opt.max_steps,
                                    /*lpt_hook=*/true, /*fault_seed=*/0);
      if (auto d = against_oracle(want, got)) return fail(tag, *d);
      if (!first) {
        first = got;
      } else if (auto d = identical(*first, got)) {
        return fail(tag + " vs ht=" + std::to_string(opt.host_threads.front()),
                    *d);
      }
    }
  }

  return v;
}

}  // namespace tcfpn::conformance
