// Delta-debugging shrinker: reduces a diverging GenProgram to a minimal
// reproducer.
//
// Greedy fixpoint over three pass families, each candidate re-validated by
// re-running the differential (to_case recomputes the profile and the
// applicable lanes, so a simplification that changes which variants apply
// — or makes the program stop diverging — is rejected automatically):
//
//  1. statement deletion — every statement in the tree, innermost first;
//  2. hoisting — replace a loop / NUMA region / spawn with its body;
//  3. value reduction — loop iterations -> 1, boot/spawn/SETTHICK
//     thickness -> {1, 2}, NUMA block length -> 1.
//
// The result is still a well-formed GenProgram, so it can be materialized,
// saved to the corpus and replayed like any generated program.
#pragma once

#include <cstdint>

#include "conformance/diff.hpp"
#include "conformance/gen.hpp"

namespace tcfpn::conformance {

struct ShrinkResult {
  GenProgram program;    ///< smallest diverging program found
  Divergence divergence; ///< the divergence the shrunk program still shows
  std::size_t rounds = 0;
  std::size_t attempts = 0;  ///< differential executions spent
};

/// Shrinks `gp`, which must currently diverge under `opt`.
ShrinkResult shrink(const GenProgram& gp, const Divergence& seed_divergence,
                    const DiffOptions& opt);

}  // namespace tcfpn::conformance
