#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace tcfpn::conformance {

/// One oracle-backed TCF-language workload from `scenarios/`: a real
/// algorithm (sort, BFS, histogram, sparse matvec, stream compaction)
/// sized well beyond the Section-4 snippets, compiled from source, with
/// its PRINT stream pinned by an independent C++ reference implementation.
struct Scenario {
  std::string name;
  std::string path;
  isa::Program program;
  Word boot_thickness = 1;  ///< programs set their own thickness via `#n`
  /// PRINT stream the sequential reference predicts. The oracle must
  /// reproduce it exactly before any machine lane is judged against the
  /// oracle — two independent derivations pin the answer.
  std::vector<Word> expected_prints;
};

/// Loads and compiles every scenario from `dir` (fails with SimError on a
/// missing or uncompilable source — the suite is fixed, not discovered).
std::vector<Scenario> scenario_suite(const std::string& dir);

/// How to sweep one scenario. Every lane must be bit-identical to the
/// sequential oracle in shared memory, PRINT output and completion, and
/// bit-identical (cycles included) across host-thread counts within a
/// lane.
struct ScenarioOptions {
  /// Machine shape spec for machine::apply_shape ("uniform", "fat-thin",
  /// "gpu", or an explicit `COUNT*key=val,...` list).
  std::string shape = "uniform";
  std::vector<std::uint32_t> host_threads = {1, 2, 8};
  /// Run each lane under both stepping engines (streamed effect channels
  /// and barrier merge), not just the default.
  bool sweep_engines = true;
  /// When nonzero, adds a fault-injection lane per variant: the default
  /// fault schedule for this seed, recovered by checkpoint rollback, must
  /// still land exactly on the fault-free oracle.
  std::uint64_t fault_seed = 0;
  /// Re-run the aligned lane with the placement-aware LPT spawn hook
  /// installed; placement may move work between groups but must not be
  /// observable in memory or PRINT output.
  bool throughput_lpt_lane = true;
  std::uint64_t max_steps = 1u << 20;
};

struct ScenarioVerdict {
  bool ok = true;
  std::string detail;  ///< first failing lane and why, empty when ok
};

/// Runs `s` through every lane of `opt` and reports the first divergence
/// from the oracle (or from the reference PRINT stream).
ScenarioVerdict run_scenario(const Scenario& s, const ScenarioOptions& opt);

}  // namespace tcfpn::conformance
