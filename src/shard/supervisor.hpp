// Supervised multi-process shard execution (DESIGN.md §14).
//
// The ShardSupervisor owns the journaling machine replica (it executes no
// groups itself) and N workers, each a full replica executing the groups it
// owns. Group->shard ownership comes from the weighted-LPT balancer over
// per-group throughput, so heterogeneous shapes split fairly.
//
// Per step: broadcast kBeginStep, collect one kBatch per alive owned group
// (heartbeats reset the liveness deadline), install, merge + commit
// locally, then broadcast kCommit — workers only ever merge batches the
// supervisor already merged successfully, so a program fault (SimError)
// surfaces exactly once, on the supervisor, with the same "lowest faulting
// group wins" ordering as --shards 1.
//
// Liveness: every worker recv carries a heartbeat deadline. A timeout
// classifies the worker hung, EOF/waitpid crashed, a CRC/decode/lockstep
// violation babbling. The response is uniform: terminate the worker, rewind
// every survivor to the last checkpoint (kRollback), and either restart a
// replacement from that checkpoint (budget left) or deterministically
// degrade by retiring the dead shard's groups in ascending order. Every
// decision is journaled (kShardFault/kShardRestart/kShardRetired), logged
// via obs::log and counted in SupervisorStats — which lives OUTSIDE the
// machine's metrics registry, because frame counts depend on the shard
// count and the registry must stay bit-identical to --shards 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "resil/fault.hpp"
#include "shard/transport.hpp"

namespace tcfpn::shard {

/// One spawned worker as the supervisor drives it. Implementations wrap a
/// forked process (fd transport) or an in-process thread (loopback).
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;
  virtual Transport& link() = 0;
  /// shard_kill: hard-kill the worker (SIGKILL / sever the loopback).
  virtual void inject_kill() = 0;
  /// shard_hang: freeze it (SIGSTOP / mute its outbound queue).
  virtual void inject_hang() = 0;
  /// Ensures the worker is dead and reaped (idempotent).
  virtual void terminate() = 0;
};

/// Spawns (or respawns, after a failure) the worker for `shard`.
using WorkerFactory =
    std::function<std::unique_ptr<WorkerHandle>(std::uint32_t shard)>;

struct SupervisorOptions {
  std::uint32_t shards = 2;
  int heartbeat_ms = 2000;            ///< liveness deadline per worker recv
  /// Deadline for the kHello of a freshly spawned worker. Separate from —
  /// and far more generous than — the steady-state heartbeat deadline: a
  /// forked worker must re-exec, recompile the program and boot its full
  /// machine replica before it can say hello, and none of that scales with
  /// the per-step compute the heartbeat deadline is tuned to.
  int handshake_ms = 30'000;
  std::uint32_t restarts = 1;         ///< restart budget per shard
  std::uint64_t checkpoint_every = 64;  ///< steps between rewind points
  std::uint64_t max_steps = 1'000'000;
};

/// Why a worker was declared dead.
enum class Failure : std::uint8_t {
  kCrashed = 0,  ///< link EOF / process exit
  kHung = 1,     ///< heartbeat deadline expired
  kBabbling = 2, ///< malformed frame or lockstep violation
};

const char* to_string(Failure f);

/// Supervision counters, exported as the top-level "shard" block of the
/// metrics document (beside "obs", never inside "metrics").
struct SupervisorStats {
  std::uint64_t steps = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;
  std::uint64_t babbles = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t degrades = 0;
  std::uint64_t groups_retired = 0;
  /// Deterministic exchange cost: ceil(total frame bytes over all links /
  /// cfg.net.link_bandwidth) cycles. Reported, never added to the simulated
  /// clock — the cost model of a sharded run must equal --shards 1.
  std::uint64_t link_budget_cycles = 0;

  std::string to_json(int indent) const;
};

class ShardSupervisor {
 public:
  /// `m` is the supervisor's replica (program booted, no shard mode yet).
  /// `injector` may be null; only shard-kind faults are consumed.
  ShardSupervisor(machine::Machine& m, WorkerFactory factory,
                  SupervisorOptions opt, resil::FaultInjector* injector);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Runs to completion. Throws SimError on a program fault (same contract
  /// as Machine::run) and on an unrecoverable shard fault — the latter with
  /// a "shard ..." message that classify_fault maps to "shard-fault".
  machine::RunResult run();

  const SupervisorStats& stats() const { return stats_; }
  /// shard id owning each group (fixed for the run).
  const std::vector<std::uint32_t>& group_shard() const { return group_shard_; }

 private:
  struct Worker {
    std::unique_ptr<WorkerHandle> handle;
    std::vector<std::uint8_t> owned;  ///< per-group mask
    bool alive = false;
    std::uint32_t restarts_used = 0;
  };

  void spawn_all();
  /// Hello/fingerprint exchange + kStart. False = worker unusable.
  bool handshake(Worker& w, std::uint32_t shard, bool fresh);
  void take_checkpoint();
  void apply_injected_faults(StepId step);
  /// Collects this worker's batches for `step` into `batches`. Returns
  /// kOk, or the failure class on liveness loss.
  bool collect(std::uint32_t shard, StepId step,
               std::vector<machine::ShardGroupBatch>* batches,
               Failure* failure);
  /// Terminates the failed worker, rewinds everyone, restarts or degrades.
  /// Throws SimError when no shard survives.
  void handle_failure(std::uint32_t shard, Failure why);
  void journal(machine::DebugEventKind kind, std::uint32_t shard, Word b);
  void broadcast(const Frame& f);
  void absorb_link(const LinkStats& ls);
  [[noreturn]] void fatal(std::uint32_t shard, const std::string& what);

  machine::Machine& m_;
  WorkerFactory factory_;
  SupervisorOptions opt_;
  resil::FaultInjector* injector_;
  std::vector<Worker> workers_;
  std::vector<std::uint32_t> group_shard_;
  std::vector<std::uint8_t> checkpoint_;
  StepId checkpoint_step_ = 0;
  std::uint64_t steps_since_checkpoint_ = 0;
  SupervisorStats stats_;
};

/// A factory of in-process loopback workers, one std::thread per shard;
/// `make_replica` builds each worker's machine (identical config + program
/// + boot). Used directly by tcfrun --shard-loopback.
WorkerFactory make_loopback_factory(
    std::function<std::unique_ptr<machine::Machine>()> make_replica);

/// Runs `m` sharded over in-process loopback workers, one std::thread per
/// shard; `make_replica` builds each worker's machine (identical config +
/// program + boot). The common entry for tests, tcffuzz and
/// --shard-loopback.
machine::RunResult run_sharded_loopback(
    machine::Machine& m,
    const std::function<std::unique_ptr<machine::Machine>()>& make_replica,
    SupervisorOptions opt, resil::FaultInjector* injector,
    SupervisorStats* stats_out);

}  // namespace tcfpn::shard
