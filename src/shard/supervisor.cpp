#include "shard/supervisor.hpp"

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "debug/checkpoint.hpp"
#include "machine/shard_step.hpp"
#include "machine/state.hpp"
#include "sched/allocation.hpp"
#include "sched/balancer.hpp"
#include "shard/worker.hpp"

namespace tcfpn::shard {

namespace {

constexpr char kLogCat[] = "shard/supervisor";

Failure classify(RecvStatus st) {
  switch (st) {
    case RecvStatus::kTimeout: return Failure::kHung;
    case RecvStatus::kClosed: return Failure::kCrashed;
    default: return Failure::kBabbling;
  }
}

Failure classify_send(SendStatus st) {
  switch (st) {
    case SendStatus::kTimeout: return Failure::kHung;
    case SendStatus::kMalformed: return Failure::kBabbling;
    default: return Failure::kCrashed;
  }
}

void append_json_u64(std::string* out, const char* key, std::uint64_t v,
                     const std::string& pad, bool last = false) {
  *out += pad + "\"" + key + "\": " + std::to_string(v) + (last ? "\n" : ",\n");
}

}  // namespace

const char* to_string(Failure f) {
  switch (f) {
    case Failure::kCrashed: return "crashed";
    case Failure::kHung: return "hung";
    case Failure::kBabbling: return "babbling";
  }
  return "?";
}

std::string SupervisorStats::to_json(int indent) const {
  const std::string pad(indent + 2, ' ');
  std::string out = "{\n";
  append_json_u64(&out, "shard/steps", steps, pad);
  append_json_u64(&out, "shard/frames_sent", frames_sent, pad);
  append_json_u64(&out, "shard/frames_received", frames_received, pad);
  append_json_u64(&out, "shard/bytes_sent", bytes_sent, pad);
  append_json_u64(&out, "shard/bytes_received", bytes_received, pad);
  append_json_u64(&out, "shard/heartbeats", heartbeats, pad);
  append_json_u64(&out, "shard/checkpoints", checkpoints, pad);
  append_json_u64(&out, "shard/faults_injected", faults_injected, pad);
  append_json_u64(&out, "shard/crashes", crashes, pad);
  append_json_u64(&out, "shard/hangs", hangs, pad);
  append_json_u64(&out, "shard/babbles", babbles, pad);
  append_json_u64(&out, "shard/restarts", restarts, pad);
  append_json_u64(&out, "shard/rollbacks", rollbacks, pad);
  append_json_u64(&out, "shard/degrades", degrades, pad);
  append_json_u64(&out, "shard/groups_retired", groups_retired, pad);
  append_json_u64(&out, "shard/link_budget_cycles", link_budget_cycles, pad,
                  /*last=*/true);
  out += std::string(indent, ' ') + "}";
  return out;
}

ShardSupervisor::ShardSupervisor(machine::Machine& m, WorkerFactory factory,
                                 SupervisorOptions opt,
                                 resil::FaultInjector* injector)
    : m_(m), factory_(std::move(factory)), opt_(opt), injector_(injector) {
  TCFPN_CHECK(opt_.shards >= 1, "shard supervisor needs at least one worker");
  TCFPN_CHECK(opt_.shards <= m_.config().groups,
              "more shards (", opt_.shards, ") than groups (",
              m_.config().groups, "): some workers would own nothing");
}

ShardSupervisor::~ShardSupervisor() {
  for (Worker& w : workers_) {
    if (w.handle) {
      absorb_link(w.handle->link().stats());
      w.handle->terminate();
    }
  }
}

void ShardSupervisor::absorb_link(const LinkStats& ls) {
  stats_.frames_sent += ls.frames_sent;
  stats_.frames_received += ls.frames_received;
  stats_.bytes_sent += ls.bytes_sent;
  stats_.bytes_received += ls.bytes_received;
}

void ShardSupervisor::journal(machine::DebugEventKind kind,
                              std::uint32_t shard, Word b) {
  machine::StepObserver* observer = m_.observer();
  if (observer == nullptr) return;
  machine::DebugEvent ev;
  ev.kind = kind;
  ev.step = m_.stats().steps;
  ev.flow = machine::kNoFlow;
  ev.group = 0;
  ev.a = static_cast<Word>(shard);
  ev.b = b;
  observer->on_event(ev);
}

void ShardSupervisor::broadcast(const Frame& f) {
  for (Worker& w : workers_) {
    if (w.alive) w.handle->link().send(f);  // failures surface in collect()
  }
}

void ShardSupervisor::take_checkpoint() {
  checkpoint_ = debug::serialize(m_.save_state());
  checkpoint_step_ = m_.stats().steps;
  steps_since_checkpoint_ = 0;
  ++stats_.checkpoints;
}

void ShardSupervisor::spawn_all() {
  // Group -> shard ownership: weighted LPT over per-group throughput, so a
  // heterogeneous shape's fat groups spread across shards. Weights are the
  // exact per-group speed rationals scaled onto a common denominator grid.
  const machine::MachineConfig& cfg = m_.config();
  const std::vector<sched::GroupSpeed> speeds = sched::group_speeds(cfg);
  std::vector<Word> weights(cfg.groups, 1);
  for (GroupId g = 0; g < cfg.groups; ++g) {
    const Word w = static_cast<Word>(speeds[g].num * 1024 / speeds[g].den);
    weights[g] = std::max<Word>(w, 1);
  }
  const std::vector<sched::GroupSpeed> bins(opt_.shards,
                                            sched::GroupSpeed{1, 1});
  const std::vector<GroupId> assign = sched::lpt_assign_weighted(weights, bins);
  group_shard_.assign(cfg.groups, 0);
  for (GroupId g = 0; g < cfg.groups; ++g) group_shard_[g] = assign[g];

  workers_.resize(opt_.shards);
  for (std::uint32_t s = 0; s < opt_.shards; ++s) {
    Worker& w = workers_[s];
    w.owned.assign(cfg.groups, 0);
    for (GroupId g = 0; g < cfg.groups; ++g) {
      if (group_shard_[g] == s) w.owned[g] = 1;
    }
    w.handle = factory_(s);
    w.alive = true;
    if (!handshake(w, s, /*fresh=*/true)) {
      fatal(s, "failed its boot handshake");
    }
  }
}

bool ShardSupervisor::handshake(Worker& w, std::uint32_t shard, bool fresh) {
  Frame f;
  // Boot (re-exec + recompile + machine construction) is not steady-state
  // work: give the hello its own, generous deadline.
  const RecvStatus st = w.handle->link().recv(&f, opt_.handshake_ms);
  if (st != RecvStatus::kOk || f.type != FrameType::kHello) return false;
  HelloPayload hello;
  if (!decode_hello(f.payload, &hello)) return false;
  if (hello.shard != shard ||
      hello.config_fp != machine::config_fingerprint(m_.config()) ||
      hello.program_fp != machine::program_fingerprint(m_.program())) {
    obs::error(kLogCat, "shard " + std::to_string(shard) +
                            " hello fingerprint mismatch — config drift "
                            "between supervisor and worker");
    return false;
  }
  Frame start;
  start.type = FrameType::kStart;
  start.shard = kSupervisorId;
  start.step = m_.stats().steps;
  start.payload = encode_start(StartPayload{
      w.owned, fresh ? std::vector<std::uint8_t>{} : checkpoint_,
      static_cast<std::uint32_t>(opt_.heartbeat_ms)});
  if (!w.handle->link().send(start)) return false;
  // Boot-completion barrier: kStart processing is machine-sized work
  // (checkpoint decode + restore), so the worker heartbeats when it is
  // done and everything after this line runs under steady-state
  // deadlines. Any heartbeat releases the barrier — a pulse tick during
  // the restore already proves the worker is past the blob decode, and
  // collect() tolerates the stragglers.
  Frame ready;
  const RecvStatus rs = w.handle->link().recv(&ready, opt_.handshake_ms);
  if (rs != RecvStatus::kOk || ready.type != FrameType::kHeartbeat) {
    return false;
  }
  ++stats_.heartbeats;
  return true;
}

void ShardSupervisor::apply_injected_faults(StepId step) {
  if (injector_ == nullptr) return;
  for (const resil::FaultEvent& ev : injector_->pending(step)) {
    if (!resil::is_shard_fault(ev.kind)) continue;
    // Fired *before* acting: the rollback this fault provokes replays the
    // same steps, and the schedule must not re-arise (same contract as
    // ResilientExecutor).
    injector_->mark_fired(ev);
    const std::uint32_t s = ev.group;
    if (s >= workers_.size() || !workers_[s].alive) continue;
    ++stats_.faults_injected;
    journal(machine::DebugEventKind::kFaultInjected, s,
            static_cast<Word>(ev.kind));
    obs::warn(kLogCat, std::string("injecting ") + resil::to_string(ev.kind) +
                           " into shard " + std::to_string(s) + " at step " +
                           std::to_string(step));
    switch (ev.kind) {
      case resil::FaultKind::kShardKill:
        workers_[s].handle->inject_kill();
        break;
      case resil::FaultKind::kShardHang:
        workers_[s].handle->inject_hang();
        break;
      case resil::FaultKind::kShardBabble:
        workers_[s].handle->link().corrupt_next_recv();
        break;
      default:
        break;
    }
  }
}

bool ShardSupervisor::collect(std::uint32_t shard, StepId step,
                              std::vector<machine::ShardGroupBatch>* batches,
                              Failure* failure) {
  Worker& w = workers_[shard];
  std::size_t expected = 0;
  for (GroupId g = 0; g < w.owned.size(); ++g) {
    if (w.owned[g] && m_.group_alive(g)) ++expected;
  }
  std::vector<std::uint8_t> got(w.owned.size(), 0);
  std::size_t have = 0;
  while (have < expected || expected == 0) {
    Frame f;
    const RecvStatus st = w.handle->link().recv(&f, opt_.heartbeat_ms);
    if (st != RecvStatus::kOk) {
      *failure = classify(st);
      return false;
    }
    if (f.type == FrameType::kHeartbeat) {
      // Any heartbeat resets the liveness deadline: the worker's
      // compute-phase pulse is time-paced, so one stamped with the previous
      // step can straddle the boundary — that is alive, not babble. Only
      // the step-matched heartbeat answers begin-step for a groupless
      // worker.
      ++stats_.heartbeats;
      if (expected == 0 && f.step == step) return true;
      continue;
    }
    if (f.type != FrameType::kBatch || f.step != step) {
      obs::warn(kLogCat, "shard " + std::to_string(shard) +
                             " broke lockstep with a " +
                             std::string(to_string(f.type)) + " frame");
      *failure = Failure::kBabbling;
      return false;
    }
    machine::ShardGroupBatch b;
    if (!decode_batch(f.payload, &b) || b.group >= w.owned.size() ||
        !w.owned[b.group] || !m_.group_alive(b.group) || got[b.group] ||
        b.step != step) {
      *failure = Failure::kBabbling;
      return false;
    }
    got[b.group] = 1;
    ++have;
    batches->push_back(std::move(b));
  }
  return true;
}

void ShardSupervisor::handle_failure(std::uint32_t shard, Failure why) {
  std::deque<std::pair<std::uint32_t, Failure>> failures;
  failures.emplace_back(shard, why);
  std::vector<GroupId> resync_retires;  // cumulative across this resync

  while (!failures.empty()) {
    std::vector<std::uint32_t> to_restart;

    // Decision phase: classify, terminate, pick restart or degrade.
    while (!failures.empty()) {
      const auto [s, f] = failures.front();
      failures.pop_front();
      Worker& w = workers_[s];
      if (!w.alive) continue;  // already handled this resync
      switch (f) {
        case Failure::kCrashed: ++stats_.crashes; break;
        case Failure::kHung: ++stats_.hangs; break;
        case Failure::kBabbling: ++stats_.babbles; break;
      }
      journal(machine::DebugEventKind::kShardFault, s,
              static_cast<Word>(f));
      obs::warn(kLogCat, "shard " + std::to_string(s) + " " + to_string(f) +
                             " at step " + std::to_string(m_.stats().steps));
      absorb_link(w.handle->link().stats());
      w.handle->terminate();
      w.alive = false;
      if (w.restarts_used < opt_.restarts) {
        ++w.restarts_used;
        to_restart.push_back(s);
      } else {
        // Degrade: retire the dead shard's still-alive groups, ascending.
        std::vector<GroupId> mine;
        for (GroupId g = 0; g < w.owned.size(); ++g) {
          if (w.owned[g] && m_.group_alive(g) &&
              std::find(resync_retires.begin(), resync_retires.end(), g) ==
                  resync_retires.end()) {
            mine.push_back(g);
          }
        }
        if (resync_retires.size() + mine.size() >= m_.alive_groups()) {
          fatal(s, std::string(to_string(f)) +
                       " with restart budget exhausted and no capacity left "
                       "to absorb its groups");
        }
        resync_retires.insert(resync_retires.end(), mine.begin(), mine.end());
        ++stats_.degrades;
        journal(machine::DebugEventKind::kShardRetired, s,
                static_cast<Word>(mine.size()));
        obs::warn(kLogCat, "shard " + std::to_string(s) +
                               " degraded permanently; retiring " +
                               std::to_string(mine.size()) + " group(s)");
      }
    }

    bool any_left = !to_restart.empty();
    for (const Worker& w : workers_) any_left = any_left || w.alive;
    if (!any_left) {
      fatal(shard, std::string(to_string(why)) +
                       " and no shard survives the resync");
    }

    // Rewind the supervisor to the checkpoint, apply every retirement
    // decided this resync (ascending — the deterministic degrade order),
    // and re-checkpoint so the new blob carries the retirements.
    m_.set_shard_mode({});
    m_.restore_state(debug::deserialize(checkpoint_));
    ++stats_.rollbacks;
    std::sort(resync_retires.begin(), resync_retires.end());
    for (GroupId g : resync_retires) {
      if (m_.group_alive(g)) {
        m_.retire_group(g);
        ++stats_.groups_retired;
      }
    }
    m_.set_shard_mode(std::vector<std::uint8_t>(m_.config().groups, 0));
    take_checkpoint();

    // Resync survivors: rewind them to the new blob and drain everything
    // they sent before the ack (stale frames of the aborted step).
    Frame rb;
    rb.type = FrameType::kRollback;
    rb.shard = kSupervisorId;
    rb.step = checkpoint_step_;
    rb.payload = encode_rollback(RollbackPayload{checkpoint_, {}});
    for (std::uint32_t s = 0; s < workers_.size(); ++s) {
      Worker& w = workers_[s];
      if (!w.alive) continue;
      // A survivor may itself be wedged mid-send — its socket buffer full
      // of stale batch frames nobody collected once the step aborted — and
      // the checkpoint blob can exceed our own buffer. A blocking send
      // would deadlock both sides; send_draining writes while draining
      // (and discarding) the survivor's stale frames, and an expiry
      // classifies it hung. The whole resync runs under the boot-class
      // handshake deadline, not the steady-state one: restoring a
      // checkpoint is the same machine-sized work as a restart handshake,
      // and the survivor's CRC pass over the blob happens inside its recv,
      // where the compute-phase heartbeat pulse cannot cover it.
      const SendStatus ss = w.handle->link().send_draining(rb, opt_.handshake_ms);
      if (ss != SendStatus::kOk) {
        failures.emplace_back(s, classify_send(ss));
        continue;
      }
      for (;;) {
        Frame f;
        const RecvStatus st = w.handle->link().recv(&f, opt_.handshake_ms);
        if (st != RecvStatus::kOk) {
          failures.emplace_back(s, classify(st));
          break;
        }
        if (f.type == FrameType::kRollbackAck) break;
        // Anything before the ack is a stale frame of the aborted step.
      }
    }

    // Respawn replacements from the fresh blob.
    for (std::uint32_t s : to_restart) {
      Worker& w = workers_[s];
      w.handle = factory_(s);
      w.alive = true;
      if (!handshake(w, s, /*fresh=*/false)) {
        failures.emplace_back(s, Failure::kCrashed);
        continue;
      }
      ++stats_.restarts;
      journal(machine::DebugEventKind::kShardRestart, s,
              static_cast<Word>(checkpoint_step_));
      obs::info(kLogCat, "shard " + std::to_string(s) +
                             " restarted from checkpoint step " +
                             std::to_string(checkpoint_step_));
    }
  }
}

void ShardSupervisor::fatal(std::uint32_t shard, const std::string& what) {
  const std::string msg =
      "shard " + std::to_string(shard) + " " + what + " at step " +
      std::to_string(m_.stats().steps) + ": sharded execution cannot continue";
  obs::error(kLogCat, msg);
  Frame down;
  down.type = FrameType::kShutdown;
  down.shard = kSupervisorId;
  down.step = m_.stats().steps;
  broadcast(down);
  for (Worker& w : workers_) {
    if (w.handle) {
      absorb_link(w.handle->link().stats());
      w.handle->terminate();
      w.handle = nullptr;
      w.alive = false;
    }
  }
  // The supervisor's replica is at the last committed boundary (the failed
  // step never merged), so a post-mortem may inspect it read-only.
  machine::StepObserver* observer = m_.observer();
  if (observer != nullptr) observer->on_fault(msg, m_);
  throw SimError(msg);
}

machine::RunResult ShardSupervisor::run() {
  m_.set_shard_mode(std::vector<std::uint8_t>(m_.config().groups, 0));
  spawn_all();
  take_checkpoint();

  std::uint64_t executed = 0;
  while (executed < opt_.max_steps) {
    if (!m_.shard_begin_step()) break;  // replicated end-of-run decision
    const StepId step = m_.stats().steps;
    apply_injected_faults(step);

    Frame begin;
    begin.type = FrameType::kBeginStep;
    begin.shard = kSupervisorId;
    begin.step = step;
    broadcast(begin);

    std::vector<machine::ShardGroupBatch> batches;
    bool aborted = false;
    for (std::uint32_t s = 0; s < workers_.size(); ++s) {
      if (!workers_[s].alive) continue;
      Failure why = Failure::kCrashed;
      if (!collect(s, step, &batches, &why)) {
        handle_failure(s, why);
        aborted = true;
        break;
      }
    }
    if (aborted) continue;  // rewound; replay from the checkpoint

    for (const machine::ShardGroupBatch& b : batches) m_.shard_install(b);
    try {
      m_.shard_finish_step();
    } catch (const SimError&) {
      // A program fault, surfacing exactly where --shards 1 would raise it.
      // Workers never see these batches (no kCommit), so they idle until
      // the shutdown below.
      Frame down;
      down.type = FrameType::kShutdown;
      down.shard = kSupervisorId;
      down.step = step;
      broadcast(down);
      throw;
    }
    ++executed;
    ++stats_.steps;

    Frame commit;
    commit.type = FrameType::kCommit;
    commit.shard = kSupervisorId;
    commit.step = step;
    commit.payload = encode_commit(batches);
    broadcast(commit);

    if (++steps_since_checkpoint_ >= opt_.checkpoint_every) take_checkpoint();
  }

  Frame down;
  down.type = FrameType::kShutdown;
  down.shard = kSupervisorId;
  down.step = m_.stats().steps;
  broadcast(down);
  for (Worker& w : workers_) {
    if (w.handle) {
      absorb_link(w.handle->link().stats());
      w.handle->terminate();
      w.handle = nullptr;
      w.alive = false;
    }
  }
  const std::uint64_t bw = std::max<std::uint64_t>(
      m_.config().net.link_bandwidth, 1);
  const std::uint64_t total = stats_.bytes_sent + stats_.bytes_received;
  stats_.link_budget_cycles = (total + bw - 1) / bw;
  m_.set_shard_mode({});
  return machine::RunResult{m_.done(), m_.stats().cycles, m_.stats().steps};
}

// ----- loopback host -----

namespace {

/// A worker on a std::thread behind a loopback link. inject_kill severs the
/// queues (the thread's next recv/send observes kClosed and exits);
/// inject_hang mutes its outbound queue, so the supervisor starves into the
/// heartbeat deadline while the worker keeps running until terminated.
class LoopbackWorker final : public WorkerHandle {
 public:
  LoopbackWorker(std::unique_ptr<machine::Machine> replica, LoopbackPair pair,
                 std::uint32_t shard)
      : replica_(std::move(replica)),
        supervisor_end_(std::move(pair.supervisor_end)),
        mute_(std::move(pair.mute_worker)),
        sever_(std::move(pair.sever)) {
    WorkerConfig wc;
    wc.shard = shard;
    wc.config_fp = machine::config_fingerprint(replica_->config());
    wc.program_fp = machine::program_fingerprint(replica_->program());
    thread_ = std::thread(
        [m = replica_.get(), t = pair.worker_end.release(), wc]() mutable {
          std::unique_ptr<Transport> link(t);
          serve_worker(*m, *link, wc);
        });
  }

  ~LoopbackWorker() override { terminate(); }

  Transport& link() override { return *supervisor_end_; }
  void inject_kill() override { sever_(); }
  void inject_hang() override { mute_(true); }
  void terminate() override {
    sever_();
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::unique_ptr<machine::Machine> replica_;
  std::unique_ptr<Transport> supervisor_end_;
  std::function<void(bool)> mute_;
  std::function<void()> sever_;
  std::thread thread_;
};

}  // namespace

WorkerFactory make_loopback_factory(
    std::function<std::unique_ptr<machine::Machine>()> make_replica) {
  return [make_replica = std::move(make_replica)](std::uint32_t shard) {
    return std::make_unique<LoopbackWorker>(make_replica(),
                                            make_loopback_pair(), shard);
  };
}

machine::RunResult run_sharded_loopback(
    machine::Machine& m,
    const std::function<std::unique_ptr<machine::Machine>()>& make_replica,
    SupervisorOptions opt, resil::FaultInjector* injector,
    SupervisorStats* stats_out) {
  ShardSupervisor sup(m, make_loopback_factory(make_replica), opt, injector);
  machine::RunResult res = sup.run();
  if (stats_out != nullptr) *stats_out = sup.stats();
  return res;
}

}  // namespace tcfpn::shard
