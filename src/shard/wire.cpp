#include "shard/wire.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"
#include "isa/instr.hpp"

namespace tcfpn::shard {

namespace {

// ----- primitive stream helpers -----
//
// Same conventions as the TCFCKPT checkpoint codec: little-endian integers,
// doubles as bit patterns, strings length-prefixed. The Reader never throws:
// it trips a sticky `ok` flag on any out-of-bounds access, and every decode_*
// entry point returns that flag — a babbling peer yields `false`, not UB.

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u64(b.size());
    out_->insert(out_->end(), b.begin(), b.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : data_(data), n_(n) {}

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == n_; }
  std::size_t remaining() const { return n_ - pos_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t{data_[pos_++]} << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Length prefix guarded against absurd counts: each element occupies at
  /// least `elem_bytes` more bytes, so a count the buffer cannot possibly
  /// hold is malformed (prevents OOM on corrupt input).
  std::uint64_t count(std::size_t elem_bytes) {
    const std::uint64_t c = u64();
    if (!ok_) return 0;
    if (elem_bytes > 0 && c > remaining() / elem_bytes) {
      ok_ = false;
      return 0;
    }
    return c;
  }

  std::string str() {
    const std::uint64_t c = count(1);
    if (!ok_) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), c);
    pos_ += c;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t c = count(1);
    if (!ok_) return {};
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + c);
    pos_ += c;
    return b;
  }

 private:
  bool take(std::size_t k) {
    if (!ok_ || n_ - pos_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void put_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (std::uint64_t x : v) w.u64(x);
}

bool get_u64_vec(Reader& r, std::vector<std::uint64_t>* v) {
  const std::uint64_t c = r.count(8);
  if (!r.ok()) return false;
  v->resize(c);
  for (std::uint64_t& x : *v) x = r.u64();
  return r.ok();
}

void put_word_vec(Writer& w, const std::vector<Word>& v) {
  w.u64(v.size());
  for (Word x : v) w.i64(x);
}

bool get_word_vec(Reader& r, std::vector<Word>* v) {
  const std::uint64_t c = r.count(8);
  if (!r.ok()) return false;
  v->resize(c);
  for (Word& x : *v) x = r.i64();
  return r.ok();
}

void put_lane_regs(Writer& w, const machine::LaneRegs& regs) {
  for (Word x : regs) w.i64(x);
}

bool get_lane_regs(Reader& r, machine::LaneRegs* regs) {
  for (Word& x : *regs) x = r.i64();
  return r.ok();
}

void put_stats(Writer& w, const machine::MachineStats& s) {
  w.u64(s.cycles);
  w.u64(s.steps);
  w.u64(s.tcf_instructions);
  w.u64(s.operations);
  w.u64(s.instruction_fetches);
  w.u64(s.spawns);
  w.u64(s.joins);
  w.u64(s.busy_slots);
  w.u64(s.idle_slots);
  w.u64(s.memory_wait_cycles);
  w.u64(s.task_switch_cycles);
  w.u64(s.branch_cost_cycles);
}

bool get_stats(Reader& r, machine::MachineStats* s) {
  s->cycles = r.u64();
  s->steps = r.u64();
  s->tcf_instructions = r.u64();
  s->operations = r.u64();
  s->instruction_fetches = r.u64();
  s->spawns = r.u64();
  s->joins = r.u64();
  s->busy_slots = r.u64();
  s->idle_slots = r.u64();
  s->memory_wait_cycles = r.u64();
  s->task_switch_cycles = r.u64();
  s->branch_cost_cycles = r.u64();
  return r.ok();
}

void put_port_image(Writer& w, const mem::MemoryPort::Image& img) {
  w.u64(img.writes.size());
  for (const mem::StagedWrite& sw : img.writes) {
    w.u64(sw.addr);
    w.i64(sw.value);
    w.u64(sw.lane);
  }
  w.u64(img.multis.size());
  for (const mem::StagedMulti& sm : img.multis) {
    w.u64(sm.addr);
    w.u8(static_cast<std::uint8_t>(sm.op));
    w.i64(sm.value);
    w.u64(sm.lane);
    w.u8(sm.prefix ? 1 : 0);
  }
  w.u64(img.reads.size());
  for (const auto& [a, lane] : img.reads) {
    w.u64(a);
    w.u64(lane);
  }
  put_u64_vec(w, img.mod_reads);
  put_u64_vec(w, img.mod_writes);
  put_u64_vec(w, img.mod_multis);
  w.u64(img.n_reads);
  w.u64(img.prefixes);
  w.u8(img.sealed ? 1 : 0);
}

bool get_port_image(Reader& r, mem::MemoryPort::Image* img) {
  std::uint64_t c = r.count(24);
  if (!r.ok()) return false;
  img->writes.resize(c);
  for (mem::StagedWrite& sw : img->writes) {
    sw.addr = r.u64();
    sw.value = r.i64();
    sw.lane = r.u64();
  }
  c = r.count(26);
  if (!r.ok()) return false;
  img->multis.resize(c);
  for (mem::StagedMulti& sm : img->multis) {
    sm.addr = r.u64();
    const std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(mem::MultiOp::kOr)) return false;
    sm.op = static_cast<mem::MultiOp>(op);
    sm.value = r.i64();
    sm.lane = r.u64();
    sm.prefix = r.u8() != 0;
  }
  c = r.count(16);
  if (!r.ok()) return false;
  img->reads.resize(c);
  for (auto& [a, lane] : img->reads) {
    a = r.u64();
    lane = r.u64();
  }
  if (!get_u64_vec(r, &img->mod_reads)) return false;
  if (!get_u64_vec(r, &img->mod_writes)) return false;
  if (!get_u64_vec(r, &img->mod_multis)) return false;
  img->n_reads = r.u64();
  img->prefixes = r.u64();
  img->sealed = r.u8() != 0;
  return r.ok();
}

void put_raw_metrics(Writer& w, const metrics::RawMetrics& m) {
  w.u64(m.size());
  for (const auto& [path, ri] : m) {  // std::map: key order, byte-stable
    w.str(path);
    w.u8(static_cast<std::uint8_t>(ri.kind));
    w.u64(ri.count);
    w.f64(ri.gauge_value);
    w.u8(ri.gauge_set ? 1 : 0);
    w.u64(ri.acc.n);
    w.f64(ri.acc.sum);
    w.f64(ri.acc.mean);
    w.f64(ri.acc.m2);
    w.f64(ri.acc.min);
    w.f64(ri.acc.max);
    w.f64(ri.lo);
    w.f64(ri.hi);
    put_u64_vec(w, ri.buckets);
  }
}

bool get_raw_metrics(Reader& r, metrics::RawMetrics* m) {
  m->clear();
  const std::uint64_t c = r.count(8);
  if (!r.ok()) return false;
  for (std::uint64_t i = 0; i < c; ++i) {
    std::string path = r.str();
    metrics::RawInstrument ri;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(metrics::InstrumentKind::kHistogram))
      return false;
    ri.kind = static_cast<metrics::InstrumentKind>(kind);
    ri.count = r.u64();
    ri.gauge_value = r.f64();
    ri.gauge_set = r.u8() != 0;
    ri.acc.n = r.u64();
    ri.acc.sum = r.f64();
    ri.acc.mean = r.f64();
    ri.acc.m2 = r.f64();
    ri.acc.min = r.f64();
    ri.acc.max = r.f64();
    ri.lo = r.f64();
    ri.hi = r.f64();
    if (!get_u64_vec(r, &ri.buckets)) return false;
    if (!r.ok()) return false;
    m->emplace(std::move(path), std::move(ri));
  }
  return r.ok();
}

void put_flow_state(Writer& w, const machine::FlowState& fs) {
  w.u64(fs.id);
  w.u64(fs.parent);
  w.u32(fs.home);
  w.u64(fs.pc);
  w.u8(static_cast<std::uint8_t>(fs.mode));
  w.i64(fs.thickness);
  w.u32(fs.numa_block);
  w.u8(static_cast<std::uint8_t>(fs.status));
  w.u32(fs.live_children);
  w.u64(fs.next_unexecuted);
  w.u64(fs.lane_regs.size());
  for (const machine::LaneRegs& regs : fs.lane_regs) put_lane_regs(w, regs);
  put_u64_vec(w, fs.call_stack);
  w.u64(fs.instr_writes.size());
  for (const auto& [a, v] : fs.instr_writes) {
    w.u64(a);
    w.i64(v);
  }
  w.u8(fs.multiop_blocked ? 1 : 0);
  w.u8(fs.evicted_once ? 1 : 0);
}

bool get_flow_state(Reader& r, machine::FlowState* fs) {
  fs->id = r.u64();
  fs->parent = r.u64();
  fs->home = r.u32();
  fs->pc = r.u64();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(machine::FlowMode::kNuma)) return false;
  fs->mode = static_cast<machine::FlowMode>(mode);
  fs->thickness = r.i64();
  fs->numa_block = r.u32();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(machine::FlowStatus::kHalted))
    return false;
  fs->status = static_cast<machine::FlowStatus>(status);
  fs->live_children = r.u32();
  fs->next_unexecuted = r.u64();
  const std::uint64_t lanes = r.count(8 * isa::kNumRegisters);
  if (!r.ok()) return false;
  fs->lane_regs.resize(lanes);
  for (machine::LaneRegs& regs : fs->lane_regs) {
    if (!get_lane_regs(r, &regs)) return false;
  }
  if (!get_u64_vec(r, &fs->call_stack)) return false;
  const std::uint64_t iw = r.count(16);
  if (!r.ok()) return false;
  fs->instr_writes.resize(iw);
  for (auto& [a, v] : fs->instr_writes) {
    a = r.u64();
    v = r.i64();
  }
  fs->multiop_blocked = r.u8() != 0;
  fs->evicted_once = r.u8() != 0;
  return r.ok();
}

void put_batch(Writer& w, const machine::ShardGroupBatch& b) {
  w.u32(b.group);
  w.u64(b.step);
  w.u64(b.step_ops);
  put_stats(w, b.delta);
  put_port_image(w, b.port);
  w.u64(b.refs.size());
  for (const auto& [src, module] : b.refs) {
    w.u32(src);
    w.u32(module);
  }
  put_u64_vec(w, b.net_loads);
  w.u64(b.net_refs);
  w.u32(b.net_max_dist);
  w.u64(b.prefix_reqs.size());
  for (const auto& p : b.prefix_reqs) {
    w.u64(p.flow);
    w.u64(p.lane);
    w.u8(p.rd);
    w.u64(p.local);
  }
  w.u64(b.spawns.size());
  for (const auto& s : b.spawns) {
    w.u64(s.parent);
    w.u64(s.entry);
    put_word_vec(w, s.fragments);
    put_lane_regs(w, s.broadcast);
  }
  w.u64(b.halted.size());
  for (FlowId f : b.halted) w.u64(f);
  put_word_vec(w, b.prints);
  w.u64(b.events.size());
  for (const machine::DebugEvent& ev : b.events) {
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.u64(ev.step);
    w.u64(ev.flow);
    w.u32(ev.group);
    w.i64(ev.a);
    w.i64(ev.b);
  }
  w.u64(b.prof_bins.size());
  for (const auto& [key, cycles] : b.prof_bins) {
    w.i64(key.group);
    w.i64(key.flow);
    w.i64(key.pc);
    w.u8(static_cast<std::uint8_t>(key.term));
    w.u64(cycles);
  }
  put_raw_metrics(w, b.metrics);
  w.str(b.error);
  w.u64(b.flows.size());
  for (const machine::FlowState& fs : b.flows) put_flow_state(w, fs);
  w.u64(b.local_writes.size());
  for (const auto& [a, v] : b.local_writes) {
    w.u64(a);
    w.i64(v);
  }
  w.u64(b.local_reads);
  w.u64(b.local_write_count);
  w.u64(b.local_remote);
}

bool get_batch(Reader& r, machine::ShardGroupBatch* b) {
  *b = machine::ShardGroupBatch{};
  b->group = r.u32();
  b->step = r.u64();
  b->step_ops = r.u64();
  if (!get_stats(r, &b->delta)) return false;
  if (!get_port_image(r, &b->port)) return false;
  std::uint64_t c = r.count(8);
  if (!r.ok()) return false;
  b->refs.resize(c);
  for (auto& [src, module] : b->refs) {
    src = r.u32();
    module = r.u32();
  }
  if (!get_u64_vec(r, &b->net_loads)) return false;
  b->net_refs = r.u64();
  b->net_max_dist = r.u32();
  c = r.count(25);
  if (!r.ok()) return false;
  b->prefix_reqs.resize(c);
  for (auto& p : b->prefix_reqs) {
    p.flow = r.u64();
    p.lane = r.u64();
    p.rd = r.u8();
    p.local = r.u64();
  }
  c = r.count(24 + 8 * isa::kNumRegisters);
  if (!r.ok()) return false;
  b->spawns.resize(c);
  for (auto& s : b->spawns) {
    s.parent = r.u64();
    s.entry = r.u64();
    if (!get_word_vec(r, &s.fragments)) return false;
    if (!get_lane_regs(r, &s.broadcast)) return false;
  }
  c = r.count(8);
  if (!r.ok()) return false;
  b->halted.resize(c);
  for (FlowId& f : b->halted) f = r.u64();
  if (!get_word_vec(r, &b->prints)) return false;
  c = r.count(37);
  if (!r.ok()) return false;
  b->events.resize(c);
  for (machine::DebugEvent& ev : b->events) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(machine::DebugEventKind::kShardRetired))
      return false;
    ev.kind = static_cast<machine::DebugEventKind>(kind);
    ev.step = r.u64();
    ev.flow = r.u64();
    ev.group = r.u32();
    ev.a = r.i64();
    ev.b = r.i64();
  }
  c = r.count(33);
  if (!r.ok()) return false;
  b->prof_bins.resize(c);
  for (auto& [key, cycles] : b->prof_bins) {
    key.group = r.i64();
    key.flow = r.i64();
    key.pc = r.i64();
    const std::uint8_t term = r.u8();
    if (term > static_cast<std::uint8_t>(prof::Term::kSched)) return false;
    key.term = static_cast<prof::Term>(term);
    cycles = r.u64();
  }
  if (!get_raw_metrics(r, &b->metrics)) return false;
  b->error = r.str();
  c = r.count(8);
  if (!r.ok()) return false;
  b->flows.resize(c);
  for (machine::FlowState& fs : b->flows) {
    if (!get_flow_state(r, &fs)) return false;
  }
  c = r.count(16);
  if (!r.ok()) return false;
  b->local_writes.resize(c);
  for (auto& [a, v] : b->local_writes) {
    a = r.u64();
    v = r.i64();
  }
  b->local_reads = r.u64();
  b->local_write_count = r.u64();
  b->local_remote = r.u64();
  return r.ok();
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kStart: return "start";
    case FrameType::kBeginStep: return "begin-step";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kBatch: return "batch";
    case FrameType::kCommit: return "commit";
    case FrameType::kRollback: return "rollback";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kRollbackAck: return "rollback-ack";
  }
  return "?";
}

namespace {

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

/// The integrity-protected span of a frame is "step || payload": the step
/// field drives the lockstep protocol, so a damaged step must classify as
/// babble at the transport, not surface as a (spurious) lockstep violation.
std::uint32_t frame_crc(StepId step, const std::uint8_t* payload,
                        std::size_t n) {
  std::uint8_t sb[8];
  for (int i = 0; i < 8; ++i) {
    sb[i] = static_cast<std::uint8_t>(step >> (8 * i));
  }
  std::uint32_t crc = crc32_update(0xffffffffu, sb, sizeof sb);
  return crc32_update(crc, payload, n) ^ 0xffffffffu;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_update(0xffffffffu, data, n) ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  TCFPN_CHECK(f.payload.size() <= kMaxPayloadBytes, "shard frame payload of ",
              f.payload.size(), " bytes exceeds the ", kMaxPayloadBytes,
              "-byte wire ceiling");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + f.payload.size());
  Writer w(&out);
  w.u32(kMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(f.type));
  w.u32(f.shard);
  w.u32(frame_crc(f.step, f.payload.data(), f.payload.size()));
  w.u64(f.step);
  w.u64(f.payload.size());
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

bool decode_header(const std::uint8_t* hdr, FrameHeader* out) {
  Reader r(hdr, kHeaderBytes);
  if (r.u32() != kMagic) return false;
  if (r.u16() != kWireVersion) return false;
  const std::uint16_t type = r.u16();
  if (type < static_cast<std::uint16_t>(FrameType::kHello) ||
      type > static_cast<std::uint16_t>(FrameType::kRollbackAck)) {
    return false;
  }
  out->type = static_cast<FrameType>(type);
  out->shard = r.u32();
  out->crc = r.u32();
  out->step = r.u64();
  out->payload_len = r.u64();
  // The CRC covers step || payload only, so a damaged len passes every
  // other check; bounding it here is what keeps receivers from allocating
  // (or resizing past) an attacker-sized buffer.
  if (out->payload_len > kMaxPayloadBytes) return false;
  return r.ok();
}

bool assemble_frame(const FrameHeader& h, std::vector<std::uint8_t> payload,
                    Frame* out) {
  if (payload.size() != h.payload_len) return false;
  if (frame_crc(h.step, payload.data(), payload.size()) != h.crc) return false;
  out->type = h.type;
  out->shard = h.shard;
  out->step = h.step;
  out->payload = std::move(payload);
  return true;
}

bool decode_frame(const std::vector<std::uint8_t>& bytes, Frame* out) {
  if (bytes.size() < kHeaderBytes) return false;
  FrameHeader h;
  if (!decode_header(bytes.data(), &h)) return false;
  if (bytes.size() - kHeaderBytes != h.payload_len) return false;
  return assemble_frame(
      h, std::vector<std::uint8_t>(bytes.begin() + kHeaderBytes, bytes.end()),
      out);
}

std::vector<std::uint8_t> encode_hello(const HelloPayload& p) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.u32(p.shard);
  w.u64(p.config_fp);
  w.u64(p.program_fp);
  return out;
}

bool decode_hello(const std::vector<std::uint8_t>& bytes, HelloPayload* out) {
  Reader r(bytes.data(), bytes.size());
  out->shard = r.u32();
  out->config_fp = r.u64();
  out->program_fp = r.u64();
  return r.done();
}

std::vector<std::uint8_t> encode_start(const StartPayload& p) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.bytes(p.owned);
  w.bytes(p.state);
  w.u32(p.heartbeat_ms);
  return out;
}

bool decode_start(const std::vector<std::uint8_t>& bytes, StartPayload* out) {
  Reader r(bytes.data(), bytes.size());
  out->owned = r.bytes();
  out->state = r.bytes();
  out->heartbeat_ms = r.u32();
  return r.done();
}

std::vector<std::uint8_t> encode_rollback(const RollbackPayload& p) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.bytes(p.state);
  w.u64(p.retires.size());
  for (GroupId g : p.retires) w.u32(g);
  return out;
}

bool decode_rollback(const std::vector<std::uint8_t>& bytes,
                     RollbackPayload* out) {
  Reader r(bytes.data(), bytes.size());
  out->state = r.bytes();
  const std::uint64_t c = r.count(4);
  if (!r.ok()) return false;
  out->retires.resize(c);
  for (GroupId& g : out->retires) g = r.u32();
  return r.done();
}

std::vector<std::uint8_t> encode_batch(const machine::ShardGroupBatch& b) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  put_batch(w, b);
  return out;
}

bool decode_batch(const std::vector<std::uint8_t>& bytes,
                  machine::ShardGroupBatch* out) {
  Reader r(bytes.data(), bytes.size());
  if (!get_batch(r, out)) return false;
  return r.done();
}

std::vector<std::uint8_t> encode_commit(
    const std::vector<machine::ShardGroupBatch>& batches) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.u64(batches.size());
  for (const machine::ShardGroupBatch& b : batches) put_batch(w, b);
  return out;
}

bool decode_commit(const std::vector<std::uint8_t>& bytes,
                   std::vector<machine::ShardGroupBatch>* out) {
  Reader r(bytes.data(), bytes.size());
  const std::uint64_t c = r.count(1);
  if (!r.ok()) return false;
  out->clear();
  out->reserve(c);
  for (std::uint64_t i = 0; i < c; ++i) {
    machine::ShardGroupBatch b;
    if (!get_batch(r, &b)) return false;
    out->push_back(std::move(b));
  }
  return r.done();
}

}  // namespace tcfpn::shard
