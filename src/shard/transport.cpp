#include "shard/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace tcfpn::shard {

const char* to_string(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kTimeout: return "timeout";
    case RecvStatus::kClosed: return "closed";
    case RecvStatus::kMalformed: return "malformed";
  }
  return "?";
}

const char* to_string(SendStatus s) {
  switch (s) {
    case SendStatus::kOk: return "ok";
    case SendStatus::kTimeout: return "timeout";
    case SendStatus::kClosed: return "closed";
    case SendStatus::kMalformed: return "malformed";
  }
  return "?";
}

bool Transport::send(const Frame& f) {
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  std::lock_guard<std::mutex> lk(send_mu_);
  if (!send_bytes(bytes)) return false;
  if (f.type != FrameType::kHeartbeat) {
    ++stats_.frames_sent;
    stats_.bytes_sent += bytes.size();
  }
  return true;
}

SendStatus Transport::send_draining(const Frame& f, int deadline_ms) {
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  std::lock_guard<std::mutex> lk(send_mu_);
  const SendStatus st = send_draining_bytes(bytes, deadline_ms);
  if (st == SendStatus::kOk && f.type != FrameType::kHeartbeat) {
    ++stats_.frames_sent;
    stats_.bytes_sent += bytes.size();
  }
  return st;
}

RecvStatus Transport::recv(Frame* out, int deadline_ms) {
  std::vector<std::uint8_t> bytes;
  const RecvStatus st = recv_bytes(&bytes, deadline_ms);
  if (st != RecvStatus::kOk) return st;
  if (corrupt_next_) {
    corrupt_next_ = false;
    // Flip a payload byte when there is one (caught by the CRC); a bare
    // header loses its magic instead (caught by decode_header).
    const std::size_t at = bytes.size() > kHeaderBytes ? kHeaderBytes : 0;
    if (!bytes.empty()) bytes[at] ^= 0x40;
  }
  if (!decode_frame(bytes, out)) {
    ++stats_.malformed_frames;
    return RecvStatus::kMalformed;
  }
  if (out->type != FrameType::kHeartbeat) {
    ++stats_.frames_received;
    stats_.bytes_received += bytes.size();
  }
  return RecvStatus::kOk;
}

namespace {

/// One direction of a loopback link: a queue of complete encoded frames.
struct LoopbackQueue {
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> q;
  bool closed = false;
  bool mute = false;  ///< drop instead of enqueue (shard_hang analogue)

  bool push(const std::vector<std::uint8_t>& bytes) {
    std::lock_guard<std::mutex> lk(m);
    if (closed) return false;
    if (!mute) {
      q.push_back(bytes);
      cv.notify_one();
    }
    return true;
  }

  RecvStatus pop(std::vector<std::uint8_t>* out, int deadline_ms) {
    std::unique_lock<std::mutex> lk(m);
    const auto ready = [this] { return !q.empty() || closed; };
    if (deadline_ms < 0) {
      cv.wait(lk, ready);
    } else if (!cv.wait_for(lk, std::chrono::milliseconds(deadline_ms),
                            ready)) {
      return RecvStatus::kTimeout;
    }
    if (q.empty()) return RecvStatus::kClosed;
    *out = std::move(q.front());
    q.pop_front();
    return RecvStatus::kOk;
  }

  void close() {
    std::lock_guard<std::mutex> lk(m);
    closed = true;
    cv.notify_all();
  }

  void set_mute(bool on) {
    std::lock_guard<std::mutex> lk(m);
    mute = on;
  }
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackQueue> tx,
                    std::shared_ptr<LoopbackQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  void close() override {
    tx_->close();
    rx_->close();
  }

 protected:
  bool send_bytes(const std::vector<std::uint8_t>& bytes) override {
    return tx_->push(bytes);
  }
  RecvStatus recv_bytes(std::vector<std::uint8_t>* out,
                        int deadline_ms) override {
    return rx_->pop(out, deadline_ms);
  }

 private:
  std::shared_ptr<LoopbackQueue> tx_;
  std::shared_ptr<LoopbackQueue> rx_;
};

class FdTransport final : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override { close(); }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 protected:
  bool send_bytes(const std::vector<std::uint8_t>& bytes) override {
    if (fd_ < 0) return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
      // MSG_NOSIGNAL: sending to a worker that just died must fail with
      // EPIPE (the supervisor handles it as a crash), not kill the whole
      // supervisor with SIGPIPE. The link is always a socketpair.
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  SendStatus send_draining_bytes(const std::vector<std::uint8_t>& bytes,
                                 int deadline_ms) override {
    using Clock = std::chrono::steady_clock;
    // Inactivity deadline, not total-transfer: the caller is detecting a
    // dead peer, and a peer that keeps moving bytes (either direction) is
    // alive no matter how large the blob or how slow the host. Every byte
    // of progress re-arms the clock; only silence for deadline_ms times
    // out.
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       deadline_ms < 0 ? 0 : deadline_ms);
    std::size_t off = 0;
    while (off < bytes.size()) {
      if (fd_ < 0) return SendStatus::kClosed;
      int wait_ms = -1;
      if (deadline_ms >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        wait_ms = static_cast<int>(left.count());
        if (wait_ms < 0) return SendStatus::kTimeout;
      }
      struct pollfd pfd{fd_, POLLIN | POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return SendStatus::kClosed;
      }
      if (pr == 0) return SendStatus::kTimeout;
      if (pfd.revents & POLLIN) {
        // The peer is mid-send itself: drain so it can progress to reading
        // us. Everything drained here is stale by the caller's contract.
        std::uint8_t buf[65536];
        const ssize_t r = ::read(fd_, buf, sizeof buf);
        if (r == 0) return SendStatus::kClosed;
        if (r < 0 && errno != EINTR) return SendStatus::kClosed;
        if (r > 0) {
          pending_.insert(pending_.end(), buf, buf + r);
          if (!discard_pending_frames()) return SendStatus::kMalformed;
          deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
        }
      }
      if (pfd.revents & POLLOUT) {
        const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
            continue;
          }
          return SendStatus::kClosed;
        }
        off += static_cast<std::size_t>(n);
        if (n > 0) {
          deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
        }
      } else if (!(pfd.revents & POLLIN)) {
        return SendStatus::kClosed;  // POLLERR/POLLHUP/POLLNVAL alone
      }
    }
    return SendStatus::kOk;
  }

  RecvStatus recv_bytes(std::vector<std::uint8_t>* out,
                        int deadline_ms) override {
    std::uint8_t hdr[kHeaderBytes];
    RecvStatus st = read_exact(hdr, kHeaderBytes, deadline_ms);
    if (st != RecvStatus::kOk) return st;
    FrameHeader h;
    if (!decode_header(hdr, &h)) {
      // Unparseable header — bad magic/version/type, or a length above
      // kMaxPayloadBytes (the len field is outside the CRC, so a corrupted
      // length passes every other check and must never size an
      // allocation). The stream is byte-oriented: the frame boundary is
      // lost for good. Hand the raw header up so the base-class decode
      // fails and counts it malformed; the supervisor kills the peer
      // (resynchronisation is not attempted).
      out->assign(hdr, hdr + kHeaderBytes);
      return RecvStatus::kOk;
    }
    out->assign(hdr, hdr + kHeaderBytes);
    // payload_len <= kMaxPayloadBytes here, so the size cannot wrap; a
    // failed allocation still classifies the peer, never kills us.
    try {
      out->resize(kHeaderBytes + h.payload_len);
    } catch (const std::bad_alloc&) {
      return RecvStatus::kMalformed;
    }
    if (h.payload_len > 0) {
      st = read_exact(out->data() + kHeaderBytes, h.payload_len, deadline_ms);
      if (st != RecvStatus::kOk) return st;
    }
    return RecvStatus::kOk;
  }

 private:
  /// Strips complete frames from the drain buffer (counting data frames as
  /// received), keeping any partial tail for the next read. False on an
  /// unparseable header — the stream boundary is gone, the peer babbles.
  bool discard_pending_frames() {
    std::size_t at = 0;
    while (pending_.size() - at >= kHeaderBytes) {
      FrameHeader h;
      if (!decode_header(pending_.data() + at, &h)) {
        ++stats_.malformed_frames;
        return false;
      }
      const std::size_t total = kHeaderBytes + h.payload_len;
      if (pending_.size() - at < total) break;
      if (h.type != FrameType::kHeartbeat) {
        ++stats_.frames_received;
        stats_.bytes_received += total;
      }
      at += total;
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(at));
    return true;
  }

  RecvStatus read_exact(std::uint8_t* dst, std::size_t n, int deadline_ms) {
    using Clock = std::chrono::steady_clock;
    // Inactivity deadline (see send_draining_bytes): a peer still
    // delivering bytes of a large frame is alive; only silence for
    // deadline_ms reads as a hang.
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       deadline_ms < 0 ? 0 : deadline_ms);
    std::size_t off = 0;
    // Bytes drained (but not yet framed) during send_draining come first —
    // they are earlier in the stream than anything still in the socket.
    if (!pending_.empty()) {
      const std::size_t take = std::min(n, pending_.size());
      std::memcpy(dst, pending_.data(), take);
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(take));
      off = take;
    }
    while (off < n) {
      if (fd_ < 0) return RecvStatus::kClosed;
      int wait_ms = -1;
      if (deadline_ms >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        wait_ms = static_cast<int>(left.count());
        if (wait_ms < 0) return RecvStatus::kTimeout;
      }
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      const ssize_t r = ::read(fd_, dst + off, n - off);
      if (r < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (r == 0) return RecvStatus::kClosed;  // EOF: peer died
      off += static_cast<std::size_t>(r);
      if (deadline_ms >= 0) {
        deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
      }
    }
    return RecvStatus::kOk;
  }

  int fd_;
  std::vector<std::uint8_t> pending_;  ///< drained-but-unconsumed stream tail
};

}  // namespace

LoopbackPair make_loopback_pair() {
  auto to_worker = std::make_shared<LoopbackQueue>();
  auto to_supervisor = std::make_shared<LoopbackQueue>();
  LoopbackPair pair;
  pair.supervisor_end =
      std::make_unique<LoopbackTransport>(to_worker, to_supervisor);
  pair.worker_end =
      std::make_unique<LoopbackTransport>(to_supervisor, to_worker);
  pair.mute_worker = [to_supervisor](bool on) { to_supervisor->set_mute(on); };
  pair.sever = [to_worker, to_supervisor] {
    to_worker->close();
    to_supervisor->close();
  };
  return pair;
}

std::unique_ptr<Transport> make_fd_transport(int fd) {
  return std::make_unique<FdTransport>(fd);
}

}  // namespace tcfpn::shard
