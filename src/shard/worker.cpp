#include "shard/worker.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/log.hpp"
#include "debug/checkpoint.hpp"
#include "machine/shard_step.hpp"
#include "machine/state.hpp"

namespace tcfpn::shard {

namespace {

std::string lcat(std::uint32_t shard) {
  return "shard/worker" + std::to_string(shard);
}

/// Pulses begin()/end() around a compute phase, exception-safely.
class PulseScope {
 public:
  PulseScope(HeartbeatPulse& p, StepId step) : p_(p) { p_.begin(step); }
  ~PulseScope() { p_.end(); }

 private:
  HeartbeatPulse& p_;
};

}  // namespace

HeartbeatPulse::HeartbeatPulse(Transport& t, std::uint32_t shard)
    : t_(t), shard_(shard), thread_([this] { loop(); }) {}

HeartbeatPulse::~HeartbeatPulse() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void HeartbeatPulse::configure(std::uint32_t heartbeat_ms) {
  std::lock_guard<std::mutex> lk(m_);
  // A quarter of the deadline: three pulses may be lost to scheduling
  // jitter before the supervisor misclassifies the phase as a hang.
  interval_ms_ = heartbeat_ms == 0
                     ? 0
                     : std::max(1, static_cast<int>(heartbeat_ms / 4));
}

void HeartbeatPulse::begin(StepId step) {
  {
    std::lock_guard<std::mutex> lk(m_);
    step_ = step;
    active_ = true;
  }
  cv_.notify_all();
}

void HeartbeatPulse::end() {
  {
    std::lock_guard<std::mutex> lk(m_);
    active_ = false;
  }
  cv_.notify_all();
}

void HeartbeatPulse::loop() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (stop_) return;
    if (!active_ || interval_ms_ <= 0) {
      cv_.wait(lk);
      continue;
    }
    if (cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_ || !active_; })) {
      continue;  // deactivated or stopping — no pulse for this window
    }
    Frame hb;
    hb.type = FrameType::kHeartbeat;
    hb.shard = shard_;
    hb.step = step_;
    lk.unlock();
    t_.send(hb);  // a dead link is the main loop's problem, not the pulse's
    lk.lock();
  }
}

int serve_worker(machine::Machine& m, Transport& t, const WorkerConfig& wc) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.shard = wc.shard;
  hello.payload =
      encode_hello(HelloPayload{wc.shard, wc.config_fp, wc.program_fp});
  if (!t.send(hello)) return 1;

  std::vector<std::uint8_t> owned;
  bool started = false;
  HeartbeatPulse pulse(t, wc.shard);

  for (;;) {
    Frame f;
    const RecvStatus st = t.recv(&f, /*deadline_ms=*/-1);
    if (st == RecvStatus::kClosed) {
      // The supervisor died (or severed us on a fault injection): there is
      // nobody left to coordinate a commit with.
      return 1;
    }
    if (st != RecvStatus::kOk) {
      obs::error(lcat(wc.shard),
                 std::string("link ") + to_string(st) + "; exiting");
      return 1;
    }

    switch (f.type) {
      case FrameType::kStart: {
        StartPayload p;
        if (!decode_start(f.payload, &p)) return 1;
        pulse.configure(p.heartbeat_ms);
        {
          // Restoring a large checkpoint can outlast the heartbeat deadline
          // the supervisor applies from the first collect onwards.
          PulseScope scope(pulse, f.step);
          if (!p.state.empty()) {
            m.set_shard_mode({});  // restore wants a non-sharded machine
            m.restore_state(debug::deserialize(p.state));
          }
          owned = p.owned;
          m.set_shard_mode(owned);
        }
        // Boot-completion barrier: the supervisor's handshake waits (under
        // its generous boot deadline) for this heartbeat before applying
        // steady-state deadlines, so blob decode + restore — machine-sized
        // work — can never eat into the first step's liveness budget.
        Frame ready;
        ready.type = FrameType::kHeartbeat;
        ready.shard = wc.shard;
        ready.step = f.step;
        if (!t.send(ready)) return 1;
        started = true;
        break;
      }

      case FrameType::kBeginStep: {
        if (!started) return 1;
        Frame hb;
        hb.type = FrameType::kHeartbeat;
        hb.shard = wc.shard;
        hb.step = f.step;
        if (!t.send(hb)) return 1;
        if (f.step != m.stats().steps) {
          obs::error(lcat(wc.shard),
                     "lockstep violation: supervisor at step " +
                         std::to_string(f.step) + ", replica at " +
                         std::to_string(m.stats().steps));
          return 1;
        }
        {
          // The group phase is the heavy compute: keep pulsing so a slow
          // (but healthy) step is never misclassified as hung.
          PulseScope scope(pulse, f.step);
          if (!m.shard_begin_step()) {
            // The supervisor's identical replica decided there was work; a
            // disagreement means the replicas diverged.
            obs::error(lcat(wc.shard), "replica divergence at begin-step");
            return 1;
          }
          for (GroupId g = 0; g < owned.size(); ++g) {
            if (!owned[g] || !m.group_alive(g)) continue;
            Frame batch;
            batch.type = FrameType::kBatch;
            batch.shard = wc.shard;
            batch.step = f.step;
            batch.payload = encode_batch(m.shard_extract(g));
            if (!t.send(batch)) return 1;
          }
        }
        break;
      }

      case FrameType::kCommit: {
        // The merge runs against the next step's collect deadline on the
        // supervisor side — pulse through it too.
        PulseScope scope(pulse, f.step);
        std::vector<machine::ShardGroupBatch> batches;
        if (!decode_commit(f.payload, &batches)) return 1;
        for (const machine::ShardGroupBatch& b : batches) {
          if (b.group < owned.size() && owned[b.group]) continue;
          m.shard_install(b);
        }
        // The supervisor merged these exact inputs successfully before
        // sending kCommit, so this cannot fault on a healthy replica.
        m.shard_finish_step();
        break;
      }

      case FrameType::kRollback: {
        RollbackPayload p;
        {
          // Decoding the checkpoint blob is itself proportional to machine
          // size — pulse from the first byte, not just through the restore.
          PulseScope scope(pulse, f.step);
          if (!decode_rollback(f.payload, &p)) return 1;
          m.set_shard_mode({});
          m.restore_state(debug::deserialize(p.state));
          for (GroupId g : p.retires) {
            if (m.group_alive(g)) m.retire_group(g);
          }
          m.set_shard_mode(owned);
        }
        Frame ack;
        ack.type = FrameType::kRollbackAck;
        ack.shard = wc.shard;
        ack.step = m.stats().steps;
        if (!t.send(ack)) return 1;
        break;
      }

      case FrameType::kShutdown:
        return 0;

      default:
        obs::error(lcat(wc.shard), std::string("unexpected frame: ") +
                                       to_string(f.type));
        return 1;
    }
  }
}

}  // namespace tcfpn::shard
