#include "shard/worker.hpp"

#include <string>

#include "common/log.hpp"
#include "debug/checkpoint.hpp"
#include "machine/shard_step.hpp"
#include "machine/state.hpp"

namespace tcfpn::shard {

namespace {

std::string lcat(std::uint32_t shard) {
  return "shard/worker" + std::to_string(shard);
}

}  // namespace

int serve_worker(machine::Machine& m, Transport& t, const WorkerConfig& wc) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.shard = wc.shard;
  hello.payload =
      encode_hello(HelloPayload{wc.shard, wc.config_fp, wc.program_fp});
  if (!t.send(hello)) return 1;

  std::vector<std::uint8_t> owned;
  bool started = false;

  for (;;) {
    Frame f;
    const RecvStatus st = t.recv(&f, /*deadline_ms=*/-1);
    if (st == RecvStatus::kClosed) {
      // The supervisor died (or severed us on a fault injection): there is
      // nobody left to coordinate a commit with.
      return 1;
    }
    if (st != RecvStatus::kOk) {
      obs::error(lcat(wc.shard),
                 std::string("link ") + to_string(st) + "; exiting");
      return 1;
    }

    switch (f.type) {
      case FrameType::kStart: {
        StartPayload p;
        if (!decode_start(f.payload, &p)) return 1;
        if (!p.state.empty()) {
          m.set_shard_mode({});  // restore wants a non-sharded machine
          m.restore_state(debug::deserialize(p.state));
        }
        owned = p.owned;
        m.set_shard_mode(owned);
        started = true;
        break;
      }

      case FrameType::kBeginStep: {
        if (!started) return 1;
        Frame hb;
        hb.type = FrameType::kHeartbeat;
        hb.shard = wc.shard;
        hb.step = f.step;
        if (!t.send(hb)) return 1;
        if (f.step != m.stats().steps) {
          obs::error(lcat(wc.shard),
                     "lockstep violation: supervisor at step " +
                         std::to_string(f.step) + ", replica at " +
                         std::to_string(m.stats().steps));
          return 1;
        }
        if (!m.shard_begin_step()) {
          // The supervisor's identical replica decided there was work; a
          // disagreement means the replicas diverged.
          obs::error(lcat(wc.shard), "replica divergence at begin-step");
          return 1;
        }
        for (GroupId g = 0; g < owned.size(); ++g) {
          if (!owned[g] || !m.group_alive(g)) continue;
          Frame batch;
          batch.type = FrameType::kBatch;
          batch.shard = wc.shard;
          batch.step = f.step;
          batch.payload = encode_batch(m.shard_extract(g));
          if (!t.send(batch)) return 1;
        }
        break;
      }

      case FrameType::kCommit: {
        std::vector<machine::ShardGroupBatch> batches;
        if (!decode_commit(f.payload, &batches)) return 1;
        for (const machine::ShardGroupBatch& b : batches) {
          if (b.group < owned.size() && owned[b.group]) continue;
          m.shard_install(b);
        }
        // The supervisor merged these exact inputs successfully before
        // sending kCommit, so this cannot fault on a healthy replica.
        m.shard_finish_step();
        break;
      }

      case FrameType::kRollback: {
        RollbackPayload p;
        if (!decode_rollback(f.payload, &p)) return 1;
        m.set_shard_mode({});
        m.restore_state(debug::deserialize(p.state));
        for (GroupId g : p.retires) {
          if (m.group_alive(g)) m.retire_group(g);
        }
        m.set_shard_mode(owned);
        Frame ack;
        ack.type = FrameType::kRollbackAck;
        ack.shard = wc.shard;
        ack.step = m.stats().steps;
        if (!t.send(ack)) return 1;
        break;
      }

      case FrameType::kShutdown:
        return 0;

      default:
        obs::error(lcat(wc.shard), std::string("unexpected frame: ") +
                                       to_string(f.type));
        return 1;
    }
  }
}

}  // namespace tcfpn::shard
