// Transport abstraction for sharded execution (DESIGN.md §14).
//
// A Transport moves whole encoded frames between a supervisor and one
// worker. Two implementations:
//
//  - Loopback: an in-process pair of byte queues. Always built, needs no
//    fork — the unit tests, the tcffuzz sharded lane and `--shard-loopback`
//    run workers as plain threads. The queues carry *encoded* bytes, so
//    framing, CRC checking and corruption behave byte-for-byte like the
//    process transport.
//  - Fd: one end of a SOCK_STREAM socketpair shared with a forked+exec'd
//    worker process, with poll()-based receive deadlines.
//
// Receive deadlines are the liveness primitive: the supervisor's recv
// deadline is the heartbeat deadline, and any frame (heartbeats included)
// resets it. Babble injection happens on the *receiving* end — one payload
// byte of the next delivered frame is flipped below the CRC check, so the
// corruption is detected exactly like real wire damage regardless of the
// transport.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "shard/wire.hpp"

namespace tcfpn::shard {

enum class RecvStatus : std::uint8_t {
  kOk,
  kTimeout,    ///< deadline expired with no complete frame
  kClosed,     ///< peer gone (EOF / severed queue)
  kMalformed,  ///< bad magic/version/length/CRC — a babbling peer
};

const char* to_string(RecvStatus s);

/// Outcome of send_draining — the deadline-bounded send used where the
/// peer may itself be blocked mid-send (the rollback resync).
enum class SendStatus : std::uint8_t {
  kOk,
  kTimeout,    ///< deadline expired with the frame only partly written
  kClosed,     ///< peer gone (EPIPE / EOF / severed queue)
  kMalformed,  ///< a drained inbound frame had an unparseable header
};

const char* to_string(SendStatus s);

/// Per-link traffic counters. Deterministic for a fault-free run (frame
/// contents and counts depend only on the simulated execution), which is
/// what makes the link-budget figure in the shard metrics reproducible.
/// Heartbeat frames are keepalives, not data: they are excluded from every
/// counter here precisely so the time-paced compute-phase pulse cannot
/// perturb the deterministic budget.
struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t malformed_frames = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Encodes and sends one frame. False when the peer is gone. Thread-safe
  /// against other send()/send_draining() calls (whole frames never
  /// interleave), so a worker's heartbeat pulse may share the link with its
  /// batch sends. recv() stays single-consumer.
  bool send(const Frame& f);

  /// Encodes and sends one frame, draining — and discarding — inbound
  /// frames whenever the outbound path would otherwise block, under a
  /// recv-style deadline. This is the deadlock breaker for the rollback
  /// resync: the peer may be wedged mid-send with both socket buffers
  /// full, and a plain blocking send would then wait on it forever. Only
  /// call it where every inbound frame is known stale (the supervisor
  /// discards everything up to kRollbackAck anyway).
  SendStatus send_draining(const Frame& f, int deadline_ms);

  /// Receives one frame. `deadline_ms` < 0 blocks indefinitely; 0 polls.
  /// On kMalformed the link itself is still usable — the *peer* is suspect
  /// and the supervisor decides its fate.
  RecvStatus recv(Frame* out, int deadline_ms);

  /// Closes both directions; subsequent send/recv observe kClosed.
  virtual void close() = 0;

  /// Arms babble injection: one payload byte of the next received frame is
  /// flipped before decoding (a frame with no payload loses a header byte
  /// instead), so it fails the CRC/header check and classifies kMalformed.
  void corrupt_next_recv() { corrupt_next_ = true; }

  const LinkStats& stats() const { return stats_; }

 protected:
  /// Sends one complete encoded frame. False = peer gone.
  virtual bool send_bytes(const std::vector<std::uint8_t>& bytes) = 0;
  /// send_draining's engine. The default suits transports whose sends
  /// cannot block on the peer (the loopback queues are unbounded).
  virtual SendStatus send_draining_bytes(const std::vector<std::uint8_t>& bytes,
                                         int deadline_ms) {
    (void)deadline_ms;
    return send_bytes(bytes) ? SendStatus::kOk : SendStatus::kClosed;
  }
  /// Receives one complete encoded frame (header + payload).
  virtual RecvStatus recv_bytes(std::vector<std::uint8_t>* out,
                                int deadline_ms) = 0;

  LinkStats stats_;
  std::mutex send_mu_;  ///< serializes whole-frame writes across threads
  bool corrupt_next_ = false;
};

/// An in-process supervisor<->worker link pair plus its fault controls.
struct LoopbackPair {
  std::unique_ptr<Transport> supervisor_end;
  std::unique_ptr<Transport> worker_end;
  /// shard_hang analogue: while muted, worker->supervisor frames are
  /// silently dropped (the worker still counts them as sent).
  std::function<void(bool)> mute_worker;
  /// shard_kill analogue: closes both directions of both ends.
  std::function<void()> sever;
};

LoopbackPair make_loopback_pair();

/// Wraps one end of a SOCK_STREAM socketpair. Owns the fd.
std::unique_ptr<Transport> make_fd_transport(int fd);

}  // namespace tcfpn::shard
