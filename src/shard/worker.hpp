// The worker half of the sharded-step protocol (DESIGN.md §14).
//
// A worker is a full machine replica driven entirely by supervisor frames:
//
//   -> kHello                       announce fingerprints
//   <- kStart {owned, state?}       enter shard mode (restore blob if any)
//   <- kBeginStep                   -> kHeartbeat, execute owned groups,
//                                   -> one kBatch per owned alive group
//   <- kCommit {all batches}        install non-owned batches, commit step
//   <- kRollback {state, retires}   rewind (+ retire groups, ascending)
//   <- kShutdown                    exit 0
//
// The worker never decides anything: begin/commit/rollback/shutdown all
// originate at the supervisor, so a worker is a pure function of the frame
// stream — which is what makes restart-from-checkpoint bit-identical.
// Protocol violations (a frame out of lockstep, a diverged replica) exit
// nonzero; the supervisor observes the closed link and handles it like a
// crash.
#pragma once

#include <cstdint>

#include "machine/machine.hpp"
#include "shard/transport.hpp"

namespace tcfpn::shard {

struct WorkerConfig {
  std::uint32_t shard = 0;
  std::uint64_t config_fp = 0;   ///< machine::config_fingerprint of the replica
  std::uint64_t program_fp = 0;  ///< machine::program_fingerprint
};

/// Runs the worker loop until kShutdown (returns 0) or a lost link /
/// protocol violation (returns nonzero). `m` must already hold the booted
/// program, identical to the supervisor's replica.
int serve_worker(machine::Machine& m, Transport& t, const WorkerConfig& wc);

}  // namespace tcfpn::shard
