// The worker half of the sharded-step protocol (DESIGN.md §14).
//
// A worker is a full machine replica driven entirely by supervisor frames:
//
//   -> kHello                       announce fingerprints
//   <- kStart {owned, state?, hb}   enter shard mode (restore blob if any),
//                                   -> kHeartbeat when done (boot barrier)
//   <- kBeginStep                   -> kHeartbeat, execute owned groups,
//                                   -> one kBatch per owned alive group
//   <- kCommit {all batches}        install non-owned batches, commit step
//   <- kRollback {state, retires}   rewind (+ retire groups, ascending)
//   <- kShutdown                    exit 0
//
// The worker never decides anything: begin/commit/rollback/shutdown all
// originate at the supervisor, so a worker is a pure function of the frame
// stream — which is what makes restart-from-checkpoint bit-identical.
// Protocol violations (a frame out of lockstep, a diverged replica) exit
// nonzero; the supervisor observes the closed link and handles it like a
// crash.
//
// Liveness during compute: kStart carries the supervisor's heartbeat
// deadline, and a HeartbeatPulse thread keeps sending keepalives while the
// worker is inside a compute phase (group execution, commit merge,
// checkpoint restore). A step whose legitimate compute outlasts the
// deadline therefore stays classified alive — only a worker that is truly
// stopped (SIGSTOP, livelock, death) goes silent. Heartbeats never carry
// state, and the transport excludes them from the deterministic link
// budget, so the time-paced pulse cannot perturb any simulated artefact.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "machine/machine.hpp"
#include "shard/transport.hpp"

namespace tcfpn::shard {

struct WorkerConfig {
  std::uint32_t shard = 0;
  std::uint64_t config_fp = 0;   ///< machine::config_fingerprint of the replica
  std::uint64_t program_fp = 0;  ///< machine::program_fingerprint
};

/// Emits kHeartbeat frames from a helper thread while a compute phase runs
/// (Transport::send is thread-safe, so the pulse shares the link with the
/// main loop's batch sends). Paced at a quarter of the supervisor's
/// announced deadline; inert until configure() is called with a nonzero
/// deadline and between begin()/end() windows.
class HeartbeatPulse {
 public:
  HeartbeatPulse(Transport& t, std::uint32_t shard);
  ~HeartbeatPulse();

  HeartbeatPulse(const HeartbeatPulse&) = delete;
  HeartbeatPulse& operator=(const HeartbeatPulse&) = delete;

  /// Sets the cadence from the supervisor's heartbeat deadline (kStart).
  /// 0 disables the pulse.
  void configure(std::uint32_t heartbeat_ms);
  /// Starts pulsing, stamping frames with `step` (the one being computed).
  void begin(StepId step);
  /// Stops pulsing (idempotent).
  void end();

 private:
  void loop();

  Transport& t_;
  const std::uint32_t shard_;
  std::mutex m_;
  std::condition_variable cv_;
  int interval_ms_ = 0;
  bool active_ = false;
  bool stop_ = false;
  StepId step_ = 0;
  std::thread thread_;
};

/// Runs the worker loop until kShutdown (returns 0) or a lost link /
/// protocol violation (returns nonzero). `m` must already hold the booted
/// program, identical to the supervisor's replica.
int serve_worker(machine::Machine& m, Transport& t, const WorkerConfig& wc);

}  // namespace tcfpn::shard
