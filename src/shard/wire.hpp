// Versioned frame protocol for sharded execution (DESIGN.md §14).
//
// Every message between the supervisor and a worker is one length-prefixed
// frame: a fixed 32-byte header followed by a type-specific payload.
//
//   offset  field        meaning
//   ------  -----------  -------------------------------------------------
//   0       magic  u32   0x54434653 "TCFS" (LE on the wire)
//   4       ver    u16   kWireVersion; receivers reject any other value
//   6       type   u16   FrameType
//   8       shard  u32   sender's shard id (kSupervisorId for the parent)
//   12      crc    u32   CRC-32 (IEEE 802.3, reflected) of step || payload
//   16      step   u64   lockstep step index the frame belongs to
//   24      len    u64   payload byte count
//   32      payload...
//
// All integers travel little-endian; doubles as IEEE-754 bit patterns — the
// same conventions as the TCFCKPT checkpoint format, so a batch serializes
// to identical bytes on every replica (map fields are iterated in key
// order). The CRC — covering the step field and the payload — plus the
// header magic/version/length checks are the babble detection surface: the
// transport flips one byte of an injected shard_babble frame and
// decode_frame reports it malformed. The only unprotected field is the
// sender's self-reported shard id, which receivers never trust anyway
// (workers are indexed by link).
//
// The CRC does NOT cover the len field, so a corrupted length passes the
// checksum: decode_header therefore rejects any len above kMaxPayloadBytes
// outright. Receivers never allocate for — let alone read — a length the
// header check has not bounded; a babbling peer costs at most one bounded
// buffer, never heap corruption or std::bad_alloc.
//
// Payload codecs return false on malformed input instead of throwing — a
// babbling peer must classify as kMalformed, never crash the supervisor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/shard_step.hpp"

namespace tcfpn::shard {

inline constexpr std::uint32_t kMagic = 0x54434653u;  // "TCFS"
inline constexpr std::uint16_t kWireVersion = 2;
/// `shard` header value used by the supervisor end of a link.
inline constexpr std::uint32_t kSupervisorId = 0xffffffffu;
inline constexpr std::size_t kHeaderBytes = 32;
/// Hard ceiling on a frame's payload. Large enough for any checkpoint blob
/// the supervisor itself can hold in memory, small enough that a corrupted
/// len field (unprotected by the CRC) can never provoke a wrapping resize
/// or an unbounded allocation. Senders enforce it too (TCFPN_CHECK), so a
/// legitimately oversized frame fails loudly at the source instead of
/// classifying the healthy receiver's peer as babbling.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class FrameType : std::uint16_t {
  kHello = 1,    ///< worker -> supervisor: fingerprints (handshake)
  kStart = 2,    ///< supervisor -> worker: ownership mask (+ state blob)
  kBeginStep = 3,  ///< supervisor -> worker: execute the next step
  kHeartbeat = 4,  ///< worker -> supervisor: alive (one per begin-step)
  kBatch = 5,    ///< worker -> supervisor: one owned group's effect batch
  kCommit = 6,   ///< supervisor -> worker: merge succeeded; all batches
  kRollback = 7,  ///< supervisor -> worker: rewind to blob (+ retire list)
  kShutdown = 8,  ///< supervisor -> worker: run over, exit cleanly
  kRollbackAck = 9,  ///< worker -> supervisor: rewind done. The resync
                     ///< barrier: everything a worker sent before the ack is
                     ///< a stale frame of the aborted step, and the
                     ///< supervisor drains up to the ack before resuming.
};

const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t shard = kSupervisorId;
  StepId step = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Serializes header + payload (computing the CRC).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Parsed header fields of an incoming frame.
struct FrameHeader {
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t shard = 0;
  std::uint32_t crc = 0;
  StepId step = 0;
  std::uint64_t payload_len = 0;
};

/// Parses the 32-byte header. False on bad magic/version/unknown type.
bool decode_header(const std::uint8_t* hdr, FrameHeader* out);

/// Assembles a Frame from a parsed header and its payload bytes, checking
/// the CRC. False on a CRC mismatch.
bool assemble_frame(const FrameHeader& h, std::vector<std::uint8_t> payload,
                    Frame* out);

/// Decodes one complete encoded frame (header + payload in one buffer).
bool decode_frame(const std::vector<std::uint8_t>& bytes, Frame* out);

// ----- payload codecs -----

/// kHello: the worker announces itself; the supervisor rejects a worker
/// whose machine or program differs (config drift across exec).
struct HelloPayload {
  std::uint32_t shard = 0;
  std::uint64_t config_fp = 0;
  std::uint64_t program_fp = 0;
};

/// kStart: per-group ownership mask plus an optional TCFCKPT state blob
/// (empty = boot fresh; nonempty = restart-from-checkpoint), plus the
/// supervisor's heartbeat deadline so the worker can pace its compute-phase
/// heartbeat pulse (0 disables the pulse).
struct StartPayload {
  std::vector<std::uint8_t> owned;
  std::vector<std::uint8_t> state;
  std::uint32_t heartbeat_ms = 0;
};

/// kRollback: rewind to the blob, then retire `retires` in ascending order
/// (empty on a pure restart rollback; the dead shard's groups on degrade).
struct RollbackPayload {
  std::vector<std::uint8_t> state;
  std::vector<GroupId> retires;
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& p);
bool decode_hello(const std::vector<std::uint8_t>& bytes, HelloPayload* out);

std::vector<std::uint8_t> encode_start(const StartPayload& p);
bool decode_start(const std::vector<std::uint8_t>& bytes, StartPayload* out);

std::vector<std::uint8_t> encode_rollback(const RollbackPayload& p);
bool decode_rollback(const std::vector<std::uint8_t>& bytes,
                     RollbackPayload* out);

std::vector<std::uint8_t> encode_batch(const machine::ShardGroupBatch& b);
bool decode_batch(const std::vector<std::uint8_t>& bytes,
                  machine::ShardGroupBatch* out);

/// kCommit carries every group's batch (workers skip the ones they own), so
/// one identical commit frame broadcasts to every worker.
std::vector<std::uint8_t> encode_commit(
    const std::vector<machine::ShardGroupBatch>& batches);
bool decode_commit(const std::vector<std::uint8_t>& bytes,
                   std::vector<machine::ShardGroupBatch>* out);

}  // namespace tcfpn::shard
