#include "isa/program.hpp"

#include <iomanip>
#include <map>
#include <sstream>

namespace tcfpn::isa {

std::string Program::listing() const {
  // Invert the label map so each address shows its labels.
  std::map<std::size_t, std::vector<std::string>> by_addr;
  for (const auto& [name, addr] : labels) by_addr[addr].push_back(name);
  std::ostringstream os;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    if (auto it = by_addr.find(pc); it != by_addr.end()) {
      for (const auto& name : it->second) os << name << ":\n";
    }
    os << "  " << std::setw(4) << pc << "  " << std::hex << std::setw(16)
       << std::setfill('0') << code[pc].encode() << std::dec
       << std::setfill(' ') << "  " << disassemble(code[pc]) << "\n";
  }
  return os.str();
}

}  // namespace tcfpn::isa
