// Two-pass assembler for the tcfpn ISA.
//
// Syntax (one statement per line):
//   ; comment                      -- ';' starts a comment anywhere
//   label:                         -- code label (may share a line with an op)
//   .equ NAME, value               -- named constant
//   .data addr, w0, w1, ...        -- initial shared-memory words
//   OP operands                    -- see OpFormat in instr.hpp
//
// Operand forms:
//   rN              register (r0..r15; r0 reads as zero)
//   42, -7, 0x1F    immediate
//   NAME            .equ constant or label (label -> its code address)
//   [rA]            memory, offset 0
//   [rA+imm]        memory with displacement (imm may be a symbol)
//   [rA+imm+@]      lane-indexed: effective address += lane id
//
// Errors throw tcfpn::SimError with a line number and message.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace tcfpn::isa {

class Assembler {
 public:
  /// Assembles a full source text.
  Program assemble(const std::string& source);
};

/// Convenience free function.
Program assemble(const std::string& source);

}  // namespace tcfpn::isa
