#include "isa/instr.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn::isa {

namespace {

constexpr std::size_t kOps = static_cast<std::size_t>(Opcode::kOpcodeCount);

constexpr std::array<OpInfo, kOps> kOpTable = {{
    // mnemonic      format                shared local  control
    {"NOP",      OpFormat::kNone,     false, false, false},
    {"ADD",      OpFormat::kRdRaRb,   false, false, false},
    {"SUB",      OpFormat::kRdRaRb,   false, false, false},
    {"MUL",      OpFormat::kRdRaRb,   false, false, false},
    {"DIV",      OpFormat::kRdRaRb,   false, false, false},
    {"MOD",      OpFormat::kRdRaRb,   false, false, false},
    {"AND",      OpFormat::kRdRaRb,   false, false, false},
    {"OR",       OpFormat::kRdRaRb,   false, false, false},
    {"XOR",      OpFormat::kRdRaRb,   false, false, false},
    {"SHL",      OpFormat::kRdRaRb,   false, false, false},
    {"SHR",      OpFormat::kRdRaRb,   false, false, false},
    {"SLT",      OpFormat::kRdRaRb,   false, false, false},
    {"SLE",      OpFormat::kRdRaRb,   false, false, false},
    {"SEQ",      OpFormat::kRdRaRb,   false, false, false},
    {"SNE",      OpFormat::kRdRaRb,   false, false, false},
    {"MAX",      OpFormat::kRdRaRb,   false, false, false},
    {"MIN",      OpFormat::kRdRaRb,   false, false, false},
    {"LDI",      OpFormat::kRdImm,    false, false, false},
    {"LD",       OpFormat::kRdMem,    true,  false, false},
    {"ST",       OpFormat::kValMem,   true,  false, false},
    {"LLD",      OpFormat::kRdMem,    false, true,  false},
    {"LST",      OpFormat::kValMem,   false, true,  false},
    {"MPADD",    OpFormat::kValMem,   true,  false, false},
    {"MPMAX",    OpFormat::kValMem,   true,  false, false},
    {"MPMIN",    OpFormat::kValMem,   true,  false, false},
    {"MPAND",    OpFormat::kValMem,   true,  false, false},
    {"MPOR",     OpFormat::kValMem,   true,  false, false},
    {"PPADD",    OpFormat::kRdValMem, true,  false, false},
    {"PPMAX",    OpFormat::kRdValMem, true,  false, false},
    {"PPMIN",    OpFormat::kRdValMem, true,  false, false},
    {"PPAND",    OpFormat::kRdValMem, true,  false, false},
    {"PPOR",     OpFormat::kRdValMem, true,  false, false},
    {"JMP",      OpFormat::kImm,      false, false, true},
    {"BEQZ",     OpFormat::kRaImm,    false, false, true},
    {"BNEZ",     OpFormat::kRaImm,    false, false, true},
    {"CALL",     OpFormat::kImm,      false, false, true},
    {"RET",      OpFormat::kNone,     false, false, true},
    {"HALT",     OpFormat::kNone,     false, false, true},
    {"SETTHICK", OpFormat::kRaOrImm,  false, false, true},
    {"NUMASET",  OpFormat::kImm,      false, false, true},
    {"SPAWN",    OpFormat::kRaImm,    false, false, true},
    {"JOINALL",  OpFormat::kNone,     false, false, true},
    {"TID",      OpFormat::kRd,       false, false, false},
    {"FID",      OpFormat::kRd,       false, false, false},
    {"THICK",    OpFormat::kRd,       false, false, false},
    {"GID",      OpFormat::kRd,       false, false, false},
    {"PRINT",    OpFormat::kRaOrImm,  false, false, false},
}};

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  TCFPN_CHECK(idx < kOps, "bad opcode ", idx);
  return kOpTable[idx];
}

Opcode opcode_from_mnemonic(const std::string& mnemonic) {
  std::string upper(mnemonic);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (std::size_t i = 0; i < kOps; ++i) {
    if (upper == kOpTable[i].mnemonic) return static_cast<Opcode>(i);
  }
  return Opcode::kOpcodeCount;
}

std::uint64_t Instr::encode() const {
  return (static_cast<std::uint64_t>(op) << 56) |
         (static_cast<std::uint64_t>(rd & 0x3F) << 50) |
         (static_cast<std::uint64_t>(ra & 0x3F) << 44) |
         (static_cast<std::uint64_t>(rb & 0x3F) << 38) |
         (static_cast<std::uint64_t>(flags & 0x3F) << 32) |
         static_cast<std::uint32_t>(imm);
}

Instr Instr::decode(std::uint64_t word) {
  Instr instr;
  const auto op_raw = static_cast<std::uint8_t>(word >> 56);
  TCFPN_CHECK(op_raw < kOps, "cannot decode opcode ", int{op_raw});
  instr.op = static_cast<Opcode>(op_raw);
  instr.rd = static_cast<std::uint8_t>((word >> 50) & 0x3F);
  instr.ra = static_cast<std::uint8_t>((word >> 44) & 0x3F);
  instr.rb = static_cast<std::uint8_t>((word >> 38) & 0x3F);
  instr.flags = static_cast<std::uint8_t>((word >> 32) & 0x3F);
  instr.imm = static_cast<std::int32_t>(word & 0xFFFFFFFFu);
  return instr;
}

std::string disassemble(const Instr& instr) {
  const OpInfo& info = op_info(instr.op);
  std::ostringstream os;
  os << info.mnemonic;
  auto reg = [](std::uint8_t r) { return "r" + std::to_string(r); };
  auto mem = [&](const Instr& i) {
    std::ostringstream m;
    m << "[" << reg(i.ra);
    // Always emit the '+' separator: the assembler splits memory operands
    // on '+', so a negative displacement must appear as "+-4".
    if (i.imm != 0) m << "+" << i.imm;
    if (i.lane_addr()) m << "+@";
    m << "]";
    return m.str();
  };
  switch (info.format) {
    case OpFormat::kNone:
      break;
    case OpFormat::kRd:
      os << " " << reg(instr.rd);
      break;
    case OpFormat::kRdRaRb:
      os << " " << reg(instr.rd) << ", " << reg(instr.ra) << ", ";
      if (instr.use_imm()) {
        os << instr.imm;
      } else {
        os << reg(instr.rb);
      }
      break;
    case OpFormat::kRdImm:
      os << " " << reg(instr.rd) << ", " << instr.imm;
      break;
    case OpFormat::kRdMem:
      os << " " << reg(instr.rd) << ", " << mem(instr);
      break;
    case OpFormat::kValMem:
      os << " " << reg(instr.rb) << ", " << mem(instr);
      break;
    case OpFormat::kRdValMem:
      os << " " << reg(instr.rd) << ", " << reg(instr.rb) << ", "
         << mem(instr);
      break;
    case OpFormat::kRaOrImm:
      if (instr.use_imm()) {
        os << " " << instr.imm;
      } else {
        os << " " << reg(instr.ra);
      }
      break;
    case OpFormat::kImm:
      os << " " << instr.imm;
      break;
    case OpFormat::kRaImm:
      os << " " << reg(instr.ra) << ", " << instr.imm;
      break;
  }
  return os.str();
}

}  // namespace tcfpn::isa
