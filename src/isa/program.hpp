// Assembled program container: code, symbols and data initialisers.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instr.hpp"

namespace tcfpn::isa {

/// Words to place into shared memory before execution (.data directive).
struct DataInit {
  Addr addr = 0;
  std::vector<Word> words;
};

class Program {
 public:
  std::vector<Instr> code;
  std::unordered_map<std::string, std::size_t> labels;
  std::vector<DataInit> data;

  std::size_t size() const { return code.size(); }

  bool has_label(const std::string& name) const {
    return labels.contains(name);
  }

  std::size_t label(const std::string& name) const {
    auto it = labels.find(name);
    TCFPN_CHECK(it != labels.end(), "unknown label '", name, "'");
    return it->second;
  }

  /// Entry point: the `main` label when present, else address 0.
  std::size_t entry() const {
    auto it = labels.find("main");
    return it != labels.end() ? it->second : 0;
  }

  /// Full listing (address, encoding, disassembly) for debugging.
  std::string listing() const;
};

}  // namespace tcfpn::isa
