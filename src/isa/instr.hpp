// The tcfpn instruction set.
//
// A small RISC ISA for the MBTAC-like TCF processors of Section 3.3. Design
// points that come straight from the paper:
//
//  - registers are *lane-private*: a TCF instruction of thickness T executes
//    its operation once per implicit thread (lane), each lane seeing its own
//    register file instance (physically a cached register file / local
//    memory, Section 3.3 — the machine layer charges for that);
//  - the lane identity enters computation through the TID instruction and
//    the '@' lane-indexed addressing flag, so `c[i] = a[i] + b[i]` is four
//    instructions with no loop, whatever the thickness;
//  - thickness is controlled by SETTHICK (the `#size;` statement of
//    Section 4) and NUMASET enters NUMA mode with a given bunch length (the
//    `#1/T;` statement);
//  - SPAWN/JOINALL create and join parallel flows (the `parallel { }`
//    construct); a child starts at a label with a given thickness and
//    inherits a broadcast copy of the parent's lane-0 registers (this is
//    what makes a flow branch cost O(R), Table 1);
//  - MP*/PP* are the multioperation / multiprefix active-memory
//    instructions (`prefix(source, MPADD, &sum, source)` in Section 4).
//
// Instructions encode into one 64-bit word:
//   [63:56] opcode  [55:50] rd  [49:44] ra  [43:38] rb  [37:32] flags
//   [31:0]  imm (signed)
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tcfpn::isa {

inline constexpr std::uint32_t kNumRegisters = 16;  ///< r0 (always 0) .. r15

enum class Opcode : std::uint8_t {
  kNop = 0,
  // ALU (rd, ra, rb-or-imm)
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kSlt, kSle, kSeq, kSne, kMax, kMin,
  // constants
  kLdi,   ///< rd <- imm
  // shared memory (step-synchronous PRAM access)
  kLd,    ///< rd <- shared[ra + imm (+ lane)]
  kSt,    ///< shared[ra + imm (+ lane)] <- rb
  // local memory (NUMA-side block of the executing group)
  kLld,   ///< rd <- local[ra + imm (+ lane)]
  kLst,   ///< local[ra + imm (+ lane)] <- rb
  // multioperations (combine all same-address contributions in one step)
  kMpAdd, kMpMax, kMpMin, kMpAnd, kMpOr,      ///< shared[ea] op= rb
  // multiprefix (as above, and rd <- reduction of lower-lane contributions)
  kPpAdd, kPpMax, kPpMin, kPpAnd, kPpOr,
  // control
  kJmp,   ///< pc <- imm
  kBeqz,  ///< if (ra == 0 for lane 0) pc <- imm  [flow-uniform branch]
  kBnez,
  kCall,  ///< flow-level call: push pc+1, pc <- imm
  kRet,
  kHalt,
  // TCF control
  kSetThick,  ///< thickness <- ra (or imm); the `#n;` statement
  kNumaSet,   ///< enter NUMA mode, bunch length imm; imm==0 resumes PRAM
  kSpawn,     ///< create child flow: thickness ra, entry imm
  kJoinAll,   ///< wait for all children of this flow to halt
  kTid,       ///< rd <- lane index within the flow
  kFid,       ///< rd <- flow id
  kThick,     ///< rd <- current thickness
  kGid,       ///< rd <- processor-group id executing this slice
  kPrint,     ///< debug trap: emit lane 0's ra
  kOpcodeCount,
};

/// Operand shapes, used by the assembler and disassembler.
enum class OpFormat : std::uint8_t {
  kNone,      ///< op
  kRd,        ///< op rd
  kRdRaRb,    ///< op rd, ra, rb|imm
  kRdImm,     ///< op rd, imm
  kRdMem,     ///< op rd, [ra+imm(+@)]
  kValMem,    ///< op rb, [ra+imm(+@)]
  kRdValMem,  ///< op rd, rb, [ra+imm(+@)]
  kRaOrImm,   ///< op ra | op imm
  kImm,       ///< op imm|label
  kRaImm,     ///< op ra, imm|label
};

struct OpInfo {
  const char* mnemonic;
  OpFormat format;
  bool is_shared_mem;  ///< touches the emulated shared memory
  bool is_local_mem;   ///< touches the group's local memory
  bool is_control;     ///< may change pc / flow structure
};

const OpInfo& op_info(Opcode op);

/// Looks up a mnemonic (case-insensitive). Returns kOpcodeCount when unknown.
Opcode opcode_from_mnemonic(const std::string& mnemonic);

namespace flag {
inline constexpr std::uint8_t kUseImm = 1u << 0;   ///< operand B is imm
inline constexpr std::uint8_t kLaneAddr = 1u << 1; ///< effective addr += lane
}  // namespace flag

struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t flags = 0;
  std::int32_t imm = 0;

  bool use_imm() const { return flags & flag::kUseImm; }
  bool lane_addr() const { return flags & flag::kLaneAddr; }

  std::uint64_t encode() const;
  static Instr decode(std::uint64_t word);

  bool operator==(const Instr&) const = default;
};

/// Renders one instruction back to assembler syntax.
std::string disassemble(const Instr& instr);

}  // namespace tcfpn::isa
