#include "isa/assembler.hpp"

#include <cctype>
#include <cstdint>
#include <optional>
#include <sstream>

#include "common/check.hpp"

namespace tcfpn::isa {

namespace {

struct Line {
  int number = 0;
  std::string text;
};

[[noreturn]] void asm_error(int line, const std::string& msg) {
  TCFPN_FAULT("assembler error at line ", line, ": ", msg);
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits "a, b, [r1+2]" into comma-separated operand strings; brackets keep
/// their content intact (there are no nested brackets in the grammar).
std::vector<std::string> split_operands(const std::string& s, int line) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') {
      --depth;
      if (depth < 0) asm_error(line, "unbalanced ']'");
    }
    if (c == ',' && depth == 0) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (depth != 0) asm_error(line, "unbalanced '['");
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  for (const auto& o : out) {
    if (o.empty()) asm_error(line, "empty operand");
  }
  return out;
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

class Pass {
 public:
  Pass(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    int n = 0;
    while (std::getline(in, raw)) {
      ++n;
      const std::size_t comment = raw.find(';');
      if (comment != std::string::npos) raw.erase(comment);
      const std::string text = strip(raw);
      if (!text.empty()) lines_.push_back(Line{n, text});
    }
  }

  Program run() {
    collect_symbols();
    emit();
    return std::move(program_);
  }

 private:
  // ---- pass 1: labels and .equ constants; counts instruction addresses ----
  void collect_symbols() {
    std::size_t pc = 0;
    for (const auto& line : lines_) {
      std::string rest = line.text;
      while (true) {
        const std::size_t colon = find_label_colon(rest);
        if (colon == std::string::npos) break;
        const std::string name = strip(rest.substr(0, colon));
        if (!is_identifier(name)) {
          asm_error(line.number, "bad label name '" + name + "'");
        }
        define_symbol(line.number, name, static_cast<Word>(pc),
                      /*is_label=*/true);
        rest = strip(rest.substr(colon + 1));
      }
      if (rest.empty()) continue;
      if (rest[0] == '.') {
        handle_directive_pass1(line.number, rest);
      } else {
        ++pc;
      }
    }
  }

  /// A label colon is a ':' that terminates a leading identifier.
  static std::size_t find_label_colon(const std::string& s) {
    std::size_t i = 0;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
      ++i;
    }
    if (i > 0 && i < s.size() && s[i] == ':') return i;
    return std::string::npos;
  }

  void define_symbol(int line, const std::string& name, Word value,
                     bool is_label) {
    if (symbols_.contains(name)) {
      asm_error(line, "duplicate symbol '" + name + "'");
    }
    symbols_[name] = value;
    if (is_label) {
      program_.labels[name] = static_cast<std::size_t>(value);
    }
  }

  void handle_directive_pass1(int line, const std::string& text) {
    std::istringstream in(text);
    std::string word;
    in >> word;
    std::string rest;
    std::getline(in, rest);
    if (word == ".equ") {
      const auto ops = split_operands(strip(rest), line);
      if (ops.size() != 2) asm_error(line, ".equ needs NAME, value");
      if (!is_identifier(ops[0])) {
        asm_error(line, "bad .equ name '" + ops[0] + "'");
      }
      define_symbol(line, ops[0], parse_imm_pass1(line, ops[1]),
                    /*is_label=*/false);
    } else if (word == ".data") {
      // handled in pass 2 (values may reference labels)
    } else {
      asm_error(line, "unknown directive '" + word + "'");
    }
  }

  /// During pass 1 only already-defined symbols and literals may appear in
  /// .equ values (forward references to labels in .equ are not supported).
  Word parse_imm_pass1(int line, const std::string& s) {
    if (auto lit = parse_literal(s)) return *lit;
    auto it = symbols_.find(s);
    if (it == symbols_.end()) {
      asm_error(line, "unknown symbol in .equ: '" + s + "'");
    }
    return it->second;
  }

  static std::optional<Word> parse_literal(const std::string& s) {
    if (s.empty()) return std::nullopt;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return std::nullopt;
    }
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(s, &pos, 0);  // base 0: dec/hex/oct
      if (pos != s.size()) return std::nullopt;
      return static_cast<Word>(v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  // ---- pass 2: emit instructions and data ----
  void emit() {
    for (const auto& line : lines_) {
      std::string rest = line.text;
      while (true) {
        const std::size_t colon = find_label_colon(rest);
        if (colon == std::string::npos) break;
        rest = strip(rest.substr(colon + 1));
      }
      if (rest.empty()) continue;
      if (rest[0] == '.') {
        handle_directive_pass2(line.number, rest);
      } else {
        program_.code.push_back(parse_instr(line.number, rest));
      }
    }
  }

  void handle_directive_pass2(int line, const std::string& text) {
    std::istringstream in(text);
    std::string word;
    in >> word;
    std::string rest;
    std::getline(in, rest);
    if (word == ".data") {
      const auto ops = split_operands(strip(rest), line);
      if (ops.size() < 2) asm_error(line, ".data needs addr, w0 [, w1 ...]");
      DataInit init;
      init.addr = static_cast<Addr>(resolve_imm(line, ops[0]));
      for (std::size_t i = 1; i < ops.size(); ++i) {
        init.words.push_back(resolve_imm(line, ops[i]));
      }
      program_.data.push_back(std::move(init));
    }
    // .equ already fully handled in pass 1.
  }

  Word resolve_imm(int line, const std::string& s) {
    if (auto lit = parse_literal(s)) return *lit;
    auto it = symbols_.find(s);
    if (it == symbols_.end()) {
      asm_error(line, "unknown symbol '" + s + "'");
    }
    return it->second;
  }

  static std::optional<std::uint8_t> parse_register(const std::string& s) {
    if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R')) return std::nullopt;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
        return std::nullopt;
      }
    }
    const int n = std::stoi(s.substr(1));
    if (n < 0 || n >= static_cast<int>(kNumRegisters)) return std::nullopt;
    return static_cast<std::uint8_t>(n);
  }

  std::uint8_t require_register(int line, const std::string& s) {
    auto r = parse_register(s);
    if (!r) asm_error(line, "expected register, got '" + s + "'");
    return *r;
  }

  std::int32_t require_imm(int line, const std::string& s) {
    const Word v = resolve_imm(line, s);
    if (v < INT32_MIN || v > INT32_MAX) {
      asm_error(line, "immediate out of 32-bit range: " + s);
    }
    return static_cast<std::int32_t>(v);
  }

  /// Parses "[rA]", "[rA+imm]", "[rA+imm+@]", "[rA+@]".
  void parse_mem(int line, const std::string& s, Instr& instr) {
    if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
      asm_error(line, "expected memory operand [rA+imm], got '" + s + "'");
    }
    std::string body = s.substr(1, s.size() - 2);
    // Split on '+' (a leading '-' of the displacement stays attached).
    std::vector<std::string> parts;
    std::string cur;
    for (char c : body) {
      if (c == '+') {
        parts.push_back(strip(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    parts.push_back(strip(cur));
    if (parts.empty() || parts[0].empty()) {
      asm_error(line, "memory operand needs a base register");
    }
    instr.ra = require_register(line, parts[0]);
    instr.imm = 0;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (parts[i] == "@") {
        instr.flags |= flag::kLaneAddr;
      } else if (!parts[i].empty()) {
        instr.imm += require_imm(line, parts[i]);
      } else {
        asm_error(line, "empty term in memory operand '" + s + "'");
      }
    }
  }

  Instr parse_instr(int line, const std::string& text) {
    std::istringstream in(text);
    std::string mnemonic;
    in >> mnemonic;
    std::string rest;
    std::getline(in, rest);
    const Opcode op = opcode_from_mnemonic(mnemonic);
    if (op == Opcode::kOpcodeCount) {
      asm_error(line, "unknown mnemonic '" + mnemonic + "'");
    }
    Instr instr;
    instr.op = op;
    const OpInfo& info = op_info(op);
    const auto ops = split_operands(strip(rest), line);
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        asm_error(line, std::string(info.mnemonic) + " expects " +
                            std::to_string(n) + " operand(s), got " +
                            std::to_string(ops.size()));
      }
    };
    switch (info.format) {
      case OpFormat::kNone:
        need(0);
        break;
      case OpFormat::kRd:
        need(1);
        instr.rd = require_register(line, ops[0]);
        break;
      case OpFormat::kRdRaRb:
        need(3);
        instr.rd = require_register(line, ops[0]);
        instr.ra = require_register(line, ops[1]);
        if (auto r = parse_register(ops[2])) {
          instr.rb = *r;
        } else {
          instr.flags |= flag::kUseImm;
          instr.imm = require_imm(line, ops[2]);
        }
        break;
      case OpFormat::kRdImm:
        need(2);
        instr.rd = require_register(line, ops[0]);
        instr.imm = require_imm(line, ops[1]);
        break;
      case OpFormat::kRdMem:
        need(2);
        instr.rd = require_register(line, ops[0]);
        parse_mem(line, ops[1], instr);
        break;
      case OpFormat::kValMem:
        need(2);
        instr.rb = require_register(line, ops[0]);
        parse_mem(line, ops[1], instr);
        break;
      case OpFormat::kRdValMem:
        need(3);
        instr.rd = require_register(line, ops[0]);
        instr.rb = require_register(line, ops[1]);
        parse_mem(line, ops[2], instr);
        break;
      case OpFormat::kRaOrImm:
        need(1);
        if (auto r = parse_register(ops[0])) {
          instr.ra = *r;
        } else {
          instr.flags |= flag::kUseImm;
          instr.imm = require_imm(line, ops[0]);
        }
        break;
      case OpFormat::kImm:
        need(1);
        instr.imm = require_imm(line, ops[0]);
        break;
      case OpFormat::kRaImm:
        need(2);
        instr.ra = require_register(line, ops[0]);
        instr.imm = require_imm(line, ops[1]);
        break;
    }
    return instr;
  }

  std::vector<Line> lines_;
  std::unordered_map<std::string, Word> symbols_;
  Program program_;
};

}  // namespace

Program Assembler::assemble(const std::string& source) {
  return Pass(source).run();
}

Program assemble(const std::string& source) {
  return Assembler{}.assemble(source);
}

}  // namespace tcfpn::isa
