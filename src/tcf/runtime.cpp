#include "tcf/runtime.hpp"

#include <algorithm>
#include <unordered_map>

#include "machine/cost_model.hpp"

namespace tcfpn::tcf {

namespace {
// Per-statement multioperation accumulators live here so Lane can compute
// same-step multiprefix returns incrementally (lanes are ordered).
thread_local std::unordered_map<Addr, Word>* t_multi_acc = nullptr;
thread_local std::uint64_t t_lane_actions = 0;
}  // namespace

// ---------------------------------------------------------------- Runtime

Runtime::Runtime(machine::MachineConfig cfg)
    : cfg_(cfg),
      shared_(cfg.shared_words, cfg.groups, cfg.crcw),
      net_(std::make_unique<net::Network>(
          net::make_topology(cfg.topology, cfg.groups), cfg.net)),
      alloc_(cfg.shared_words) {
  locals_.reserve(cfg_.groups);
  for (GroupId g = 0; g < cfg_.groups; ++g) {
    locals_.emplace_back(g, cfg_.local_words, cfg_.local_latency);
  }
  TCFPN_CHECK(cfg_.variant == machine::Variant::kSingleInstruction ||
                  cfg_.variant == machine::Variant::kBalanced,
              "the TCF runtime targets the extended model's TCF-aware "
              "variants; use src/baseline front-ends for ",
              machine::to_string(cfg_.variant));
  group_ready_.assign(cfg_.groups, 0);
}

Buffer Runtime::array(std::size_t words) { return alloc_.alloc(words); }

Buffer Runtime::array(const std::vector<Word>& init) {
  Buffer b = alloc_.alloc(init.size());
  for (std::size_t i = 0; i < init.size(); ++i) {
    shared_.poke(b.at(i), init[i]);
  }
  return b;
}

std::vector<Word> Runtime::fetch(Buffer b) {
  std::vector<Word> out(b.size);
  for (std::size_t i = 0; i < b.size; ++i) out[i] = shared_.peek(b.at(i));
  return out;
}

GroupId Runtime::pick_group(Cycle ready_after) const {
  // Earliest possible start wins; ties go to the least-booked group so
  // same-instant branches spread over the machine.
  GroupId best = 0;
  auto key = [&](GroupId g) {
    return std::pair<Cycle, Cycle>(std::max(group_ready_[g], ready_after),
                                   group_ready_[g]);
  };
  for (GroupId g = 1; g < cfg_.groups; ++g) {
    if (key(g) < key(best)) best = g;
  }
  return best;
}

RunStats Runtime::run(const std::function<void(Flow&)>& body,
                      Word thickness) {
  TCFPN_CHECK(thickness >= 0, "negative root thickness");
  stats_ = RunStats{};
  std::fill(group_ready_.begin(), group_ready_.end(), 0);
  next_flow_ = 0;
  Flow root(*this, next_flow_++, thickness, 0, 0);
  body(root);
  group_ready_[root.group_] = std::max(group_ready_[root.group_],
                                       root.clock_);
  stats_.makespan = std::max(stats_.makespan, root.clock_);
  return stats_;
}

Cycle Runtime::charge_statement(Flow& f) {
  const Cycle mem = f.stmt_module_load_.empty()
                        ? 0
                        : net_->latency_bound(f.stmt_module_load_,
                                              f.stmt_max_dist_);
  const std::uint64_t ops = f.stmt_ops_;
  Cycle len = 0;
  if (cfg_.variant == machine::Variant::kBalanced) {
    const std::uint64_t b = cfg_.balanced_bound;
    const std::uint64_t chunks = std::max<std::uint64_t>(1, (ops + b - 1) / b);
    len = chunks * (cfg_.pipeline_fill + b);
    if (mem > len) {
      stats_.memory_wait_cycles += mem - len;
      len = mem;
    }
    stats_.instruction_fetches += chunks;
  } else {
    const Cycle body = std::max<Cycle>(ops, mem);
    if (mem > ops) stats_.memory_wait_cycles += mem - ops;
    len = cfg_.pipeline_fill + body;
    stats_.instruction_fetches += 1;
  }
  ++stats_.statements;
  stats_.operations += ops;
  return len;
}

// ------------------------------------------------------------------- Flow

void Flow::thick(Word t) {
  TCFPN_CHECK(t >= 0, "negative thickness ", t);
  thickness_ = t;
  // The `#t;` statement is itself one (thin) instruction.
  clock_ += rt_.cfg_.pipeline_fill + 1;
  ++rt_.stats_.statements;
  ++rt_.stats_.operations;
  ++rt_.stats_.instruction_fetches;
}

void Flow::apply(const std::function<void(Lane&)>& fn) {
  if (thickness_ == 0) return;  // "does not execute anything"
  stmt_ops_ = 0;
  stmt_module_load_.assign(rt_.shared_.modules(), 0);
  stmt_max_dist_ = 0;
  std::unordered_map<Addr, Word> multi_acc;
  t_multi_acc = &multi_acc;

  for (LaneId lane = 0; lane < static_cast<LaneId>(thickness_); ++lane) {
    t_lane_actions = 0;
    Lane handle(*this, lane);
    fn(handle);
    if (t_lane_actions == 0) ++stmt_ops_;  // an idle lane still fills a slot
  }
  t_multi_acc = nullptr;

  // Commit the statement: ordinary writes via the CRCW machinery, then the
  // combined multioperation results — in address order, not hash order, so
  // that an ordinary write and a multiop racing on the same cell resolve
  // identically on every run and standard library.
  rt_.shared_.commit_step();
  std::vector<std::pair<Addr, Word>> combined(multi_acc.begin(),
                                              multi_acc.end());
  std::sort(combined.begin(), combined.end());
  for (const auto& [addr, value] : combined) {
    rt_.shared_.poke(addr, value);
  }
  clock_ += rt_.charge_statement(*this);
}

void Flow::parallel(std::vector<Branch> branches) {
  // Splitting copies the flow-level register state into each child: O(R)
  // per branch (Table 1's cost of flow branch).
  const Cycle branch_cost = machine::flow_branch_cost(rt_.cfg_);
  Cycle join_at = clock_;
  for (auto& br : branches) {
    TCFPN_CHECK(br.thickness >= 0, "negative branch thickness");
    const Cycle spawn_done =
        clock_ + rt_.cfg_.spawn_cost + branch_cost;
    const GroupId g = rt_.pick_group(spawn_done);
    Flow child(rt_, rt_.next_flow_++, br.thickness, g,
               std::max(spawn_done, rt_.group_ready_[g]));
    ++rt_.stats_.splits;
    br.body(child);
    rt_.group_ready_[g] = std::max(rt_.group_ready_[g], child.clock_);
    join_at = std::max(join_at, child.clock_);
  }
  // Implicit join of the flows back to the calling flow.
  clock_ = join_at + rt_.cfg_.pipeline_fill;
  ++rt_.stats_.joins;
}

void Flow::numa(std::size_t block_len,
                const std::function<void(Seq&)>& fn) {
  TCFPN_CHECK(block_len >= 1, "NUMA block length must be >= 1");
  if (thickness_ == 0) return;
  stmt_ops_ = 0;
  stmt_module_load_.assign(rt_.shared_.modules(), 0);
  stmt_max_dist_ = 0;
  Seq seq(*this);
  fn(seq);
  // `#1/L;`: L instructions per step — amortise the per-step overhead over
  // the block; every instruction is fetched individually (Table 1).
  const std::uint64_t ops = std::max<std::uint64_t>(stmt_ops_, 1);
  const std::uint64_t steps = (ops + block_len - 1) / block_len;
  const Cycle mem = stmt_module_load_.empty()
                        ? 0
                        : rt_.net_->latency_bound(stmt_module_load_,
                                                  stmt_max_dist_);
  clock_ += steps * rt_.cfg_.pipeline_fill +
            ops * rt_.cfg_.local_latency + mem;
  rt_.stats_.statements += ops;
  rt_.stats_.operations += ops;
  rt_.stats_.instruction_fetches += ops;
  rt_.shared_.commit_step();
}

void Flow::sync() { clock_ += rt_.cfg_.pipeline_fill; }

// ------------------------------------------------------------------- Lane

Word Lane::thickness() const { return flow_.thickness_; }

Word Lane::read(Buffer b, std::size_t i) {
  auto& rt = flow_.rt_;
  const Addr a = b.at(i);
  const std::uint32_t m = rt.shared_.module_of(a);
  ++flow_.stmt_module_load_[m];
  flow_.stmt_max_dist_ = std::max(
      flow_.stmt_max_dist_,
      rt.net_->topology().distance(flow_.group_, m % rt.cfg_.groups));
  ++flow_.stmt_ops_;
  ++rt.stats_.shared_accesses;
  ++t_lane_actions;
  return rt.shared_.read(a, (flow_.id_ << 40) | id_);
}

void Lane::write(Buffer b, std::size_t i, Word v) {
  auto& rt = flow_.rt_;
  const Addr a = b.at(i);
  const std::uint32_t m = rt.shared_.module_of(a);
  ++flow_.stmt_module_load_[m];
  flow_.stmt_max_dist_ = std::max(
      flow_.stmt_max_dist_,
      rt.net_->topology().distance(flow_.group_, m % rt.cfg_.groups));
  ++flow_.stmt_ops_;
  ++rt.stats_.shared_accesses;
  ++t_lane_actions;
  rt.shared_.write(a, v, (flow_.id_ << 40) | id_);
}

void Lane::multi(Buffer b, std::size_t i, mem::MultiOp op, Word v) {
  (void)prefix(b, i, op, v);
}

Word Lane::prefix(Buffer b, std::size_t i, mem::MultiOp op, Word v) {
  auto& rt = flow_.rt_;
  const Addr a = b.at(i);
  const std::uint32_t m = rt.shared_.module_of(a);
  ++flow_.stmt_module_load_[m];
  flow_.stmt_max_dist_ = std::max(
      flow_.stmt_max_dist_,
      rt.net_->topology().distance(flow_.group_, m % rt.cfg_.groups));
  ++flow_.stmt_ops_;
  ++rt.stats_.shared_accesses;
  ++t_lane_actions;
  TCFPN_CHECK(t_multi_acc != nullptr,
              "multiprefix outside a thick statement");
  auto [it, inserted] = t_multi_acc->try_emplace(a, rt.shared_.peek(a));
  const Word before = it->second;
  it->second = mem::apply_multiop(op, before, v);
  return before;
}

void Lane::compute(std::uint64_t n) {
  flow_.stmt_ops_ += n;
  t_lane_actions += n;
}

// -------------------------------------------------------------------- Seq

Word Seq::local_read(std::size_t i) {
  ++flow_.stmt_ops_;
  return flow_.rt_.locals_[flow_.group_].read(i);
}

void Seq::local_write(std::size_t i, Word v) {
  ++flow_.stmt_ops_;
  flow_.rt_.locals_[flow_.group_].write(i, v);
}

Word Seq::shared_read(Buffer b, std::size_t i) {
  auto& rt = flow_.rt_;
  const Addr a = b.at(i);
  const std::uint32_t m = rt.shared_.module_of(a);
  ++flow_.stmt_module_load_[m];
  flow_.stmt_max_dist_ = std::max(
      flow_.stmt_max_dist_,
      rt.net_->topology().distance(flow_.group_, m % rt.cfg_.groups));
  ++flow_.stmt_ops_;
  ++rt.stats_.shared_accesses;
  return rt.shared_.peek(a);
}

void Seq::shared_write(Buffer b, std::size_t i, Word v) {
  auto& rt = flow_.rt_;
  const Addr a = b.at(i);
  const std::uint32_t m = rt.shared_.module_of(a);
  ++flow_.stmt_module_load_[m];
  flow_.stmt_max_dist_ = std::max(
      flow_.stmt_max_dist_,
      rt.net_->topology().distance(flow_.group_, m % rt.cfg_.groups));
  ++flow_.stmt_ops_;
  ++rt.stats_.shared_accesses;
  rt.shared_.poke(a, v);
}

void Seq::compute(std::uint64_t n) { flow_.stmt_ops_ += n; }

}  // namespace tcfpn::tcf
