// Canonical TCF kernel programs (Section 4 of the paper) generated at ISA
// level, so every programming-style comparison runs on the cycle-level
// machine simulator.
//
// Each generator returns an isa::Program; the companion run helpers boot it
// with the conventions of the target variant. Address-space layout is the
// caller's: kernels take base addresses of their operand arrays.
#pragma once

#include <cstdint>

#include "isa/program.hpp"
#include "machine/machine.hpp"

namespace tcfpn::tcf::kernels {

/// `#n; c. = a. + b.;` — the extended-model vector add: four thick
/// instructions, no loop, whatever n is.
isa::Program vecadd_tcf(Word n, Addr a, Addr b, Addr c);

/// `for (i = tid; i < n; i += nthreads) c[i] = a[i] + b[i];` — the
/// fixed-thread ESM idiom. Boot one thickness-1 flow per thread with the
/// thread id in r1 and the thread count in r2 (see boot_esm_threads).
isa::Program vecadd_esm_loop(Word n, Addr a, Addr b, Addr c);

/// `fork (tid = 0; tid < n) c[tid] = a[tid] + b[tid];` — multi-instruction
/// (XMT) style: main spawns a flow of thickness n and joins.
isa::Program vecadd_fork(Word n, Addr a, Addr b, Addr c);

/// Vector/SIMD style for the fixed-thickness variant: chunks of width
/// `width`, tail handled by arithmetic masking (no control parallelism).
isa::Program vecadd_simd(Word n, Word width, Addr a, Addr b, Addr c);

/// Two-way conditional, extended-model style (Section 4):
///   parallel { #n/2: c. = a. + b.;  #n/2: c.[#+id] = 0; }
isa::Program cond_split_tcf(Word n, Addr a, Addr b, Addr c);

/// Two-way conditional, SIMD style: both paths executed sequentially with
/// arithmetic masks over the full width (Fig. 12's cost shape).
isa::Program cond_masked_simd(Word n, Word width, Addr a, Addr b, Addr c);

/// Two-way conditional, ESM thread style: per-thread `if`; both halves of
/// the thread set take different paths (threads are independent flows).
isa::Program cond_esm(Word n, Addr a, Addr b, Addr c);

/// Multiprefix sum, extended model: one thick PPADD instruction.
///   prefix(src, MPADD, &sum, src)  ->  dst[i] = Σ_{j<i} src[j], sum = Σ src
isa::Program prefix_tcf(Word n, Addr src, Addr dst, Addr sum);

/// Multiprefix with looping (the PRAM-NUMA idiom when n > threads):
///   for (i = tid; i < n; i += nthreads) prefix(src[i], MPADD, &sum, ...)
/// Runs per-thread like vecadd_esm_loop; dst[i] receives the prefix.
/// NOTE: with >1 rounds the interleaving differs from a single multiprefix,
/// so only `sum` (the total) is order-independent; dst is per-round-prefix.
isa::Program prefix_esm_loop(Word n, Addr src, Addr dst, Addr sum);

/// Dependent doubling scan (Section 4's dependent loop):
///   for (i = 1; i < n; i <<= 1) src[tid] += src[tid - i];
/// Requires a guard region of n zeros immediately below `data` (the paper's
/// trick for dropping the `if`). In-place inclusive scan of the n words at
/// `data`. Runs in ⌈log2 n⌉ dependent thick steps with no explicit
/// synchronisation — lockstep PRAM semantics do the synchronising.
isa::Program scan_doubling_tcf(Word n, Addr data);

/// Same dependent loop in multi-instruction style: one fork+join per round
/// (the paper: "synchronizations provided by the fork construct are needed
/// with the cost of remarkable overhead"). Because XMT threads are
/// asynchronous within a round, a correct implementation ping-pongs between
/// two arrays; both need n-word zero guards below them. The base address of
/// the final result array is stored to `result_ptr`.
isa::Program scan_doubling_fork(Word n, Addr data_a, Addr data_b,
                                Addr result_ptr);

/// Low-parallelism section (size < P): extended-model `#1/L` NUMA block of
/// `len` local-memory operations, then halt.
isa::Program low_tlp_numa(Word block_len, Word len);

/// The same sequential section in PRAM mode (one lane, full step costs).
isa::Program low_tlp_pram(Word len);

/// Generic workload: `instrs` thick ALU instructions at thickness `t`.
isa::Program spin_ops(Word t, Word instrs);

/// Fig. 3's block structure: thickness 23 (2 instructions), thickness 15
/// (3 instructions + a branch), parallel branches of thickness 12 and 3,
/// then a thickness-8 block of 8 instructions.
isa::Program fig3_blocks();

/// Fig. 4: one TCF changing thickness through the given sequence,
/// executing `instrs_per_block` instructions at each thickness.
isa::Program thickness_script(const std::vector<Word>& thicknesses,
                              Word instrs_per_block);

// ---- boot helpers ----

/// Boots `threads` thickness-1 flows for the ESM conventions: r1 = thread
/// id, r2 = thread count, round-robin over groups. Returns the flow ids.
std::vector<FlowId> boot_esm_threads(machine::Machine& m, std::size_t entry,
                                     std::uint64_t threads);

}  // namespace tcfpn::tcf::kernels
