// The Thick Control Flow runtime: the paper's programming model as an
// embedded C++ API.
//
// Section 2.2 / Section 4 semantics implemented here:
//  - a program starts as one flow of a given thickness (default 1);
//  - `Flow::thick(t)` is the `#t;` thickness statement: subsequent thick
//    statements execute t implicit threads (lanes) in lockstep;
//  - `Flow::apply(fn)` is one thick statement (one TCF instruction): fn runs
//    once per lane; all lane reads observe the state *before* the statement
//    and all writes commit together after it — exact PRAM lockstep within
//    the flow;
//  - `Flow::parallel({{t1, f1}, {t2, f2}, ...})` splits the flow into
//    branches of the given thicknesses and implicitly joins them; branches
//    are mutually asynchronous (nothing may be assumed about their relative
//    progress), and the runtime schedules them over the machine's P groups;
//  - `Flow::numa(L, fn)` is the `#1/L;` statement: a sequential block of L
//    low-cost steps against the group's local memory;
//  - `Lane::prefix_add(cell, v)` etc. are the multiprefix/multioperation
//    primitives (`prefix(source, MPADD, &sum, source)` in the paper);
//  - flow-level method calls are ordinary C++ calls made from flow scope:
//    they cost O(1) per flow, not O(thickness) — claimed novel in the paper.
//
// Cost model: the runtime charges cycles per statement according to the
// configured variant (single-instruction or balanced — the two "true
// TCF-aware" variants; the other four are exercised through src/baseline
// and the ISA-level machine). A greedy list-scheduler assigns flows to
// processor groups, so the reported makespan reflects P-way hardware.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "machine/config.hpp"
#include "mem/local_memory.hpp"
#include "mem/shared_memory.hpp"
#include "net/network.hpp"
#include "tcf/buffer.hpp"

namespace tcfpn::tcf {

struct RunStats {
  Cycle makespan = 0;              ///< critical-path cycles of the whole run
  std::uint64_t statements = 0;    ///< thick statements (TCF instructions)
  std::uint64_t operations = 0;    ///< lane-level chargeable actions
  std::uint64_t instruction_fetches = 0;
  std::uint64_t splits = 0;        ///< parallel branches created
  std::uint64_t joins = 0;
  Cycle memory_wait_cycles = 0;    ///< statement extension from module load
  std::uint64_t shared_accesses = 0;

  /// Work / (makespan × groups): how well the run filled the machine.
  double utilization(std::uint32_t groups) const {
    const double cap = static_cast<double>(makespan) * groups;
    return cap > 0 ? static_cast<double>(operations) / cap : 0.0;
  }
};

class Flow;
class Runtime;

/// Per-lane handle passed to thick-statement callbacks. All memory touched
/// through a Lane is charged and follows PRAM step semantics.
class Lane {
 public:
  LaneId id() const { return id_; }
  Word thickness() const;

  Word read(Buffer b, std::size_t i);
  void write(Buffer b, std::size_t i, Word v);

  /// Multioperation contribution: cell op= v (combined across lanes/flows
  /// within the statement).
  void multi(Buffer b, std::size_t i, mem::MultiOp op, Word v);
  void multi_add(Buffer b, std::size_t i, Word v) {
    multi(b, i, mem::MultiOp::kAdd, v);
  }

  /// Multiprefix contribution: returns the combination of the cell's prior
  /// value with all lower-ordered contributions of this statement. Note the
  /// result models the same-step return of the hardware multiprefix.
  Word prefix(Buffer b, std::size_t i, mem::MultiOp op, Word v);
  Word prefix_add(Buffer b, std::size_t i, Word v) {
    return prefix(b, i, mem::MultiOp::kAdd, v);
  }

  /// Charges n pure-ALU operations (memory-free work inside the lambda).
  void compute(std::uint64_t n = 1);

 private:
  friend class Flow;
  Lane(Flow& flow, LaneId id) : flow_(flow), id_(id) {}
  Flow& flow_;
  LaneId id_;
};

/// Sequential handle passed to NUMA blocks: immediate local-memory
/// semantics, one op per access, as the bunched/1-over-T execution mode.
class Seq {
 public:
  Word local_read(std::size_t i);
  void local_write(std::size_t i, Word v);
  /// Shared access from NUMA mode: legal but pays unhidden network latency.
  Word shared_read(Buffer b, std::size_t i);
  void shared_write(Buffer b, std::size_t i, Word v);
  void compute(std::uint64_t n = 1);

 private:
  friend class Flow;
  explicit Seq(Flow& flow) : flow_(flow) {}
  Flow& flow_;
};

class Flow {
 public:
  Word thickness() const { return thickness_; }
  FlowId id() const { return id_; }
  GroupId group() const { return group_; }

  /// The `#t;` statement. t == 0 makes subsequent statements no-ops until
  /// the thickness is raised again (the paper: "the processor does not
  /// execute anything").
  void thick(Word t);

  /// One thick statement: fn(lane) runs for every lane in lockstep.
  void apply(const std::function<void(Lane&)>& fn);

  /// Split into branches with the given thicknesses; implicit join.
  struct Branch {
    Word thickness;
    std::function<void(Flow&)> body;
  };
  void parallel(std::vector<Branch> branches);

  /// The `#1/L;` statement: a NUMA/sequential block of up to L charged
  /// low-latency steps. fn executes once (single implicit thread).
  void numa(std::size_t block_len, const std::function<void(Seq&)>& fn);

  /// Flow-level synchronisation point (rarely needed: every apply is
  /// already a step). Commits nothing extra; charges one step of overhead.
  void sync();

  Runtime& runtime() { return rt_; }

 private:
  friend class Runtime;
  friend class Lane;
  friend class Seq;
  Flow(Runtime& rt, FlowId id, Word thickness, GroupId group, Cycle clock)
      : rt_(rt), id_(id), thickness_(thickness), group_(group),
        clock_(clock) {}

  Runtime& rt_;
  FlowId id_;
  Word thickness_;
  GroupId group_;
  Cycle clock_;  ///< this flow's virtual time

  // Per-statement scratch, managed by apply():
  std::uint64_t stmt_ops_ = 0;
  std::vector<std::uint64_t> stmt_module_load_;
  std::uint32_t stmt_max_dist_ = 0;
};

class Runtime {
 public:
  explicit Runtime(machine::MachineConfig cfg);

  /// Allocates a shared array.
  Buffer array(std::size_t words);
  /// Allocates and fills a shared array.
  Buffer array(const std::vector<Word>& init);

  /// Runs a TCF program: body receives the root flow (thickness as given).
  RunStats run(const std::function<void(Flow&)>& body, Word thickness = 1);

  mem::SharedMemory& shared() { return shared_; }
  const machine::MachineConfig& config() const { return cfg_; }

  /// Reads back a full buffer (for result checking).
  std::vector<Word> fetch(Buffer b);

 private:
  friend class Flow;
  friend class Lane;
  friend class Seq;

  /// Charges one completed thick statement of `ops` lane-operations with
  /// the recorded module loads; returns the statement's cycle length.
  Cycle charge_statement(Flow& f);
  GroupId pick_group(Cycle ready_after) const;

  machine::MachineConfig cfg_;
  mem::SharedMemory shared_;
  std::vector<mem::LocalMemory> locals_;
  std::unique_ptr<net::Network> net_;
  BumpAllocator alloc_;
  RunStats stats_;
  FlowId next_flow_ = 0;
  std::vector<Cycle> group_ready_;  ///< greedy list-schedule availability
};

}  // namespace tcfpn::tcf
