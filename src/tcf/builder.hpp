// Programmatic construction of ISA programs with label management.
//
// The assembler (src/isa) parses text; this builder is the API the kernel
// generators and tests use to synthesise programs directly — effectively
// the code-generation back half of a TCF compiler targeting the extended
// PRAM-NUMA machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace tcfpn::tcf {

/// Register operand (r0 is hardwired zero).
struct Reg {
  std::uint8_t n = 0;
  explicit constexpr Reg(std::uint8_t r) : n(r) {}
};

inline constexpr Reg r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5}, r6{6}, r7{7},
    r8{8}, r9{9}, r10{10}, r11{11}, r12{12}, r13{13}, r14{14}, r15{15};

class AsmBuilder {
 public:
  using Label = std::size_t;

  /// Creates an unbound label; bind() attaches it to the next instruction.
  Label make_label(std::string name = "");
  void bind(Label l);

  // ---- constants & ALU (imm overloads set the use-imm flag) ----
  void ldi(Reg rd, Word imm);
  void alu(isa::Opcode op, Reg rd, Reg ra, Reg rb);
  void alu(isa::Opcode op, Reg rd, Reg ra, Word imm);
  void add(Reg rd, Reg ra, Reg rb) { alu(isa::Opcode::kAdd, rd, ra, rb); }
  void add(Reg rd, Reg ra, Word i) { alu(isa::Opcode::kAdd, rd, ra, i); }
  void sub(Reg rd, Reg ra, Reg rb) { alu(isa::Opcode::kSub, rd, ra, rb); }
  void sub(Reg rd, Reg ra, Word i) { alu(isa::Opcode::kSub, rd, ra, i); }
  void mul(Reg rd, Reg ra, Reg rb) { alu(isa::Opcode::kMul, rd, ra, rb); }
  void mul(Reg rd, Reg ra, Word i) { alu(isa::Opcode::kMul, rd, ra, i); }
  void shl(Reg rd, Reg ra, Word i) { alu(isa::Opcode::kShl, rd, ra, i); }
  void slt(Reg rd, Reg ra, Reg rb) { alu(isa::Opcode::kSlt, rd, ra, rb); }
  void slt(Reg rd, Reg ra, Word i) { alu(isa::Opcode::kSlt, rd, ra, i); }
  void sge_zero(Reg rd, Reg ra) { alu(isa::Opcode::kSlt, rd, ra, Word{0}); }

  // ---- memory (lane=true adds the implicit-thread index to the address) --
  void ld(Reg rd, Reg base, Word off = 0, bool lane = false);
  void st(Reg val, Reg base, Word off = 0, bool lane = false);
  void lld(Reg rd, Reg base, Word off = 0, bool lane = false);
  void lst(Reg val, Reg base, Word off = 0, bool lane = false);
  void mp(isa::Opcode op, Reg val, Reg base, Word off = 0, bool lane = false);
  void pp(isa::Opcode op, Reg rd, Reg val, Reg base, Word off = 0,
          bool lane = false);

  // ---- control ----
  void jmp(Label l);
  void beqz(Reg ra, Label l);
  void bnez(Reg ra, Label l);
  void call(Label l);
  void ret();
  void halt();

  // ---- TCF control ----
  void setthick(Reg ra);
  void setthick(Word imm);
  void numaset(Word block_len);
  void spawn(Reg thickness, Label entry);
  void joinall();
  void tid(Reg rd);
  void fid(Reg rd);
  void thickq(Reg rd);
  void gid(Reg rd);
  void print(Reg ra);
  void print(Word imm);
  void nop();

  // ---- data ----
  void data(Addr addr, std::vector<Word> words);

  /// Current instruction count (address of the next emitted instruction).
  std::size_t here() const { return code_.size(); }

  /// Resolves all labels and returns the finished program. All labels must
  /// be bound.
  isa::Program build();

 private:
  struct Fixup {
    std::size_t instr_index;
    Label label;
  };
  void emit(isa::Instr instr) { code_.push_back(instr); }
  void emit_branch(isa::Instr instr, Label l);

  std::vector<isa::Instr> code_;
  std::vector<std::ptrdiff_t> label_addr_;  // -1 = unbound
  std::vector<std::string> label_name_;
  std::vector<Fixup> fixups_;
  std::vector<isa::DataInit> data_;
};

}  // namespace tcfpn::tcf
