#include "tcf/kernels.hpp"

#include "common/check.hpp"
#include "tcf/builder.hpp"

namespace tcfpn::tcf::kernels {

namespace {
Word addr_imm(Addr a) {
  TCFPN_CHECK(a <= INT32_MAX, "kernel operand address too large: ", a);
  return static_cast<Word>(a);
}
}  // namespace

isa::Program vecadd_tcf(Word n, Addr a, Addr b, Addr c) {
  TCFPN_CHECK(n >= 0, "negative size");
  AsmBuilder s;
  s.setthick(n);                      // #n;
  s.ld(r1, r0, addr_imm(a), true);    // a.
  s.ld(r2, r0, addr_imm(b), true);    // b.
  s.add(r3, r1, r2);                  // a. + b.
  s.st(r3, r0, addr_imm(c), true);    // c. =
  s.halt();
  return s.build();
}

isa::Program vecadd_esm_loop(Word n, Addr a, Addr b, Addr c) {
  // Convention: r1 = thread id, r2 = number of threads (boot_esm_threads).
  AsmBuilder s;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.add(r3, r1, Word{0});  // i = tid
  s.bind(loop);
  s.slt(r4, r3, n);
  s.beqz(r4, done);
  s.add(r5, r3, addr_imm(a));
  s.ld(r6, r5);
  s.add(r7, r3, addr_imm(b));
  s.ld(r8, r7);
  s.add(r9, r6, r8);
  s.add(r10, r3, addr_imm(c));
  s.st(r9, r10);
  s.add(r3, r3, r2);  // i += nthreads
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return s.build();
}

isa::Program vecadd_fork(Word n, Addr a, Addr b, Addr c) {
  AsmBuilder s;
  auto worker = s.make_label("worker");
  // main
  s.ldi(r1, n);
  s.spawn(r1, worker);  // fork (tid = 0; tid < n)
  s.joinall();
  s.halt();
  // worker: one implicit thread per element
  s.bind(worker);
  s.tid(r3);
  s.add(r5, r3, addr_imm(a));
  s.ld(r6, r5);
  s.add(r7, r3, addr_imm(b));
  s.ld(r8, r7);
  s.add(r9, r6, r8);
  s.add(r10, r3, addr_imm(c));
  s.st(r9, r10);
  s.halt();
  return s.build();
}

isa::Program vecadd_simd(Word n, Word width, Addr a, Addr b, Addr c) {
  // Fixed-thickness machine, boot thickness == width. Shared word 0 is used
  // as the write dump for masked-off lanes.
  TCFPN_CHECK(width >= 1, "SIMD width must be >= 1");
  AsmBuilder s;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.ldi(r1, 0);  // chunk base
  s.bind(loop);
  s.slt(r2, r1, n);
  s.beqz(r2, done);
  s.tid(r4);
  s.add(r3, r1, r4);           // idx = base + lane
  s.slt(r5, r3, n);            // in-bounds mask
  s.mul(r6, r3, r5);           // safe idx (0 when masked)
  s.add(r7, r6, addr_imm(a));
  s.ld(r8, r7);
  s.add(r9, r6, addr_imm(b));
  s.ld(r10, r9);
  s.add(r11, r8, r10);         // sum
  s.mul(r11, r11, r5);         // masked value (uniform 0 for dead lanes)
  s.add(r12, r6, addr_imm(c));
  s.mul(r12, r12, r5);         // masked address -> dump (word 0)
  s.st(r11, r12);
  s.add(r1, r1, width);
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return s.build();
}

isa::Program cond_split_tcf(Word n, Addr a, Addr b, Addr c) {
  // parallel { #n/2: c. = a. + b.;  #(n - n/2): c.[n/2 + id] = 0; }
  const Word lower = n / 2;
  const Word upper = n - lower;
  AsmBuilder s;
  auto br_add = s.make_label("branch_add");
  auto br_zero = s.make_label("branch_zero");
  s.ldi(r4, lower);
  s.spawn(r4, br_add);
  s.ldi(r5, upper);
  s.spawn(r5, br_zero);
  s.joinall();
  s.halt();
  s.bind(br_add);
  s.ld(r1, r0, addr_imm(a), true);
  s.ld(r2, r0, addr_imm(b), true);
  s.add(r3, r1, r2);
  s.st(r3, r0, addr_imm(c), true);
  s.halt();
  s.bind(br_zero);
  s.st(r0, r0, addr_imm(c) + lower, true);
  s.halt();
  return s.build();
}

isa::Program cond_masked_simd(Word n, Word width, Addr a, Addr b, Addr c) {
  // Two sequential masked passes over the full index range (Fig. 12: the
  // vector model has no control parallelism, so both paths execute).
  TCFPN_CHECK(width >= 1, "SIMD width must be >= 1");
  const Word half = n / 2;
  AsmBuilder s;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.ldi(r1, 0);
  s.bind(loop);
  s.slt(r2, r1, n);
  s.beqz(r2, done);
  s.tid(r4);
  s.add(r3, r1, r4);  // idx
  s.slt(r5, r3, n);   // in-bounds
  s.mul(r6, r3, r5);  // safe idx
  // ---- pass 1: if (idx < n/2) c[idx] = a[idx] + b[idx] ----
  s.slt(r7, r6, half);  // path-1 mask
  s.mul(r7, r7, r5);    // && in-bounds
  s.add(r8, r6, addr_imm(a));
  s.ld(r9, r8);
  s.add(r10, r6, addr_imm(b));
  s.ld(r11, r10);
  s.add(r12, r9, r11);
  s.mul(r12, r12, r7);  // value under mask
  s.add(r13, r6, addr_imm(c));
  s.mul(r13, r13, r7);  // address under mask (dump = word 0)
  s.st(r12, r13);
  // ---- pass 2: if (idx >= n/2) c[idx] = 0 ----
  s.slt(r7, r6, half);
  s.alu(isa::Opcode::kXor, r7, r7, Word{1});  // !(idx < n/2)
  s.mul(r7, r7, r5);
  s.add(r13, r6, addr_imm(c));
  s.mul(r13, r13, r7);
  s.st(r0, r13);
  s.add(r1, r1, width);
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return s.build();
}

isa::Program cond_esm(Word n, Addr a, Addr b, Addr c) {
  // Thread style: each thread is its own flow, so branches may diverge.
  const Word half = n / 2;
  AsmBuilder s;
  auto upper = s.make_label("upper");
  auto done = s.make_label("done");
  s.slt(r3, r1, n);
  s.beqz(r3, done);
  s.slt(r4, r1, half);
  s.beqz(r4, upper);
  s.add(r5, r1, addr_imm(a));
  s.ld(r6, r5);
  s.add(r7, r1, addr_imm(b));
  s.ld(r8, r7);
  s.add(r9, r6, r8);
  s.add(r10, r1, addr_imm(c));
  s.st(r9, r10);
  s.jmp(done);
  s.bind(upper);
  s.add(r10, r1, addr_imm(c));
  s.st(r0, r10);
  s.bind(done);
  s.halt();
  return s.build();
}

isa::Program prefix_tcf(Word n, Addr src, Addr dst, Addr sum) {
  AsmBuilder s;
  s.setthick(n);
  s.ld(r1, r0, addr_imm(src), true);
  s.pp(isa::Opcode::kPpAdd, r2, r1, r0, addr_imm(sum));
  s.st(r2, r0, addr_imm(dst), true);
  s.halt();
  return s.build();
}

isa::Program prefix_esm_loop(Word n, Addr src, Addr dst, Addr sum) {
  AsmBuilder s;
  auto loop = s.make_label("loop");
  auto done = s.make_label("done");
  s.add(r3, r1, Word{0});
  s.bind(loop);
  s.slt(r4, r3, n);
  s.beqz(r4, done);
  s.add(r5, r3, addr_imm(src));
  s.ld(r6, r5);
  s.pp(isa::Opcode::kPpAdd, r7, r6, r0, addr_imm(sum));
  s.add(r8, r3, addr_imm(dst));
  s.st(r7, r8);
  s.add(r3, r3, r2);
  s.jmp(loop);
  s.bind(done);
  s.halt();
  return s.build();
}

isa::Program scan_doubling_tcf(Word n, Addr data) {
  TCFPN_CHECK(data >= static_cast<Addr>(n),
              "scan_doubling_tcf needs an n-word zero guard below data");
  AsmBuilder s;
  auto loop = s.make_label("loop");
  s.setthick(n);
  s.ldi(r2, 1);  // i
  s.bind(loop);
  s.tid(r5);
  s.add(r6, r5, addr_imm(data));  // &data[tid]
  s.sub(r7, r6, r2);              // &data[tid - i] (guard absorbs tid < i)
  s.ld(r3, r6);
  s.ld(r4, r7);
  s.add(r3, r3, r4);
  s.st(r3, r6);                   // lockstep: commits before the next read
  s.shl(r2, r2, 1);
  s.slt(r8, r2, n);
  s.bnez(r8, loop);
  s.halt();
  return s.build();
}

isa::Program scan_doubling_fork(Word n, Addr data_a, Addr data_b,
                                Addr result_ptr) {
  TCFPN_CHECK(data_a >= static_cast<Addr>(n) && data_b >= static_cast<Addr>(n),
              "scan_doubling_fork needs n-word zero guards below both arrays");
  AsmBuilder s;
  auto round = s.make_label("round");
  auto body = s.make_label("body");
  // main (thickness 1)
  s.ldi(r2, 1);                 // i
  s.ldi(r9, addr_imm(data_a));  // src base
  s.ldi(r10, addr_imm(data_b)); // dst base
  s.bind(round);
  s.ldi(r1, n);
  s.spawn(r1, body);            // fork (tid = 0; tid < n), inherits r2/r9/r10
  s.joinall();                  // the "remarkable overhead" per round
  s.add(r11, r9, Word{0});      // swap src/dst
  s.add(r9, r10, Word{0});
  s.add(r10, r11, Word{0});
  s.shl(r2, r2, 1);
  s.slt(r12, r2, n);
  s.bnez(r12, round);
  s.ldi(r13, addr_imm(result_ptr));
  s.st(r9, r13);                // publish the final array base
  s.halt();
  // body: dst[tid] = src[tid] + src[tid - i]
  s.bind(body);
  s.tid(r5);
  s.add(r6, r5, r9);
  s.sub(r7, r6, r2);
  s.ld(r3, r6);
  s.ld(r4, r7);
  s.add(r3, r3, r4);
  s.sub(r8, r6, r9);            // tid
  s.add(r8, r8, r10);           // &dst[tid]
  s.st(r3, r8);
  s.halt();
  return s.build();
}

isa::Program low_tlp_numa(Word block_len, Word len) {
  AsmBuilder s;
  auto loop = s.make_label("loop");
  s.numaset(block_len);  // #1/L;
  s.ldi(r1, 0);
  s.bind(loop);
  s.lld(r2, r0, 0);
  s.add(r2, r2, Word{1});
  s.lst(r2, r0, 0);
  s.add(r1, r1, Word{1});
  s.slt(r3, r1, len);
  s.bnez(r3, loop);
  s.halt();
  return s.build();
}

isa::Program low_tlp_pram(Word len) {
  AsmBuilder s;
  auto loop = s.make_label("loop");
  s.ldi(r1, 0);
  s.bind(loop);
  s.ld(r2, r0, 0);
  s.add(r2, r2, Word{1});
  s.st(r2, r0, 0);
  s.add(r1, r1, Word{1});
  s.slt(r3, r1, len);
  s.bnez(r3, loop);
  s.halt();
  return s.build();
}

isa::Program spin_ops(Word t, Word instrs) {
  TCFPN_CHECK(instrs >= 1 && instrs <= 4096,
              "spin_ops supports 1..4096 unrolled instructions");
  AsmBuilder s;
  s.setthick(t);
  for (Word i = 0; i < instrs; ++i) s.add(r1, r1, Word{1});
  s.halt();
  return s.build();
}

isa::Program fig3_blocks() {
  AsmBuilder s;
  auto br_a = s.make_label("branch12");
  auto br_b = s.make_label("branch3");
  s.setthick(23);  // block of thickness 23
  s.add(r1, r1, Word{1});
  s.add(r1, r1, Word{1});
  s.setthick(15);  // block of thickness 15, branching after 3 instructions
  s.add(r1, r1, Word{1});
  s.add(r1, r1, Word{1});
  s.add(r1, r1, Word{1});
  s.ldi(r4, 12);   // two parallel blocks, thicknesses 12 and 3
  s.spawn(r4, br_a);
  s.ldi(r4, 3);
  s.spawn(r4, br_b);
  s.joinall();
  s.setthick(8);   // 8 consecutive instructions
  for (int i = 0; i < 8; ++i) s.add(r1, r1, Word{1});
  s.halt();
  s.bind(br_a);
  for (int i = 0; i < 3; ++i) s.add(r1, r1, Word{1});
  s.halt();
  s.bind(br_b);
  for (int i = 0; i < 3; ++i) s.add(r1, r1, Word{1});
  s.halt();
  return s.build();
}

isa::Program thickness_script(const std::vector<Word>& thicknesses,
                              Word instrs_per_block) {
  AsmBuilder s;
  for (Word t : thicknesses) {
    s.setthick(t);
    for (Word i = 0; i < instrs_per_block; ++i) s.add(r1, r1, Word{1});
  }
  s.halt();
  return s.build();
}

std::vector<FlowId> boot_esm_threads(machine::Machine& m, std::size_t entry,
                                     std::uint64_t threads) {
  std::vector<FlowId> ids;
  ids.reserve(threads);
  const std::uint32_t groups = m.config().groups;
  for (std::uint64_t t = 0; t < threads; ++t) {
    const FlowId id = m.boot_at(entry, 1, static_cast<GroupId>(t % groups));
    m.poke_reg(id, 0, 1, static_cast<Word>(t));        // r1 = thread id
    m.poke_reg(id, 0, 2, static_cast<Word>(threads));  // r2 = thread count
    ids.push_back(id);
  }
  return ids;
}

}  // namespace tcfpn::tcf::kernels
