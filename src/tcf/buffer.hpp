// Shared-memory buffer handles for the TCF runtime.
#pragma once

#include <cstddef>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcfpn::tcf {

/// A contiguous span of simulated shared memory. Plain value handle; the
/// memory itself lives in mem::SharedMemory.
struct Buffer {
  Addr base = kNullAddr;
  std::size_t size = 0;

  Addr at(std::size_t i) const {
    TCFPN_CHECK(i < size, "buffer index ", i, " out of range ", size);
    return base + i;
  }
  bool valid() const { return base != kNullAddr; }
};

/// Bump allocator over the simulated shared address space.
class BumpAllocator {
 public:
  explicit BumpAllocator(std::size_t capacity_words, Addr start = 0)
      : next_(start), end_(start + capacity_words) {}

  Buffer alloc(std::size_t words) {
    TCFPN_CHECK(words > 0, "allocating an empty buffer");
    if (next_ + words > end_) {
      TCFPN_FAULT("simulated shared memory exhausted: need ", words,
                  " words, have ", end_ - next_);
    }
    Buffer b{next_, words};
    next_ += words;
    return b;
  }

  Addr watermark() const { return next_; }

 private:
  Addr next_;
  Addr end_;
};

}  // namespace tcfpn::tcf
