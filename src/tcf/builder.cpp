#include "tcf/builder.hpp"

#include "common/check.hpp"

namespace tcfpn::tcf {

using isa::Instr;
using isa::Opcode;

AsmBuilder::Label AsmBuilder::make_label(std::string name) {
  label_addr_.push_back(-1);
  label_name_.push_back(name.empty()
                            ? "L" + std::to_string(label_addr_.size() - 1)
                            : std::move(name));
  return label_addr_.size() - 1;
}

void AsmBuilder::bind(Label l) {
  TCFPN_CHECK(l < label_addr_.size(), "unknown label handle ", l);
  TCFPN_CHECK(label_addr_[l] < 0, "label '", label_name_[l],
              "' bound twice");
  label_addr_[l] = static_cast<std::ptrdiff_t>(code_.size());
}

void AsmBuilder::ldi(Reg rd, Word imm) {
  TCFPN_CHECK(imm >= INT32_MIN && imm <= INT32_MAX,
              "LDI immediate out of range: ", imm);
  Instr i;
  i.op = Opcode::kLdi;
  i.rd = rd.n;
  i.imm = static_cast<std::int32_t>(imm);
  emit(i);
}

void AsmBuilder::alu(Opcode op, Reg rd, Reg ra, Reg rb) {
  Instr i;
  i.op = op;
  i.rd = rd.n;
  i.ra = ra.n;
  i.rb = rb.n;
  emit(i);
}

void AsmBuilder::alu(Opcode op, Reg rd, Reg ra, Word imm) {
  TCFPN_CHECK(imm >= INT32_MIN && imm <= INT32_MAX,
              "ALU immediate out of range: ", imm);
  Instr i;
  i.op = op;
  i.rd = rd.n;
  i.ra = ra.n;
  i.flags = isa::flag::kUseImm;
  i.imm = static_cast<std::int32_t>(imm);
  emit(i);
}

namespace {
Instr mem_instr(Opcode op, Reg base, Word off, bool lane) {
  TCFPN_CHECK(off >= INT32_MIN && off <= INT32_MAX,
              "memory offset out of range: ", off);
  Instr i;
  i.op = op;
  i.ra = base.n;
  i.imm = static_cast<std::int32_t>(off);
  if (lane) i.flags |= isa::flag::kLaneAddr;
  return i;
}
}  // namespace

void AsmBuilder::ld(Reg rd, Reg base, Word off, bool lane) {
  Instr i = mem_instr(Opcode::kLd, base, off, lane);
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::st(Reg val, Reg base, Word off, bool lane) {
  Instr i = mem_instr(Opcode::kSt, base, off, lane);
  i.rb = val.n;
  emit(i);
}

void AsmBuilder::lld(Reg rd, Reg base, Word off, bool lane) {
  Instr i = mem_instr(Opcode::kLld, base, off, lane);
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::lst(Reg val, Reg base, Word off, bool lane) {
  Instr i = mem_instr(Opcode::kLst, base, off, lane);
  i.rb = val.n;
  emit(i);
}

void AsmBuilder::mp(Opcode op, Reg val, Reg base, Word off, bool lane) {
  TCFPN_CHECK(op >= Opcode::kMpAdd && op <= Opcode::kMpOr,
              "mp() requires a multioperation opcode");
  Instr i = mem_instr(op, base, off, lane);
  i.rb = val.n;
  emit(i);
}

void AsmBuilder::pp(Opcode op, Reg rd, Reg val, Reg base, Word off,
                    bool lane) {
  TCFPN_CHECK(op >= Opcode::kPpAdd && op <= Opcode::kPpOr,
              "pp() requires a multiprefix opcode");
  Instr i = mem_instr(op, base, off, lane);
  i.rd = rd.n;
  i.rb = val.n;
  emit(i);
}

void AsmBuilder::emit_branch(Instr instr, Label l) {
  TCFPN_CHECK(l < label_addr_.size(), "unknown label handle ", l);
  fixups_.push_back(Fixup{code_.size(), l});
  emit(instr);
}

void AsmBuilder::jmp(Label l) {
  Instr i;
  i.op = Opcode::kJmp;
  emit_branch(i, l);
}

void AsmBuilder::beqz(Reg ra, Label l) {
  Instr i;
  i.op = Opcode::kBeqz;
  i.ra = ra.n;
  emit_branch(i, l);
}

void AsmBuilder::bnez(Reg ra, Label l) {
  Instr i;
  i.op = Opcode::kBnez;
  i.ra = ra.n;
  emit_branch(i, l);
}

void AsmBuilder::call(Label l) {
  Instr i;
  i.op = Opcode::kCall;
  emit_branch(i, l);
}

void AsmBuilder::ret() { emit(Instr{.op = Opcode::kRet}); }
void AsmBuilder::halt() { emit(Instr{.op = Opcode::kHalt}); }

void AsmBuilder::setthick(Reg ra) {
  Instr i;
  i.op = Opcode::kSetThick;
  i.ra = ra.n;
  emit(i);
}

void AsmBuilder::setthick(Word imm) {
  TCFPN_CHECK(imm >= 0 && imm <= INT32_MAX, "SETTHICK range: ", imm);
  Instr i;
  i.op = Opcode::kSetThick;
  i.flags = isa::flag::kUseImm;
  i.imm = static_cast<std::int32_t>(imm);
  emit(i);
}

void AsmBuilder::numaset(Word block_len) {
  TCFPN_CHECK(block_len >= 0 && block_len <= INT32_MAX,
              "NUMASET range: ", block_len);
  Instr i;
  i.op = Opcode::kNumaSet;
  i.imm = static_cast<std::int32_t>(block_len);
  emit(i);
}

void AsmBuilder::spawn(Reg thickness, Label entry) {
  Instr i;
  i.op = Opcode::kSpawn;
  i.ra = thickness.n;
  emit_branch(i, entry);
}

void AsmBuilder::joinall() { emit(Instr{.op = Opcode::kJoinAll}); }

void AsmBuilder::tid(Reg rd) {
  Instr i;
  i.op = Opcode::kTid;
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::fid(Reg rd) {
  Instr i;
  i.op = Opcode::kFid;
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::thickq(Reg rd) {
  Instr i;
  i.op = Opcode::kThick;
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::gid(Reg rd) {
  Instr i;
  i.op = Opcode::kGid;
  i.rd = rd.n;
  emit(i);
}

void AsmBuilder::print(Reg ra) {
  Instr i;
  i.op = Opcode::kPrint;
  i.ra = ra.n;
  emit(i);
}

void AsmBuilder::print(Word imm) {
  TCFPN_CHECK(imm >= INT32_MIN && imm <= INT32_MAX, "PRINT range: ", imm);
  Instr i;
  i.op = Opcode::kPrint;
  i.flags = isa::flag::kUseImm;
  i.imm = static_cast<std::int32_t>(imm);
  emit(i);
}

void AsmBuilder::nop() { emit(Instr{}); }

void AsmBuilder::data(Addr addr, std::vector<Word> words) {
  data_.push_back(isa::DataInit{addr, std::move(words)});
}

isa::Program AsmBuilder::build() {
  for (const auto& fx : fixups_) {
    const std::ptrdiff_t addr = label_addr_[fx.label];
    TCFPN_CHECK(addr >= 0, "label '", label_name_[fx.label],
                "' referenced but never bound");
    code_[fx.instr_index].imm = static_cast<std::int32_t>(addr);
  }
  isa::Program p;
  p.code = code_;
  p.data = data_;
  for (std::size_t l = 0; l < label_addr_.size(); ++l) {
    if (label_addr_[l] >= 0) {
      p.labels[label_name_[l]] = static_cast<std::size_t>(label_addr_[l]);
    }
  }
  return p;
}

}  // namespace tcfpn::tcf
