// Typed records carried by the streaming telemetry bus, and their
// serialization into the versioned "tcfpn-stream-v1" NDJSON wire format
// (DESIGN.md §13).
//
// The engine side builds StreamRecords at the step barrier (cheap typed
// state: a metrics snapshot move, a StepSample, an event-count window) and
// pushes them through the SPSC ring; all string formatting happens on the
// sink thread, so the stepping thread never pays serialization.
//
// Wire format: one JSON object per line ("\n"-framed). Line types:
//
//   header        {"schema":"tcfpn-stream-v1","type":"header","seq":0,
//                  "run":{...}}                 first line, run metadata
//   metrics       {"type":"metrics","seq":N,"step":S,"cycles":C,
//                  "delta":{"net/packets":{...},...}}
//                 flat path→instrument map, the *window* since the previous
//                 metrics line actually written (drops merge windows; the
//                 leaf schema matches the --metrics-json document)
//   sample        {"type":"sample","seq":N,"step":S,...} one StepSample
//   events        {"type":"events","seq":N,"step":S,
//                  "counts":{"print":2,...}}    journal/resil event window
//   log           {"type":"log","seq":N,"level":"warn","category":"...",
//                  "message":"..."}             one obs::log line
//   run_end       {"type":"run_end","seq":N,"step":S,"cycles":C,
//                  "completed":true,"metrics":{...cumulative...},
//                  "stats":{...},"obs":{"pushed":..,"written":..,
//                  "dropped_records":..,"dropped_logs":..}}  last line
//
// seq is assigned by the sink at write time, so it is contiguous from 0
// regardless of drops; step is monotone non-decreasing across metrics /
// sample / events lines (the emitter suppresses rollback-replay windows).
// The final run_end carries the *cumulative* machine metrics, taken after
// the run finished — byte-for-byte the values of the --metrics-json
// document, which is what lets validate_metrics.py --stream cross-check the
// two exports.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "machine/machine.hpp"

namespace tcfpn::obs {

inline constexpr char kStreamSchema[] = "tcfpn-stream-v1";

/// One slot per DebugEventKind (dense, kind-indexed).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(machine::DebugEventKind::kShardRetired) + 1;
using EventCounts = std::array<std::uint64_t, kEventKindCount>;

enum class RecordKind : std::uint8_t {
  kMetrics,  ///< cumulative snapshot; sink turns it into a window delta
  kSample,   ///< one StepSample point
  kEvents,   ///< event-count window
  kLog,      ///< one structured log line
};

/// One bus record. Which payload field is meaningful depends on `kind`;
/// the unused ones stay empty (moved-from maps are cheap).
struct StreamRecord {
  RecordKind kind = RecordKind::kSample;
  StepId step = 0;
  Cycle cycles = 0;
  metrics::MetricsSnapshot metrics;  ///< kMetrics: cumulative at `step`
  machine::StepSample sample;        ///< kSample
  EventCounts events{};              ///< kEvents
  LogLine log;                       ///< kLog
};

/// Counters the bus keeps about itself. `dropped_records` is the
/// never-block backpressure outcome: records the ring had no room for.
/// These deliberately live OUTSIDE the machine's metrics registry — drops
/// depend on host timing, and the simulated metrics document must stay
/// bit-identical with streaming on or off — so they are reported on the
/// stream itself (run_end "obs" object) and by Bus::stats().
struct BusStats {
  std::uint64_t pushed = 0;           ///< records offered by the engine side
  std::uint64_t written = 0;          ///< records serialized to the stream
  std::uint64_t dropped_records = 0;  ///< ring full → record dropped
  std::uint64_t dropped_logs = 0;     ///< log queue full → line dropped
  std::uint64_t write_errors = 0;     ///< destination write failures
};

using MetaPairs = std::vector<std::pair<std::string, std::string>>;

/// Serializes a snapshot as a single-line flat JSON object:
/// {"net/packets":{"type":"counter","value":7},...}. Leaf objects use the
/// same schema as the nested --metrics-json tree (emit_value), so a
/// consumer can compare the two exports value-for-value.
std::string flat_metrics_json(const metrics::MetricsSnapshot& snap);

// ---- line serializers (sink side; each returns one line, no trailing \n,
// no raw control characters — everything string passes through json_escape)
std::string header_line(const MetaPairs& run_meta);
std::string metrics_line(std::uint64_t seq, StepId step, Cycle cycles,
                         const metrics::MetricsSnapshot& window);
std::string sample_line(std::uint64_t seq, const machine::StepSample& s);
std::string events_line(std::uint64_t seq, StepId step,
                        const EventCounts& counts);
std::string log_line(std::uint64_t seq, const LogLine& l);
std::string run_end_line(std::uint64_t seq, StepId step, Cycle cycles,
                         bool completed, const std::string& fault,
                         const metrics::MetricsSnapshot& cumulative,
                         const machine::MachineStats& stats,
                         const BusStats& bus);

}  // namespace tcfpn::obs
