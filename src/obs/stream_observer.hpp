// Engine-side emitter of the streaming telemetry bus (DESIGN.md §13).
//
// A StreamObserver is a chaining machine::StepObserver: attach() remembers
// whatever observer was already installed (a debug::FlightRecorder, the
// resilience layer's recorder) and forwards every callback to it unchanged,
// so attaching the stream changes nothing about recording, replay, or the
// simulated run. On top of the forwarding it builds cheap typed records at
// the step cadence and offers them to the Bus — a snapshot move and a few
// integer copies on the stepping thread; all formatting happens on the sink.
//
// Emission windows are keyed by the *step number*, and a window is only
// emitted when its step is strictly greater than the last emitted step.
// Under the resilience layer a rollback rewinds the machine and replays
// steps the stream has already described; the monotone guard suppresses the
// replayed windows, so stream consumers can rely on non-decreasing step
// numbers (the rollback itself still shows up, as an events window counting
// "rollback" / "retry" kinds at the step where it was detected).
#pragma once

#include <cstdint>

#include "machine/machine.hpp"
#include "obs/bus.hpp"

namespace tcfpn::obs {

class StreamObserver : public machine::StepObserver {
 public:
  /// `every` is the step cadence: a metrics/sample/events window is offered
  /// to the bus once per `every` committed steps (and once more at detach
  /// for the tail window). The bus is not owned and must outlive the
  /// observer's attachment.
  StreamObserver(Bus& bus, StepId every);

  /// Installs this observer on `m`, chaining to (and forwarding everything
  /// to) the observer currently attached, if any. Call AFTER the flight
  /// recorder / resilient executor attached theirs.
  void attach(machine::Machine& m);

  /// Emits the tail window and restores the chained-to observer. Call
  /// BEFORE the recorder/executor detaches (reverse attach order).
  void detach();

  // machine::StepObserver
  void on_event(const machine::DebugEvent& ev) override;
  void on_step(machine::Machine& m) override;
  void on_fault(const std::string& message, machine::Machine& m) override;

 private:
  void emit_window(machine::Machine& m, StepId step);

  Bus& bus_;
  StepId every_;
  machine::Machine* m_ = nullptr;
  machine::StepObserver* next_ = nullptr;

  EventCounts window_events_{};
  bool window_has_events_ = false;
  StepId last_emitted_step_ = 0;
};

}  // namespace tcfpn::obs
