// The streaming telemetry bus (DESIGN.md §13): a lock-free SPSC ring between
// the deterministic stepping engine and a dedicated sink thread that
// serializes records into the versioned "tcfpn-stream-v1" NDJSON stream.
//
// Division of labour:
//
//   stepping thread      publish(StreamRecord&&)   SPSC ring, never blocks
//   any thread           obs::log(...)             mutex-guarded bounded
//                                                  queue (installed as the
//                                                  process LogForwarder)
//   sink thread          pop → serialize → write   all string formatting and
//                                                  I/O happens here
//
// Backpressure contract: when the ring (or the log queue) is full the record
// is dropped on the spot and a BusStats counter is bumped. The producer
// never waits, so a run's simulated results — memory image, PRINT output,
// metrics document, journal — are bit-identical with streaming on or off,
// at every --host-threads value. Drops are host-timing noise, which is why
// they are reported on the stream itself (run_end "obs" object) and never
// enter the machine's metrics registry.
//
// Destinations: a file path, "-" for stdout, or "unix:PATH" — connect to a
// listening UNIX stream socket (tcfmon --listen owns the listening side).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/record.hpp"
#include "obs/ring.hpp"

namespace tcfpn::obs {

class Bus {
 public:
  struct Config {
    std::string destination;        ///< path, "-", or "unix:PATH"
    MetaPairs run_meta;             ///< header "run" object (tool, program…)
    std::size_t ring_capacity = 4096;
    std::size_t log_capacity = 1024;
    bool forward_logs = true;       ///< install the process LogForwarder
  };

  /// Opens the destination and starts the sink thread. Returns nullptr and
  /// fills `error` when the destination cannot be opened.
  static std::unique_ptr<Bus> open(const Config& cfg, std::string* error);

  ~Bus();
  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Stepping thread only (SPSC producer). Never blocks: on a full ring the
  /// record is dropped and dropped_records is bumped.
  void publish(StreamRecord&& rec);

  /// Any thread. Enqueues a log line for the stream (bounded; drops bump
  /// dropped_logs). Called by the installed LogForwarder.
  void push_log(LogLine&& line);

  /// Drains everything still queued, writes the run_end line, and joins the
  /// sink thread. Idempotent; the destructor calls it without a run_end if
  /// the caller never did (truncated stream — consumers treat a missing
  /// run_end as "producer died").
  void finish(StepId step, Cycle cycles, bool completed,
              const std::string& fault,
              const metrics::MetricsSnapshot& cumulative,
              const machine::MachineStats& stats);

  /// Test hook: a paused sink stops popping (the ring fills and the
  /// never-block contract forces drops), resume() lets it drain again.
  void pause();
  void resume();

  /// Racy snapshot of the bus's own counters.
  BusStats stats() const;

 private:
  explicit Bus(const Config& cfg);

  void sink_main();
  void write_line(const std::string& line);  // sink thread only
  bool drain_some();                         // sink thread only
  void shutdown_sink();

  Config cfg_;
  int fd_ = -1;
  bool is_socket_ = false;
  bool close_fd_ = false;

  SpscRing<StreamRecord> ring_;

  mutable std::mutex log_mu_;
  std::deque<LogLine> log_queue_;

  std::thread sink_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> finished_{false};

  // Sink-thread state: seq numbering and the previous cumulative snapshot
  // (metrics records carry cumulative state; the sink emits window deltas,
  // so dropped records merge windows instead of losing counts).
  std::uint64_t next_seq_ = 0;
  metrics::MetricsSnapshot last_cumulative_;

  // BusStats, split by writer for cheap updates.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
  std::atomic<std::uint64_t> dropped_logs_{0};
  std::atomic<std::uint64_t> write_errors_{0};
};

}  // namespace tcfpn::obs
