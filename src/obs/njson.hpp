// A minimal JSON value parser for stream consumers (tcfmon).
//
// The repo deliberately has no third-party JSON dependency; the exporters
// emit JSON by hand and the tests check it with metrics::json_valid. tcfmon
// is the first in-tree *consumer*: it must decode tcfpn-stream-v1 NDJSON
// lines produced by this very codebase, so the parser only needs honest
// JSON — objects, arrays, strings with the escapes json_escape emits
// (\" \\ \/ \b \f \n \r \t \uXXXX), numbers, true/false/null. It rejects
// anything malformed rather than guessing; tcfmon skips unparseable lines
// and counts them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tcfpn::obs {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool boolean() const { return bool_; }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const JsonArray& array() const { return *arr_; }
  const JsonObject& object() const { return *obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;
  /// Convenience typed getters with defaults (tcfmon's main access pattern).
  double get_number(const std::string& key, double dflt = 0) const;
  std::string get_string(const std::string& key,
                         const std::string& dflt = "") const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parses one complete JSON document (full-input consumption modulo trailing
/// whitespace). Returns false and fills `error` on malformed input.
bool parse_json(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace tcfpn::obs
