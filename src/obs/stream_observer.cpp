#include "obs/stream_observer.hpp"

#include <utility>

namespace tcfpn::obs {

StreamObserver::StreamObserver(Bus& bus, StepId every)
    : bus_(bus), every_(every > 0 ? every : 1) {}

void StreamObserver::attach(machine::Machine& m) {
  m_ = &m;
  next_ = m.observer();
  m.set_observer(this);
}

void StreamObserver::detach() {
  if (m_ == nullptr) return;
  // Tail window: whatever committed since the last cadence boundary.
  if (m_->stats().steps > last_emitted_step_) emit_window(*m_, m_->stats().steps);
  if (m_->observer() == this) m_->set_observer(next_);
  m_ = nullptr;
  next_ = nullptr;
}

void StreamObserver::on_event(const machine::DebugEvent& ev) {
  if (next_ != nullptr) next_->on_event(ev);
  // Replay suppression: a window covering this event's step was already
  // emitted (rollback rewound the machine), so counting it again would
  // double-report. The window at step S covers events with ev.step < S.
  if (ev.step < last_emitted_step_) return;
  const auto k = static_cast<std::size_t>(ev.kind);
  if (k < window_events_.size()) {
    ++window_events_[k];
    window_has_events_ = true;
  }
}

void StreamObserver::on_step(machine::Machine& m) {
  if (next_ != nullptr) next_->on_step(m);
  const StepId committed = m.stats().steps;
  if (committed % every_ != 0) return;
  if (committed <= last_emitted_step_) return;  // rollback replay
  emit_window(m, committed);
}

void StreamObserver::on_fault(const std::string& message, machine::Machine& m) {
  if (next_ != nullptr) next_->on_fault(message, m);
  // The machine's mid-step state is not consistent here; only flush the
  // event window already collected (stats are read-only and legal).
  if (window_has_events_) {
    StreamRecord rec;
    rec.kind = RecordKind::kEvents;
    rec.step = m.stats().steps;
    rec.cycles = m.stats().cycles;
    rec.events = window_events_;
    bus_.publish(std::move(rec));
    window_events_ = EventCounts{};
    window_has_events_ = false;
  }
}

void StreamObserver::emit_window(machine::Machine& m, StepId step) {
  const machine::MachineStats& st = m.stats();
  {
    StreamRecord rec;
    rec.kind = RecordKind::kMetrics;
    rec.step = step;
    rec.cycles = st.cycles;
    rec.metrics = m.metrics_snapshot();
    bus_.publish(std::move(rec));
  }
  {
    StreamRecord rec;
    rec.kind = RecordKind::kSample;
    rec.step = step;
    rec.cycles = st.cycles;
    rec.sample.step = step;
    rec.sample.cycles = st.cycles;
    rec.sample.operations = st.operations;
    rec.sample.busy_slots = st.busy_slots;
    rec.sample.idle_slots = st.idle_slots;
    rec.sample.live_flows = m.live_flows();
    bus_.publish(std::move(rec));
  }
  if (window_has_events_) {
    StreamRecord rec;
    rec.kind = RecordKind::kEvents;
    rec.step = step;
    rec.cycles = st.cycles;
    rec.events = window_events_;
    bus_.publish(std::move(rec));
    window_events_ = EventCounts{};
    window_has_events_ = false;
  }
  last_emitted_step_ = step;
}

}  // namespace tcfpn::obs
