#include "obs/bus.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace tcfpn::obs {

namespace {

constexpr const char kUnixPrefix[] = "unix:";

bool is_unix_dest(const std::string& dest) {
  return dest.rfind(kUnixPrefix, 0) == 0;
}

int open_destination(const std::string& dest, bool* close_fd, bool* is_socket,
                     std::string* error) {
  *close_fd = false;
  *is_socket = false;
  if (dest == "-") return STDOUT_FILENO;
  if (is_unix_dest(dest)) {
    const std::string path = dest.substr(sizeof(kUnixPrefix) - 1);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "unix socket path too long: " + path;
      return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (error)
        *error = "connect '" + path + "': " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    *close_fd = true;
    *is_socket = true;
    return fd;
  }
  const int fd = ::open(dest.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    if (error) *error = "open '" + dest + "': " + std::strerror(errno);
    return -1;
  }
  *close_fd = true;
  return fd;
}

// Sockets use send(MSG_NOSIGNAL) so a hung-up tcfmon surfaces as EPIPE
// instead of killing the producer with SIGPIPE. Retries short writes/EINTR.
bool write_all(int fd, bool is_socket, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n =
        is_socket ? ::send(fd, data, len, MSG_NOSIGNAL) : ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::unique_ptr<Bus> Bus::open(const Config& cfg, std::string* error) {
  bool close_fd = false, is_socket = false;
  const int fd = open_destination(cfg.destination, &close_fd, &is_socket, error);
  if (fd < 0) return nullptr;
  std::unique_ptr<Bus> bus(new Bus(cfg));
  bus->fd_ = fd;
  bus->is_socket_ = is_socket;
  bus->close_fd_ = close_fd;
  if (cfg.forward_logs) {
    Bus* raw = bus.get();
    set_log_forwarder([raw](LogLine&& line) { raw->push_log(std::move(line)); });
  }
  bus->sink_ = std::thread([raw = bus.get()] { raw->sink_main(); });
  return bus;
}

Bus::Bus(const Config& cfg) : cfg_(cfg), ring_(cfg.ring_capacity) {}

Bus::~Bus() {
  if (cfg_.forward_logs) set_log_forwarder(nullptr);
  if (!finished_.load(std::memory_order_acquire)) shutdown_sink();
  if (close_fd_ && fd_ >= 0) ::close(fd_);
}

void Bus::publish(StreamRecord&& rec) {
  if (finished_.load(std::memory_order_relaxed)) return;
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (!ring_.try_push(std::move(rec)))
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
}

void Bus::push_log(LogLine&& line) {
  if (finished_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(log_mu_);
  if (log_queue_.size() >= cfg_.log_capacity) {
    dropped_logs_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  log_queue_.push_back(std::move(line));
}

void Bus::write_line(const std::string& line) {
  if (fd_ < 0) {  // destination already failed; count and move on
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string framed = line;
  framed.push_back('\n');
  if (!write_all(fd_, is_socket_, framed.data(), framed.size())) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    // Dead destination (consumer hung up, disk full): stop writing but keep
    // draining so the producer side stays oblivious.
    if (close_fd_) ::close(fd_);
    close_fd_ = false;
    fd_ = -1;
    return;
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

bool Bus::drain_some() {
  bool any = false;
  StreamRecord rec;
  for (int i = 0; i < 256 && ring_.try_pop(rec); ++i) {
    any = true;
    switch (rec.kind) {
      case RecordKind::kMetrics: {
        const metrics::MetricsSnapshot delta =
            metrics::MetricsSnapshot::diff(last_cumulative_, rec.metrics);
        write_line(metrics_line(next_seq_++, rec.step, rec.cycles, delta));
        last_cumulative_ = std::move(rec.metrics);
        break;
      }
      case RecordKind::kSample:
        write_line(sample_line(next_seq_++, rec.sample));
        break;
      case RecordKind::kEvents:
        write_line(events_line(next_seq_++, rec.step, rec.events));
        break;
      case RecordKind::kLog:
        write_line(log_line(next_seq_++, rec.log));
        break;
    }
  }
  std::deque<LogLine> logs;
  {
    std::lock_guard<std::mutex> lk(log_mu_);
    logs.swap(log_queue_);
  }
  for (LogLine& l : logs) {
    any = true;
    write_line(log_line(next_seq_++, l));
  }
  return any;
}

void Bus::sink_main() {
  write_line(header_line(cfg_.run_meta));
  next_seq_ = 1;
  while (true) {
    if (paused_.load(std::memory_order_acquire)) {
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const bool any = drain_some();
    if (!any) {
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void Bus::shutdown_sink() {
  stop_.store(true, std::memory_order_release);
  if (sink_.joinable()) sink_.join();
}

void Bus::finish(StepId step, Cycle cycles, bool completed,
                 const std::string& fault,
                 const metrics::MetricsSnapshot& cumulative,
                 const machine::MachineStats& stats) {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  if (cfg_.forward_logs) set_log_forwarder(nullptr);
  // Let the sink drain everything queued before it sees stop_ — unless a
  // test left it paused, in which case resume first.
  paused_.store(false, std::memory_order_release);
  shutdown_sink();
  // Sink joined: this thread is now the only consumer. Flush stragglers,
  // then close the stream with the cumulative record.
  while (drain_some()) {
  }
  write_line(run_end_line(next_seq_++, step, cycles, completed, fault,
                          cumulative, stats, this->stats()));
}

void Bus::pause() { paused_.store(true, std::memory_order_release); }

void Bus::resume() { paused_.store(false, std::memory_order_release); }

BusStats Bus::stats() const {
  BusStats s;
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.written = written_.load(std::memory_order_relaxed);
  s.dropped_records = dropped_records_.load(std::memory_order_relaxed);
  s.dropped_logs = dropped_logs_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tcfpn::obs
