// A bounded lock-free single-producer / single-consumer ring (DESIGN.md §13).
//
// The streaming telemetry bus puts one of these between the deterministic
// stepping engine (producer: the stepping thread, at the step barrier) and
// the export sink thread (consumer). The contract that keeps simulated
// results bit-identical with streaming on or off is *never block the
// producer*: try_push either moves the record in or returns false
// immediately — the bus then drops the record and bumps its
// obs/dropped_records counter. No mutex, no syscall, no allocation on the
// push path beyond what moving T itself does.
//
// Memory ordering is the classic two-index scheme: each side owns one index
// (producer: head_, consumer: tail_) and publishes it with a release store;
// the opposite side reads it with an acquire load, which carries the slot
// contents across. Each side also keeps a cached copy of the other's index
// so the uncontended fast path touches only one shared cache line.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcfpn::obs {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masked indexing).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer only. Returns false (leaving `v` untouched) when full.
  bool try_push(T&& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= slots_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= slots_.size()) return false;
    }
    slots_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Returns false when empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (monitoring only).
  std::size_t size_estimate() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< producer-owned
  alignas(64) std::uint64_t cached_tail_ = 0;       ///< producer-local
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< consumer-owned
  alignas(64) std::uint64_t cached_head_ = 0;       ///< consumer-local
};

}  // namespace tcfpn::obs
