#include "obs/njson.hpp"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace tcfpn::obs {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

double JsonValue::get_number(const std::string& key, double dflt) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_number()) ? v->number() : dflt;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& dflt) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_string()) ? v->str() : dflt;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& msg) {
    if (err.empty()) err = msg + " at offset " + std::to_string(i);
    return false;
  }

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }

  bool consume(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string r;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') {
        *out = std::move(r);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        r.push_back(c);
        continue;
      }
      if (i >= s.size()) return fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': r.push_back('"'); break;
        case '\\': r.push_back('\\'); break;
        case '/': r.push_back('/'); break;
        case 'b': r.push_back('\b'); break;
        case 'f': r.push_back('\f'); break;
        case 'n': r.push_back('\n'); break;
        case 'r': r.push_back('\r'); break;
        case 't': r.push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode; our own emitter only produces \u00XX for control
          // bytes, but decode the full BMP for robustness. Surrogate pairs
          // are passed through as two 3-byte sequences (never emitted).
          if (cp < 0x80) {
            r.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            r.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            r.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            r.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            r.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            r.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '{') {
      ++i;
      JsonObject obj;
      skip_ws();
      if (consume('}')) {
        *out = JsonValue::make_object(std::move(obj));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        obj.insert_or_assign(std::move(key), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) break;
        return fail("expected ',' or '}'");
      }
      *out = JsonValue::make_object(std::move(obj));
      return true;
    }
    if (c == '[') {
      ++i;
      JsonArray arr;
      skip_ws();
      if (consume(']')) {
        *out = JsonValue::make_array(std::move(arr));
        return true;
      }
      while (true) {
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) break;
        return fail("expected ',' or ']'");
      }
      *out = JsonValue::make_array(std::move(arr));
      return true;
    }
    if (c == '"') {
      std::string str;
      if (!parse_string(&str)) return false;
      *out = JsonValue::make_string(std::move(str));
      return true;
    }
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      *out = JsonValue::make_bool(true);
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      *out = JsonValue::make_bool(false);
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      *out = JsonValue::make_null();
      return true;
    }
    // Number: scan the strict JSON grammar by hand (strtod alone would also
    // accept hex, "inf", "nan", leading '+'), then convert the exact slice.
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = i;
      const auto digit = [&] { return i < s.size() && s[i] >= '0' && s[i] <= '9'; };
      if (s[i] == '-') ++i;
      if (!digit()) return fail("bad number");
      while (digit()) ++i;
      if (i < s.size() && s[i] == '.') {
        ++i;
        if (!digit()) return fail("bad number");
        while (digit()) ++i;
      }
      if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
        if (!digit()) return fail("bad number");
        while (digit()) ++i;
      }
      const std::string slice(s.substr(start, i - start));
      *out = JsonValue::make_number(std::strtod(slice.c_str(), nullptr));
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error) *error = p.err;
    return false;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.i);
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace tcfpn::obs
