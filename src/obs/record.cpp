#include "obs/record.hpp"

#include <sstream>

namespace tcfpn::obs {

using metrics::json_escape;

std::string flat_metrics_json(const metrics::MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [path, v] : snap.entries) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(path) << "\": " << metrics::to_json_leaf(v);
  }
  os << "}";
  return os.str();
}

namespace {

void open_line(std::ostringstream& os, const char* type, std::uint64_t seq) {
  os << "{\"type\": \"" << type << "\", \"seq\": " << seq;
}

}  // namespace

std::string header_line(const MetaPairs& run_meta) {
  std::ostringstream os;
  os << "{\"schema\": \"" << kStreamSchema << "\", \"type\": \"header\", "
     << "\"seq\": 0, \"run\": {";
  bool first = true;
  for (const auto& [k, v] : run_meta) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
  }
  os << "}}";
  return os.str();
}

std::string metrics_line(std::uint64_t seq, StepId step, Cycle cycles,
                         const metrics::MetricsSnapshot& window) {
  std::ostringstream os;
  open_line(os, "metrics", seq);
  os << ", \"step\": " << step << ", \"cycles\": " << cycles
     << ", \"delta\": " << flat_metrics_json(window) << "}";
  return os.str();
}

std::string sample_line(std::uint64_t seq, const machine::StepSample& s) {
  std::ostringstream os;
  open_line(os, "sample", seq);
  os << ", \"step\": " << s.step << ", \"cycles\": " << s.cycles
     << ", \"operations\": " << s.operations
     << ", \"busy_slots\": " << s.busy_slots
     << ", \"idle_slots\": " << s.idle_slots
     << ", \"live_flows\": " << s.live_flows << "}";
  return os.str();
}

std::string events_line(std::uint64_t seq, StepId step,
                        const EventCounts& counts) {
  std::ostringstream os;
  open_line(os, "events", seq);
  os << ", \"step\": " << step << ", \"counts\": {";
  bool first = true;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\""
       << machine::to_string(static_cast<machine::DebugEventKind>(k))
       << "\": " << counts[k];
  }
  os << "}}";
  return os.str();
}

std::string log_line(std::uint64_t seq, const LogLine& l) {
  std::ostringstream os;
  open_line(os, "log", seq);
  os << ", \"level\": \"" << to_string(l.level) << "\", \"category\": \""
     << json_escape(l.category) << "\", \"message\": \""
     << json_escape(l.message) << "\"}";
  return os.str();
}

std::string run_end_line(std::uint64_t seq, StepId step, Cycle cycles,
                         bool completed, const std::string& fault,
                         const metrics::MetricsSnapshot& cumulative,
                         const machine::MachineStats& stats,
                         const BusStats& bus) {
  std::ostringstream os;
  open_line(os, "run_end", seq);
  os << ", \"step\": " << step << ", \"cycles\": " << cycles
     << ", \"completed\": " << (completed ? "true" : "false");
  if (!fault.empty()) os << ", \"fault\": \"" << json_escape(fault) << "\"";
  os << ", \"stats\": {\"tcf_instructions\": " << stats.tcf_instructions
     << ", \"operations\": " << stats.operations
     << ", \"instruction_fetches\": " << stats.instruction_fetches
     << ", \"spawns\": " << stats.spawns << ", \"joins\": " << stats.joins
     << ", \"busy_slots\": " << stats.busy_slots
     << ", \"idle_slots\": " << stats.idle_slots
     << ", \"memory_wait_cycles\": " << stats.memory_wait_cycles
     << ", \"task_switch_cycles\": " << stats.task_switch_cycles << "}"
     << ", \"metrics\": " << flat_metrics_json(cumulative)
     << ", \"obs\": {\"pushed\": " << bus.pushed
     << ", \"written\": " << bus.written
     << ", \"dropped_records\": " << bus.dropped_records
     << ", \"dropped_logs\": " << bus.dropped_logs
     << ", \"write_errors\": " << bus.write_errors << "}}";
  return os.str();
}

}  // namespace tcfpn::obs
