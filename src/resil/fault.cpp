#include "resil/fault.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tcfpn::resil {

namespace {

/// splitmix64 finalizer: the occurrence-seed mixer. Every fault draw seeds
/// a fresh Rng from mix(seed, step, group, kind), so the schedule depends
/// on nothing but those four values — the determinism contract.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t occurrence_seed(std::uint64_t seed, StepId step, GroupId group,
                              FaultKind kind) {
  return mix64(seed ^ mix64(step) ^
               mix64((static_cast<std::uint64_t>(group) << 8) |
                     static_cast<std::uint64_t>(kind)));
}

constexpr FaultKind kAllKinds[] = {
    FaultKind::kNetDrop,  FaultKind::kNetDelay, FaultKind::kGroupStall,
    FaultKind::kMemFail,  FaultKind::kBitFlip,  FaultKind::kGroupKill,
};

constexpr FaultKind kShardKinds[] = {
    FaultKind::kShardKill,
    FaultKind::kShardHang,
    FaultKind::kShardBabble,
};

bool is_shard_kind(FaultKind k) {
  return k == FaultKind::kShardKill || k == FaultKind::kShardHang ||
         k == FaultKind::kShardBabble;
}

double rate_for(const FaultSpec& s, FaultKind k) {
  switch (k) {
    case FaultKind::kNetDrop: return s.drop_rate;
    case FaultKind::kNetDelay: return s.delay_rate;
    case FaultKind::kGroupStall: return s.stall_rate;
    case FaultKind::kMemFail: return s.memfail_rate;
    case FaultKind::kBitFlip: return s.flip_rate;
    case FaultKind::kGroupKill: return s.kill_rate;
    case FaultKind::kShardKill: return s.shard_kill_rate;
    case FaultKind::kShardHang: return s.shard_hang_rate;
    case FaultKind::kShardBabble: return s.shard_babble_rate;
  }
  return 0;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  *out = static_cast<std::uint64_t>(x);
  return true;
}

bool parse_rate(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double x = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  if (!(x >= 0.0 && x <= 1.0)) return false;
  *out = x;
  return true;
}

FaultKind parse_kind(const std::string& name) {
  if (name == "drop") return FaultKind::kNetDrop;
  if (name == "delay") return FaultKind::kNetDelay;
  if (name == "stall") return FaultKind::kGroupStall;
  if (name == "memfail") return FaultKind::kMemFail;
  if (name == "flip") return FaultKind::kBitFlip;
  if (name == "kill") return FaultKind::kGroupKill;
  if (name == "shard_kill") return FaultKind::kShardKill;
  if (name == "shard_hang") return FaultKind::kShardHang;
  if (name == "shard_babble") return FaultKind::kShardBabble;
  TCFPN_FAULT("fault spec: unknown fault kind '", name, "'");
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNetDrop: return "net-drop";
    case FaultKind::kNetDelay: return "net-delay";
    case FaultKind::kGroupStall: return "group-stall";
    case FaultKind::kMemFail: return "mem-fail";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kGroupKill: return "group-kill";
    case FaultKind::kShardKill: return "shard-kill";
    case FaultKind::kShardHang: return "shard-hang";
    case FaultKind::kShardBabble: return "shard-babble";
  }
  return "?";
}

bool is_shard_fault(FaultKind k) { return is_shard_kind(k); }

bool has_machine_faults(const FaultSpec& spec) {
  for (FaultKind k : kAllKinds) {
    if (rate_for(spec, k) > 0) return true;
  }
  for (const ScriptedFault& sf : spec.scripted) {
    if (!is_shard_kind(sf.kind)) return true;
  }
  return false;
}

bool has_shard_faults(const FaultSpec& spec) {
  for (FaultKind k : kShardKinds) {
    if (rate_for(spec, k) > 0) return true;
  }
  for (const ScriptedFault& sf : spec.scripted) {
    if (is_shard_kind(sf.kind)) return true;
  }
  return false;
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    TCFPN_CHECK(eq != std::string::npos, "fault spec: expected key=value, got '",
                tok, "'");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);

    auto want_u64 = [&](std::uint64_t* dst) {
      TCFPN_CHECK(parse_u64(val, dst), "fault spec: bad integer for '", key,
                  "': '", val, "'");
    };
    auto want_rate = [&](double* dst) {
      TCFPN_CHECK(parse_rate(val, dst), "fault spec: '", key,
                  "' needs a probability in [0,1], got '", val, "'");
    };

    if (key == "seed") {
      want_u64(&out.seed);
    } else if (key == "drop") {
      want_rate(&out.drop_rate);
    } else if (key == "delay") {
      want_rate(&out.delay_rate);
    } else if (key == "stall") {
      want_rate(&out.stall_rate);
    } else if (key == "memfail") {
      want_rate(&out.memfail_rate);
    } else if (key == "flip") {
      want_rate(&out.flip_rate);
    } else if (key == "kill") {
      want_rate(&out.kill_rate);
    } else if (key == "shard_kill") {
      want_rate(&out.shard_kill_rate);
    } else if (key == "shard_hang") {
      want_rate(&out.shard_hang_rate);
    } else if (key == "shard_babble") {
      want_rate(&out.shard_babble_rate);
    } else if (key == "retries") {
      std::uint64_t v = 0;
      want_u64(&v);
      TCFPN_CHECK(v <= 16, "fault spec: retries must be <= 16, got ", v);
      out.retries = static_cast<std::uint32_t>(v);
    } else if (key == "backoff") {
      want_u64(&out.backoff_base);
    } else if (key == "delayc") {
      want_u64(&out.delay_cycles);
    } else if (key == "stallc") {
      want_u64(&out.stall_cycles);
    } else if (key == "watchdog") {
      want_u64(&out.watchdog_cycles);
    } else if (key == "scrubc") {
      want_u64(&out.scrub_cycles);
    } else if (key == "at") {
      // at=STEP:KIND[:ARG]
      const std::size_t c1 = val.find(':');
      TCFPN_CHECK(c1 != std::string::npos,
                  "fault spec: at= needs STEP:KIND[:ARG], got '", val, "'");
      const std::size_t c2 = val.find(':', c1 + 1);
      ScriptedFault sf;
      TCFPN_CHECK(parse_u64(val.substr(0, c1), &sf.step),
                  "fault spec: bad step in at='", val, "'");
      sf.kind = parse_kind(val.substr(
          c1 + 1, (c2 == std::string::npos ? val.size() : c2) - c1 - 1));
      if (c2 != std::string::npos) {
        TCFPN_CHECK(parse_u64(val.substr(c2 + 1), &sf.arg),
                    "fault spec: bad argument in at='", val, "'");
      }
      out.scripted.push_back(sf);
    } else {
      TCFPN_FAULT("fault spec: unknown key '", key, "'");
    }
  }
  return out;
}

FaultSpec default_spec_for_seed(std::uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  // Every kind exercised; rates tuned so a few-hundred-step run sees a
  // handful of faults and a few rollbacks, not a fault storm.
  s.drop_rate = 0.010;
  s.delay_rate = 0.010;
  s.stall_rate = 0.006;
  s.memfail_rate = 0.001;
  s.flip_rate = 0.004;
  s.kill_rate = 0.002;
  return s;
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint32_t groups,
                             std::size_t shared_words, std::uint32_t shards)
    : spec_(std::move(spec)),
      groups_(groups),
      shared_words_(shared_words),
      shards_(shards) {
  TCFPN_CHECK(groups_ >= 1, "fault injector needs at least one group");
  TCFPN_CHECK(shared_words_ >= 1, "fault injector needs shared memory");
}

std::vector<FaultEvent> FaultInjector::pending(StepId step) const {
  std::vector<FaultEvent> out;

  auto finish = [&](FaultEvent& ev, Rng& r) {
    switch (ev.kind) {
      case FaultKind::kNetDelay:
        ev.magnitude = spec_.delay_cycles * (1 + r.below(4));
        break;
      case FaultKind::kGroupStall:
        ev.magnitude = spec_.stall_cycles * (1 + r.below(8));
        break;
      case FaultKind::kBitFlip:
        ev.bit = static_cast<std::uint32_t>(r.below(64));
        break;
      default:
        break;
    }
  };

  // Scripted occurrences first, in spec order.
  for (std::size_t i = 0; i < spec_.scripted.size(); ++i) {
    const ScriptedFault& sf = spec_.scripted[i];
    if (sf.step != step) continue;
    FaultEvent ev;
    ev.kind = sf.kind;
    ev.step = step;
    ev.key = (1ull << 63) | i;
    if (fired_.count(ev.key)) continue;
    if (sf.kind == FaultKind::kBitFlip) {
      ev.addr = static_cast<Addr>(sf.arg % shared_words_);
    } else if (is_shard_kind(sf.kind)) {
      if (shards_ == 0) continue;  // non-sharded run: process faults vanish
      ev.group = static_cast<GroupId>(sf.arg % shards_);
    } else {
      ev.group = static_cast<GroupId>(sf.arg % groups_);
    }
    // Magnitudes still come from the occurrence stream so scripted and
    // random faults share one derivation path.
    Rng r(occurrence_seed(spec_.seed, step, ev.group, sf.kind));
    finish(ev, r);
    out.push_back(ev);
  }

  // Random occurrences: one Bernoulli draw per (group, kind), both in
  // ascending order.
  for (GroupId g = 0; g < groups_; ++g) {
    for (FaultKind kind : kAllKinds) {
      const double rate = rate_for(spec_, kind);
      if (rate <= 0) continue;
      Rng r(occurrence_seed(spec_.seed, step, g, kind));
      if (!r.chance(rate)) continue;
      FaultEvent ev;
      ev.kind = kind;
      ev.step = step;
      ev.group = g;
      ev.key = (step << 20) | (static_cast<std::uint64_t>(g) << 8) |
               static_cast<std::uint64_t>(kind);
      if (fired_.count(ev.key)) continue;
      if (kind == FaultKind::kBitFlip) {
        ev.addr = static_cast<Addr>(r.below(shared_words_));
      }
      finish(ev, r);
      out.push_back(ev);
    }
  }

  // Shard-process occurrences last: one Bernoulli per (shard, kind), both
  // ascending — the supervisor applies them in exactly this order.
  for (std::uint32_t s = 0; s < shards_; ++s) {
    for (FaultKind kind : kShardKinds) {
      const double rate = rate_for(spec_, kind);
      if (rate <= 0) continue;
      Rng r(occurrence_seed(spec_.seed, step, s, kind));
      if (!r.chance(rate)) continue;
      FaultEvent ev;
      ev.kind = kind;
      ev.step = step;
      ev.group = s;
      ev.key = (step << 20) | (static_cast<std::uint64_t>(s) << 8) |
               static_cast<std::uint64_t>(kind);
      if (fired_.count(ev.key)) continue;
      out.push_back(ev);
    }
  }
  return out;
}

}  // namespace tcfpn::resil
