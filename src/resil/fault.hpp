// Deterministic fault injection (DESIGN.md §9).
//
// The paper's machine (Section 3.1) assumes P processor groups, P local
// memory blocks and a network that never fail. The resilience layer breaks
// that assumption on purpose: FaultInjector derives a schedule of hardware
// faults — killed/stalled groups, dropped/delayed network replies, failed
// local-memory blocks, flipped shared-memory bits — as a *pure function of
// (seed, step, group)*. No host state, no wall clock, no allocation order
// enters the derivation, so the schedule is bit-identical for every
// --host-threads value and, crucially, re-arises unchanged when a rollback
// replays the same steps (already-handled occurrences are filtered through
// a fired set so recovery cannot livelock on its own fault).
//
// Faults are injected at step boundaries only. The simulator commits all
// effects at the barrier, so a boundary fault is the model-level analogue
// of "the component died between two machine steps" — and it keeps the
// recovery path (src/resil/recovery) on checkpointable state.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace tcfpn::resil {

/// What kind of hardware fault an occurrence models. The enum order is the
/// in-step application order: transient network trouble first, then
/// component failures, group kill last (so a dying group's dropped replies
/// are still accounted before its flows migrate).
enum class FaultKind : std::uint8_t {
  kNetDrop,     ///< a network reply is lost; recovery retries with backoff
  kNetDelay,    ///< a reply is late; the step's memory term stretches
  kGroupStall,  ///< a group stalls; past the watchdog it counts as dead
  kMemFail,     ///< a local-memory block dies with its contents
  kBitFlip,     ///< a shared-memory module flips one bit
  kGroupKill,   ///< a processor group dies permanently
  // Shard-process faults (src/shard, DESIGN.md §14). Injected by the shard
  // supervisor, never by ResilientExecutor; `FaultEvent::group` carries the
  // target *shard* id. Appended so existing kind encodings are stable.
  kShardKill,    ///< a worker process dies (SIGKILL / severed link)
  kShardHang,    ///< a worker freezes (SIGSTOP / muted link), misses its
                 ///< heartbeat deadline
  kShardBabble,  ///< a worker's next frame arrives corrupted (CRC fails)
};

const char* to_string(FaultKind k);

/// True for the shard-process kinds (kShardKill/kShardHang/kShardBabble).
bool is_shard_fault(FaultKind k);

/// A fault pinned to an explicit step (the `at=STEP:KIND:ARG` spec form).
/// `arg` is the target group, except for kBitFlip where it is the shared
/// address.
struct ScriptedFault {
  StepId step = 0;
  FaultKind kind = FaultKind::kGroupKill;
  std::uint64_t arg = 0;
};

/// Parsed fault-injection specification (`--inject-faults`). Rates are
/// per-(step, group) Bernoulli probabilities; parameters tune the recovery
/// cost model of DESIGN.md §9.
struct FaultSpec {
  std::uint64_t seed = 1;

  double drop_rate = 0;     ///< kNetDrop probability per step per group
  double delay_rate = 0;    ///< kNetDelay
  double stall_rate = 0;    ///< kGroupStall
  double memfail_rate = 0;  ///< kMemFail
  double flip_rate = 0;     ///< kBitFlip
  double kill_rate = 0;     ///< kGroupKill
  double shard_kill_rate = 0;    ///< kShardKill, per step per shard
  double shard_hang_rate = 0;    ///< kShardHang
  double shard_babble_rate = 0;  ///< kShardBabble

  std::uint32_t retries = 3;    ///< retransmissions per dropped reply
  Cycle backoff_base = 8;       ///< first retry backoff; doubles per retry
  Cycle delay_cycles = 16;      ///< base late-reply delay (drawn 1x..4x)
  Cycle stall_cycles = 64;      ///< base group stall (drawn 1x..8x)
  Cycle watchdog_cycles = 256;  ///< stalls beyond this count as a dead group
  Cycle scrub_cycles = 8;       ///< ECC correction cost (degraded mode)

  std::vector<ScriptedFault> scripted;
};

/// True when the spec can produce machine-hardware occurrences (nonzero
/// non-shard rate or a scripted non-shard fault). The CLI rejects those
/// under --shards > 1: supervised workers have no ResilientExecutor.
bool has_machine_faults(const FaultSpec& spec);
/// True when the spec can produce shard-process occurrences.
bool has_shard_faults(const FaultSpec& spec);

/// Parses the comma-separated `--inject-faults` grammar:
///
///   seed=U64
///   drop=P delay=P stall=P memfail=P flip=P kill=P      (rates in [0,1])
///   retries=N backoff=C delayc=C stallc=C watchdog=C scrubc=C
///   shard_kill=P shard_hang=P shard_babble=P   (per step per *shard*)
///   at=STEP:KIND[:ARG]   (repeatable; KIND in drop|delay|stall|memfail|
///                         flip|kill|shard_kill|shard_hang|shard_babble;
///                         ARG = group, address for flip, shard for shard_*)
///
/// Faults (SimError) on any syntax or range error.
FaultSpec parse_fault_spec(const std::string& spec);

/// A modest all-kinds schedule for fuzzing: every fault class exercised, no
/// single run drowned in faults. Identical spec for identical seeds.
FaultSpec default_spec_for_seed(std::uint64_t seed);

/// One concrete fault occurrence at a step boundary.
struct FaultEvent {
  FaultKind kind = FaultKind::kGroupKill;
  StepId step = 0;
  GroupId group = 0;        ///< shard kinds: the target *shard* id
  Addr addr = 0;            ///< kBitFlip: shared-memory address
  std::uint32_t bit = 0;    ///< kBitFlip: bit index
  Cycle magnitude = 0;      ///< kNetDelay/kGroupStall: cycles
  std::uint64_t key = 0;    ///< occurrence identity for the fired set
};

class FaultInjector {
 public:
  /// `shards` enables the shard-fault stream: shard kinds draw one
  /// Bernoulli per (step, shard) for shard ids [0, shards). With shards ==
  /// 0 (the default, and every non-sharded run) the shard kinds generate
  /// nothing — the same spec drives a sequential oracle and a sharded lane,
  /// and only the latter sees process faults.
  FaultInjector(FaultSpec spec, std::uint32_t groups, std::size_t shared_words,
                std::uint32_t shards = 0);

  /// The not-yet-handled fault occurrences at the boundary before `step`,
  /// in deterministic order: scripted first (spec order), then random ones
  /// by (group, kind). Pure in (seed, step, group) apart from the fired
  /// filter, so replays after a rollback regenerate the suppressed tail of
  /// the schedule exactly.
  std::vector<FaultEvent> pending(StepId step) const;

  /// Marks an occurrence handled. The executor calls this *before* acting
  /// on the event — in particular before a rollback — so replayed steps
  /// cannot re-trigger the fault that caused the rollback.
  void mark_fired(const FaultEvent& ev) { fired_.insert(ev.key); }

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  std::uint32_t groups_;
  std::size_t shared_words_;
  std::uint32_t shards_;
  std::unordered_set<std::uint64_t> fired_;
};

}  // namespace tcfpn::resil
