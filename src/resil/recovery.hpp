// Fault-tolerant execution (DESIGN.md §9).
//
// ResilientExecutor wraps a Machine's step loop with per-subsystem fault
// handling driven by a FaultInjector:
//
//  - dropped network replies: bounded retry with exponential backoff, the
//    total backoff charged into the step's memory term;
//  - delayed replies: the delay stretches the memory term;
//  - stalled groups: the stall is charged; a stall past the watchdog is
//    escalated and treated like a dead group;
//  - dead groups / dead local-memory blocks / flipped shared-memory bits:
//    mode-dependent —
//      rollback: restore the FlightRecorder's nearest checkpoint and replay
//        (the injector's fired set keeps the handled fault from re-firing),
//        so the run ends bit-identical to a fault-free one;
//      degrade: retire the group (Machine::retire_group remaps its resident
//        TCFs onto survivors — Section 3.1 thickness redistribution — and
//        the cost model continues with P-1 groups) and ECC-correct bit
//        flips;
//      off: any fatal fault ends the run unrecovered.
//
// All handling happens at step boundaries, on barrier-side state, so the
// fault schedule *and* the recovery path are bit-identical for every
// --host-threads value.
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.hpp"
#include "debug/recorder.hpp"
#include "machine/machine.hpp"
#include "resil/fault.hpp"

namespace tcfpn::resil {

enum class RecoverMode : std::uint8_t {
  kOff,       ///< no recovery: injected fatal faults end the run
  kRollback,  ///< checkpoint rollback + deterministic replay
  kDegrade,   ///< retire dead components, continue at P-1 groups
};

const char* to_string(RecoverMode m);

struct ResilConfig {
  FaultSpec spec;
  RecoverMode mode = RecoverMode::kRollback;
  std::uint64_t max_steps = 10'000'000;
  /// Recorder shape. Checkpoints are dense by default: rollback distance
  /// (and therefore steps lost per recovery) stays small.
  std::size_t journal_capacity = 4096;
  std::uint64_t checkpoint_every = 16;
  std::size_t max_checkpoints = 64;
};

/// Recovery counters, mirrored into the machine's metrics registry under
/// "resil/" when the run finishes.
struct ResilStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t steps_lost = 0;
  std::uint64_t groups_retired = 0;
  std::uint64_t ecc_corrections = 0;
  std::uint64_t watchdog_escalations = 0;
  std::uint64_t mem_blocks_failed = 0;
  Word remapped_thickness = 0;
};

struct ResilResult {
  machine::RunResult run;
  bool faulted = false;        ///< program fault or unrecovered injected fault
  std::string fault_message;
  ResilStats resil;
};

class ResilientExecutor {
 public:
  /// Attaches a FlightRecorder to `m` as its observer (replacing any other)
  /// for the executor's lifetime. Call after boot, before any stepping;
  /// run() may be called once.
  ResilientExecutor(machine::Machine& m, ResilConfig cfg);
  ~ResilientExecutor();

  /// Runs to completion, fault, or the step limit, applying the injector's
  /// schedule at every step boundary. On return the executor's "resil/"
  /// instruments have been merged into m.metrics().
  ResilResult run();

  /// The recorder doubles as the post-mortem source for faulted runs.
  debug::FlightRecorder& recorder() { return rec_; }
  const debug::FlightRecorder& recorder() const { return rec_; }
  const FaultInjector& injector() const { return injector_; }
  const ResilStats& stats() const { return stats_; }

 private:
  /// Applies one fault occurrence. Sets *rolled_back when the machine state
  /// moved backwards (the step loop must re-derive the boundary) and *fatal
  /// (+ message) when the fault is unrecoverable under the current mode.
  void apply_event(const FaultEvent& ev, bool* rolled_back, bool* fatal,
                   std::string* fatal_msg);
  void do_rollback(const FaultEvent& ev);
  /// Retires ev.group; fatal when it is the last survivor.
  void retire(const FaultEvent& ev, bool* fatal, std::string* fatal_msg);
  /// Charges transient extra cycles: through the network's fault delay for
  /// step-synchronous variants (it lands in the next memory term), directly
  /// onto the clock for the multi-instruction variant.
  void charge_transient(Cycle c);
  void journal(machine::DebugEventKind kind, GroupId group, Word a, Word b);

  machine::Machine& m_;
  ResilConfig cfg_;
  FaultInjector injector_;
  debug::FlightRecorder rec_;
  /// Recovery bookkeeping lives in an executor-owned registry and is merged
  /// into m_.metrics() only when the run ends: a rollback's restore_raw
  /// erases instruments absent from the checkpoint image, which would
  /// otherwise wipe (and dangle) the recovery counters mid-run.
  metrics::MetricsRegistry resil_;
  ResilStats stats_;
  bool ran_ = false;
};

}  // namespace tcfpn::resil
