#include "resil/recovery.hpp"

#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "machine/state.hpp"
#include "mem/shared_memory.hpp"
#include "net/network.hpp"

namespace tcfpn::resil {

const char* to_string(RecoverMode m) {
  switch (m) {
    case RecoverMode::kOff: return "off";
    case RecoverMode::kRollback: return "rollback";
    case RecoverMode::kDegrade: return "degrade";
  }
  return "?";
}

ResilientExecutor::ResilientExecutor(machine::Machine& m, ResilConfig cfg)
    : m_(m),
      cfg_(std::move(cfg)),
      injector_(cfg_.spec, m.config().groups, m.config().shared_words),
      rec_(debug::RecorderConfig{cfg_.journal_capacity, cfg_.checkpoint_every,
                                 cfg_.max_checkpoints}) {
  rec_.attach(m_);
  // Create every resil/ instrument up front so a zero-fault run still
  // exports the full subtree (validate_metrics.py relies on presence).
  resil_.counter("resil/faults_injected");
  resil_.counter("resil/retries");
  resil_.counter("resil/retry_backoff_cycles");
  resil_.counter("resil/rollbacks");
  resil_.counter("resil/steps_lost");
  resil_.counter("resil/groups_retired");
  resil_.counter("resil/remapped_thickness");
  resil_.counter("resil/ecc_corrections");
  resil_.counter("resil/watchdog_escalations");
  resil_.counter("resil/stall_cycles");
  resil_.counter("resil/delay_cycles");
  resil_.counter("resil/mem_blocks_failed");
  resil_.histogram("resil/recovery_latency", 0, 4096, 32);
}

ResilientExecutor::~ResilientExecutor() {
  if (m_.observer() == &rec_) m_.set_observer(nullptr);
}

void ResilientExecutor::journal(machine::DebugEventKind kind, GroupId group,
                                Word a, Word b) {
  machine::DebugEvent ev;
  ev.kind = kind;
  ev.step = m_.stats().steps;
  ev.flow = machine::kNoFlow;
  ev.group = group;
  ev.a = a;
  ev.b = b;
  rec_.on_event(ev);
}

void ResilientExecutor::charge_transient(Cycle c) {
  if (c == 0) return;
  if (machine::is_step_synchronous(m_.config().variant)) {
    // Lands in the next step's memory term, like the late reply it models.
    m_.network().add_fault_delay(c);
  } else {
    // XMT runs flows to completion with immediate memory semantics; there
    // is no memory term to stretch, so charge the clock directly.
    m_.charge(c);
  }
}

void ResilientExecutor::do_rollback(const FaultEvent& ev) {
  const StepId cur = m_.stats().steps;
  const debug::FlightRecorder::Checkpoint* c = rec_.nearest(cur);
  TCFPN_CHECK(c != nullptr, "rollback with no checkpoint available at step ",
              cur);
  const StepId ck_step = c->step;
  const std::uint64_t lost = cur - ck_step;
  // rewind_to invalidates `c` (it truncates the checkpoint vector), so the
  // state must be copied out first.
  machine::MachineState state = c->state;
  rec_.rewind_to(c);
  m_.restore_state(state);
  // Re-journal the fault after the rewind (the pre-rollback record was just
  // truncated away with the rest of the undone tape), then the recovery.
  journal(machine::DebugEventKind::kFaultInjected, ev.group,
          static_cast<Word>(ev.kind),
          ev.kind == FaultKind::kBitFlip ? static_cast<Word>(ev.addr)
                                         : static_cast<Word>(ev.magnitude));
  journal(machine::DebugEventKind::kRollback, ev.group,
          static_cast<Word>(lost), static_cast<Word>(ck_step));
  obs::info("resil/recovery",
            "rolled back " + std::to_string(lost) + " steps to checkpoint at "
            "step " + std::to_string(ck_step) + " after injected " +
            to_string(ev.kind));
  stats_.rollbacks += 1;
  stats_.steps_lost += lost;
  resil_.counter("resil/rollbacks").add(1);
  resil_.counter("resil/steps_lost").add(lost);
  resil_.histogram("resil/recovery_latency", 0, 4096, 32)
      .add(static_cast<double>(lost));
}

void ResilientExecutor::retire(const FaultEvent& ev, bool* fatal,
                               std::string* fatal_msg) {
  if (!m_.group_alive(ev.group)) return;  // already retired earlier
  if (m_.alive_groups() <= 1) {
    *fatal = true;
    std::ostringstream os;
    os << "injected " << to_string(ev.kind) << " at step " << ev.step
       << " left no surviving group";
    *fatal_msg = os.str();
    return;
  }
  const Word moved = m_.retire_group(ev.group);  // emits kGroupRetired
  obs::warn("resil/recovery",
            "group " + std::to_string(ev.group) + " retired after injected " +
            to_string(ev.kind) + "; remapped thickness " +
            std::to_string(moved) + " onto survivors");
  stats_.groups_retired += 1;
  stats_.remapped_thickness += moved;
  resil_.counter("resil/groups_retired").add(1);
  resil_.counter("resil/remapped_thickness")
      .add(static_cast<std::uint64_t>(moved));
}

void ResilientExecutor::apply_event(const FaultEvent& ev, bool* rolled_back,
                                    bool* fatal, std::string* fatal_msg) {
  stats_.faults_injected += 1;
  resil_.counter("resil/faults_injected").add(1);
  journal(machine::DebugEventKind::kFaultInjected, ev.group,
          static_cast<Word>(ev.kind),
          ev.kind == FaultKind::kBitFlip ? static_cast<Word>(ev.addr)
                                         : static_cast<Word>(ev.magnitude));

  auto fail = [&](const char* what) {
    *fatal = true;
    std::ostringstream os;
    os << "injected " << to_string(ev.kind) << " at step " << ev.step
       << " (group " << ev.group << "): " << what;
    *fatal_msg = os.str();
  };

  switch (ev.kind) {
    case FaultKind::kNetDrop: {
      if (cfg_.mode == RecoverMode::kOff) {
        fail("reply lost and recovery is off");
        return;
      }
      // Bounded retransmission with exponential backoff: attempt i waits
      // backoff_base * 2^(i-1) cycles, so the total stretch is
      // backoff_base * (2^retries - 1). The last retry is modelled as
      // succeeding — a drop is transient by definition here; permanent
      // component loss is kGroupKill/kMemFail.
      Cycle backoff = cfg_.spec.backoff_base;
      Cycle total = 0;
      for (std::uint32_t attempt = 1; attempt <= cfg_.spec.retries;
           ++attempt) {
        journal(machine::DebugEventKind::kRetry, ev.group,
                static_cast<Word>(attempt), static_cast<Word>(backoff));
        stats_.retries += 1;
        resil_.counter("resil/retries").add(1);
        total += backoff;
        backoff *= 2;
      }
      resil_.counter("resil/retry_backoff_cycles").add(total);
      charge_transient(total);
      return;
    }
    case FaultKind::kNetDelay: {
      resil_.counter("resil/delay_cycles").add(ev.magnitude);
      charge_transient(ev.magnitude);
      return;
    }
    case FaultKind::kGroupStall: {
      if (ev.magnitude > cfg_.spec.watchdog_cycles) {
        // Watchdog expired: the stall is indistinguishable from death.
        stats_.watchdog_escalations += 1;
        resil_.counter("resil/watchdog_escalations").add(1);
        switch (cfg_.mode) {
          case RecoverMode::kRollback:
            do_rollback(ev);
            *rolled_back = true;
            return;
          case RecoverMode::kDegrade:
            retire(ev, fatal, fatal_msg);
            return;
          case RecoverMode::kOff:
            fail("stall exceeded the watchdog and recovery is off");
            return;
        }
        return;
      }
      // Short stall: the whole lockstep machine waits the group out.
      resil_.counter("resil/stall_cycles").add(ev.magnitude);
      m_.charge(ev.magnitude);
      return;
    }
    case FaultKind::kBitFlip: {
      switch (cfg_.mode) {
        case RecoverMode::kRollback:
          // The flip lands, parity detects it at the boundary, and the
          // checkpoint restore wipes it with the rest of the undone state.
          m_.shared().poke(ev.addr,
                           m_.shared().peek(ev.addr) ^
                               (Word{1} << (ev.bit & 63)));
          do_rollback(ev);
          *rolled_back = true;
          return;
        case RecoverMode::kDegrade:
          // ECC corrects in place: the word never goes bad, the scrub costs
          // cycles.
          stats_.ecc_corrections += 1;
          resil_.counter("resil/ecc_corrections").add(1);
          charge_transient(cfg_.spec.scrub_cycles);
          return;
        case RecoverMode::kOff:
          m_.shared().poke(ev.addr,
                           m_.shared().peek(ev.addr) ^
                               (Word{1} << (ev.bit & 63)));
          return;  // silent corruption — exactly what "off" means
      }
      return;
    }
    case FaultKind::kMemFail: {
      switch (cfg_.mode) {
        case RecoverMode::kRollback:
          do_rollback(ev);
          *rolled_back = true;
          return;
        case RecoverMode::kDegrade:
          if (!m_.group_alive(ev.group)) return;
          // A group without its local block cannot run flows; mark the
          // block failed (accesses fault loudly) and retire the group.
          m_.local(ev.group).set_failed(true);
          stats_.mem_blocks_failed += 1;
          resil_.counter("resil/mem_blocks_failed").add(1);
          retire(ev, fatal, fatal_msg);
          return;
        case RecoverMode::kOff:
          fail("local memory block failed and recovery is off");
          return;
      }
      return;
    }
    case FaultKind::kGroupKill: {
      switch (cfg_.mode) {
        case RecoverMode::kRollback:
          do_rollback(ev);
          *rolled_back = true;
          return;
        case RecoverMode::kDegrade:
          retire(ev, fatal, fatal_msg);
          return;
        case RecoverMode::kOff:
          fail("processor group died and recovery is off");
          return;
      }
      return;
    }
    case FaultKind::kShardKill:
    case FaultKind::kShardHang:
    case FaultKind::kShardBabble:
      // Shard-process kinds belong to the shard supervisor (src/shard);
      // they never appear here because the injector driving this executor
      // is built with shards == 0.
      return;
  }
}

ResilResult ResilientExecutor::run() {
  TCFPN_CHECK(!ran_, "ResilientExecutor::run may be called once");
  ran_ = true;
  // Checkpoint 0: the post-boot state. Guarantees nearest() always finds a
  // restore point, whatever checkpoint_every is.
  rec_.checkpoint_now(m_);

  ResilResult res;
  bool fatal = false;
  std::string fatal_msg;
  while (!fatal) {
    const StepId cur = m_.stats().steps;
    if (cur >= cfg_.max_steps) break;

    bool rolled_back = false;
    for (const FaultEvent& ev : injector_.pending(cur)) {
      // Fired *before* acting: a rollback replays these steps and pending()
      // would otherwise re-produce the very fault being recovered from.
      injector_.mark_fired(ev);
      apply_event(ev, &rolled_back, &fatal, &fatal_msg);
      if (rolled_back || fatal) break;  // boundary moved / run over;
                                        // unhandled events re-arise
    }
    if (fatal) break;
    if (rolled_back) continue;  // re-derive pending() at the restored step

    try {
      if (!m_.step()) break;  // every flow halted
    } catch (const SimError& e) {
      // A real program fault (or a degraded-mode access to a failed
      // component): never retried, propagates as the run's outcome. The
      // recorder captured the FaultRecord in its on_fault callback.
      res.faulted = true;
      res.fault_message = e.what();
      break;
    }
  }

  if (fatal) {
    res.faulted = true;
    res.fault_message = fatal_msg;
    // Synthesize the fault capture so post-mortems of unrecovered injected
    // faults look like any other fault.
    rec_.on_fault(fatal_msg, m_);
  }

  res.run.completed = !res.faulted && m_.done();
  res.run.cycles = m_.stats().cycles;
  res.run.steps = m_.stats().steps;
  res.resil = stats_;
  // Publish the recovery counters into the machine's registry now that no
  // further rollback can erase them (see the resil_ member comment).
  m_.metrics().merge(resil_);
  return res;
}

}  // namespace tcfpn::resil
