// tcfasm — assemble a tcfpn ISA source file and run it on the simulator.
//
//   ./tcfasm prog.s --thickness=64 --variant=single-instruction --trace
#include <cstdio>

#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tcfpn;
  cli::Options opt;
  if (!cli::parse_args(argc, argv, "tcfasm", "assembly program", &opt)) {
    return 2;
  }
  try {
    const auto program = isa::assemble(cli::read_file(opt.input));
    if (opt.listing) std::printf("%s", program.listing().c_str());
    machine::Machine m(opt.cfg);
    m.load(program);
    m.boot(opt.boot_thickness);
    const auto run = m.run();
    cli::print_outcome(m, run, opt);
    if (!cli::export_telemetry(m, run, opt, "tcfasm")) return 1;
    return run.completed ? 0 : 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "tcfasm: %s\n", e.what());
    return 1;
  }
}
