// tcfasm — assemble a tcfpn ISA source file and run it on the simulator.
//
//   ./tcfasm prog.s --thickness=64 --variant=single-instruction --trace
//
// Exit codes match tcfrun: 0 completed, 1 fault/step-limit, 2 usage or
// exporter failure; faulting runs still export telemetry and --post-mortem.
#include <cstdio>

#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tcfpn;
  cli::Options opt;
  if (!cli::parse_args(argc, argv, "tcfasm", "assembly program", &opt)) {
    return 2;
  }
  try {
    const auto program = isa::assemble(cli::read_file(opt.input));
    if (opt.listing) std::printf("%s", program.listing().c_str());
    machine::Machine m(opt.cfg);
    m.load(program);
    debug::FlightRecorder recorder(
        debug::RecorderConfig{.journal_capacity = 4096, .checkpoint_every = 0});
    if (!opt.post_mortem.empty()) recorder.attach(m);
    cli::StreamSession stream;
    if (!stream.open(opt, "tcfasm", m)) return 2;
    m.boot(opt.boot_thickness);
    const cli::RunOutcome outcome = cli::run_with_fault_capture(m, opt.max_steps);
    stream.finish(m, outcome);
    if (outcome.faulted) {
      obs::error("tcfasm", outcome.fault_message);
    } else {
      cli::print_outcome(m, outcome.run, opt);
    }
    if (!cli::export_telemetry(m, outcome, opt, "tcfasm")) return 2;
    if (!opt.post_mortem.empty() && outcome.faulted &&
        !cli::export_post_mortem(m, recorder, opt, "tcfasm")) {
      return 2;
    }
    return !outcome.faulted && outcome.run.completed ? 0 : 1;
  } catch (const SimError& e) {
    obs::error("tcfasm", e.what());
    return 1;
  }
}
