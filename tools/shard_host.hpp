// Process hosting for tcfrun --shards: fork+exec worker processes talking
// to the supervisor over a SOCK_STREAM socketpair (DESIGN.md §14).
//
// Each worker is this very binary re-exec'd (via /proc/self/exe) with the
// original command line plus a hidden --shard-worker=SHARD:FD flag, so it
// reconstructs a bit-identical machine replica from the same arguments; the
// kHello fingerprint handshake catches any drift. fork() is immediately
// followed by exec — the supervisor may already be multi-threaded
// (cfg.host_threads > 1), so the child touches nothing but close/exec.
//
// Fault mapping (shard::WorkerHandle):
//   inject_kill  -> SIGKILL  (link EOF classifies the worker crashed)
//   inject_hang  -> SIGSTOP  (silence past the heartbeat deadline: hung)
//   terminate    -> SIGKILL + waitpid (idempotent reap, no zombies)
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"

namespace tcfpn::cli {

class ForkedWorker final : public shard::WorkerHandle {
 public:
  ForkedWorker(pid_t pid, std::unique_ptr<shard::Transport> link)
      : pid_(pid), link_(std::move(link)) {}

  ~ForkedWorker() override { terminate(); }

  shard::Transport& link() override { return *link_; }

  void inject_kill() override {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  void inject_hang() override {
    if (pid_ > 0) ::kill(pid_, SIGSTOP);
  }

  void terminate() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);  // also ends SIGSTOP'd workers
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      pid_ = -1;
    }
    link_->close();
  }

 private:
  pid_t pid_;
  std::unique_ptr<shard::Transport> link_;
};

/// Builds the fork+exec WorkerFactory. `base_argv` is the supervisor's own
/// command line (argv[0] replaced by /proc/self/exe when available); every
/// spawn appends --shard-worker=SHARD:FD and execs it.
inline shard::WorkerFactory make_fork_factory(
    std::vector<std::string> base_argv) {
  return [base_argv =
              std::move(base_argv)](std::uint32_t shard_id)
             -> std::unique_ptr<shard::WorkerHandle> {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      TCFPN_FAULT("shard ", shard_id, " spawn failed: socketpair: ",
                  std::strerror(errno));
    }
    std::vector<std::string> args = base_argv;
    args.push_back("--shard-worker=" + std::to_string(shard_id) + ":" +
                   std::to_string(sv[1]));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      TCFPN_FAULT("shard ", shard_id, " spawn failed: fork: ",
                  std::strerror(errno));
    }
    if (pid == 0) {
      // Child: only async-signal-safe work before exec. The worker end
      // (sv[1]) is inherited through exec by number; the supervisor ends of
      // earlier workers are close-on-exec, so this replica cannot reach its
      // siblings' links.
      ::close(sv[0]);
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed; the supervisor sees EOF on the link
    }
    ::close(sv[1]);
    int flags = ::fcntl(sv[0], F_GETFD);
    if (flags >= 0) ::fcntl(sv[0], F_SETFD, flags | FD_CLOEXEC);
    return std::make_unique<ForkedWorker>(pid,
                                          shard::make_fd_transport(sv[0]));
  };
}

/// The supervisor's command line as worker-spawn material: /proc/self/exe
/// (re-exec survives $PATH games and deleted cwd) plus every original
/// argument verbatim.
inline std::vector<std::string> worker_base_argv(int argc, char** argv) {
  std::vector<std::string> base;
  base.reserve(static_cast<std::size_t>(argc) + 1);
  base.push_back("/proc/self/exe");
  if (::access(base[0].c_str(), X_OK) != 0) base[0] = argv[0];
  for (int i = 1; i < argc; ++i) base.emplace_back(argv[i]);
  return base;
}

}  // namespace tcfpn::cli
