// tcffuzz — differential conformance fuzzer for the PRAM-NUMA simulator.
//
// Generates seeded random TCF programs, runs each through the sequential
// reference oracle and every applicable machine variant / frontend /
// host-thread count, and reports the first divergence as a delta-debugged
// minimal reproducer in the corpus format (tests/corpus/*.s).
//
// Exit codes: 0 all runs agree, 1 divergence found, 2 usage error.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "conformance/corpus.hpp"
#include "conformance/diff.hpp"
#include "conformance/gen.hpp"
#include "conformance/shrink.hpp"
#include "cli_common.hpp"

namespace {

using namespace tcfpn;
using namespace tcfpn::conformance;

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t runs = 500;
  std::uint64_t max_stmts = 18;
  std::uint64_t fault_seed = 0;  ///< 0 = no fault-injection lanes
  std::uint64_t shape_seed = 0;  ///< 0 = no heterogeneous-shape lanes
  std::uint64_t shard_fault_seed = 0;  ///< 0 = no shard_kill schedule
  bool allow_errors = true;
  bool verbose = false;
  std::string save_dir;     ///< write minimized reproducers here
  std::string replay_path;  ///< corpus file or directory to replay
  std::string inject_bug;   ///< "common-crcw" | "prefix-order"
  DiffOptions diff;
};

void usage() {
  std::printf(
      "usage: tcffuzz [options]\n"
      "  differential conformance fuzzer: random TCF programs through the\n"
      "  sequential oracle and all applicable machine variants/frontends\n\n"
      "options:\n"
      "  --runs=N          programs to generate (default 500)\n"
      "  --seed=S          first seed; run i uses seed S+i (default 1)\n"
      "  --max-stmts=N     statement budget per generated body (default 18)\n"
      "  --variants=CSV    restrict machine lanes to these variants\n"
      "  --host-threads=CSV host-thread counts to sweep (default 1,8)\n"
      "  --fault-seed=S    also run every machine lane under the deterministic\n"
      "                    fault schedule for seed S+i with rollback recovery;\n"
      "                    recovered runs must match the fault-free oracle\n"
      "                    bit-for-bit (0 = off, the default)\n"
      "  --shape-seed=S    also run heterogeneous-shape lanes: run i samples\n"
      "                    a machine shape (per-group T_p/clock/pipeline/NUMA\n"
      "                    rows) from seed S+i for every schedule-robust lane,\n"
      "                    and checks that a declared-but-default shape stays\n"
      "                    bit-identical to the uniform machine (0 = off)\n"
      "  --shards=N        also run every step-synchronous lane under the\n"
      "                    loopback shard supervisor with N workers; the\n"
      "                    supervised run must be identical to the plain one\n"
      "                    (0 = off, the default)\n"
      "  --shard-fault-seed=S  with --shards: re-run the sharded lane under a\n"
      "                    seeded shard_kill schedule for seed S+i; restart\n"
      "                    from checkpoint must reproduce the run exactly\n"
      "  --no-errors       skip expected-SimError programs\n"
      "  --no-frontends    skip the baseline:: frontend lanes\n"
      "  --no-perturb      skip the perturbed-cost-knob lane\n"
      "  --save=DIR        write each minimized reproducer to DIR\n"
      "  --replay=PATH     replay a corpus file or directory instead of\n"
      "                    generating (oracle re-judges every entry)\n"
      "  --inject-bug=B    harness self-test: deliberately mis-implement the\n"
      "                    oracle (common-crcw | prefix-order) and require\n"
      "                    the fuzzer to find + shrink a reproducer\n"
      "  -v                print every seed as it runs\n");
}

bool parse(int argc, char** argv, FuzzOptions* o) {
  // Accept both `--flag=value` and `--flag value` for the value options.
  static const char* kValueFlags[] = {
      "--runs",    "--seed",   "--max-stmts",  "--variants",
      "--host-threads", "--save", "--replay", "--inject-bug",
      "--fault-seed",   "--shape-seed", "--shards", "--shard-fault-seed"};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    for (const char* f : kValueFlags) {
      if (arg == f && i + 1 < argc) {
        arg += "=";
        arg += argv[++i];
        break;
      }
    }
    std::string v;
    if (arg == "--help" || arg == "-h") {
      usage();
      return false;
    } else if (arg == "-v") {
      o->verbose = true;
    } else if (arg == "--no-errors") {
      o->allow_errors = false;
    } else if (arg == "--no-frontends") {
      o->diff.frontends = false;
    } else if (arg == "--no-perturb") {
      o->diff.perturb_costs = false;
    } else if (cli::parse_flag(arg, "runs", &v)) {
      if (!cli::parse_uint(v, "runs", 1, 1u << 24, &o->runs)) return false;
    } else if (cli::parse_flag(arg, "seed", &v)) {
      if (!cli::parse_uint(v, "seed", 0, ~std::uint64_t{0} >> 1, &o->seed)) {
        return false;
      }
    } else if (cli::parse_flag(arg, "max-stmts", &v)) {
      if (!cli::parse_uint(v, "max-stmts", 4, 64, &o->max_stmts)) return false;
    } else if (cli::parse_flag(arg, "fault-seed", &v)) {
      if (!cli::parse_uint(v, "fault-seed", 0, ~std::uint64_t{0} >> 1,
                           &o->fault_seed)) {
        return false;
      }
    } else if (cli::parse_flag(arg, "shape-seed", &v)) {
      if (!cli::parse_uint(v, "shape-seed", 0, ~std::uint64_t{0} >> 1,
                           &o->shape_seed)) {
        return false;
      }
    } else if (cli::parse_flag(arg, "shards", &v)) {
      std::uint64_t shards = 0;
      if (!cli::parse_uint(v, "shards", 0, 64, &shards)) return false;
      o->diff.shards = static_cast<std::uint32_t>(shards);
    } else if (cli::parse_flag(arg, "shard-fault-seed", &v)) {
      if (!cli::parse_uint(v, "shard-fault-seed", 0, ~std::uint64_t{0} >> 1,
                           &o->shard_fault_seed)) {
        return false;
      }
    } else if (cli::parse_flag(arg, "save", &v)) {
      o->save_dir = v;
    } else if (cli::parse_flag(arg, "replay", &v)) {
      o->replay_path = v;
    } else if (cli::parse_flag(arg, "inject-bug", &v)) {
      if (v == "common-crcw") {
        o->diff.oracle_skip_common = true;
      } else if (v == "prefix-order") {
        o->diff.oracle_reverse_prefix = true;
      } else {
        std::fprintf(stderr, "unknown --inject-bug '%s'\n", v.c_str());
        return false;
      }
      o->inject_bug = v;
    } else if (cli::parse_flag(arg, "host-threads", &v)) {
      o->diff.host_threads.clear();
      std::size_t pos = 0;
      while (pos <= v.size()) {
        const std::size_t comma = std::min(v.find(',', pos), v.size());
        std::uint64_t ht = 0;
        if (!cli::parse_uint(v.substr(pos, comma - pos), "host-threads", 1,
                             64, &ht)) {
          return false;
        }
        o->diff.host_threads.push_back(static_cast<std::uint32_t>(ht));
        pos = comma + 1;
      }
    } else if (cli::parse_flag(arg, "variants", &v)) {
      std::size_t pos = 0;
      while (pos <= v.size()) {
        const std::size_t comma = std::min(v.find(',', pos), v.size());
        const std::string name = v.substr(pos, comma - pos);
        using machine::Variant;
        Variant var;
        if (name == "single-instruction") var = Variant::kSingleInstruction;
        else if (name == "balanced") var = Variant::kBalanced;
        else if (name == "multi-instruction") var = Variant::kMultiInstruction;
        else if (name == "single-operation") var = Variant::kSingleOperation;
        else if (name == "config-single-operation") var = Variant::kConfigSingleOperation;
        else if (name == "fixed-thickness") var = Variant::kFixedThickness;
        else {
          std::fprintf(stderr, "unknown variant '%s'\n", name.c_str());
          return false;
        }
        o->diff.only_variants.push_back(var);
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return false;
    }
  }
  return true;
}

/// Reports one divergence; shrinks and saves when possible. `diff` must be
/// the exact options the divergence was found under (fault_seed included),
/// or the shrinker could not reproduce it.
void report(const FuzzOptions& o, const DiffOptions& diff, std::uint64_t seed,
            const GenProgram& gp, const Divergence& d) {
  std::fprintf(stderr, "seed %llu DIVERGES on lane '%s': %s\n",
               static_cast<unsigned long long>(seed), d.lane.c_str(),
               d.detail.c_str());
  const ShrinkResult shrunk = shrink(gp, d, diff);
  const DiffCase c = to_case(shrunk.program);
  std::fprintf(stderr,
               "  shrunk to %zu statements / %zu instructions "
               "(%zu attempts): lane '%s': %s\n",
               stmt_count(shrunk.program), c.program.code.size(),
               shrunk.attempts, shrunk.divergence.lane.c_str(),
               shrunk.divergence.detail.c_str());
  std::string path;
  if (!o.save_dir.empty()) {
    std::filesystem::create_directories(o.save_dir);
    path = o.save_dir + "/diverge_seed" + std::to_string(seed) + ".s";
    save_case(c, path);
    std::fprintf(stderr, "  reproducer written to %s\n", path.c_str());
    // Every saved divergence ships its flight record: the shrunken case
    // replayed on the diverging lane with the recorder attached, rendered
    // as a tcfpn-postmortem-v1 document (class "divergence" when the lane
    // completed but disagreed).
    const std::string pm_path =
        o.save_dir + "/diverge_seed" + std::to_string(seed) +
        ".postmortem.json";
    try {
      const std::string doc =
          flight_record_json(c, shrunk.divergence, diff.max_steps);
      std::ofstream pm(pm_path);
      if (pm) {
        pm << doc;
        std::fprintf(stderr, "  flight record written to %s\n",
                     pm_path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write %s\n", pm_path.c_str());
      }
    } catch (const SimError& e) {
      std::fprintf(stderr, "  flight-record replay failed: %s\n", e.what());
    }
  }
  std::fprintf(stderr, "--- minimized reproducer ---\n%s",
               serialize_case(c).c_str());
}

int replay(const FuzzOptions& o) {
  std::vector<std::string> files;
  if (std::filesystem::is_directory(o.replay_path)) {
    files = corpus_files(o.replay_path);
  } else {
    files.push_back(o.replay_path);
  }
  if (files.empty()) {
    std::fprintf(stderr, "no corpus entries under '%s'\n",
                 o.replay_path.c_str());
    return 2;
  }
  int rc = 0;
  for (const std::string& f : files) {
    try {
      const DiffCase c = load_case(f);
      if (auto d = run_differential(c, o.diff)) {
        std::fprintf(stderr, "%s DIVERGES on lane '%s': %s\n", f.c_str(),
                     d->lane.c_str(), d->detail.c_str());
        rc = 1;
      } else if (o.verbose) {
        std::printf("%s ok\n", f.c_str());
      }
    } catch (const SimError& e) {
      std::fprintf(stderr, "%s: %s\n", f.c_str(), e.what());
      rc = 2;
    }
  }
  if (rc == 0) {
    std::printf("replayed %zu corpus entries, all agree with the oracle\n",
                files.size());
  }
  return rc;
}

int fuzz(const FuzzOptions& o) {
  std::uint64_t divergences = 0;
  for (std::uint64_t i = 0; i < o.runs; ++i) {
    const std::uint64_t seed = o.seed + i;
    GenOptions gen_opt;
    gen_opt.seed = seed;
    gen_opt.max_stmts = o.max_stmts;
    gen_opt.allow_errors = o.allow_errors;
    const GenProgram gp = generate(gen_opt);
    if (o.verbose) {
      std::printf("seed %llu: %zu statements\n",
                  static_cast<unsigned long long>(seed), stmt_count(gp));
    }
    DiffOptions diff = o.diff;
    // A fresh fault schedule per run: the same program under different fault
    // timings is a different resilience test.
    if (o.fault_seed != 0) diff.fault_seed = o.fault_seed + i;
    // Likewise a fresh machine shape per run: the same program on different
    // heterogeneous machines is a different conformance test.
    if (o.shape_seed != 0) diff.shape_seed = o.shape_seed + i;
    // And a fresh shard_kill schedule per run for the sharded lane.
    if (o.shard_fault_seed != 0) diff.shard_fault_seed = o.shard_fault_seed + i;
    try {
      if (auto d = run_differential(gp, diff)) {
        report(o, diff, seed, gp, *d);
        ++divergences;
        if (o.inject_bug.empty()) return 1;  // real bug: stop at the first
        break;  // self-test: one shrunk reproducer is the deliverable
      }
    } catch (const SimError& e) {
      std::fprintf(stderr, "seed %llu: harness fault: %s\n",
                   static_cast<unsigned long long>(seed), e.what());
      return 1;
    }
  }
  if (!o.inject_bug.empty()) {
    if (divergences == 0) {
      std::fprintf(stderr,
                   "--inject-bug=%s: the broken oracle was NOT caught in "
                   "%llu runs\n",
                   o.inject_bug.c_str(),
                   static_cast<unsigned long long>(o.runs));
      return 1;
    }
    std::printf("--inject-bug=%s: caught and shrunk a divergence\n",
                o.inject_bug.c_str());
    return 0;
  }
  std::printf("%llu programs, all executions agree with the oracle\n",
              static_cast<unsigned long long>(o.runs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions o;
  if (!parse(argc, argv, &o)) return 2;
  if (!o.replay_path.empty()) return replay(o);
  return fuzz(o);
}
