// tcfmon — attach to a live tcfpn-stream-v1 telemetry stream and render a
// refreshing dashboard (DESIGN.md §13).
//
//   ./tcfrun prog.tcf --stream=run.stream &      # producer
//   ./tcfmon run.stream                          # follow the file live
//
//   ./tcfmon unix:/tmp/tcf.sock &                # listen first…
//   ./tcfrun prog.tcf --stream=unix:/tmp/tcf.sock   # …producer connects
//
//   ./tcfmon --once --json run.stream            # CI: one-shot summary
//
// Sources: a stream file (followed tail -f style until the run_end line),
// '-' for stdin, or unix:PATH — tcfmon owns the *listening* side of the
// socket and a --stream=unix:PATH producer connects to it. --once reads
// what is available and exits instead of waiting for run_end; --json
// replaces the dashboard with a machine-readable summary document on
// stdout. Unparseable lines are counted, never fatal — a truncated stream
// (producer died before run_end) is reported, not crashed on.
//
// Exit codes: 0 = stream consumed and the header was valid; 1 = no/invalid
// header or parse errors; 2 = usage / source could not be opened.
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "obs/njson.hpp"
#include "obs/record.hpp"

namespace {

using namespace tcfpn;
using obs::JsonValue;

struct MonOptions {
  std::string source;
  bool once = false;
  bool json = false;
  std::uint64_t refresh_ms = 200;
};

void usage() {
  std::printf(
      "usage: tcfmon [options] <source>\n"
      "  attaches to a tcfpn-stream-v1 NDJSON telemetry stream\n\n"
      "source:\n"
      "  FILE         follow a stream file until its run_end line\n"
      "  -            read the stream from stdin\n"
      "  unix:PATH    listen on a UNIX socket; a --stream=unix:PATH\n"
      "               producer connects to it\n\n"
      "options:\n"
      "  --once         read what is available, render once, exit\n"
      "  --json         print a machine-readable summary instead of the\n"
      "                 dashboard (CI mode; pairs well with --once)\n"
      "  --refresh=MS   dashboard repaint interval (default 200)\n");
}

/// Everything the dashboard knows, folded from the lines seen so far.
struct MonState {
  bool header_seen = false;
  obs::JsonValue header;
  std::uint64_t lines = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t metrics_lines = 0, sample_lines = 0, event_lines = 0,
                log_lines = 0;
  // Latest sample point.
  double step = 0, cycles = 0, operations = 0, busy = 0, idle = 0, flows = 0;
  // Event kind totals across all events windows.
  std::map<std::string, std::uint64_t> events;
  std::deque<std::string> recent_logs;  ///< "[level] category: message"
  bool run_end_seen = false;
  obs::JsonValue run_end;

  double utilization() const {
    const double total = busy + idle;
    return total > 0 ? busy / total : 0;
  }
};

void apply_line(MonState& st, const std::string& line) {
  if (line.empty()) return;
  ++st.lines;
  JsonValue v;
  if (!obs::parse_json(line, &v) || !v.is_object()) {
    ++st.parse_errors;
    return;
  }
  const std::string type = v.get_string("type");
  if (type == "header") {
    const JsonValue* run = v.get("run");
    if (v.get_string("schema") == obs::kStreamSchema && run != nullptr &&
        run->is_object()) {
      st.header_seen = true;
      st.header = v;
    } else {
      ++st.parse_errors;  // wrong schema tag or missing run metadata
    }
  } else if (type == "metrics") {
    ++st.metrics_lines;
    st.step = v.get_number("step", st.step);
    st.cycles = v.get_number("cycles", st.cycles);
  } else if (type == "sample") {
    ++st.sample_lines;
    st.step = v.get_number("step", st.step);
    st.cycles = v.get_number("cycles", st.cycles);
    st.operations = v.get_number("operations", st.operations);
    st.busy = v.get_number("busy_slots", st.busy);
    st.idle = v.get_number("idle_slots", st.idle);
    st.flows = v.get_number("live_flows", st.flows);
  } else if (type == "events") {
    ++st.event_lines;
    if (const JsonValue* counts = v.get("counts"); counts && counts->is_object()) {
      for (const auto& [k, c] : counts->object()) {
        if (c.is_number()) st.events[k] += static_cast<std::uint64_t>(c.number());
      }
    }
  } else if (type == "log") {
    ++st.log_lines;
    st.recent_logs.push_back("[" + v.get_string("level") + "] " +
                             v.get_string("category") + ": " +
                             v.get_string("message"));
    while (st.recent_logs.size() > 8) st.recent_logs.pop_front();
  } else if (type == "run_end") {
    st.run_end_seen = true;
    st.run_end = v;
    st.step = v.get_number("step", st.step);
    st.cycles = v.get_number("cycles", st.cycles);
  } else {
    ++st.parse_errors;
  }
}

void paint(const MonState& st) {
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  if (tty) std::fputs("\x1b[2J\x1b[H", stdout);

  std::string title = "tcfmon — waiting for stream header";
  if (st.header_seen) {
    title = "tcfmon — " + st.header.get("run")->get_string("tool", "?") + " " +
            st.header.get("run")->get_string("input", "?");
  }
  std::printf("%s\n", title.c_str());
  if (st.header_seen) {
    const JsonValue* run = st.header.get("run");
    std::printf(
        "  variant %s, P=%s Tp=%s, host-threads %s, cadence %s steps\n",
        run->get_string("variant", "?").c_str(),
        run->get_string("groups", "?").c_str(),
        run->get_string("slots", "?").c_str(),
        run->get_string("host_threads", "?").c_str(),
        run->get_string("stream_every", "?").c_str());
  }
  std::printf(
      "  step %.0f, cycles %.0f, ops %.0f, live flows %.0f, utilization "
      "%.3f\n",
      st.step, st.cycles, st.operations, st.flows, st.utilization());
  std::printf(
      "  stream: %llu lines (%llu metrics, %llu samples, %llu events, %llu "
      "logs), %llu unparseable\n",
      static_cast<unsigned long long>(st.lines),
      static_cast<unsigned long long>(st.metrics_lines),
      static_cast<unsigned long long>(st.sample_lines),
      static_cast<unsigned long long>(st.event_lines),
      static_cast<unsigned long long>(st.log_lines),
      static_cast<unsigned long long>(st.parse_errors));

  if (!st.events.empty()) {
    Table t({"event", "count"});
    for (const auto& [k, c] : st.events) t.add(k, c);
    std::printf("\n%s", t.render().c_str());
  }
  if (!st.recent_logs.empty()) {
    std::printf("\nrecent logs:\n");
    for (const std::string& l : st.recent_logs) std::printf("  %s\n", l.c_str());
  }
  if (st.run_end_seen) {
    const JsonValue* o = st.run_end.get("obs");
    std::printf("\nrun %s after %.0f steps / %.0f cycles",
                st.run_end.get("completed") &&
                        st.run_end.get("completed")->is_bool() &&
                        st.run_end.get("completed")->boolean()
                    ? "completed"
                    : "DID NOT COMPLETE",
                st.step, st.cycles);
    const std::string fault = st.run_end.get_string("fault");
    if (!fault.empty()) std::printf(" — fault: %s", fault.c_str());
    std::printf("\n");
    if (o != nullptr && o->is_object()) {
      std::printf(
          "  bus: %.0f records pushed, %.0f written, %.0f dropped, %.0f log "
          "drops, %.0f write errors\n",
          o->get_number("pushed"), o->get_number("written"),
          o->get_number("dropped_records"), o->get_number("dropped_logs"),
          o->get_number("write_errors"));
    }
  }
  std::fflush(stdout);
}

/// The --json one-shot summary: hand-built like every exporter in the repo,
/// so it round-trips through metrics::json_valid and python -m json.
void print_json_summary(const MonState& st) {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(obs::kStreamSchema) + "\",\n";
  out += "  \"header_seen\": " + std::string(st.header_seen ? "true" : "false") +
         ",\n";
  out += "  \"run_end_seen\": " +
         std::string(st.run_end_seen ? "true" : "false") + ",\n";
  out += "  \"lines\": " + std::to_string(st.lines) + ",\n";
  out += "  \"parse_errors\": " + std::to_string(st.parse_errors) + ",\n";
  out += "  \"metrics_lines\": " + std::to_string(st.metrics_lines) + ",\n";
  out += "  \"sample_lines\": " + std::to_string(st.sample_lines) + ",\n";
  out += "  \"event_lines\": " + std::to_string(st.event_lines) + ",\n";
  out += "  \"log_lines\": " + std::to_string(st.log_lines) + ",\n";
  out += "  \"last_step\": " + std::to_string(static_cast<long long>(st.step)) +
         ",\n";
  out += "  \"last_cycles\": " +
         std::to_string(static_cast<long long>(st.cycles)) + ",\n";
  char util[32];
  std::snprintf(util, sizeof(util), "%.6f", st.utilization());
  out += "  \"utilization\": " + std::string(util) + ",\n";
  out += "  \"events\": {";
  bool first = true;
  for (const auto& [k, c] : st.events) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + k + "\": " + std::to_string(c);
  }
  out += "},\n";
  bool completed = false;
  long long dropped = 0;
  if (st.run_end_seen) {
    const obs::JsonValue* c = st.run_end.get("completed");
    completed = c != nullptr && c->is_bool() && c->boolean();
    if (const obs::JsonValue* o = st.run_end.get("obs"); o && o->is_object()) {
      dropped = static_cast<long long>(o->get_number("dropped_records"));
    }
  }
  out += "  \"completed\": " + std::string(completed ? "true" : "false") + ",\n";
  out += "  \"dropped_records\": " + std::to_string(dropped) + "\n";
  out += "}\n";
  std::fputs(out.c_str(), stdout);
}

/// Opens the stream source. Returns the read fd (plus, for unix:PATH, the
/// listening fd to close later), or -1 with a diagnostic.
int open_source(const std::string& source, int* listen_fd) {
  *listen_fd = -1;
  if (source == "-") return STDIN_FILENO;
  if (source.rfind("unix:", 0) == 0) {
    const std::string path = source.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      std::fprintf(stderr, "tcfmon: unix socket path too long: %s\n",
                   path.c_str());
      return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (lfd < 0) {
      std::fprintf(stderr, "tcfmon: socket: %s\n", std::strerror(errno));
      return -1;
    }
    ::unlink(path.c_str());  // stale socket from a previous session
    if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(lfd, 1) != 0) {
      std::fprintf(stderr, "tcfmon: listen on '%s': %s\n", path.c_str(),
                   std::strerror(errno));
      ::close(lfd);
      return -1;
    }
    // A signal (EINTR) or a client that connected and vanished before we got
    // here (ECONNABORTED) must not tear down the listener — keep waiting for
    // the next attach.
    int fd = -1;
    do {
      fd = ::accept(lfd, nullptr, nullptr);
    } while (fd < 0 && (errno == EINTR || errno == ECONNABORTED));
    if (fd < 0) {
      std::fprintf(stderr, "tcfmon: accept: %s\n", std::strerror(errno));
      ::close(lfd);
      return -1;
    }
    *listen_fd = lfd;
    return fd;
  }
  const int fd = ::open(source.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    std::fprintf(stderr, "tcfmon: cannot open '%s': %s\n", source.c_str(),
                 std::strerror(errno));
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  MonOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 2;
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg.rfind("--refresh=", 0) == 0) {
      opt.refresh_ms = std::strtoull(arg.c_str() + 10, nullptr, 10);
      if (opt.refresh_ms == 0) opt.refresh_ms = 200;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tcfmon: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      opt.source = arg;
    }
  }
  if (opt.source.empty()) {
    std::fprintf(stderr, "tcfmon: no stream source given\n");
    usage();
    return 2;
  }

  int listen_fd = -1;
  const int fd = open_source(opt.source, &listen_fd);
  if (fd < 0) return 2;
  const bool is_plain_file = opt.source != "-" && listen_fd < 0;

  // Without a tty there is no cursor to repaint over — intermediate frames
  // would just stack up in a pipe — so only the final frame is printed.
  const bool live_paint = !opt.json && ::isatty(STDOUT_FILENO) != 0;

  MonState st;
  std::string carry;  ///< partial last line between reads
  std::array<char, 1 << 16> buf;
  auto last_paint = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(opt.refresh_ms);
  bool dirty = true;

  while (!st.run_end_seen) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "tcfmon: read: %s\n", std::strerror(errno));
      break;
    }
    if (n == 0) {
      // EOF. A followed file may still be growing (the producer appends);
      // sockets and stdin are done for good.
      if (opt.once || !is_plain_file) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    } else {
      carry.append(buf.data(), static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = carry.find('\n', start); nl != std::string::npos;
           nl = carry.find('\n', start)) {
        apply_line(st, carry.substr(start, nl - start));
        start = nl + 1;
      }
      carry.erase(0, start);
      dirty = true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (live_paint && dirty &&
        now - last_paint >= std::chrono::milliseconds(opt.refresh_ms)) {
      paint(st);
      last_paint = now;
      dirty = false;
    }
  }
  if (!carry.empty()) apply_line(st, carry);  // unterminated last line

  if (opt.json) {
    print_json_summary(st);
  } else {
    paint(st);
    if (!st.run_end_seen) {
      std::printf("\n(stream ended without a run_end line — producer still "
                  "running or died)\n");
    }
  }
  ::close(fd);
  if (listen_fd >= 0) ::close(listen_fd);
  return st.header_seen && st.parse_errors == 0 ? 0 : 1;
}
