// tcfrun — compile a TCF source file and run it on the simulator.
//
//   ./tcfrun examples/programs/scan.tcf --trace
//   ./tcfrun prog.tcf --variant=balanced --bound=8 --groups=8
#include <cstdio>

#include "lang/codegen.hpp"
#include "machine/machine.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tcfpn;
  cli::Options opt;
  if (!cli::parse_args(argc, argv, "tcfrun", "TCF source program", &opt)) {
    return 2;
  }
  try {
    const auto compiled = lang::compile_source(cli::read_file(opt.input));
    if (opt.listing) {
      std::printf("%s", compiled.program.listing().c_str());
      std::printf("data segment: words %llu..%llu\n",
                  static_cast<unsigned long long>(compiled.heap_base),
                  static_cast<unsigned long long>(compiled.heap_end));
    }
    machine::Machine m(opt.cfg);
    m.load(compiled.program);
    m.boot(opt.boot_thickness);
    const auto run = m.run();
    cli::print_outcome(m, run, opt);
    if (!cli::export_telemetry(m, run, opt, "tcfrun")) return 1;
    // Dump declared arrays/cells so programs have observable results even
    // without print statements.
    if (opt.stats) {
      for (const auto& [name, buf] : compiled.arrays) {
        std::printf("  %s =", name.c_str());
        const std::size_t show = std::min<std::size_t>(buf.size, 16);
        for (std::size_t i = 0; i < show; ++i) {
          std::printf(" %lld",
                      static_cast<long long>(m.shared().peek(buf.at(i))));
        }
        if (show < buf.size) std::printf(" ... (%zu words)", buf.size);
        std::printf("\n");
      }
    }
    return run.completed ? 0 : 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "tcfrun: %s\n", e.what());
    return 1;
  }
}
