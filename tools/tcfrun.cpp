// tcfrun — compile a TCF source file and run it on the simulator.
//
//   ./tcfrun examples/programs/scan.tcf --trace
//   ./tcfrun prog.tcf --variant=balanced --bound=8 --groups=8
//   ./tcfrun racy.tcf --post-mortem=- --metrics-json=run.json
//
// Exit codes: 0 = completed, 1 = fault or step limit, 2 = usage error or an
// exporter destination could not be written. A faulting run still writes
// every requested telemetry document (the fault lands in the run metadata)
// plus, with --post-mortem, a flight-record JSON of the machine's last
// moments.
#include <cstdio>

#include "lang/codegen.hpp"
#include "machine/machine.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tcfpn;
  cli::Options opt;
  if (!cli::parse_args(argc, argv, "tcfrun", "TCF source program", &opt)) {
    return 2;
  }
  try {
    const auto compiled = lang::compile_source(cli::read_file(opt.input));
    if (opt.listing) {
      std::printf("%s", compiled.program.listing().c_str());
      std::printf("data segment: words %llu..%llu\n",
                  static_cast<unsigned long long>(compiled.heap_base),
                  static_cast<unsigned long long>(compiled.heap_end));
    }
    machine::Machine m(opt.cfg);
    m.load(compiled.program);
    // The recorder only rides along when a post-mortem was asked for; the
    // journal is cheap but the default run stays observer-free.
    debug::FlightRecorder recorder(
        debug::RecorderConfig{.journal_capacity = 4096, .checkpoint_every = 0});
    if (!opt.post_mortem.empty()) recorder.attach(m);
    m.boot(opt.boot_thickness);
    const cli::RunOutcome outcome = cli::run_with_fault_capture(m);
    if (outcome.faulted) {
      std::fprintf(stderr, "tcfrun: %s\n", outcome.fault_message.c_str());
    } else {
      cli::print_outcome(m, outcome.run, opt);
    }
    if (!cli::export_telemetry(m, outcome, opt, "tcfrun")) return 2;
    if (!opt.post_mortem.empty() && outcome.faulted &&
        !cli::export_post_mortem(m, recorder, opt, "tcfrun")) {
      return 2;
    }
    // Dump declared arrays/cells so programs have observable results even
    // without print statements.
    if (!outcome.faulted && opt.stats) {
      for (const auto& [name, buf] : compiled.arrays) {
        std::printf("  %s =", name.c_str());
        const std::size_t show = std::min<std::size_t>(buf.size, 16);
        for (std::size_t i = 0; i < show; ++i) {
          std::printf(" %lld",
                      static_cast<long long>(m.shared().peek(buf.at(i))));
        }
        if (show < buf.size) std::printf(" ... (%zu words)", buf.size);
        std::printf("\n");
      }
    }
    return !outcome.faulted && outcome.run.completed ? 0 : 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "tcfrun: %s\n", e.what());
    return 1;
  }
}
