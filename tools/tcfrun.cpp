// tcfrun — compile a TCF source file and run it on the simulator.
//
//   ./tcfrun examples/programs/scan.tcf --trace
//   ./tcfrun prog.tcf --variant=balanced --bound=8 --groups=8
//   ./tcfrun racy.tcf --post-mortem=- --metrics-json=run.json
//   ./tcfrun prog.tcf --inject-faults=seed=7,drop=0.01,kill=0.002
//       --recover=rollback --metrics-json=-   (one command line)
//   ./tcfrun spin.tcf --max-steps=5000 --post-mortem=-
//
// Exit codes: 0 = completed, 1 = fault or (implicit) step limit, 2 = usage
// error or an exporter destination could not be written, 3 = an explicit
// --max-steps watchdog expired (the program did not terminate within its
// budget) or an unrecoverable shard-supervision failure ("shard-fault"
// post-mortem class). A faulting run still writes every requested telemetry
// document (the fault lands in the run metadata) plus, with --post-mortem,
// a flight-record JSON of the machine's last moments; a watchdog stop
// writes a synthesized "watchdog"-class post-mortem.
//
// --shards=N runs the program under supervised multi-process execution
// (DESIGN.md §14): N forked workers (or threads with --shard-loopback),
// heartbeat liveness, restart-from-checkpoint, deterministic degrade. The
// simulated results are bit-identical to --shards=1.
#include <cstdio>
#include <optional>

#include "lang/codegen.hpp"
#include "machine/machine.hpp"
#include "machine/state.hpp"
#include "resil/recovery.hpp"
#include "shard/supervisor.hpp"
#include "shard/worker.hpp"
#include "cli_common.hpp"
#include "shard_host.hpp"

namespace {

using namespace tcfpn;

resil::RecoverMode recover_mode(const std::string& name) {
  if (name == "degrade") return resil::RecoverMode::kDegrade;
  if (name == "off") return resil::RecoverMode::kOff;
  return resil::RecoverMode::kRollback;
}

void print_resil_summary(const resil::ResilStats& s) {
  std::printf(
      "resilience: %llu faults injected, %llu retries, %llu rollbacks "
      "(%llu steps lost), %llu groups retired (thickness %lld remapped), "
      "%llu ECC corrections, %llu watchdog escalations\n",
      static_cast<unsigned long long>(s.faults_injected),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.rollbacks),
      static_cast<unsigned long long>(s.steps_lost),
      static_cast<unsigned long long>(s.groups_retired),
      static_cast<long long>(s.remapped_thickness),
      static_cast<unsigned long long>(s.ecc_corrections),
      static_cast<unsigned long long>(s.watchdog_escalations));
}

/// Writes the --post-mortem document for a watchdog stop: no SimError ever
/// fired, so the FaultRecord is synthesized with class "watchdog".
bool export_watchdog_post_mortem(const machine::Machine& m,
                                 const debug::Journal& journal,
                                 const cli::Options& opt) {
  debug::FaultRecord fr;
  fr.message = "watchdog: step limit of " + std::to_string(opt.max_steps) +
               " machine steps exceeded without termination";
  fr.fault_class = "watchdog";
  fr.step = m.stats().steps;
  const std::vector<std::pair<std::string, std::string>> meta = {
      {"tool", "tcfrun"}, {"input", opt.input}};
  return cli::write_document(opt.post_mortem,
                             debug::post_mortem_json(m, journal, fr, meta),
                             "tcfrun");
}

void print_shard_summary(const shard::SupervisorStats& s) {
  std::printf(
      "sharding: %llu steps supervised, %llu heartbeats, %llu checkpoints; "
      "%llu crashed / %llu hung / %llu babbling, %llu restarts "
      "(%llu rollbacks), %llu degrades (%llu groups retired); "
      "link budget %llu cycles\n",
      static_cast<unsigned long long>(s.steps),
      static_cast<unsigned long long>(s.heartbeats),
      static_cast<unsigned long long>(s.checkpoints),
      static_cast<unsigned long long>(s.crashes),
      static_cast<unsigned long long>(s.hangs),
      static_cast<unsigned long long>(s.babbles),
      static_cast<unsigned long long>(s.restarts),
      static_cast<unsigned long long>(s.rollbacks),
      static_cast<unsigned long long>(s.degrades),
      static_cast<unsigned long long>(s.groups_retired),
      static_cast<unsigned long long>(s.link_budget_cycles));
}

/// The hidden --shard-worker=SHARD:FD mode: this process is one supervised
/// replica. It rebuilds the identical machine from the identical command
/// line and serves the frame protocol on the inherited socketpair end until
/// kShutdown (exit 0) or the link dies (exit 1).
int run_shard_worker(const cli::Options& opt) {
  try {
    const auto compiled = lang::compile_source(cli::read_file(opt.input));
    machine::Machine m(opt.cfg);
    m.load(compiled.program);
    m.boot(opt.boot_thickness);
    const auto link = shard::make_fd_transport(opt.shard_worker_fd);
    shard::WorkerConfig wc;
    wc.shard = opt.shard_worker_id;
    wc.config_fp = machine::config_fingerprint(m.config());
    wc.program_fp = machine::program_fingerprint(m.program());
    return shard::serve_worker(m, *link, wc);
  } catch (const SimError& e) {
    obs::error("tcfrun/shard-worker", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  cli::Options opt;
  if (!cli::parse_args(argc, argv, "tcfrun", "TCF source program", &opt,
                       /*sharded_tool=*/true)) {
    return 2;
  }
  if (opt.shard_worker) return run_shard_worker(opt);
  // The fault spec is user input: reject it as a usage error (exit 2), not a
  // simulated fault, before anything runs.
  resil::ResilConfig rc;
  const bool resilient = !opt.inject_faults.empty();
  if (resilient) {
    try {
      rc.spec = resil::parse_fault_spec(opt.inject_faults);
    } catch (const SimError& e) {
      std::fprintf(stderr, "tcfrun: %s\n", e.what());
      return 2;
    }
    rc.mode = recover_mode(opt.recover);
    rc.max_steps = opt.max_steps;
  }
  try {
    const auto compiled = lang::compile_source(cli::read_file(opt.input));
    if (opt.listing) {
      std::printf("%s", compiled.program.listing().c_str());
      std::printf("data segment: words %llu..%llu\n",
                  static_cast<unsigned long long>(compiled.heap_base),
                  static_cast<unsigned long long>(compiled.heap_end));
    }
    machine::Machine m(opt.cfg);
    m.load(compiled.program);

    cli::RunOutcome outcome;
    // Journal source for post-mortems: the resilient executor's recorder, or
    // the ride-along recorder attached only when a post-mortem was asked for
    // (the default run stays observer-free).
    debug::FlightRecorder recorder(
        debug::RecorderConfig{.journal_capacity = 4096, .checkpoint_every = 0});
    const debug::FlightRecorder* pm_rec = &recorder;
    std::optional<resil::ResilientExecutor> ex;  // outlives pm_rec uses
    cli::StreamSession stream;
    if (opt.shards > 1) {
      // Supervised multi-process execution. The observer chain matches the
      // plain path: recorder only when a post-mortem is wanted, stream on
      // top. The supervisor journals its decisions through the same chain.
      if (!opt.post_mortem.empty()) recorder.attach(m);
      if (!stream.open(opt, "tcfrun", m)) return 2;
      m.boot(opt.boot_thickness);

      std::optional<resil::FaultInjector> injector;
      if (resilient) {
        injector.emplace(rc.spec, opt.cfg.groups, opt.cfg.shared_words,
                         opt.shards);
      }
      shard::SupervisorOptions sopt;
      sopt.shards = opt.shards;
      sopt.heartbeat_ms = static_cast<int>(opt.shard_heartbeat_ms);
      sopt.handshake_ms = static_cast<int>(opt.shard_handshake_ms);
      sopt.restarts = opt.shard_restarts;
      sopt.checkpoint_every = opt.shard_checkpoint_every;
      sopt.max_steps = opt.max_steps;

      shard::WorkerFactory factory;
      if (opt.shard_loopback) {
        factory = shard::make_loopback_factory([&] {
          auto replica = std::make_unique<machine::Machine>(opt.cfg);
          replica->load(compiled.program);
          replica->boot(opt.boot_thickness);
          return replica;
        });
      } else {
        factory = cli::make_fork_factory(cli::worker_base_argv(argc, argv));
      }

      shard::ShardSupervisor sup(m, std::move(factory), sopt,
                                 injector ? &*injector : nullptr);
      try {
        outcome.run = sup.run();
      } catch (const SimError& e) {
        outcome.faulted = true;
        outcome.fault_message = e.what();
        outcome.run.completed = false;
        outcome.run.steps = m.stats().steps;
        outcome.run.cycles = m.stats().cycles;
      }
      stream.finish(m, outcome);
      if (outcome.faulted) {
        obs::error("tcfrun", outcome.fault_message);
      } else {
        cli::print_outcome(m, outcome.run, opt);
      }
      if (opt.stats) print_shard_summary(sup.stats());
      if (!cli::export_telemetry(m, outcome, opt, "tcfrun",
                                 sup.stats().to_json(2))) {
        return 2;
      }
      if (!opt.post_mortem.empty() && outcome.faulted &&
          !cli::export_post_mortem(m, recorder, opt, "tcfrun")) {
        return 2;
      }
      // An unrecoverable supervision failure is a diagnosed infrastructure
      // stop (exit 3, like the watchdog), distinct from a program fault.
      if (outcome.faulted &&
          debug::classify_fault(outcome.fault_message) == "shard-fault") {
        return 3;
      }
    } else if (resilient) {
      m.boot(opt.boot_thickness);
      ex.emplace(m, rc);
      // Stream chains onto the executor's recorder: attach after, detach
      // (inside finish) before the executor goes away.
      if (!stream.open(opt, "tcfrun", m)) return 2;
      const resil::ResilResult r = ex->run();
      outcome.run = r.run;
      outcome.faulted = r.faulted;
      outcome.fault_message = r.fault_message;
      stream.finish(m, outcome);
      pm_rec = &ex->recorder();
      if (outcome.faulted) {
        obs::error("tcfrun", outcome.fault_message);
      } else {
        cli::print_outcome(m, outcome.run, opt);
      }
      if (opt.stats) print_resil_summary(r.resil);
      if (!cli::export_telemetry(m, outcome, opt, "tcfrun")) return 2;
      if (!opt.post_mortem.empty() && outcome.faulted) {
        const std::vector<std::pair<std::string, std::string>> meta = {
            {"tool", "tcfrun"},
            {"input", opt.input},
            {"fault_spec", opt.inject_faults},
            {"recover", opt.recover}};
        if (!cli::write_document(
                opt.post_mortem,
                debug::post_mortem_json(m, ex->recorder(), meta), "tcfrun")) {
          return 2;
        }
      }
    } else {
      if (!opt.post_mortem.empty()) recorder.attach(m);
      if (!stream.open(opt, "tcfrun", m)) return 2;
      m.boot(opt.boot_thickness);
      outcome = cli::run_with_fault_capture(m, opt.max_steps);
      stream.finish(m, outcome);
      if (outcome.faulted) {
        obs::error("tcfrun", outcome.fault_message);
      } else {
        cli::print_outcome(m, outcome.run, opt);
      }
      if (!cli::export_telemetry(m, outcome, opt, "tcfrun")) return 2;
      if (!opt.post_mortem.empty() && outcome.faulted &&
          !cli::export_post_mortem(m, recorder, opt, "tcfrun")) {
        return 2;
      }
    }

    // Watchdog: an explicit --max-steps that expires is a diagnosed
    // non-termination, reported distinctly from a fault.
    const bool watchdog =
        !outcome.faulted && !outcome.run.completed && opt.max_steps_set;
    if (watchdog) {
      obs::error("tcfrun/watchdog",
                 "no termination within " + std::to_string(opt.max_steps) +
                     " machine steps");
      if (!opt.post_mortem.empty() &&
          !export_watchdog_post_mortem(m, pm_rec->journal(), opt)) {
        return 2;
      }
      return 3;
    }

    // Dump declared arrays/cells so programs have observable results even
    // without print statements.
    if (!outcome.faulted && opt.stats) {
      for (const auto& [name, buf] : compiled.arrays) {
        std::printf("  %s =", name.c_str());
        const std::size_t show = std::min<std::size_t>(buf.size, 16);
        for (std::size_t i = 0; i < show; ++i) {
          std::printf(" %lld",
                      static_cast<long long>(m.shared().peek(buf.at(i))));
        }
        if (show < buf.size) std::printf(" ... (%zu words)", buf.size);
        std::printf("\n");
      }
    }
    return !outcome.faulted && outcome.run.completed ? 0 : 1;
  } catch (const SimError& e) {
    obs::error("tcfrun", e.what());
    return 1;
  }
}
