// tcfdbg — interactive time-travel debugger over the flight recorder.
//
//   ./tcfdbg prog.tcf --variant=balanced --bound=8
//   ./tcfdbg tests/corpus/err_crew.s --script=session.dbg
//
// Accepts any input tcfrun/tcfasm accepts, plus tcffuzz corpus entries
// (`; tcffuzz corpus v1` header): a corpus reproducer loads with its
// recorded CRCW policy and boot directives, so a fuzzer divergence replays
// under the debugger with one command.
//
// With --script=FILE the REPL executes the file's lines (echoed, `#`
// comments skipped) and exits — the CI smoke harness. Exit codes: 0 session
// ended normally, 2 usage error or unreadable input/script.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "conformance/corpus.hpp"
#include "debug/debugger.hpp"
#include "isa/assembler.hpp"
#include "lang/codegen.hpp"
#include "tcf/kernels.hpp"
#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tcfpn;

  // --script is tcfdbg-specific; peel it off before the shared parser (which
  // rejects unknown options).
  std::string script;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::parse_flag(argv[i], "script", &v)) {
      script = v;
    } else {
      rest.push_back(argv[i]);
    }
  }
  cli::Options opt;
  if (!cli::parse_args(static_cast<int>(rest.size()), rest.data(), "tcfdbg",
                       "program under the time-travel debugger", &opt)) {
    return 2;
  }
  if (!opt.stream.empty()) {
    // Time travel rewinds the machine at the user's whim; a live stream's
    // monotone-step contract cannot survive that, so the flag is refused
    // here instead of producing a stream consumers would reject.
    obs::warn("tcfdbg",
              "--stream is not supported under the time-travel debugger; "
              "ignoring it");
    opt.stream.clear();
  }

  try {
    const std::string text = cli::read_file(opt.input);
    isa::Program program;
    debug::DebugSession::BootFn boot;
    machine::MachineConfig cfg = opt.cfg;

    if (text.rfind("; tcffuzz corpus v1", 0) == 0) {
      const conformance::DiffCase c = conformance::parse_case(text);
      program = c.program;
      cfg.crcw = c.policy;  // the reproducer's policy, not the CLI default
      const std::size_t entry = program.entry();
      if (c.esm_boot) {
        const std::uint32_t flows = c.boot_flows;
        boot = [entry, flows](machine::Machine& m) {
          tcf::kernels::boot_esm_threads(m, entry, flows);
        };
      } else {
        const Word t = c.boot_thickness;
        boot = [t](machine::Machine& m) { m.boot(t); };
      }
    } else {
      if (opt.input.size() >= 4 &&
          opt.input.compare(opt.input.size() - 4, 4, ".tcf") == 0) {
        program = lang::compile_source(text).program;
      } else {
        program = isa::assemble(text);
      }
      const Word t = opt.boot_thickness;
      boot = [t](machine::Machine& m) { m.boot(t); };
    }

    debug::DebugSession session(
        cfg, program, boot,
        debug::RecorderConfig{.journal_capacity = 8192,
                              .checkpoint_every = 64},
        {{"tool", "tcfdbg"}, {"input", opt.input}});

    if (!script.empty()) {
      std::ifstream in(script);
      if (!in) {
        std::fprintf(stderr, "tcfdbg: cannot read script '%s'\n",
                     script.c_str());
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) {
        std::cout << "tcfdbg> " << line << "\n";
        if (!session.execute(line, std::cout)) break;
      }
      return 0;
    }

    std::cout << "tcfdbg: " << opt.input << " loaded ("
              << program.code.size() << " instructions); `help` for commands\n";
    std::string line;
    while (true) {
      std::cout << "tcfdbg> " << std::flush;
      if (!std::getline(std::cin, line)) break;
      if (!session.execute(line, std::cout)) break;
    }
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "tcfdbg: %s\n", e.what());
    return 2;
  }
}
