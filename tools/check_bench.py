#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Handles two document kinds, keyed on the top-level shape:
  * BENCH_parallel_step.json — the host-parallel stepping bench;
  * BENCH_scenarios.json ("bench": "tcfpn-scenarios-v1") — the scenario
    workload suite across heterogeneous machine shapes. Rows are keyed by
    (scenario, shape, variant); the simulated cycle/step columns (and the
    Table-1 term split) must match the committed baseline EXACTLY, every
    row must report oracle_match and bit_identical, and the three
    canonical shapes (uniform, fat-thin, gpu) must all be covered.

Usage:
    cp BENCH_parallel_step.json /tmp/committed.json   # bench overwrites cwd
    ./build/bench/bench_parallel_step
    check_bench.py /tmp/committed.json BENCH_parallel_step.json

Checks, oversubscription-aware (stdlib only):
  * both documents parse and describe the same workload and variant;
  * simulated_cycles and simulated_steps match EXACTLY — the simulated
    machine is deterministic, so any drift is a semantics change, not noise;
  * every run row reports bit_identical (the bench's own cross-thread
    differential passed);
  * both documents cover the same host-thread counts;
  * the fresh 8-thread speedup meets the floor (default 2.0x) when the
    runner actually has >= 8 hardware threads — an oversubscribed row
    measures the host scheduler, not the engine, and is never judged;
  * wall-clock comparison against the committed row only when BOTH rows ran
    non-oversubscribed (committed baselines may come from smaller machines),
    with a generous tolerance since runners differ;
  * the streaming telemetry lane (DESIGN.md §13) is present, bit-identical,
    actually produced a stream, and its best-of-3 wall-clock overhead stays
    within --max-stream-overhead (default 5%).

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")
    for key in ("workload", "variant", "simulated_cycles", "simulated_steps",
                "runs"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    if not isinstance(doc["runs"], list) or not doc["runs"]:
        fail(f"{path}: empty runs array")
    return doc


def rows_by_threads(doc: dict, path: str) -> dict:
    rows = {}
    for row in doc["runs"]:
        for key in ("host_threads", "wall_clock_s", "speedup",
                    "bit_identical", "oversubscribed"):
            if key not in row:
                fail(f"{path}: run row missing '{key}': {row}")
        rows[row["host_threads"]] = row
    return rows


SCENARIO_SCHEMA = "tcfpn-scenarios-v1"
SCENARIO_ROW_KEYS = ("scenario", "shape", "machine_shape", "variant",
                     "total_slots", "simulated_cycles", "simulated_steps",
                     "fill_cycles", "slot_cycles", "mem_cycles",
                     "switch_cycles", "utilization", "wall_clock_s",
                     "oracle_match", "bit_identical")
SCENARIO_SHAPES = {"uniform", "fat-thin", "gpu"}
# Semantics columns: deterministic simulation output, compared exactly.
SCENARIO_EXACT = ("machine_shape", "total_slots", "simulated_cycles",
                  "simulated_steps", "fill_cycles", "slot_cycles",
                  "mem_cycles", "switch_cycles")


def load_scenarios(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: empty rows array")
    table = {}
    for row in rows:
        for key in SCENARIO_ROW_KEYS:
            if key not in row:
                fail(f"{path}: row missing '{key}': {row}")
        key = (row["scenario"], row["shape"], row["variant"])
        if key in table:
            fail(f"{path}: duplicate row {key}")
        table[key] = row
    shapes = {shape for _, shape, _ in table}
    missing = SCENARIO_SHAPES - shapes
    if missing:
        fail(f"{path}: canonical shape(s) not covered: {sorted(missing)}")
    return table


def check_scenarios(committed_path: str, fresh_path: str) -> None:
    committed = load_scenarios(committed_path)
    fresh = load_scenarios(fresh_path)
    if set(committed) != set(fresh):
        gone = sorted(set(committed) - set(fresh))
        new = sorted(set(fresh) - set(committed))
        fail(f"row coverage changed: removed {gone}, added {new} — "
             "re-baseline BENCH_scenarios.json deliberately if the suite "
             "itself changed")
    for key in sorted(fresh):
        c, f = committed[key], fresh[key]
        if not f["oracle_match"]:
            fail(f"{key}: fresh run diverged from the sequential oracle")
        if not f["bit_identical"]:
            fail(f"{key}: fresh run was not bit-identical across host "
                 "threads")
        for col in SCENARIO_EXACT:
            if c[col] != f[col]:
                fail(f"{key}: {col} drifted: committed {c[col]} vs fresh "
                     f"{f[col]} — the simulated schedule changed")
    shapes = sorted({shape for _, shape, _ in fresh})
    print(f"check_bench: scenarios OK ({len(fresh)} rows, "
          f"shapes: {', '.join(shapes)})")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("committed", help="the baseline BENCH_parallel_step.json")
    ap.add_argument("fresh", help="the just-produced BENCH_parallel_step.json")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="allowed wall-clock slowdown factor vs the committed "
                         "row when both ran non-oversubscribed (default 3.0; "
                         "runners differ, this catches order-of-magnitude "
                         "regressions only)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="8-thread speedup floor on non-oversubscribed "
                         "runners (default 2.0)")
    ap.add_argument("--max-stream-overhead", type=float, default=0.05,
                    help="allowed wall-clock overhead of the streaming "
                         "telemetry lane, as a fraction (default 0.05 = 5%%; "
                         "the bus promises near-zero producer-side cost)")
    args = ap.parse_args()

    # Dispatch on the document kind: the scenario suite carries a schema tag.
    try:
        with open(args.fresh, encoding="utf-8") as f:
            peek = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{args.fresh}: {e}")
    if isinstance(peek, dict) and peek.get("bench") == SCENARIO_SCHEMA:
        check_scenarios(args.committed, args.fresh)
        return

    committed = load(args.committed)
    fresh = load(args.fresh)

    for key in ("workload", "variant"):
        if committed[key] != fresh[key]:
            fail(f"{key} changed: committed {committed[key]!r} vs fresh "
                 f"{fresh[key]!r} — re-baseline BENCH_parallel_step.json "
                 "deliberately if the bench itself changed")

    # The simulated machine is deterministic: cycles and steps are semantics,
    # not performance, and must not move without a re-baseline.
    for key in ("simulated_cycles", "simulated_steps"):
        if committed[key] != fresh[key]:
            fail(f"{key} drifted: committed {committed[key]} vs fresh "
                 f"{fresh[key]} — the simulated schedule changed")

    crows = rows_by_threads(committed, args.committed)
    frows = rows_by_threads(fresh, args.fresh)
    if set(crows) != set(frows):
        fail(f"host-thread coverage changed: committed {sorted(crows)} vs "
             f"fresh {sorted(frows)}")

    for ht, row in sorted(frows.items()):
        if not row["bit_identical"]:
            fail(f"fresh run at {ht} host threads was not bit-identical to "
                 "the single-threaded reference")

    judged = 0
    for ht in sorted(frows):
        c, f = crows[ht], frows[ht]
        if c["oversubscribed"] or f["oversubscribed"]:
            continue  # scheduler noise, not engine performance
        judged += 1
        limit = c["wall_clock_s"] * args.tolerance
        if f["wall_clock_s"] > limit:
            fail(f"{ht}-thread wall clock regressed: {f['wall_clock_s']:.3f}s "
                 f"vs committed {c['wall_clock_s']:.3f}s "
                 f"(tolerance {args.tolerance:.1f}x)")

    # Streaming telemetry lane (DESIGN.md §13): the bus must stay within the
    # overhead budget AND leave the simulated run bit-identical. The block is
    # required — a fresh document without it means the lane silently stopped
    # running, which is itself a regression.
    streaming = fresh.get("streaming")
    if not isinstance(streaming, dict):
        fail(f"{args.fresh}: missing 'streaming' overhead lane")
    for key in ("stream_every", "baseline_wall_clock_s", "wall_clock_s",
                "overhead", "records_pushed", "records_written",
                "dropped_records", "bit_identical", "oversubscribed"):
        if key not in streaming:
            fail(f"{args.fresh}: streaming lane missing '{key}'")
    if not streaming["bit_identical"]:
        fail("streamed run was not bit-identical to the no-stream run")
    if streaming["records_written"] < 2:
        fail("streaming lane wrote fewer than header + run_end — the bus "
             "never produced a stream")
    print(f"check_bench: streaming overhead {streaming['overhead'] * 100:.2f}%"
          f" ({streaming['records_written']} records, "
          f"{streaming['dropped_records']} dropped)")
    if streaming["oversubscribed"]:
        # The sink thread had no spare core: wall clock measured the host
        # scheduler time-slicing two threads on one core, not the
        # producer-side cost — same non-judgment rule as the scaling rows.
        print("check_bench: single-core host; streaming overhead not judged")
    elif streaming["overhead"] > args.max_stream_overhead:
        fail(f"streaming overhead {streaming['overhead'] * 100:.2f}% exceeds "
             f"the {args.max_stream_overhead * 100:.1f}% budget")

    eight = frows.get(8)
    if eight is not None and not eight["oversubscribed"]:
        print(f"check_bench: 8-thread speedup {eight['speedup']:.3f}x")
        if eight["speedup"] < args.min_speedup:
            fail(f"8-thread speedup {eight['speedup']:.3f}x is below the "
                 f"{args.min_speedup:.1f}x floor")
    else:
        hc = eight["hardware_concurrency"] if eight else "?"
        print(f"check_bench: runner has {hc} hardware threads; "
              "8-thread speedup not judged")

    print(f"check_bench: OK ({fresh['simulated_cycles']} simulated cycles, "
          f"{len(frows)} thread counts, {judged} wall-clock rows judged)")


if __name__ == "__main__":
    main()
