// tcfprof — cost-model attribution profiler front-end.
//
//   ./tcfprof examples/programs/scan.tcf --variant=balanced --bound=8
//   ./tcfprof prog.tcf --report=hotspots --by=pc --top=20
//   ./tcfprof prog.tcf --report=steps --what-if=net:0.5x --what-if=compute:2x
//   ./tcfprof prog.tcf --report=folded > prog.folded
//   ./tcfprof prog.tcf --report=html --html=flame.html --report=json --json=p.json
//   ./tcfprof prog.tcf --live=16            (tcftop: repaint every 16 steps)
//
// Accepts any input tcfrun/tcfasm accepts, plus tcffuzz corpus entries
// (`; tcffuzz corpus v1` header) — a corpus reproducer profiles with its
// recorded CRCW policy and boot directives. The profile is deterministic:
// the same program and machine configuration produce byte-identical reports
// at every --host-threads value and under both stepping engines.
//
// Exit codes: 0 = completed, 1 = the profiled program faulted or hit the
// step limit (requested reports are still rendered from the partial
// profile), 2 = usage error or an output destination could not be written.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#if defined(_WIN32)
#include <io.h>
#define TCFPROF_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define TCFPROF_ISATTY(fd) isatty(fd)
#endif

#include "conformance/corpus.hpp"
#include "isa/assembler.hpp"
#include "lang/codegen.hpp"
#include "prof/report.hpp"
#include "tcf/kernels.hpp"
#include "cli_common.hpp"

namespace {

using namespace tcfpn;

struct ProfOptions {
  std::vector<std::string> reports;  ///< render order as given on the line
  std::size_t top = 10;
  prof::HotspotBy by = prof::HotspotBy::kPc;
  std::vector<prof::WhatIf> what_ifs;
  std::string html_path = "profile.html";
  std::string json_path = "-";
  std::uint64_t live_every = 0;  ///< > 0: tcftop mode, repaint cadence
};

void prof_usage() {
  std::printf(
      "tcfprof-specific options (everything tcfrun accepts also applies):\n"
      "  --report=LIST     comma list of reports to render, in order:\n"
      "                    summary (default), hotspots, steps, folded,\n"
      "                    html, json\n"
      "  --top=N           hotspot rows to show (default 10)\n"
      "  --by=KIND         hotspot axis: pc (default), tcf, group, term\n"
      "  --what-if=SPEC    Amdahl what-if multiplier for the steps report,\n"
      "                    e.g. net:0.5x or compute:2x (repeatable; scalable\n"
      "                    terms: compute, net, fault, fill)\n"
      "  --html=F          destination for --report=html (default\n"
      "                    profile.html; '-' for stdout)\n"
      "  --json=F          destination for --report=json (default stdout)\n"
      "  --live=N          tcftop: run interactively, repainting a per-group\n"
      "                    attribution table every N machine steps\n");
}

bool valid_report(const std::string& r) {
  return r == "summary" || r == "hotspots" || r == "steps" || r == "folded" ||
         r == "html" || r == "json";
}

/// One frame of the tcftop live view: a per-group × per-term cycle table
/// aggregated from the profile so far, plus the machine-level sentinel row.
void paint_live(const machine::Machine& m, std::uint64_t max_steps) {
  const prof::Profile& p = m.profile();
  const auto& st = m.stats();
  if (TCFPROF_ISATTY(1)) std::printf("\x1b[2J\x1b[H");
  std::printf("tcftop — step %llu / cycles %llu — attributed %llu — "
              "utilization %.3f\n",
              static_cast<unsigned long long>(st.steps),
              static_cast<unsigned long long>(st.cycles),
              static_cast<unsigned long long>(p.attributed()),
              st.utilization());
  if (st.steps >= max_steps) std::printf("(step limit reached)\n");

  // Column totals per (group, term); group -1 is the machine sentinel.
  std::vector<std::vector<Cycle>> rows;  // [group+1][term]
  rows.assign(m.config().groups + 1, std::vector<Cycle>(prof::kNumTerms, 0));
  for (const auto& [key, c] : p.cells) {
    const std::size_t r =
        key.group == prof::kNoIndex ? 0
                                    : static_cast<std::size_t>(key.group) + 1;
    if (r < rows.size()) rows[r][static_cast<std::size_t>(key.term)] += c;
  }
  std::printf("%-8s", "group");
  for (std::size_t t = 0; t < prof::kNumTerms; ++t) {
    std::printf(" %9s", prof::to_string(static_cast<prof::Term>(t)));
  }
  std::printf(" %11s\n", "total");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Cycle total = 0;
    for (Cycle c : rows[r]) total += c;
    if (r > 0 && total == 0) continue;  // quiet group: skip the noise row
    if (r == 0) {
      std::printf("%-8s", "machine");
    } else {
      std::printf("g%-7zu", r - 1);
    }
    for (Cycle c : rows[r]) {
      std::printf(" %9llu", static_cast<unsigned long long>(c));
    }
    std::printf(" %11llu\n", static_cast<unsigned long long>(total));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  // tcfprof-specific flags are peeled off before the shared parser (which
  // rejects unknown options).
  ProfOptions po;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  bool want_help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (arg == "--help" || arg == "-h") {
      want_help = true;
      rest.push_back(argv[i]);
    } else if (cli::parse_flag(arg, "report", &v)) {
      // Comma list, order preserved.
      std::size_t pos = 0;
      while (pos <= v.size()) {
        const std::size_t comma = v.find(',', pos);
        const std::string r =
            v.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!valid_report(r)) {
          std::fprintf(stderr, "tcfprof: unknown report '%s'\n", r.c_str());
          return 2;
        }
        po.reports.push_back(r);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (cli::parse_flag(arg, "top", &v)) {
      std::uint64_t n = 0;
      if (!cli::parse_uint(v, "top", 1, 1u << 20, &n)) return 2;
      po.top = static_cast<std::size_t>(n);
    } else if (cli::parse_flag(arg, "by", &v)) {
      if (!prof::hotspot_by_from_string(v, &po.by)) {
        std::fprintf(stderr,
                     "tcfprof: --by must be pc, tcf, group or term, got "
                     "'%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (cli::parse_flag(arg, "what-if", &v)) {
      prof::WhatIf w;
      if (!prof::parse_what_if(v, &w)) {
        std::fprintf(stderr,
                     "tcfprof: bad --what-if '%s' (want e.g. net:0.5x; "
                     "scalable terms: compute, net, fault, fill)\n",
                     v.c_str());
        return 2;
      }
      po.what_ifs.push_back(w);
    } else if (cli::parse_flag(arg, "html", &v)) {
      if (v.empty()) {
        std::fprintf(stderr, "tcfprof: --html needs a file name\n");
        return 2;
      }
      po.html_path = v;
    } else if (cli::parse_flag(arg, "json", &v)) {
      if (v.empty()) {
        std::fprintf(stderr, "tcfprof: --json needs a file name\n");
        return 2;
      }
      po.json_path = v;
    } else if (cli::parse_flag(arg, "live", &v)) {
      if (!cli::parse_uint(v, "live", 1, 1u << 30, &po.live_every)) return 2;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (po.reports.empty()) po.reports.push_back("summary");

  cli::Options opt;
  if (!cli::parse_args(static_cast<int>(rest.size()), rest.data(), "tcfprof",
                       "program under the attribution profiler", &opt)) {
    if (want_help) prof_usage();
    return 2;
  }
  opt.cfg.profile = true;  // the whole point of this tool

  try {
    const std::string text = cli::read_file(opt.input);
    isa::Program program;
    std::function<void(machine::Machine&)> boot;
    machine::MachineConfig cfg = opt.cfg;

    if (text.rfind("; tcffuzz corpus v1", 0) == 0) {
      const conformance::DiffCase c = conformance::parse_case(text);
      program = c.program;
      cfg.crcw = c.policy;  // the reproducer's policy, not the CLI default
      const std::size_t entry = program.entry();
      if (c.esm_boot) {
        const std::uint32_t flows = c.boot_flows;
        boot = [entry, flows](machine::Machine& m) {
          tcf::kernels::boot_esm_threads(m, entry, flows);
        };
      } else {
        const Word t = c.boot_thickness;
        boot = [t](machine::Machine& m) { m.boot(t); };
      }
    } else {
      if (opt.input.size() >= 4 &&
          opt.input.compare(opt.input.size() - 4, 4, ".tcf") == 0) {
        program = lang::compile_source(text).program;
      } else {
        program = isa::assemble(text);
      }
      const Word t = opt.boot_thickness;
      boot = [t](machine::Machine& m) { m.boot(t); };
    }

    machine::Machine m(cfg);
    m.load(program);
    boot(m);

    cli::StreamSession stream;
    if (!stream.open(opt, "tcfprof", m)) return 2;

    cli::RunOutcome outcome;
    if (po.live_every > 0) {
      // tcftop: drive the step loop ourselves, repainting the attribution
      // table every N steps. The final frame doubles as the summary.
      try {
        bool progressed = true;
        std::uint64_t since_paint = 0;
        while (progressed && !m.done() && m.stats().steps < opt.max_steps) {
          progressed = m.step();
          if (++since_paint >= po.live_every) {
            paint_live(m, opt.max_steps);
            since_paint = 0;
          }
        }
        outcome.run.completed = m.done();
      } catch (const SimError& e) {
        outcome.faulted = true;
        outcome.fault_message = e.what();
      }
      outcome.run.steps = m.stats().steps;
      outcome.run.cycles = m.stats().cycles;
      stream.finish(m, outcome);
      paint_live(m, opt.max_steps);
      if (outcome.faulted) {
        obs::error("tcfprof", outcome.fault_message);
      }
      return !outcome.faulted && outcome.run.completed ? 0 : 1;
    }

    outcome = cli::run_with_fault_capture(m, opt.max_steps);
    stream.finish(m, outcome);
    if (outcome.faulted) {
      obs::error("tcfprof",
                 outcome.fault_message + " (profiling the partial run)");
    }

    machine::MetaPairs meta = {{"tool", "tcfprof"}, {"input", opt.input}};
    if (outcome.faulted) {
      meta.emplace_back("fault", outcome.fault_message);
      meta.emplace_back("fault_class",
                        debug::classify_fault(outcome.fault_message));
    }
    const prof::RunInfo info =
        machine::profile_run_info(m, outcome.run, opt.input, meta);
    const prof::Profile& p = m.profile();

    for (const std::string& r : po.reports) {
      if (r == "summary") {
        std::fputs(prof::report_summary(p, info).c_str(), stdout);
      } else if (r == "hotspots") {
        std::fputs(prof::report_hotspots(p, info, po.by, po.top).c_str(),
                   stdout);
      } else if (r == "steps") {
        std::fputs(prof::report_steps(p, info, po.what_ifs).c_str(), stdout);
      } else if (r == "folded") {
        std::fputs(prof::report_folded(p, info).c_str(), stdout);
      } else if (r == "html") {
        if (!cli::write_document(po.html_path, prof::report_html(p, info),
                                 "tcfprof")) {
          return 2;
        }
        if (po.html_path != "-") {
          std::fprintf(stderr, "tcfprof: flame graph written to %s\n",
                       po.html_path.c_str());
        }
      } else if (r == "json") {
        if (!cli::write_document(po.json_path, prof::report_json(p, info),
                                 "tcfprof")) {
          return 2;
        }
      }
    }
    return !outcome.faulted && outcome.run.completed ? 0 : 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "tcfprof: %s\n", e.what());
    return 2;
  }
}
