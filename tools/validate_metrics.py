#!/usr/bin/env python3
"""Validate tcfpn telemetry documents (CI smoke check).

Usage:
    validate_metrics.py --metrics metrics.json [--trace trace.json]

Checks, using only the Python standard library:
  * both files parse as JSON (json.load — the real consumer-side test of
    the hand-rolled C++ emitters);
  * the metrics document has the {"run", "metrics"} shape, with the four
    instrumented subsystem subtrees and well-formed leaf instruments;
  * the trace document is Chrome trace-event JSON ("traceEvents" array of
    complete "X"/metadata "M" events) and contains at least one host span
    per instrumented subsystem prefix.

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys

SUBSYSTEMS = ("machine", "mem", "net", "sched")
INSTRUMENT_TYPES = {"counter", "gauge", "accumulator", "histogram"}


def fail(msg: str) -> None:
    print(f"validate_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def walk_instruments(tree, path=""):
    """Yields (path, leaf) for every instrument leaf in the metrics tree."""
    if not isinstance(tree, dict):
        fail(f"metrics node '{path}' is not an object")
    if "type" in tree:
        yield path, tree
        return
    for key, child in tree.items():
        yield from walk_instruments(child, f"{path}/{key}" if path else key)


def check_instrument(path, leaf):
    t = leaf.get("type")
    if t not in INSTRUMENT_TYPES:
        fail(f"instrument '{path}' has unknown type {t!r}")
    if t == "counter":
        if not isinstance(leaf.get("value"), int) or leaf["value"] < 0:
            fail(f"counter '{path}' value must be a non-negative integer")
    elif t == "accumulator":
        if not isinstance(leaf.get("count"), int):
            fail(f"accumulator '{path}' missing integer count")
        if leaf["count"] > 0 and not (leaf["min"] <= leaf["mean"] <= leaf["max"]):
            fail(f"accumulator '{path}' violates min <= mean <= max")
    elif t == "histogram":
        buckets = leaf.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            fail(f"histogram '{path}' missing buckets")
        if sum(buckets) != leaf.get("count"):
            fail(f"histogram '{path}' bucket sum != count")


def check_metrics(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    run = doc.get("run")
    if not isinstance(run, dict) or "variant" not in run:
        fail(f"{path}: missing run metadata")
    tree = doc.get("metrics")
    if not isinstance(tree, dict):
        fail(f"{path}: missing metrics tree")
    for subsystem in SUBSYSTEMS:
        if subsystem not in tree:
            fail(f"{path}: no '{subsystem}/' instruments")
    n = 0
    for leaf_path, leaf in walk_instruments(tree):
        check_instrument(leaf_path, leaf)
        n += 1
    for sample in doc.get("samples", []):
        for key in ("step", "cycles", "operations"):
            if not isinstance(sample.get(key), int):
                fail(f"{path}: sample missing integer '{key}'")
    print(f"validate_metrics: {path}: OK "
          f"({n} instruments, {len(doc.get('samples', []))} samples)")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing traceEvents")
    host_prefixes = set()
    spans = 0
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: unexpected event phase {ph!r}")
        if ph != "X":
            continue
        spans += 1
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"{path}: span missing '{key}': {ev}")
        if ev["dur"] < 0:
            fail(f"{path}: negative duration span: {ev}")
        if ev["pid"] == 1 and "/" in ev["name"]:
            host_prefixes.add(ev["name"].split("/", 1)[0])
    missing = [s for s in SUBSYSTEMS if s not in host_prefixes]
    if missing:
        fail(f"{path}: no host spans for subsystem(s): {', '.join(missing)}")
    print(f"validate_metrics: {path}: OK "
          f"({spans} spans, host subsystems: {sorted(host_prefixes)})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", required=True, help="metrics JSON document")
    ap.add_argument("--trace", help="Chrome trace-event JSON document")
    args = ap.parse_args()
    check_metrics(args.metrics)
    if args.trace:
        check_trace(args.trace)


if __name__ == "__main__":
    main()
