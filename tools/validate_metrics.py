#!/usr/bin/env python3
"""Validate tcfpn telemetry documents (CI smoke check).

Usage:
    validate_metrics.py --metrics metrics.json [--trace trace.json]
    validate_metrics.py --postmortem crash.postmortem.json
    validate_metrics.py --profile run.profile.json
    validate_metrics.py --stream run.stream [--metrics metrics.json]

Checks, using only the Python standard library:
  * each file parses as JSON (json.load — the real consumer-side test of
    the hand-rolled C++ emitters);
  * the metrics document has the {"run", "metrics"} shape, with the four
    instrumented subsystem subtrees and well-formed leaf instruments;
  * the trace document is Chrome trace-event JSON ("traceEvents" array of
    complete "X"/metadata "M" events) and contains at least one host span
    per instrumented subsystem prefix;
  * post-mortem documents follow the tcfpn-postmortem-v1 schema (DESIGN.md
    §8): run metadata, a classified fault, the journal-tail events, the
    flow table at the time of death and the involved cells;
  * metrics, profile and post-mortem run metadata carry the heterogeneous
    machine-shape summary (DESIGN.md §12): "uniform", a named preset's
    expansion, or a run-length-encoded `COUNT*key=val,...` group list;
  * stream captures follow the tcfpn-stream-v1 NDJSON schema (DESIGN.md
    §13): every line one JSON object, header first, seq contiguous from 0,
    step monotone non-decreasing across metrics/sample/events lines, exactly
    one run_end and it is last; with --metrics alongside, the run_end's
    cumulative metrics must equal the --metrics-json document leaf-for-leaf
    (the two exporters share one serializer — any divergence is a bug);
  * profile documents follow the tcfpn-profile-v1 schema (DESIGN.md §11):
    the closed world of ten cost terms, per-term totals and per-cell cycles
    that conserve exactly (cells == totals == attributed_cycles ==
    run.cycles), parseable folded stacks and a well-formed step-criticality
    aggregate.

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys

SUBSYSTEMS = ("machine", "mem", "net", "sched")
# Present only in fault-injected runs (tcfrun --inject-faults); validated
# like any other subtree, plus the --expect-rollback assertion below.
RESIL_SUBSYSTEM = "resil"
INSTRUMENT_TYPES = {"counter", "gauge", "accumulator", "histogram"}
FAULT_CLASSES = {"policy", "arith", "addr", "flow", "other", "divergence",
                 "watchdog", "shard-fault"}
EVENT_KINDS = {
    "flow_created", "flow_halted", "thickness_changed", "spawn", "join",
    "suspend", "resume", "evict", "print", "step_committed", "fault",
    "fault_injected", "retry", "rollback", "group_retired",
    "shard_fault", "shard_restart", "shard_retired",
}
# The supervision counters of a sharded run (tcfrun --shards), exported as
# the top-level "shard" block of the metrics document — OUTSIDE the metrics
# tree, which must stay bit-identical to --shards=1 (DESIGN.md §14).
SHARD_KEYS = {
    "shard/steps", "shard/frames_sent", "shard/frames_received",
    "shard/bytes_sent", "shard/bytes_received", "shard/heartbeats",
    "shard/checkpoints", "shard/faults_injected", "shard/crashes",
    "shard/hangs", "shard/babbles", "shard/restarts", "shard/rollbacks",
    "shard/degrades", "shard/groups_retired", "shard/link_budget_cycles",
}
FLOW_STATUSES = {"ready", "waiting-join", "suspended", "halted"}
# The profiler's closed-world term taxonomy, in canonical order (DESIGN.md
# §11). A document listing anything else was produced by a different schema.
PROFILE_TERMS = ["compute", "operand", "local", "branch", "fill", "net",
                 "fault", "idle", "switch", "sched"]
STEP_LIMITS = {"compute", "net", "fault", "idle"}


def fail(msg: str) -> None:
    print(f"validate_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_machine_shape(path, run):
    """The per-group heterogeneous config metadata (DESIGN.md §12): every
    run-describing document reports the machine shape as either the literal
    "uniform" or a run-length-encoded group list whose every '+'-separated
    term is COUNT*key[=val],... — the same grammar machine::apply_shape
    accepts back (modulo the elided NUMA rows)."""
    shape = run.get("machine_shape")
    if not isinstance(shape, str) or not shape:
        fail(f"{path}: run metadata missing non-empty string 'machine_shape'")
    if shape == "uniform":
        return
    for term in shape.split("+"):
        count, star, specs = term.partition("*")
        if not star or not count.isdigit() or int(count) < 1:
            fail(f"{path}: machine_shape term {term!r} lacks a COUNT* prefix")
        for kv in specs.split(","):
            key = kv.split("=", 1)[0]
            if key not in ("slots", "clock", "fill", "dist", "default"):
                fail(f"{path}: machine_shape term {term!r} has unknown "
                     f"key {key!r}")


def check_run_shards(path, run):
    """Every run-describing export carries the run's shard count: "1" for a
    plain run, the --shards value for a supervised one."""
    shards = run.get("shards")
    if not isinstance(shards, str) or not shards.isdigit() or int(shards) < 1:
        fail(f"{path}: run metadata 'shards' must be a positive integer "
             f"string, got {shards!r}")
    return int(shards)


def check_shard_block(path, doc, expect_shards=None):
    """The top-level "shard" supervision-counter block (DESIGN.md §14):
    present exactly when the run was sharded, flat, closed-world keys,
    non-negative integer values, counters consistent with each other."""
    block = doc.get("shard")
    if expect_shards is not None and expect_shards > 1 and block is None:
        fail(f"{path}: sharded run (shards={expect_shards}) has no "
             "top-level 'shard' block")
    if block is None:
        return
    if not isinstance(block, dict):
        fail(f"{path}: 'shard' block is not an object")
    if set(block) != SHARD_KEYS:
        missing = sorted(SHARD_KEYS - set(block))
        extra = sorted(set(block) - SHARD_KEYS)
        fail(f"{path}: shard block keys diverge from the schema "
             f"(missing: {missing}, unknown: {extra})")
    for key, value in block.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: shard counter {key!r} must be a non-negative "
                 f"integer, got {value!r}")
    failures = (block["shard/crashes"] + block["shard/hangs"]
                + block["shard/babbles"])
    if block["shard/restarts"] + block["shard/degrades"] > failures:
        fail(f"{path}: shard restarts+degrades exceed detected failures")
    if block["shard/steps"] > 0 and block["shard/heartbeats"] == 0:
        fail(f"{path}: supervised steps without a single heartbeat")
    print(f"validate_metrics: {path}: shard block OK "
          f"({block['shard/steps']} supervised steps, {failures} failures, "
          f"{block['shard/restarts']} restarts, "
          f"{block['shard/degrades']} degrades)")


def walk_instruments(tree, path=""):
    """Yields (path, leaf) for every instrument leaf in the metrics tree."""
    if not isinstance(tree, dict):
        fail(f"metrics node '{path}' is not an object")
    if "type" in tree:
        yield path, tree
        return
    for key, child in tree.items():
        yield from walk_instruments(child, f"{path}/{key}" if path else key)


def check_instrument(path, leaf):
    t = leaf.get("type")
    if t not in INSTRUMENT_TYPES:
        fail(f"instrument '{path}' has unknown type {t!r}")
    if t == "counter":
        if not isinstance(leaf.get("value"), int) or leaf["value"] < 0:
            fail(f"counter '{path}' value must be a non-negative integer")
    elif t == "accumulator":
        if not isinstance(leaf.get("count"), int):
            fail(f"accumulator '{path}' missing integer count")
        if leaf["count"] > 0 and not (leaf["min"] <= leaf["mean"] <= leaf["max"]):
            fail(f"accumulator '{path}' violates min <= mean <= max")
    elif t == "histogram":
        buckets = leaf.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            fail(f"histogram '{path}' missing buckets")
        if sum(buckets) != leaf.get("count"):
            fail(f"histogram '{path}' bucket sum != count")


STREAM_SCHEMA = "tcfpn-stream-v1"
STREAM_TYPES = {"header", "metrics", "sample", "events", "log", "run_end"}
STEPPED_TYPES = {"metrics", "sample", "events"}
LOG_LEVELS = {"debug", "info", "warn", "error"}


def check_stream(path, metrics_path=None):
    """tcfpn-stream-v1 NDJSON capture (DESIGN.md §13). Framing and ordering
    first (json.loads per line, header/seq/step/run_end invariants), then —
    when the run's --metrics-json document is also on hand — the cross-export
    consistency check: the stream's final cumulative metrics must be the same
    values, leaf for leaf."""
    records = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f):
            line = line.rstrip("\n")
            if not line:
                fail(f"{path}:{lineno}: empty stream line")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: unparseable line: {e}")
            if not isinstance(rec, dict):
                fail(f"{path}:{lineno}: line is not a JSON object")
            records.append((lineno, rec))
    if not records:
        fail(f"{path}: empty stream")

    # Header: first line, schema-stamped, with a run-metadata object.
    _, head = records[0]
    if head.get("type") != "header":
        fail(f"{path}: first line is {head.get('type')!r}, not the header")
    if head.get("schema") != STREAM_SCHEMA:
        fail(f"{path}: header schema is {head.get('schema')!r}, "
             f"expected {STREAM_SCHEMA!r}")
    if not isinstance(head.get("run"), dict):
        fail(f"{path}: header missing 'run' metadata object")
    check_run_shards(path, head["run"])

    counts = {t: 0 for t in STREAM_TYPES}
    last_step = -1
    run_end = None
    for i, (lineno, rec) in enumerate(records):
        t = rec.get("type")
        if t not in STREAM_TYPES:
            fail(f"{path}:{lineno}: unknown record type {t!r}")
        counts[t] += 1
        # seq is assigned by the sink at write time: contiguous from 0
        # regardless of how many records backpressure dropped.
        if rec.get("seq") != i:
            fail(f"{path}:{lineno}: seq is {rec.get('seq')!r}, expected {i} "
                 "(sink seq must be contiguous from 0)")
        if t in STEPPED_TYPES:
            step = rec.get("step")
            if not isinstance(step, int) or step < 0:
                fail(f"{path}:{lineno}: {t} record missing integer 'step'")
            if step < last_step:
                fail(f"{path}:{lineno}: step went backwards ({step} after "
                     f"{last_step}) — rollback replay leaked into the stream")
            last_step = step
        if t == "metrics":
            for leaf_path, leaf in rec.get("delta", {}).items():
                check_instrument(f"{path}:{lineno}:{leaf_path}", leaf)
        elif t == "sample":
            for key in ("step", "cycles", "operations", "busy_slots",
                        "idle_slots", "live_flows"):
                if not isinstance(rec.get(key), int):
                    fail(f"{path}:{lineno}: sample missing integer '{key}'")
        elif t == "events":
            for kind, n in rec.get("counts", {}).items():
                if kind not in EVENT_KINDS:
                    fail(f"{path}:{lineno}: unknown event kind {kind!r}")
                if not isinstance(n, int) or n < 1:
                    fail(f"{path}:{lineno}: event count for {kind!r} must "
                         "be a positive integer (zero counts are omitted)")
        elif t == "log":
            if rec.get("level") not in LOG_LEVELS:
                fail(f"{path}:{lineno}: unknown log level "
                     f"{rec.get('level')!r}")
            for key in ("category", "message"):
                if not isinstance(rec.get(key), str):
                    fail(f"{path}:{lineno}: log record missing '{key}'")
        elif t == "run_end":
            if i != len(records) - 1:
                fail(f"{path}:{lineno}: run_end is not the last line")
            run_end = rec

    if counts["header"] != 1:
        fail(f"{path}: {counts['header']} header lines, expected exactly 1")
    if run_end is None:
        fail(f"{path}: no run_end line — truncated stream (producer died?)")
    if not isinstance(run_end.get("completed"), bool):
        fail(f"{path}: run_end missing boolean 'completed'")
    obs = run_end.get("obs")
    if not isinstance(obs, dict):
        fail(f"{path}: run_end missing 'obs' bus-counter object")
    for key in ("pushed", "written", "dropped_records", "dropped_logs",
                "write_errors"):
        if not isinstance(obs.get(key), int) or obs[key] < 0:
            fail(f"{path}: run_end obs missing non-negative '{key}'")
    cumulative = run_end.get("metrics")
    if not isinstance(cumulative, dict):
        fail(f"{path}: run_end missing cumulative 'metrics' map")
    for leaf_path, leaf in cumulative.items():
        check_instrument(f"{path}:run_end:{leaf_path}", leaf)

    if metrics_path is not None:
        with open(metrics_path, encoding="utf-8") as f:
            doc = json.load(f)
        flat_doc = dict(walk_instruments(doc.get("metrics", {})))
        if set(flat_doc) != set(cumulative):
            only_doc = sorted(set(flat_doc) - set(cumulative))[:5]
            only_stream = sorted(set(cumulative) - set(flat_doc))[:5]
            fail(f"{path}: run_end metrics paths differ from {metrics_path} "
                 f"(doc-only: {only_doc}, stream-only: {only_stream})")
        for leaf_path, leaf in flat_doc.items():
            if cumulative[leaf_path] != leaf:
                fail(f"{path}: run_end '{leaf_path}' = "
                     f"{cumulative[leaf_path]} but {metrics_path} has "
                     f"{leaf} — the exporters diverged")
        cross = f", cumulative == {metrics_path} ({len(flat_doc)} leaves)"
    else:
        cross = ""

    dropped = obs["dropped_records"] + obs["dropped_logs"]
    print(f"validate_metrics: {path}: OK ({len(records)} lines: "
          f"{counts['metrics']} metrics, {counts['sample']} samples, "
          f"{counts['events']} events, {counts['log']} logs; "
          f"{dropped} dropped{cross})")


def check_metrics(path, expect_rollback=False, expect_shards=None):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    run = doc.get("run")
    if not isinstance(run, dict) or "variant" not in run:
        fail(f"{path}: missing run metadata")
    check_machine_shape(path, run)
    shards = check_run_shards(path, run)
    if expect_shards is not None and shards != expect_shards:
        fail(f"{path}: run metadata says shards={shards}, "
             f"expected {expect_shards}")
    check_shard_block(path, doc, expect_shards=expect_shards)
    tree = doc.get("metrics")
    if not isinstance(tree, dict):
        fail(f"{path}: missing metrics tree")
    for subsystem in SUBSYSTEMS:
        if subsystem not in tree:
            fail(f"{path}: no '{subsystem}/' instruments")
    n = 0
    for leaf_path, leaf in walk_instruments(tree):
        check_instrument(leaf_path, leaf)
        n += 1
    if expect_rollback:
        resil = tree.get(RESIL_SUBSYSTEM)
        if not isinstance(resil, dict):
            fail(f"{path}: --expect-rollback but no '{RESIL_SUBSYSTEM}/' "
                 "subtree (was the run fault-injected?)")
        rollbacks = resil.get("rollbacks", {}).get("value")
        if not isinstance(rollbacks, int) or rollbacks < 1:
            fail(f"{path}: --expect-rollback but resil/rollbacks is "
                 f"{rollbacks!r} (the schedule should have forced >= 1)")
    for sample in doc.get("samples", []):
        for key in ("step", "cycles", "operations"):
            if not isinstance(sample.get(key), int):
                fail(f"{path}: sample missing integer '{key}'")
    print(f"validate_metrics: {path}: OK "
          f"({n} instruments, {len(doc.get('samples', []))} samples)")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing traceEvents")
    host_prefixes = set()
    spans = 0
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"{path}: unexpected event phase {ph!r}")
        if ph != "X":
            continue
        spans += 1
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"{path}: span missing '{key}': {ev}")
        if ev["dur"] < 0:
            fail(f"{path}: negative duration span: {ev}")
        if ev["pid"] == 1 and "/" in ev["name"]:
            host_prefixes.add(ev["name"].split("/", 1)[0])
    missing = [s for s in SUBSYSTEMS if s not in host_prefixes]
    if missing:
        fail(f"{path}: no host spans for subsystem(s): {', '.join(missing)}")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail(f"{path}: missing otherData")
    if not isinstance(other.get("truncated"), bool):
        fail(f"{path}: otherData.truncated must be a boolean (the host-span "
             "buffer overflow flag)")
    print(f"validate_metrics: {path}: OK "
          f"({spans} spans, host subsystems: {sorted(host_prefixes)}, "
          f"truncated: {other['truncated']})")


def check_postmortem(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "tcfpn-postmortem-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'tcfpn-postmortem-v1'")
    run = doc.get("run")
    if not isinstance(run, dict):
        fail(f"{path}: missing run metadata")
    for key in ("variant", "policy"):
        if not isinstance(run.get(key), str):
            fail(f"{path}: run metadata missing string '{key}'")
    check_machine_shape(path, run)
    for key in ("steps", "cycles"):
        if not isinstance(run.get(key), int) or run[key] < 0:
            fail(f"{path}: run metadata missing non-negative '{key}'")

    fault = doc.get("fault")
    if not isinstance(fault, dict):
        fail(f"{path}: missing fault object")
    if fault.get("class") not in FAULT_CLASSES:
        fail(f"{path}: unknown fault class {fault.get('class')!r}")
    if not isinstance(fault.get("message"), str) or not fault["message"]:
        fail(f"{path}: fault missing message")
    if not isinstance(fault.get("step"), int):
        fail(f"{path}: fault missing integer step")
    for key in ("flow", "address"):  # nullable integers
        if fault.get(key) is not None and not isinstance(fault[key], int):
            fail(f"{path}: fault '{key}' must be an integer or null")

    events = doc.get("events")
    if not isinstance(events, list):
        fail(f"{path}: missing events array")
    prev_seq = -1
    for ev in events:
        if ev.get("kind") not in EVENT_KINDS:
            fail(f"{path}: unknown event kind {ev.get('kind')!r}")
        for key in ("seq", "step", "group", "a", "b"):
            if not isinstance(ev.get(key), int):
                fail(f"{path}: event missing integer '{key}': {ev}")
        if ev.get("flow") is not None and not isinstance(ev["flow"], int):
            fail(f"{path}: event flow must be an integer or null")
        if ev["seq"] <= prev_seq:
            fail(f"{path}: event sequence numbers not increasing at {ev}")
        prev_seq = ev["seq"]

    flows = doc.get("flows")
    if not isinstance(flows, list) or not flows:
        fail(f"{path}: missing flow table")
    for fl in flows:
        for key in ("id", "home", "pc", "thickness", "live_children"):
            if not isinstance(fl.get(key), int):
                fail(f"{path}: flow missing integer '{key}': {fl}")
        if fl.get("status") not in FLOW_STATUSES:
            fail(f"{path}: unknown flow status {fl.get('status')!r}")
        if fl.get("mode") not in ("pram", "numa"):
            fail(f"{path}: unknown flow mode {fl.get('mode')!r}")

    cells = doc.get("cells")
    if not isinstance(cells, list):
        fail(f"{path}: missing cells array")
    for cell in cells:
        for key in ("addr", "value", "module"):
            if not isinstance(cell.get(key), int):
                fail(f"{path}: cell missing integer '{key}': {cell}")

    print(f"validate_metrics: {path}: OK "
          f"(fault class '{fault['class']}', {len(events)} events, "
          f"{len(flows)} flows, {len(cells)} cells)")


def check_profile(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "tcfpn-profile-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'tcfpn-profile-v1'")
    run = doc.get("run")
    if not isinstance(run, dict):
        fail(f"{path}: missing run metadata")
    if not isinstance(run.get("program"), str):
        fail(f"{path}: run metadata missing string 'program'")
    check_machine_shape(path, run)
    check_run_shards(path, run)
    if not isinstance(run.get("completed"), bool):
        fail(f"{path}: run metadata missing boolean 'completed'")
    for key in ("steps", "cycles", "attributed_cycles", "pipeline_fill"):
        if not isinstance(run.get(key), int) or run[key] < 0:
            fail(f"{path}: run metadata missing non-negative '{key}'")

    # Closed world: the term list is exactly the canonical taxonomy, and the
    # totals object covers it with nothing extra.
    if doc.get("terms") != PROFILE_TERMS:
        fail(f"{path}: terms is {doc.get('terms')!r}, expected the canonical "
             f"taxonomy {PROFILE_TERMS}")
    totals = doc.get("totals")
    if not isinstance(totals, dict) or set(totals) != set(PROFILE_TERMS):
        fail(f"{path}: totals keys must be exactly the term taxonomy")
    for term, value in totals.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: totals[{term!r}] must be a non-negative integer")

    # Conservation: cells == totals == attributed == the run clock.
    cells = doc.get("cells")
    if not isinstance(cells, list):
        fail(f"{path}: missing cells array")
    cell_sum = 0
    for cell in cells:
        if cell.get("term") not in PROFILE_TERMS:
            fail(f"{path}: cell with unknown term: {cell}")
        if not isinstance(cell.get("cycles"), int) or cell["cycles"] <= 0:
            fail(f"{path}: cell cycles must be a positive integer: {cell}")
        for key in ("group", "flow", "pc"):  # nullable (machine-level cells)
            if cell.get(key) is not None and not isinstance(cell[key], int):
                fail(f"{path}: cell '{key}' must be an integer or null")
        cell_sum += cell["cycles"]
    attributed = run["attributed_cycles"]
    if cell_sum != attributed:
        fail(f"{path}: cells sum to {cell_sum}, not attributed_cycles "
             f"{attributed}")
    if sum(totals.values()) != attributed:
        fail(f"{path}: totals sum to {sum(totals.values())}, not "
             f"attributed_cycles {attributed}")
    if attributed != run["cycles"]:
        fail(f"{path}: attributed_cycles {attributed} != run cycles "
             f"{run['cycles']} — the conservation invariant broke")

    steps = doc.get("steps")
    if not isinstance(steps, dict):
        fail(f"{path}: missing steps aggregate")
    if not isinstance(steps.get("recorded"), int) or steps["recorded"] < 0:
        fail(f"{path}: steps.recorded must be a non-negative integer")
    if not isinstance(steps.get("truncated"), bool):
        fail(f"{path}: steps.truncated must be a boolean")
    limited = steps.get("limited_by")
    if not isinstance(limited, dict) or not set(limited) <= STEP_LIMITS:
        fail(f"{path}: steps.limited_by keys must be within {STEP_LIMITS}")
    for cls, agg in limited.items():
        for key in ("steps", "cycles"):
            if not isinstance(agg.get(key), int) or agg[key] < 0:
                fail(f"{path}: limited_by[{cls!r}] missing non-negative "
                     f"'{key}'")

    folded = doc.get("folded")
    if not isinstance(folded, list):
        fail(f"{path}: missing folded array")
    folded_sum = 0
    for line in folded:
        parts = line.rsplit(" ", 1)
        if len(parts) != 2 or not parts[1].isdigit():
            fail(f"{path}: folded line has no trailing count: {line!r}")
        frames = parts[0].split(";")
        if not 2 <= len(frames) <= 4:
            fail(f"{path}: folded line has {len(frames)} frames, "
                 f"expected 2-4: {line!r}")
        folded_sum += int(parts[1])
    if folded_sum != attributed:
        fail(f"{path}: folded stacks sum to {folded_sum}, not "
             f"attributed_cycles {attributed}")

    print(f"validate_metrics: {path}: OK "
          f"({len(cells)} cells, {attributed} cycles conserved, "
          f"{steps['recorded']} steps, {len(folded)} folded stacks)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", help="metrics JSON document")
    ap.add_argument("--trace", help="Chrome trace-event JSON document")
    ap.add_argument("--postmortem", action="append", default=[],
                    help="tcfpn-postmortem-v1 document (repeatable)")
    ap.add_argument("--profile", action="append", default=[],
                    help="tcfpn-profile-v1 document (repeatable)")
    ap.add_argument("--stream", help="tcfpn-stream-v1 NDJSON capture "
                    "(tcfrun --stream); combined with --metrics the run_end "
                    "cumulative metrics are cross-checked against the doc")
    ap.add_argument("--expect-rollback", action="store_true",
                    help="require a resil/ subtree with rollbacks >= 1 in "
                         "--metrics (for fault schedules that guarantee a "
                         "fatal fault)")
    ap.add_argument("--expect-shards", type=int, default=None,
                    help="require --metrics run metadata to report this "
                         "shard count and (when > 1) a top-level 'shard' "
                         "supervision-counter block")
    args = ap.parse_args()
    if (not args.metrics and not args.trace and not args.postmortem
            and not args.profile and not args.stream):
        ap.error("nothing to validate: pass --metrics, --trace, --stream, "
                 "--postmortem and/or --profile")
    if args.expect_rollback and not args.metrics:
        ap.error("--expect-rollback needs --metrics")
    if args.expect_shards is not None and not args.metrics:
        ap.error("--expect-shards needs --metrics")
    if args.metrics:
        check_metrics(args.metrics, expect_rollback=args.expect_rollback,
                      expect_shards=args.expect_shards)
    if args.stream:
        check_stream(args.stream, metrics_path=args.metrics)
    if args.trace:
        check_trace(args.trace)
    for path in args.postmortem:
        check_postmortem(path)
    for path in args.profile:
        check_profile(path)


if __name__ == "__main__":
    main()
